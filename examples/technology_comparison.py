#!/usr/bin/env python
"""Technology comparison: electrical DVS links vs the two optical options.

The paper's power-aware architecture descends from electrical DVS links
(its reference [24]); this study puts all three link technologies through
the same power-aware network and the same workload:

* electrical serial link (driver/termination/equalisation/receiver),
* VCSEL-based opto link,
* MQW-modulator opto link with external laser.

It prints the per-link power curves and then full-network results, showing
the paper's Fig. 6(d) ordering (VCSEL <= modulator) and where the
electrical link's deeper voltage scaling does and doesn't help.

Run:  python examples/technology_comparison.py
"""

from __future__ import annotations

from repro.config import (
    NetworkConfig,
    PolicyConfig,
    PowerAwareConfig,
    SimulationConfig,
)
from repro.core.manager import NetworkPowerManager
from repro.metrics.ascii import format_table
from repro.network.simulator import Simulator
from repro.photonics.electrical import ElectricalLinkModel, compare_technologies
from repro.traffic.uniform import UniformRandomTraffic
from repro.units import to_gbps, to_mw

NETWORK = NetworkConfig(mesh_width=4, mesh_height=4, nodes_per_cluster=8)
CYCLES = 16_000
RATE = 0.6


def print_link_curves() -> None:
    print("Per-link power (mW) under DVS, by technology:")
    rows = []
    for row in compare_technologies((5e9, 6e9, 7e9, 8e9, 9e9, 10e9)):
        rows.append([
            f"{to_gbps(row['bit_rate']):.0f}",
            f"{to_mw(row['electrical']):.1f}",
            f"{to_mw(row['vcsel']):.1f}",
            f"{to_mw(row['modulator']):.1f}",
        ])
    print(format_table(["Gb/s", "electrical", "vcsel", "modulator"], rows))
    print()


def run_network(technology: str):
    power = PowerAwareConfig(policy=PolicyConfig(window_cycles=400))
    config = SimulationConfig(network=NETWORK, power=power,
                              warmup_cycles=2000, sample_interval=1000)
    traffic = UniformRandomTraffic(NETWORK.num_nodes, RATE, seed=9)
    sim = Simulator(config, traffic)
    # Swap every link's power model: the manager exposes exactly this
    # plug-in point for measured or alternative models (paper Section 5).
    if technology == "electrical":
        sim.power.replace_power_model(ElectricalLinkModel().as_power_model())
    else:
        sim.power.replace_power_model(_opto_model(technology))
    sim.run(CYCLES)
    return sim.summary()


def _opto_model(technology: str):
    from repro.photonics.power_model import LinkPowerModel

    if technology == "vcsel":
        return LinkPowerModel.vcsel_link()
    return LinkPowerModel.modulator_link()


def main() -> None:
    print_link_curves()
    print(f"Full-network run ({RATE} pkt/cyc uniform, {CYCLES} cycles):")
    rows = []
    for technology in ("electrical", "vcsel", "modulator"):
        summary = run_network(technology)
        rows.append([
            technology,
            f"{summary['mean_latency']:.1f}",
            f"{summary['relative_power']:.3f}",
            f"{100 * (1 - summary['relative_power']):.1f}%",
        ])
    print(format_table(
        ["technology", "latency (cyc)", "rel. power", "saving"], rows))
    print("\nExpected ordering: electrical saves the deepest fraction "
          "(every term voltage-scaled),\nVCSEL next, modulator last "
          "(its driver supply is pinned) — the paper's Fig. 6(d).")


if __name__ == "__main__":
    main()
