#!/usr/bin/env python
"""Link budget analysis: the photonics layer on its own.

Uses the Section 2 component models without any network simulation:

* prints the Table 2 power budget and each component's scaling trend,
* shows the link power curve across the bit-rate ladder for both
  transmitter technologies,
* sizes the external laser for the paper's 1280-fiber splitter tree and
  checks the optical margin of each of the three power bands.

Run:  python examples/link_budget_analysis.py
"""

from __future__ import annotations

from repro.core.levels import BitRateLadder
from repro.experiments.table2 import link_totals, trend_model_rows
from repro.photonics import (
    ExternalLaserSource,
    LinkBudget,
    LinkPowerModel,
    VariableOpticalAttenuator,
)
from repro.units import to_gbps, to_mw, watts_to_dbm


def print_table2() -> None:
    print("Table 2 — component power @10 Gb/s and scaling trends")
    print(f"  {'component':18s}{'power (mW)':>12s}{'trend':>12s}")
    for row in trend_model_rows():
        print(f"  {row['component']:18s}{row['power_mw']:>12s}"
              f"{row['trend']:>12s}")
    totals = link_totals()
    print(f"  VCSEL link total: {totals['vcsel_at_10g_mw']:.0f} mW @10G, "
          f"{totals['vcsel_at_5g_mw']:.0f} mW @5G "
          f"({100 * totals['vcsel_savings_at_5g']:.0f}% saving)\n")


def print_power_curves() -> None:
    ladder = BitRateLadder.paper_default()
    vcsel = LinkPowerModel.vcsel_link()
    modulator = LinkPowerModel.modulator_link()
    print("Link power across the 5-10 Gb/s ladder (mW):")
    print(f"  {'rate (Gb/s)':>12s}{'VCSEL':>10s}{'modulator':>12s}")
    for level in range(ladder.num_levels):
        rate = ladder.rate(level)
        print(f"  {to_gbps(rate):>12.1f}{to_mw(vcsel.power(rate)):>10.1f}"
              f"{to_mw(modulator.power(rate)):>12.1f}")
    print()


def print_optical_budget() -> None:
    print("External laser sizing (1:64 then 1:20 splitter tree, Fig. 3(b)):")
    budget = LinkBudget(source=ExternalLaserSource(output_power=2.0))
    tree = budget.source.tree
    print(f"  fan-out: {tree.fan_out} fibers, "
          f"end-to-end splitting loss {tree.total_loss_db:.1f} dB")
    needed = budget.required_laser_power(10e9, margin_db=3.0)
    print(f"  laser power for every fiber to close at 10 Gb/s "
          f"with 3 dB margin: {needed:.2f} W "
          f"({watts_to_dbm(needed):.1f} dBm)")

    sized = LinkBudget(source=ExternalLaserSource(output_power=needed))
    voa = VariableOpticalAttenuator()
    print("\n  Optical band margins (Plow/Pmid/Phigh at band-max rates):")
    print(f"  {'band':>6s}{'atten (dB)':>12s}{'max rate':>10s}"
          f"{'margin (dB)':>13s}")
    for row in sized.band_report(voa, (4e9, 6e9, 10e9)):
        print(f"  {int(row['level']):>6d}{row['attenuation_db']:>12.2f}"
              f"{to_gbps(row['max_bit_rate']):>9.0f}G"
              f"{row['margin_db']:>13.2f}")


def main() -> None:
    print_table2()
    print_power_curves()
    print_optical_budget()


if __name__ == "__main__":
    main()
