#!/usr/bin/env python
"""Bursty traffic study: why temporal variance is the opportunity.

The paper's motivation rests on real traffic being bursty (it cites the
classic self-similar Ethernet result).  This study runs the same long-run
average load through three temporal structures — smooth Poisson, ON/OFF
bursty, and phased hot-spot — and shows how the power-aware network's
savings and latency cost depend on *how* the load arrives, not just how
much of it there is.

Run:  python examples/bursty_traffic_study.py
"""

from __future__ import annotations

from repro.config import (
    NetworkConfig,
    PowerAwareConfig,
    SimulationConfig,
)
from repro.metrics.ascii import format_table, sparkline
from repro.network.simulator import Simulator
from repro.traffic.hotspot import HotspotTraffic, Phase
from repro.traffic.onoff import OnOffTraffic
from repro.traffic.uniform import UniformRandomTraffic

NETWORK = NetworkConfig(mesh_width=4, mesh_height=4, nodes_per_cluster=8)
AVERAGE_RATE = 0.8   # packets/cycle network-wide, identical for all three
CYCLES = 24_000


def traffic_variants(num_nodes: int):
    half = AVERAGE_RATE  # phased source alternates 0.25x and 1.75x
    return {
        "smooth poisson": UniformRandomTraffic(num_nodes, AVERAGE_RATE,
                                               seed=5),
        "on/off bursty": OnOffTraffic(num_nodes, AVERAGE_RATE,
                                      duty_cycle=0.25,
                                      mean_burst_cycles=500, seed=5),
        "phased": HotspotTraffic(
            num_nodes,
            tuple(
                Phase(i * 3000,
                      half * (0.25 if i % 2 else 1.75))
                for i in range(8)
            ),
            hotspot_node=1, hotspot_weight=2.0, seed=5,
        ),
    }


def main() -> None:
    print(f"Same average load ({AVERAGE_RATE} pkt/cyc), three temporal "
          f"structures, {CYCLES} cycles each.\n")
    rows = []
    spark_lines = []
    for name, traffic in traffic_variants(NETWORK.num_nodes).items():
        config = SimulationConfig(network=NETWORK, power=PowerAwareConfig(),
                                  warmup_cycles=2000, sample_interval=500)
        sim = Simulator(config, traffic)
        sim.run(CYCLES)
        summary = sim.summary()
        rows.append([
            name,
            f"{summary['mean_latency']:.1f}",
            f"{summary['relative_power']:.3f}",
            f"{100 * (1 - summary['relative_power']):.1f}%",
        ])
        baseline_watts = sim.power.baseline_power()
        # Skip the initial descent from full power so the sparkline's
        # dynamic range shows the steady-state tracking, not the start-up.
        series = [w / baseline_watts for t, w in sim.power.power_series
                  if t >= 4000]
        spark_lines.append((name, sparkline(series, width=64)))

    print(format_table(
        ["traffic", "latency (cyc)", "rel. power", "saving"], rows))
    print("\nrelative power over time:")
    for name, line in spark_lines:
        print(f"  {name:16s} {line}")
    print("\nThe burstier the arrival process, the more idle time the "
          "policy can harvest\n(and the more the latency of the bursts "
          "themselves costs).")


if __name__ == "__main__":
    main()
