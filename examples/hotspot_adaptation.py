#!/usr/bin/env python
"""Hot-spot adaptation: watch the policy respond to traffic phases.

Reproduces the Fig. 6 experiment at a reduced scale: a time-varying
hot-spot workload steps through injection-rate phases while one node
receives 4x traffic.  The script runs three systems side by side —
non-power-aware, VCSEL-based power-aware and modulator-based power-aware
with three optical levels — and prints, per time slice, the mean bit-rate
level of the links and the mean latency, so the adaptation (and the cost
of optical power transitions) is visible.

Run:  python examples/hotspot_adaptation.py
"""

from __future__ import annotations

import math

from repro.config import MODULATOR, SimulationConfig, VCSEL
from repro.experiments.configs import get_scale, power_config
from repro.experiments.fig6 import hotspot_factory, schedule_for_scale
from repro.network.simulator import Simulator


def run_variant(scale, power, label):
    config = SimulationConfig(network=scale.network, power=power,
                              sample_interval=scale.sample_interval,
                              warmup_cycles=0)
    traffic = hotspot_factory(scale)(scale.network.num_nodes, seed=3)
    sim = Simulator(config, traffic)
    slices = []
    slice_cycles = scale.run_cycles // 8
    for _ in range(8):
        sim.run(slice_cycles)
        if sim.power is not None:
            histogram = sim.power.level_histogram()
            total = sum(histogram)
            mean_level = sum(i * c for i, c in enumerate(histogram)) / total
        else:
            mean_level = 5.0
        latency_series = sim.stats.latency_series()
        recent = [v for v in latency_series[-4:] if not math.isnan(v)]
        slices.append((mean_level, sum(recent) / len(recent) if recent
                       else math.nan))
    return label, slices, sim.summary()


def main() -> None:
    scale = get_scale("smoke")
    schedule = schedule_for_scale(scale)
    print("Hot-spot schedule (cycle -> packets/cycle):")
    print("  " + ", ".join(f"{p.start_cycle}->{p.injection_rate:.2f}"
                           for p in schedule))
    print()

    variants = [
        run_variant(scale, None, "non-power-aware"),
        run_variant(scale, power_config(scale, technology=VCSEL),
                    "vcsel power-aware"),
        run_variant(scale, power_config(scale, technology=MODULATOR,
                                        optical_levels=3),
                    "modulator, 3 optical levels"),
    ]

    print(f"{'slice':>6s}", end="")
    for label, _, _ in variants:
        print(f"{label:>34s}", end="")
    print("\n" + " " * 6 + "".join(f"{'lvl':>17s}{'lat(cyc)':>17s}"
                                   for _ in variants))
    for i in range(8):
        print(f"{i:>6d}", end="")
        for _, slices, _ in variants:
            level, latency = slices[i]
            lat = f"{latency:.0f}" if latency == latency else "-"
            print(f"{level:>17.2f}{lat:>17s}", end="")
        print()

    print("\nTotals:")
    for label, _, summary in variants:
        print(f"  {label:30s} latency {summary['mean_latency']:7.1f} cyc   "
              f"relative power {summary['relative_power']:.2f}")


if __name__ == "__main__":
    main()
