#!/usr/bin/env python
"""Design-space sweep: the knobs the paper explores, in one run.

Sweeps three design dimensions at a reduced scale and prints the
power/latency trade-off table for each, mirroring Section 4.3.1:

* bit-rate ladder range (5-10 vs 3.3-10 Gb/s vs static rates),
* policy sampling window Tw,
* link-utilisation thresholds.

Run:  python examples/design_space_sweep.py   (takes a minute or two)
"""

from __future__ import annotations

from repro.config import PolicyConfig
from repro.experiments.configs import (
    get_scale,
    power_config,
    reference_rates,
    static_rate_config,
)
from repro.experiments.fig5 import uniform_factory
from repro.experiments.runner import run_pair, run_simulation


def header(title: str) -> None:
    print(f"\n{title}")
    print(f"  {'variant':24s}{'latency x':>10s}{'power x':>9s}{'PLP':>7s}")


def row(name: str, normalised) -> None:
    print(f"  {name:24s}{normalised.latency_ratio:>10.2f}"
          f"{normalised.power_ratio:>9.2f}"
          f"{normalised.power_latency_product:>7.2f}")


def main() -> None:
    scale = get_scale("smoke")
    rate = reference_rates(scale.network)["medium"]
    factory = uniform_factory(rate)
    print(f"Uniform random traffic at {rate:.2f} packets/cycle on a "
          f"{scale.network.mesh_width}x{scale.network.mesh_height}x"
          f"{scale.network.nodes_per_cluster} system.")

    header("Bit-rate ladder range (Fig. 5(g)(h))")
    for name, config in (
        ("vcsel 5-10 Gb/s", power_config(scale, min_bit_rate=5e9)),
        ("vcsel 3.3-10 Gb/s", power_config(scale, min_bit_rate=3.3e9)),
        ("static 3.3 Gb/s", static_rate_config(scale, 3.3e9)),
    ):
        _, _, normalised = run_pair(scale, config, factory, label=name)
        row(name, normalised)

    header("Policy window Tw (Fig. 5(a)-(c))")
    for window in (50, 200, 1000):
        policy = PolicyConfig(window_cycles=window)
        config = power_config(scale, policy=policy)
        _, _, normalised = run_pair(scale, config, factory,
                                    label=f"Tw={window}")
        row(f"Tw = {window} cycles", normalised)

    header("Average utilisation threshold (Fig. 5(d)-(f))")
    for average in (0.45, 0.55, 0.65):
        policy = PolicyConfig(
            window_cycles=scale.policy_window_cycles
        ).with_average_threshold(average)
        config = power_config(scale, policy=policy)
        _, _, normalised = run_pair(scale, config, factory,
                                    label=f"T={average}")
        row(f"threshold ~ {average}", normalised)

    print("\nExpected shapes: the wider ladder and higher thresholds save "
          "more power\nat more latency; very short windows hurt both.")


if __name__ == "__main__":
    main()
