#!/usr/bin/env python
"""SPLASH2-like trace replay: watch the network track an application.

Reproduces the Fig. 7 experiment at a reduced scale: synthesises an
FFT/LU/Radix-style traffic trace, replays it through the power-aware
modulator-based network, and renders the injection-rate envelope next to
the network's relative power over time — the power curve should follow
the workload's swells and bursts, smoothed by the policy window.

Run:  python examples/splash_power_tracking.py [fft|lu|radix]
"""

from __future__ import annotations

import sys

from repro.experiments.configs import get_scale
from repro.experiments.fig7 import run_benchmark
from repro.metrics.ascii import sparkline


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "fft"
    scale = get_scale("smoke")
    print(f"Replaying a synthetic {benchmark.upper()} trace through the "
          f"{scale.network.mesh_width}x{scale.network.mesh_height} "
          "power-aware system ...\n")
    data = run_benchmark(benchmark, scale)

    injection = list(data["injection_series"])
    power = [v for _, v in data["relative_power_series"]]
    print("injection rate over time (packets/cycle):")
    print("  " + sparkline(injection))
    print("relative power over time (vs non-power-aware):")
    print("  " + sparkline(power))

    n = data["normalised"]
    print(f"\n{benchmark.upper()} (paper Table 3 analogue):")
    print(f"  latency ratio        : {n.latency_ratio:6.2f}   (paper: 1.08-1.60)")
    print(f"  power ratio          : {n.power_ratio:6.2f}   (paper: 0.22-0.25)")
    print(f"  power-latency product: {n.power_latency_product:6.2f}   "
          "(paper: 0.24-0.38)")
    print(f"  power saving         : {100 * (1 - n.power_ratio):5.1f}%  "
          "(paper: >75%)")


if __name__ == "__main__":
    main()
