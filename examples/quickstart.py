#!/usr/bin/env python
"""Quickstart: simulate a power-aware opto-electronic network.

Builds the paper's system at a reduced scale (4x4 racks of 8 nodes), runs
uniform random traffic through both the power-aware network and the
non-power-aware baseline, and prints the headline comparison: latency
cost versus power saving.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    NetworkConfig,
    PowerAwareConfig,
    SimulationConfig,
    Simulator,
    UniformRandomTraffic,
)

CYCLES = 20_000
INJECTION_RATE = 0.6  # packets per cycle, network-wide


def run(power_aware: bool) -> dict[str, float]:
    network = NetworkConfig(mesh_width=4, mesh_height=4, nodes_per_cluster=8)
    config = SimulationConfig(
        network=network,
        power=PowerAwareConfig() if power_aware else None,
        warmup_cycles=2_000,
    )
    traffic = UniformRandomTraffic(network.num_nodes, INJECTION_RATE, seed=7)
    sim = Simulator(config, traffic)
    sim.run(CYCLES)
    return sim.summary()


def main() -> None:
    print(f"Simulating {CYCLES} cycles of uniform traffic at "
          f"{INJECTION_RATE} packets/cycle ...\n")
    baseline = run(power_aware=False)
    aware = run(power_aware=True)

    print(f"{'':24s}{'baseline':>12s}{'power-aware':>14s}")
    for key, label in (
        ("mean_latency", "mean latency (cyc)"),
        ("p95_latency", "p95 latency (cyc)"),
        ("packets_delivered", "packets delivered"),
        ("relative_power", "relative power"),
    ):
        print(f"{label:24s}{baseline[key]:>12.2f}{aware[key]:>14.2f}")

    saving = 100.0 * (1.0 - aware["relative_power"])
    cost = aware["mean_latency"] / baseline["mean_latency"]
    print(f"\n=> {saving:.0f}% link-power saving for a {cost:.2f}x latency "
          "cost (paper: >75% saving, <2x latency on application traces).")


if __name__ == "__main__":
    main()
