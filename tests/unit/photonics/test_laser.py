"""Unit tests for the external laser, splitter tree and VOAs (Fig. 3(b))."""

import pytest

from repro.errors import ConfigError
from repro.photonics.laser import (
    ExternalLaserSource,
    OpticalSplitter,
    SplitterTree,
    VariableOpticalAttenuator,
)


class TestOpticalSplitter:
    def test_ideal_loss_1_to_16(self):
        # 10*log10(16) ~ 12.04 dB ideal.
        assert OpticalSplitter(16, excess_loss_db=0.0).total_loss_db == \
            pytest.approx(12.04, rel=1e-3)

    def test_paper_13_6db_budget(self):
        # Paper: "a maximum of 13.6 dB for 1 to 16 splitting".
        splitter = OpticalSplitter(16)
        assert splitter.total_loss_db <= 13.61

    def test_output_power_divides(self):
        splitter = OpticalSplitter(2, excess_loss_db=0.0)
        assert splitter.output_power(1.0) == pytest.approx(0.5)

    def test_excess_loss_reduces_output(self):
        ideal = OpticalSplitter(16, excess_loss_db=0.0)
        real = OpticalSplitter(16, excess_loss_db=1.6)
        assert real.output_power(1.0) < ideal.output_power(1.0)

    def test_needs_two_ports(self):
        with pytest.raises(ConfigError):
            OpticalSplitter(1)


class TestSplitterTree:
    def test_paper_tree_feeds_1280_fibers(self):
        # Fig. 3(b): 1:64 across racks then 1:20 within each rack.
        tree = SplitterTree.paper_default()
        assert tree.fan_out == 64 * 20

    def test_loss_adds_across_stages(self):
        tree = SplitterTree.paper_default()
        assert tree.total_loss_db == pytest.approx(
            sum(stage.total_loss_db for stage in tree.stages)
        )

    def test_output_power_through_chain(self):
        tree = SplitterTree(stages=(
            OpticalSplitter(2, excess_loss_db=0.0),
            OpticalSplitter(2, excess_loss_db=0.0),
        ))
        assert tree.output_power(1.0) == pytest.approx(0.25)

    def test_empty_tree_rejected(self):
        with pytest.raises(ConfigError):
            SplitterTree(stages=())


class TestVoa:
    def test_default_levels_are_paper_halvings(self):
        voa = VariableOpticalAttenuator()
        full = voa.output_power(1.0, level=2)
        mid = voa.output_power(1.0, level=1)
        low = voa.output_power(1.0, level=0)
        assert mid == pytest.approx(full / 2, rel=1e-3)
        assert low == pytest.approx(full / 4, rel=1e-3)

    def test_starts_at_highest_power(self):
        voa = VariableOpticalAttenuator()
        assert voa.level == voa.num_levels - 1

    def test_set_level(self):
        voa = VariableOpticalAttenuator()
        voa.set_level(0)
        assert voa.level == 0

    def test_set_level_out_of_range(self):
        voa = VariableOpticalAttenuator()
        with pytest.raises(ConfigError):
            voa.set_level(3)

    def test_levels_must_descend(self):
        with pytest.raises(ConfigError):
            VariableOpticalAttenuator(attenuations_db=(0.0, 3.0))

    def test_negative_attenuation_rejected(self):
        with pytest.raises(ConfigError):
            VariableOpticalAttenuator(attenuations_db=(-1.0,))


class TestExternalLaser:
    def test_power_per_fiber(self):
        laser = ExternalLaserSource(output_power=0.5)
        per_fiber = laser.power_per_fiber()
        assert 0.0 < per_fiber < 0.5 / laser.fibers  # loss on top of split

    def test_fiber_count_from_tree(self):
        laser = ExternalLaserSource()
        assert laser.fibers == 1280

    def test_power_at_level_uses_voa(self):
        laser = ExternalLaserSource()
        voa = VariableOpticalAttenuator()
        assert laser.power_at_level(voa, 0) == pytest.approx(
            laser.power_per_fiber() / 4, rel=1e-3
        )
