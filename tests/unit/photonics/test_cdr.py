"""Unit tests for the clock-and-data-recovery model (paper Eq. 9)."""

import pytest

from repro.errors import ConfigError
from repro.photonics.cdr import DEFAULT_RELOCK_CYCLES, ClockDataRecovery
from repro.photonics.constants import MAX_BIT_RATE, NOMINAL_VDD
from repro.units import mw


@pytest.fixture
def cdr() -> ClockDataRecovery:
    return ClockDataRecovery.calibrated_to(mw(150.0))


class TestCalibration:
    def test_hits_table2_budget(self, cdr):
        assert cdr.power(MAX_BIT_RATE, NOMINAL_VDD) == pytest.approx(mw(150.0))

    def test_default_relock_is_paper_value(self, cdr):
        assert cdr.relock_cycles == DEFAULT_RELOCK_CYCLES == 20


class TestEquation9:
    def test_vdd2_br_trend(self, cdr):
        assert cdr.power(5e9, 0.9) == pytest.approx(cdr.power(10e9, 1.8) / 8)

    def test_linear_in_bit_rate(self, cdr):
        assert cdr.power(2.5e9) == pytest.approx(cdr.power(10e9) / 4)

    def test_quadratic_in_vdd(self, cdr):
        assert cdr.power(10e9, 0.9) == pytest.approx(cdr.power(10e9, 1.8) / 4)


class TestValidation:
    def test_negative_relock_rejected(self):
        with pytest.raises(ConfigError):
            ClockDataRecovery(relock_cycles=-1)

    def test_zero_activity_rejected(self):
        with pytest.raises(ConfigError):
            ClockDataRecovery(activity=0.0)

    def test_zero_relock_allowed_for_ideal_studies(self):
        # Fig. 6(b) zeroes the transition delays.
        ideal = ClockDataRecovery(relock_cycles=0)
        assert ideal.relock_cycles == 0
