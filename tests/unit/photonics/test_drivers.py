"""Unit tests for the cascaded-inverter driver (paper Eqs. 3 and 5)."""

import pytest

from repro.errors import ConfigError
from repro.photonics.constants import MAX_BIT_RATE, NOMINAL_VDD
from repro.photonics.drivers import InverterChainDriver
from repro.units import mw


@pytest.fixture
def driver() -> InverterChainDriver:
    return InverterChainDriver.calibrated_to(mw(10.0))


class TestConstruction:
    def test_calibration_hits_target(self, driver):
        assert driver.power(MAX_BIT_RATE, NOMINAL_VDD) == pytest.approx(mw(10.0))

    def test_modulator_driver_calibration(self):
        md = InverterChainDriver.calibrated_to(mw(40.0))
        assert md.power(MAX_BIT_RATE, NOMINAL_VDD) == pytest.approx(mw(40.0))

    def test_zero_activity_rejected(self):
        with pytest.raises(ConfigError):
            InverterChainDriver(switched_capacitance=1e-12, activity=0.0)

    def test_taper_must_exceed_one(self):
        with pytest.raises(ConfigError):
            InverterChainDriver(switched_capacitance=1e-12, taper=1.0)

    def test_capacitance_positive(self):
        with pytest.raises(ConfigError):
            InverterChainDriver(switched_capacitance=0.0)


class TestPowerScaling:
    def test_linear_in_bit_rate(self, driver):
        p10 = driver.power(10e9)
        p5 = driver.power(5e9)
        assert p5 == pytest.approx(p10 / 2)

    def test_quadratic_in_vdd(self, driver):
        full = driver.power(10e9, NOMINAL_VDD)
        half = driver.power(10e9, NOMINAL_VDD / 2)
        assert half == pytest.approx(full / 4)

    def test_combined_vdd2_br_trend(self, driver):
        # The paper's 10 Gb/s -> 5 Gb/s point: Vdd 1.8 -> 0.9 gives 1/8 power.
        assert driver.power(5e9, 0.9) == pytest.approx(
            driver.power(10e9, 1.8) / 8
        )

    def test_power_proportional_to_activity(self):
        low = InverterChainDriver(switched_capacitance=1e-12, activity=0.25)
        high = InverterChainDriver(switched_capacitance=1e-12, activity=0.5)
        assert high.power(10e9) == pytest.approx(2 * low.power(10e9))


class TestStageCount:
    def test_single_stage_for_small_load(self, driver):
        assert driver.stage_count(driver.switched_capacitance * 2) == 1

    def test_stage_count_grows_with_ratio(self, driver):
        small_in = driver.switched_capacitance / 1000
        large_in = driver.switched_capacitance / 10
        assert driver.stage_count(small_in) > driver.stage_count(large_in)

    def test_stage_count_matches_log(self):
        d = InverterChainDriver(switched_capacitance=1e-12, taper=4.0)
        # ratio 256 = 4^4 -> exactly 4 stages.
        assert d.stage_count(1e-12 / 256) == 4
