"""Unit tests for the MQW modulator model (paper Eq. 4)."""

import pytest

from repro.errors import ConfigError
from repro.photonics.constants import NOMINAL_VDD
from repro.photonics.modulator import MqwModulator
from repro.units import uw


@pytest.fixture
def modulator() -> MqwModulator:
    return MqwModulator()


class TestConstruction:
    def test_insertion_loss_must_be_below_one(self):
        with pytest.raises(ConfigError):
            MqwModulator(insertion_loss=1.0)

    def test_contrast_ratio_must_exceed_one(self):
        with pytest.raises(ConfigError):
            MqwModulator(contrast_ratio=1.0)

    def test_negative_insertion_loss_rejected(self):
        with pytest.raises(ConfigError):
            MqwModulator(insertion_loss=-0.1)


class TestOpticalTransfer:
    def test_on_state_passes_most_light(self, modulator):
        out = modulator.transmitted_on(uw(100.0))
        assert out == pytest.approx(uw(100.0) * (1 - modulator.insertion_loss))

    def test_off_state_leaks_by_contrast_ratio(self, modulator):
        on = modulator.transmitted_on(uw(100.0))
        off = modulator.transmitted_off(uw(100.0))
        assert on / off == pytest.approx(modulator.contrast_ratio)

    def test_absorption_off_exceeds_on(self, modulator):
        # Paper: "the modulator dissipates more power in the off state,
        # because much more light is absorbed".
        assert modulator.absorbed_off(uw(100.0)) > \
            modulator.absorbed_on(uw(100.0))

    def test_energy_conservation_on(self, modulator):
        p = uw(100.0)
        assert modulator.transmitted_on(p) + modulator.absorbed_on(p) == \
            pytest.approx(p)

    def test_energy_conservation_off(self, modulator):
        p = uw(100.0)
        assert modulator.transmitted_off(p) + modulator.absorbed_off(p) == \
            pytest.approx(p)


class TestEquation4:
    def test_dissipation_formula(self, modulator):
        p_in = uw(100.0)
        il, cr = modulator.insertion_loss, modulator.contrast_ratio
        vb = modulator.bias_voltage
        expected = 0.5 * modulator.responsivity * p_in * (
            il * (vb - NOMINAL_VDD) + (1 - (1 - il) / cr) * vb
        )
        assert modulator.dissipated_power(p_in) == pytest.approx(expected)

    def test_dissipation_linear_in_input_power(self, modulator):
        assert modulator.dissipated_power(uw(200.0)) == pytest.approx(
            2 * modulator.dissipated_power(uw(100.0))
        )

    def test_dissipation_small_versus_drivers(self, modulator):
        # The absorbed power at realistic light levels is sub-milliwatt,
        # which is why Table 2 does not list the modulator itself.
        assert modulator.dissipated_power(uw(100.0)) < 1e-3


class TestContrastDegradation:
    def test_full_swing_keeps_rated_contrast(self, modulator):
        assert modulator.effective_contrast_ratio(NOMINAL_VDD) == \
            pytest.approx(modulator.contrast_ratio)

    def test_reduced_swing_degrades_contrast(self, modulator):
        degraded = modulator.effective_contrast_ratio(NOMINAL_VDD / 2)
        assert 1.0 < degraded < modulator.contrast_ratio

    def test_degradation_monotonic(self, modulator):
        swings = [0.4, 0.9, 1.3, 1.8]
        ratios = [modulator.effective_contrast_ratio(v) for v in swings]
        assert ratios == sorted(ratios)
