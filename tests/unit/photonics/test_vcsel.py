"""Unit tests for the VCSEL model (paper Eqs. 1-2)."""

import pytest

from repro.errors import ConfigError
from repro.photonics.constants import NOMINAL_VDD
from repro.photonics.vcsel import Vcsel
from repro.units import mw


@pytest.fixture
def vcsel() -> Vcsel:
    return Vcsel.calibrated_to(mw(30.0))


class TestConstruction:
    def test_bias_below_threshold_rejected(self):
        with pytest.raises(ConfigError):
            Vcsel(threshold_current=1e-3, bias_current=0.5e-3)

    def test_calibration_hits_target_power(self, vcsel):
        assert vcsel.average_electrical_power() == pytest.approx(mw(30.0))

    def test_calibration_below_bias_floor_rejected(self):
        with pytest.raises(ConfigError):
            Vcsel.calibrated_to(1e-9)

    @pytest.mark.parametrize("field", [
        "threshold_current", "slope_efficiency", "bias_current",
        "modulation_current", "bias_voltage",
    ])
    def test_nonpositive_fields_rejected(self, field):
        kwargs = {field: 0.0}
        with pytest.raises(ConfigError):
            Vcsel(**kwargs)


class TestEquation1:
    def test_no_emission_below_threshold(self, vcsel):
        assert vcsel.emitted_power(vcsel.threshold_current * 0.5) == 0.0

    def test_no_emission_at_threshold(self, vcsel):
        assert vcsel.emitted_power(vcsel.threshold_current) == 0.0

    def test_linear_above_threshold(self, vcsel):
        i1 = vcsel.threshold_current + 1e-3
        i2 = vcsel.threshold_current + 2e-3
        p1 = vcsel.emitted_power(i1)
        p2 = vcsel.emitted_power(i2)
        assert p2 == pytest.approx(2 * p1)

    def test_slope_matches(self, vcsel):
        i = vcsel.threshold_current + 1e-3
        assert vcsel.emitted_power(i) == pytest.approx(
            vcsel.slope_efficiency * 1e-3
        )


class TestEquation2:
    def test_average_power_formula(self, vcsel):
        expected = (vcsel.bias_current + vcsel.modulation_current / 2.0) \
            * vcsel.bias_voltage
        assert vcsel.average_electrical_power() == pytest.approx(expected)

    def test_power_scales_down_with_vdd(self, vcsel):
        full = vcsel.average_electrical_power(NOMINAL_VDD)
        half = vcsel.average_electrical_power(NOMINAL_VDD / 2)
        assert half < full
        # The bias term does not scale, so halving Vdd saves less than half.
        assert half > full / 2


class TestOpticalLevels:
    def test_one_level_above_zero_level(self, vcsel):
        assert vcsel.optical_one_level() > vcsel.optical_zero_level()

    def test_contrast_ratio_above_unity(self, vcsel):
        assert vcsel.contrast_ratio() > 1.0

    def test_contrast_preserved_under_voltage_scaling(self, vcsel):
        # Paper Section 2.3: lowering the drive only linearly reduces the
        # optical swing; the contrast ratio stays high.
        assert vcsel.contrast_ratio(NOMINAL_VDD / 2) > 1.0

    def test_zero_level_infinite_contrast_at_threshold_bias(self):
        device = Vcsel(threshold_current=1e-3, bias_current=1e-3,
                       modulation_current=10e-3)
        assert device.contrast_ratio() == float("inf")

    def test_modulation_current_scales_linearly(self, vcsel):
        assert vcsel.modulation_current_at(NOMINAL_VDD / 2) == pytest.approx(
            vcsel.modulation_current / 2
        )
