"""Unit tests for the transimpedance amplifier (paper Eqs. 7-8)."""

import pytest

from repro.photonics.constants import MAX_BIT_RATE, NOMINAL_VDD
from repro.photonics.tia import TransimpedanceAmplifier
from repro.units import mw


@pytest.fixture
def tia() -> TransimpedanceAmplifier:
    return TransimpedanceAmplifier.calibrated_to(mw(100.0))


class TestCalibration:
    def test_hits_table2_budget(self, tia):
        assert tia.power(MAX_BIT_RATE, NOMINAL_VDD) == pytest.approx(mw(100.0))

    def test_bias_constant_value(self, tia):
        # c = P / (BR * Vdd) = 0.1 / (1e10 * 1.8) ~ 5.56 pA*s/bit.
        assert tia.bias_constant == pytest.approx(5.556e-12, rel=1e-3)


class TestEquation7:
    def test_bias_current_linear_in_bandwidth(self, tia):
        assert tia.bias_current(10e9) == pytest.approx(2 * tia.bias_current(5e9))


class TestEquation8:
    def test_vdd_br_trend(self, tia):
        # Power scales as Vdd * BR: the 5 Gb/s / 0.9 V point is 1/4 power.
        assert tia.power(5e9, 0.9) == pytest.approx(
            tia.power(10e9, 1.8) / 4
        )

    def test_linear_in_vdd(self, tia):
        assert tia.power(10e9, 0.9) == pytest.approx(tia.power(10e9, 1.8) / 2)


class TestSwing:
    def test_output_swing(self, tia):
        assert tia.output_swing(20e-6) == pytest.approx(
            20e-6 * tia.feedback_resistance
        )

    def test_required_photocurrent_inverts_swing(self, tia):
        swing = tia.output_swing(31e-6)
        assert tia.required_photocurrent(swing) == pytest.approx(31e-6)

    def test_lower_supply_needs_less_light(self, tia):
        # Paper Section 2.2.2: a smaller swing at lower Vdd means less
        # photocurrent — and so less optical power — suffices.
        assert tia.required_photocurrent(0.45) < tia.required_photocurrent(0.9)
