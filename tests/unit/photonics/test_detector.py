"""Unit tests for the photodetector model (paper Eq. 6)."""

import pytest

from repro.photonics.constants import MAX_BIT_RATE, RECEIVER_SENSITIVITY_10G
from repro.photonics.detector import Photodetector


@pytest.fixture
def detector() -> Photodetector:
    return Photodetector()


class TestResponsivity:
    def test_ideal_responsivity_at_1550nm(self, detector):
        # q/(h*nu) at 1.55 um is ~1.25 A/W.
        assert detector.ideal_responsivity == pytest.approx(1.25, rel=0.01)

    def test_actual_below_ideal(self, detector):
        assert detector.responsivity < detector.ideal_responsivity

    def test_photocurrent_includes_dark_current(self, detector):
        base = detector.photocurrent(25e-6)
        assert base > detector.responsivity * 25e-6


class TestSensitivity:
    def test_paper_value_at_10g(self, detector):
        assert detector.sensitivity(MAX_BIT_RATE) == \
            pytest.approx(RECEIVER_SENSITIVITY_10G)

    def test_sensitivity_scales_with_bit_rate(self, detector):
        # Lower bit rates tolerate less light (paper Section 2.2.1).
        assert detector.sensitivity(5e9) == pytest.approx(
            RECEIVER_SENSITIVITY_10G / 2
        )

    def test_sensitivity_monotonic(self, detector):
        rates = [2e9, 5e9, 8e9, 10e9]
        values = [detector.sensitivity(r) for r in rates]
        assert values == sorted(values)


class TestEquation6:
    def test_dissipation_below_one_milliwatt(self, detector):
        # Paper: "the photodetector's power dissipation is much lower than
        # other components (<1 mW), no additional power control".
        assert detector.dissipated_power() < 1e-3

    def test_dissipation_grows_near_unity_contrast(self, detector):
        # (CR+1)/(CR-1) explodes as CR -> 1.
        assert detector.dissipated_power(contrast_ratio=1.5) > \
            detector.dissipated_power(contrast_ratio=10.0)

    def test_contrast_ratio_of_one_rejected(self, detector):
        with pytest.raises(ValueError):
            detector.dissipated_power(contrast_ratio=1.0)

    def test_dissipation_scales_with_bit_rate(self, detector):
        assert detector.dissipated_power(5e9) == pytest.approx(
            detector.dissipated_power(10e9) / 2
        )
