"""Unit tests for the end-to-end optical link budget."""

import pytest

from repro.errors import ConfigError
from repro.photonics.laser import ExternalLaserSource, VariableOpticalAttenuator
from repro.photonics.link_budget import LinkBudget
from repro.photonics.modulator import MqwModulator


@pytest.fixture
def budget() -> LinkBudget:
    # A generous 2 W source so the default tree closes at full rate.
    return LinkBudget(source=ExternalLaserSource(output_power=2.0))


class TestReceivedPower:
    def test_attenuation_reduces_received(self, budget):
        assert budget.received_power(attenuation_db=3.0) < \
            budget.received_power(attenuation_db=0.0)

    def test_fiber_loss_applies(self):
        lossless = LinkBudget(fiber_loss_db=0.0)
        lossy = LinkBudget(fiber_loss_db=3.0103)
        assert lossy.received_power() == pytest.approx(
            lossless.received_power() / 2.0, rel=1e-3
        )

    def test_modulator_insertion_loss_applies(self):
        light = LinkBudget(modulator=MqwModulator(insertion_loss=0.01))
        dark = LinkBudget(modulator=MqwModulator(insertion_loss=0.5))
        assert dark.received_power() < light.received_power()


class TestMargin:
    def test_margin_positive_when_closing(self, budget):
        assert budget.closes(10e9)
        assert budget.margin_db(10e9) > 0.0

    def test_margin_grows_at_lower_rates(self, budget):
        # Sensitivity drops with bit rate, so margin improves.
        assert budget.margin_db(5e9) > budget.margin_db(10e9)

    def test_max_attenuation_is_margin(self, budget):
        assert budget.max_attenuation_db(10e9) == pytest.approx(
            budget.margin_db(10e9)
        )

    def test_max_attenuation_raises_when_open(self):
        weak = LinkBudget(source=ExternalLaserSource(output_power=1e-6))
        with pytest.raises(ConfigError):
            weak.max_attenuation_db(10e9)


class TestRequiredLaserPower:
    def test_round_trip_against_margin(self, budget):
        needed = budget.required_laser_power(10e9, margin_db=0.0)
        sized = LinkBudget(source=ExternalLaserSource(output_power=needed))
        assert sized.margin_db(10e9) == pytest.approx(0.0, abs=0.05)

    def test_margin_increases_requirement(self, budget):
        assert budget.required_laser_power(10e9, margin_db=3.0) > \
            budget.required_laser_power(10e9, margin_db=0.0)


class TestBandReport:
    def test_three_band_report(self, budget):
        voa = VariableOpticalAttenuator()
        rows = budget.band_report(voa, (4e9, 6e9, 10e9))
        assert len(rows) == 3
        # The highest band supports the highest rate with the least
        # attenuation; margins should all be finite numbers.
        assert rows[2]["attenuation_db"] == 0.0
        for row in rows:
            assert row["received_w"] > 0.0

    def test_band_count_mismatch_rejected(self, budget):
        voa = VariableOpticalAttenuator()
        with pytest.raises(ConfigError):
            budget.band_report(voa, (4e9, 10e9))

    def test_paper_banding_margins_exact(self, budget):
        # Under the linear sensitivity model, a band's margin at its max
        # rate equals the top band's 10G margin, minus the attenuation
        # step, plus the sensitivity relief 10*log10(10G / band_rate).
        import math

        voa = VariableOpticalAttenuator()
        rows = budget.band_report(voa, (4e9, 6e9, 10e9))
        top = rows[2]["margin_db"]
        for row, rate in zip(rows, (4e9, 6e9, 10e9)):
            expected = (top - row["attenuation_db"]
                        + 10 * math.log10(10e9 / rate))
            assert row["margin_db"] == pytest.approx(expected, abs=1e-6)
