"""Unit tests for the receiver BER model."""

import math

import pytest

from repro.errors import ConfigError
from repro.photonics.ber import (
    Q_FOR_TARGET_BER,
    ReceiverNoiseModel,
    ber_from_q,
    q_from_ber,
)
from repro.photonics.constants import (
    MAX_BIT_RATE,
    RECEIVER_SENSITIVITY_10G,
    TARGET_BER,
)


class TestQBerConversions:
    def test_q7_is_1e12(self):
        assert ber_from_q(Q_FOR_TARGET_BER) == pytest.approx(1e-12, rel=0.01)

    def test_q0_is_half(self):
        assert ber_from_q(0.0) == pytest.approx(0.5)

    def test_q6_is_1e9(self):
        assert ber_from_q(5.9978) == pytest.approx(1e-9, rel=0.05)

    def test_monotone_decreasing(self):
        qs = [0.0, 2.0, 4.0, 6.0, 8.0]
        bers = [ber_from_q(q) for q in qs]
        assert bers == sorted(bers, reverse=True)

    def test_q_from_ber_roundtrip(self):
        for target in (1e-6, 1e-9, 1e-12, 1e-15):
            assert ber_from_q(q_from_ber(target)) == \
                pytest.approx(target, rel=1e-3)

    def test_q_from_ber_bounds(self):
        with pytest.raises(ConfigError):
            q_from_ber(0.0)
        with pytest.raises(ConfigError):
            q_from_ber(0.6)

    def test_negative_q_rejected(self):
        with pytest.raises(ConfigError):
            ber_from_q(-1.0)


class TestReceiverModel:
    @pytest.fixture
    def model(self) -> ReceiverNoiseModel:
        return ReceiverNoiseModel()

    def test_calibration_point(self, model):
        """At (25 uW, 10 Gb/s) the link exactly meets 1e-12."""
        ber = model.ber(RECEIVER_SENSITIVITY_10G, MAX_BIT_RATE)
        assert ber == pytest.approx(TARGET_BER, rel=0.05)

    def test_more_light_lower_ber(self, model):
        dim = model.ber(20e-6, MAX_BIT_RATE)
        bright = model.ber(40e-6, MAX_BIT_RATE)
        assert bright < dim

    def test_lower_rate_lower_ber(self, model):
        fast = model.ber(RECEIVER_SENSITIVITY_10G, 10e9)
        slow = model.ber(RECEIVER_SENSITIVITY_10G, 5e9)
        assert slow < fast

    def test_meets_target_at_sensitivity(self, model):
        assert model.meets_target(RECEIVER_SENSITIVITY_10G * 1.01,
                                  MAX_BIT_RATE)
        assert not model.meets_target(RECEIVER_SENSITIVITY_10G * 0.5,
                                      MAX_BIT_RATE)

    def test_required_power_roundtrip(self, model):
        needed = model.required_power(MAX_BIT_RATE)
        assert needed == pytest.approx(RECEIVER_SENSITIVITY_10G, rel=0.01)
        assert model.ber(needed, MAX_BIT_RATE) == \
            pytest.approx(TARGET_BER, rel=0.05)

    def test_required_power_scales_sublinearly(self, model):
        """Thermal noise ~ sqrt(BR): halving the rate needs ~1/sqrt(2)
        the light — the detector's linear sensitivity model is therefore
        conservative (requires more than strictly necessary)."""
        full = model.required_power(10e9)
        half = model.required_power(5e9)
        assert half == pytest.approx(full / math.sqrt(2.0), rel=0.01)
        assert half >= full / 2.0   # linear model is the lower bound

    def test_paper_banding_needs_4db_margin(self, model):
        """Feasibility of the Plow = 0.5 Pmid = 0.25 Phigh banding.

        Under sqrt(BR) thermal noise, required power at a band's top rate
        falls slower than the halving steps, so the top band needs ~4 dB
        of optical margin for every band to close at its own maximum —
        and with that margin, all three do.  (The linear-sensitivity model
        used by the simulator is more conservative still.)
        """
        thin = RECEIVER_SENSITIVITY_10G * 1.2      # only ~0.8 dB margin
        assert model.meets_target(thin, 10e9)
        assert not model.meets_target(thin / 4, 4e9)   # Plow cannot close

        p_high = RECEIVER_SENSITIVITY_10G * 2.6    # ~4.1 dB margin
        assert model.meets_target(p_high, 10e9)         # Phigh at 10G
        assert model.meets_target(p_high / 2, 6e9)      # Pmid at its top
        assert model.meets_target(p_high / 4, 4e9)      # Plow at its top

    def test_contrast_ratio_validation(self):
        with pytest.raises(ConfigError):
            ReceiverNoiseModel(contrast_ratio=1.0)
