"""Unit tests for the electrical DVS link comparison model."""

import pytest

from repro.errors import ConfigError
from repro.photonics.constants import MAX_BIT_RATE
from repro.photonics.electrical import (
    ElectricalLinkModel,
    compare_technologies,
)
from repro.units import mw, to_mw


@pytest.fixture
def link() -> ElectricalLinkModel:
    return ElectricalLinkModel()


class TestModel:
    def test_default_max_power_in_expected_band(self, link):
        # Calibrated to be comparable to the 290 mW opto link at 10 Gb/s.
        assert 200.0 < to_mw(link.max_power) < 350.0

    def test_equalisation_scales_with_reach(self):
        short = ElectricalLinkModel(reach_loss_db=5.0)
        long = ElectricalLinkModel(reach_loss_db=25.0)
        assert long.max_power > short.max_power

    def test_zero_reach_allowed(self):
        link = ElectricalLinkModel(reach_loss_db=0.0)
        assert link.equalisation_power == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            ElectricalLinkModel(driver_power=0.0)
        with pytest.raises(ConfigError):
            ElectricalLinkModel(reach_loss_db=-1.0)


class TestPowerModelInterface:
    def test_components_present(self, link):
        model = link.as_power_model()
        names = set(model.component_powers(MAX_BIT_RATE))
        assert names == {"driver", "termination", "equalisation",
                         "receiver_cdr"}

    def test_monotone_in_rate(self, link):
        powers = [link.power(r) for r in (3e9, 5e9, 8e9, 10e9)]
        assert powers == sorted(powers)

    def test_dvs_scaling_beats_linear(self, link):
        # Every electrical term carries at least one Vdd factor, so the
        # 10G -> 5G saving exceeds the 50% a pure-BR model would give.
        assert link.power(5e9) < 0.5 * link.power(10e9)

    def test_manager_accepts_electrical_model(self, link):
        from repro.config import PolicyConfig, TransitionConfig
        from repro.core.levels import BitRateLadder
        from repro.core.power_link import PowerAwareLink
        from repro.network.links import MESH, Link

        ladder = BitRateLadder.paper_default()
        pal = PowerAwareLink(
            link=Link(0, MESH),
            ladder=ladder,
            power_model=link.as_power_model(),
            policy_config=PolicyConfig(window_cycles=100),
            transition_config=TransitionConfig(),
            service_time_fn=lambda lvl: ladder.max_rate / ladder.rate(lvl),
            downstream_buffer=None,
        )
        assert pal.level_powers[-1] == pytest.approx(link.max_power)


class TestComparison:
    def test_rows_cover_requested_rates(self):
        rows = compare_technologies((5e9, 10e9))
        assert [row["bit_rate"] for row in rows] == [5e9, 10e9]

    def test_opto_technologies_close_at_max(self):
        rows = compare_technologies((10e9,))
        assert rows[0]["vcsel"] == pytest.approx(mw(290.0))
        assert rows[0]["modulator"] == pytest.approx(mw(290.0))

    def test_electrical_scales_deepest(self):
        """At the ladder bottom the electrical link saves the largest
        fraction (no bias floor, everything voltage-scaled)."""
        rows = compare_technologies((5e9, 10e9))
        by_rate = {row["bit_rate"]: row for row in rows}

        def saving(tech):
            return 1 - by_rate[5e9][tech] / by_rate[10e9][tech]

        assert saving("electrical") >= saving("vcsel") - 1e-9
        assert saving("vcsel") >= saving("modulator") - 1e-9

    def test_empty_rates_rejected(self):
        with pytest.raises(ConfigError):
            compare_technologies(())
