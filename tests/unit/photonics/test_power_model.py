"""Unit tests for the composed link power model (paper Table 2)."""

import pytest

from repro.errors import ConfigError
from repro.photonics.constants import MAX_BIT_RATE, NOMINAL_VDD
from repro.photonics.power_model import (
    ComponentBudget,
    LinkPowerModel,
    PhysicsLinkModel,
    ScalingTrend,
    physics_table2,
    vdd_for_bit_rate,
)
from repro.units import mw, to_mw


class TestScalingTrend:
    def test_constant(self):
        assert ScalingTrend.CONSTANT.factor(0.5, 0.5) == 1.0

    def test_vdd(self):
        assert ScalingTrend.VDD.factor(0.5, 0.5) == 0.5

    def test_br(self):
        assert ScalingTrend.BR.factor(0.5, 0.9) == 0.5

    def test_vdd_br(self):
        assert ScalingTrend.VDD_BR.factor(0.5, 0.5) == 0.25

    def test_vdd2_br(self):
        assert ScalingTrend.VDD2_BR.factor(0.5, 0.5) == 0.125


class TestVddScaling:
    def test_nominal_at_max(self):
        assert vdd_for_bit_rate(MAX_BIT_RATE) == NOMINAL_VDD

    def test_half_rate_half_vdd(self):
        # The paper's 10 -> 5 Gb/s point: 1.8 V -> 0.9 V.
        assert vdd_for_bit_rate(5e9) == pytest.approx(0.9)

    def test_above_max_rejected(self):
        with pytest.raises(ConfigError):
            vdd_for_bit_rate(11e9)


class TestTable2Budgets:
    def test_vcsel_link_total_290mw(self):
        model = LinkPowerModel.vcsel_link()
        assert to_mw(model.max_power) == pytest.approx(290.0)

    def test_modulator_link_total_290mw(self):
        model = LinkPowerModel.modulator_link()
        assert to_mw(model.max_power) == pytest.approx(290.0)

    def test_vcsel_transmitter_40mw_receiver_250mw(self):
        parts = LinkPowerModel.vcsel_link().component_powers(MAX_BIT_RATE)
        tx = parts["vcsel"] + parts["vcsel_driver"]
        rx = parts["tia"] + parts["cdr"]
        assert to_mw(tx) == pytest.approx(40.0)
        assert to_mw(rx) == pytest.approx(250.0)

    def test_vcsel_link_5g_is_60mw(self):
        # Paper Section 4.1: ~61.25 mW at 5 Gb/s (their total includes the
        # ~1.25 mW detector that Table 2 leaves out; ours is the Table-2
        # set, giving exactly 60 mW -> ~79% savings).
        model = LinkPowerModel.vcsel_link()
        assert to_mw(model.power(5e9)) == pytest.approx(60.0)
        assert model.savings_fraction(5e9) == pytest.approx(0.793, abs=0.01)

    def test_detector_flag_adds_component(self):
        with_det = LinkPowerModel.vcsel_link(include_detector=True)
        assert "detector" in with_det.component_powers(MAX_BIT_RATE)

    def test_modulator_driver_ignores_vdd(self):
        # The modulator driver's supply is pinned (paper Section 2.3):
        # asking for a scaled Vdd must not change its power.
        model = LinkPowerModel.modulator_link()
        pinned = model.component_powers(5e9)["modulator_driver"]
        assert to_mw(pinned) == pytest.approx(20.0)  # 40 mW * BR/2

    def test_duplicate_component_names_rejected(self):
        budget = ComponentBudget("x", mw(1.0), ScalingTrend.BR)
        with pytest.raises(ConfigError):
            LinkPowerModel(components=(budget, budget))

    def test_power_monotonic_in_bit_rate(self):
        model = LinkPowerModel.vcsel_link()
        rates = [3e9, 5e9, 7e9, 10e9]
        powers = [model.power(r) for r in rates]
        assert powers == sorted(powers)

    def test_table_rows_report_paper_trends(self):
        rows = {r["component"]: r for r in
                LinkPowerModel.modulator_link().table_rows()}
        assert rows["modulator_driver"]["trend"] == "BR"
        assert rows["tia"]["trend"] == "Vdd*BR"
        assert rows["cdr"]["trend"] == "Vdd^2*BR"


class TestPhysicsCrossCheck:
    def test_physics_matches_table2(self):
        rows = physics_table2()
        assert rows["vcsel"] == pytest.approx(30.0)
        assert rows["vcsel_driver"] == pytest.approx(10.0)
        assert rows["modulator_driver"] == pytest.approx(40.0)
        assert rows["tia"] == pytest.approx(100.0)
        assert rows["cdr"] == pytest.approx(150.0)

    @pytest.mark.parametrize("technology", ["vcsel", "modulator"])
    @pytest.mark.parametrize("bit_rate", [5e9, 6e9, 8e9, 10e9])
    def test_physics_agrees_with_trend_model(self, technology, bit_rate):
        physics = PhysicsLinkModel()
        if technology == "vcsel":
            trend = LinkPowerModel.vcsel_link()
        else:
            trend = LinkPowerModel.modulator_link()
        assert physics.power(bit_rate, technology=technology) == \
            pytest.approx(trend.power(bit_rate), rel=1e-9)

    def test_unknown_technology_rejected(self):
        with pytest.raises(ConfigError):
            PhysicsLinkModel().power(10e9, technology="quantum")
