"""Unit tests for the measured (test-chip) power model plug-in."""

import pytest

from repro.errors import ConfigError
from repro.photonics.measured import MeasuredLinkPowerModel
from repro.photonics.power_model import LinkPowerModel
from repro.units import mw


@pytest.fixture
def model() -> MeasuredLinkPowerModel:
    return MeasuredLinkPowerModel(samples=(
        (5e9, mw(60.0)), (7e9, mw(130.0)), (10e9, mw(290.0)),
    ))


class TestConstruction:
    def test_needs_two_samples(self):
        with pytest.raises(ConfigError):
            MeasuredLinkPowerModel(samples=((10e9, 0.29),))

    def test_rates_must_ascend(self):
        with pytest.raises(ConfigError):
            MeasuredLinkPowerModel(samples=((10e9, 0.29), (5e9, 0.06)))

    def test_duplicate_rates_rejected(self):
        with pytest.raises(ConfigError):
            MeasuredLinkPowerModel(samples=((5e9, 0.06), (5e9, 0.07)))

    def test_nonpositive_values_rejected(self):
        with pytest.raises(ConfigError):
            MeasuredLinkPowerModel(samples=((5e9, 0.0), (10e9, 0.29)))


class TestInterpolation:
    def test_exact_sample_points(self, model):
        assert model.power(5e9) == pytest.approx(mw(60.0))
        assert model.power(10e9) == pytest.approx(mw(290.0))

    def test_midpoint_interpolation(self, model):
        assert model.power(6e9) == pytest.approx(mw(95.0))

    def test_out_of_range_refused(self, model):
        with pytest.raises(ConfigError):
            model.power(4e9)
        with pytest.raises(ConfigError):
            model.power(11e9)

    def test_vdd_argument_ignored(self, model):
        assert model.power(7e9, vdd=0.9) == model.power(7e9)

    def test_monotone_between_samples(self, model):
        rates = [5e9 + i * 0.5e9 for i in range(11)]
        powers = [model.power(r) for r in rates]
        assert powers == sorted(powers)

    def test_savings_fraction(self, model):
        assert model.savings_fraction(5e9) == pytest.approx(1 - 60 / 290)


class TestAnalyticSampling:
    def test_from_analytic_matches_at_samples(self):
        analytic = LinkPowerModel.vcsel_link()
        rates = (5e9, 6e9, 8e9, 10e9)
        measured = MeasuredLinkPowerModel.from_analytic(analytic, rates)
        for rate in rates:
            assert measured.power(rate) == pytest.approx(analytic.power(rate))

    def test_chords_lie_above_convex_curve(self):
        # Linear interpolation of the (convex) analytic curve is an upper
        # bound — the conservative direction for power estimates.
        analytic = LinkPowerModel.vcsel_link()
        measured = MeasuredLinkPowerModel.from_analytic(
            analytic, (5e9, 10e9))
        for rate in (6e9, 7e9, 8e9, 9e9):
            assert measured.power(rate) >= analytic.power(rate) - 1e-12


class TestManagerIntegration:
    def test_power_aware_link_accepts_measured_model(self):
        from repro.config import PolicyConfig, TransitionConfig
        from repro.core.levels import BitRateLadder
        from repro.core.power_link import PowerAwareLink
        from repro.network.links import MESH, Link

        ladder = BitRateLadder.paper_default()
        measured = MeasuredLinkPowerModel(samples=(
            (5e9, mw(55.0)), (10e9, mw(280.0)),
        ))
        pal = PowerAwareLink(
            link=Link(0, MESH),
            ladder=ladder,
            power_model=measured,
            policy_config=PolicyConfig(window_cycles=100),
            transition_config=TransitionConfig(),
            service_time_fn=lambda level: ladder.max_rate / ladder.rate(level),
            downstream_buffer=None,
        )
        assert pal.level_powers[0] == pytest.approx(mw(55.0))
        assert pal.level_powers[-1] == pytest.approx(mw(280.0))
        pal.finalize(100.0)
        assert pal.energy_watt_cycles == pytest.approx(mw(280.0) * 100.0)
