"""Unit tests for the bounded event sinks."""

import json
import os

import pytest

from repro.errors import ConfigError
from repro.telemetry.events import PowerEvent
from repro.telemetry.sinks import JsonlFileSink, RingBufferSink


def make_events(n):
    return [PowerEvent(cycle=i, watts=float(i)) for i in range(n)]


class TestRingBufferSink:
    def test_keeps_newest_and_counts_drops(self):
        sink = RingBufferSink(capacity=3)
        for event in make_events(5):
            sink.emit(event)
        assert sink.emitted == 5
        assert sink.dropped == 2
        assert [e.cycle for e in sink.events()] == [2, 3, 4]

    def test_no_drops_under_capacity(self):
        sink = RingBufferSink(capacity=10)
        for event in make_events(4):
            sink.emit(event)
        assert sink.dropped == 0
        assert len(sink.events()) == 4

    def test_capacity_validated(self):
        with pytest.raises(ConfigError):
            RingBufferSink(capacity=0)

    def test_flush_and_close_are_noops(self):
        sink = RingBufferSink(capacity=2)
        sink.flush()
        sink.close()
        assert sink.events() == []


class TestJsonlFileSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlFileSink(str(path)) as sink:
            for event in make_events(3):
                sink.emit(event)
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        assert json.loads(lines[0]) == {"kind": "power", "cycle": 0,
                                        "watts": 0.0}

    def test_rotation_shifts_segments(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlFileSink(str(path), rotate_bytes=80, max_files=2)
        for event in make_events(20):
            sink.emit(event)
        sink.close()
        assert sink.rotations > 0
        assert os.path.exists(f"{path}.1")
        # At most max_files rotated segments survive.
        assert not os.path.exists(f"{path}.3")
        # Newest rotated segment holds older events than the live file.
        live_first = json.loads(path.read_text().splitlines()[0])
        rot_first = json.loads(
            (tmp_path / "t.jsonl.1").read_text().splitlines()[0])
        assert rot_first["cycle"] < live_first["cycle"]
        # Every surviving line is valid JSON.
        for name in (path, tmp_path / "t.jsonl.1", tmp_path / "t.jsonl.2"):
            if os.path.exists(name):
                with open(name, encoding="utf-8") as handle:
                    for line in handle:
                        json.loads(line)

    def test_oldest_segment_deleted(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlFileSink(str(path), rotate_bytes=40, max_files=1)
        for event in make_events(30):
            sink.emit(event)
        sink.close()
        assert sink.rotations >= 3
        assert os.path.exists(f"{path}.1")
        assert not os.path.exists(f"{path}.2")

    def test_close_idempotent(self, tmp_path):
        sink = JsonlFileSink(str(tmp_path / "t.jsonl"))
        sink.emit(make_events(1)[0])
        sink.close()
        sink.close()
        sink.flush()  # flush after close must not raise

    def test_parameters_validated(self, tmp_path):
        with pytest.raises(ConfigError):
            JsonlFileSink(str(tmp_path / "a"), rotate_bytes=0)
        with pytest.raises(ConfigError):
            JsonlFileSink(str(tmp_path / "b"), max_files=0)
