"""Unit tests for the trace recorders: wiring, filters, event semantics."""

import json

import pytest

from repro.engine.hooks import HookRegistry

from repro.config import (
    NetworkConfig,
    PolicyConfig,
    PowerAwareConfig,
    SimulationConfig,
    TransitionConfig,
)
from repro.errors import ConfigError
from repro.network.simulator import Simulator
from repro.telemetry.config import (
    KIND_PACKET,
    KIND_POLICY,
    KIND_POWER,
    KIND_TRANSITION,
    TelemetryConfig,
)
from repro.telemetry.recorder import ExecutorRecorder, TraceRecorder
from repro.telemetry.sinks import JsonlFileSink, RingBufferSink
from repro.traffic.uniform import UniformRandomTraffic

NETWORK = NetworkConfig(mesh_width=2, mesh_height=2, nodes_per_cluster=2,
                        buffer_depth=8, num_vcs=2)


def make_sim(telemetry: TelemetryConfig | None, rate: float = 0.1,
             seed: int = 3) -> Simulator:
    config = SimulationConfig(
        network=NETWORK,
        power=PowerAwareConfig(
            policy=PolicyConfig(window_cycles=60, history_windows=1),
            transitions=TransitionConfig(
                bit_rate_transition_cycles=2, voltage_transition_cycles=10,
                optical_transition_cycles=300, laser_epoch_cycles=400,
            ),
        ),
        seed=seed,
        sample_interval=100,
        telemetry=telemetry,
    )
    traffic = UniformRandomTraffic(NETWORK.num_nodes, rate, seed=seed)
    return Simulator(config, traffic)


class TestSinkSelection:
    def test_defaults_to_ring_buffer(self):
        assert isinstance(TraceRecorder().sink, RingBufferSink)

    def test_path_selects_jsonl(self, tmp_path):
        config = TelemetryConfig(path=str(tmp_path / "t.jsonl"))
        recorder = TraceRecorder(config)
        assert isinstance(recorder.sink, JsonlFileSink)
        recorder.close()

    def test_explicit_sink_wins(self, tmp_path):
        sink = RingBufferSink(4)
        config = TelemetryConfig(path=str(tmp_path / "t.jsonl"))
        assert TraceRecorder(config, sink=sink).sink is sink


class TestAttachment:
    def test_only_enabled_kinds_register_hooks(self):
        telemetry = TelemetryConfig(kinds=(KIND_POWER,))
        sim = make_sim(telemetry)
        assert len(sim.hooks.power_sample) == 1
        assert sim.hooks.policy == []
        assert sim.hooks.transition == []
        assert sim.hooks.packet_delivered == []

    def test_no_telemetry_registers_nothing(self):
        sim = make_sim(None)
        assert sim.telemetry is None
        assert sim.hooks.power_sample == []
        assert sim.hooks.policy == []

    def test_double_attach_rejected(self):
        sim = make_sim(None)
        recorder = TraceRecorder(TelemetryConfig())
        recorder.attach(sim)
        with pytest.raises(ConfigError):
            recorder.attach(sim)

    def test_detach_removes_every_hook(self):
        sim = make_sim(TelemetryConfig())
        sim.telemetry.detach()
        for event in ("policy", "transition", "power_sample",
                      "packet_delivered", "fault", "retransmit",
                      "link_failure"):
            assert getattr(sim.hooks, event) == []


class TestFilters:
    def test_link_subset_filter(self):
        telemetry = TelemetryConfig(
            kinds=(KIND_POLICY, KIND_TRANSITION), link_ids=(0, 1),
        )
        sim = make_sim(telemetry)
        sim.run(400)
        events = sim.telemetry.sink.events()
        assert events
        assert all(e.link_id in (0, 1) for e in events)

    def test_packet_sampling_stride(self):
        telemetry = TelemetryConfig(kinds=(KIND_PACKET,),
                                    packet_sample_every=3)
        sim = make_sim(telemetry, rate=0.2)
        sim.run(600)
        delivered = sim.stats.packets_delivered
        sampled = sim.telemetry.counts.get(KIND_PACKET, 0)
        assert delivered > 6
        assert sampled == delivered // 3

    def test_packet_events_carry_exact_latency(self):
        telemetry = TelemetryConfig(kinds=(KIND_PACKET,))
        sim = make_sim(telemetry, rate=0.1)
        sim.run(500)
        events = sim.telemetry.sink.events()
        assert len(events) == sim.stats.packets_delivered
        for event in events:
            assert event.latency > 0
            assert event.cycle >= event.latency


class TestTransitionSemantics:
    def test_only_real_steps_recorded_on_idle_network(self):
        """An idle power-aware network walks every link down the ladder one
        accepted step per window, then keeps deciding "down" at the bottom.
        Only the real steps may appear in the trace: one accepted event per
        ladder level walked, none for the bottomed-out no-op windows."""

        telemetry = TelemetryConfig(kinds=(KIND_TRANSITION,),
                                    buffer_events=100_000)
        sim = make_sim(telemetry, rate=0.0)
        sim.run(900)  # 15 windows: 5 accepted downs, then bottomed out
        events = sim.telemetry.sink.events()
        assert events
        per_link: dict[int, int] = {}
        for event in events:
            assert event.direction == "down"
            assert event.accepted
            assert event.to_level == event.from_level - 1
            assert event.duration == 12.0
            per_link[event.link_id] = per_link.get(event.link_id, 0) + 1
        levels = sim.power.ladder.num_levels
        assert all(count == levels - 1 for count in per_link.values())
        assert len(per_link) == len(sim.power.links)
        # Every recorded step matches an engine commit.
        totals = sim.power.transition_totals()
        assert len(events) == totals["down"] + totals["up"]

    def test_counts_track_emitted_events(self):
        telemetry = TelemetryConfig()
        sim = make_sim(telemetry, rate=0.1)
        sim.run(500)
        counts = sim.telemetry.counts
        assert counts[KIND_POWER] == len(sim.power.power_series)
        assert counts[KIND_POLICY] > 0
        assert sum(counts.values()) == sim.telemetry.sink.emitted


class TestExecutorRecorder:
    def fire_lifecycle(self, hooks: HookRegistry) -> None:
        for callback in hooks.exec_retry:
            callback("p0", "k0", 1, "timeout", 0.5)
        for callback in hooks.exec_crash:
            callback("p1", "k1", 2, "crash")
        for callback in hooks.exec_point:
            callback("p0", "k0", "done", 2, 1.25)

    def test_records_sequenced_events(self):
        hooks = HookRegistry()
        recorder = ExecutorRecorder().attach(hooks)
        self.fire_lifecycle(hooks)
        events = recorder.sink.events()
        assert [(e.kind, e.seq) for e in events] == \
            [("exec_retry", 1), ("exec_crash", 2), ("exec_point", 3)]
        assert events[0].cause == "timeout"
        assert events[2].status == "done"
        assert recorder.counts == {"exec_retry": 1, "exec_crash": 1,
                                   "exec_point": 1}

    def test_jsonl_path_round_trips(self, tmp_path):
        path = tmp_path / "exec.jsonl"
        hooks = HookRegistry()
        recorder = ExecutorRecorder(path=str(path)).attach(hooks)
        self.fire_lifecycle(hooks)
        recorder.close()
        kinds = [json.loads(line)["kind"]
                 for line in path.read_text().splitlines()]
        assert kinds == ["exec_retry", "exec_crash", "exec_point"]

    def test_double_attach_rejected_and_close_detaches(self):
        hooks = HookRegistry()
        recorder = ExecutorRecorder().attach(hooks)
        with pytest.raises(ConfigError):
            recorder.attach(hooks)
        recorder.close()
        assert hooks.exec_point == []
        assert hooks.exec_retry == []
        assert hooks.exec_crash == []
