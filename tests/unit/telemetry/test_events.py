"""Unit tests for the typed trace events and their dict round-trip."""

import pytest

from repro.errors import ConfigError
from repro.telemetry.events import (
    EVENT_TYPES,
    ExecCrashEvent,
    ExecPointEvent,
    ExecRetryEvent,
    FaultEvent,
    LinkFailureEvent,
    PacketEvent,
    PolicyEvent,
    PowerEvent,
    RetransmitEvent,
    TransitionEvent,
    event_from_dict,
    event_to_dict,
)

SAMPLES = (
    TransitionEvent(cycle=120, link_id=3, link_kind="mesh", direction="down",
                    from_level=5, to_level=4, duration=12.0, accepted=True),
    PolicyEvent(cycle=120, window_start=60, link_id=3, link_kind="mesh",
                lu=0.25, bu=0.1, decision="hold", level=4, band=None),
    PowerEvent(cycle=100, watts=12.5),
    PacketEvent(cycle=90, packet_id=7, src=0, dst=5, size=4, latency=18.0),
    FaultEvent(cycle=77, link_id=2, packet_id=9),
    RetransmitEvent(cycle=80, link_id=2, packet_id=9, attempt=1),
    LinkFailureEvent(cycle=500, link_id=11),
    ExecPointEvent(seq=0, label="Tw=100/light", key="ab" * 32,
                   status="done", attempt=2, elapsed=3.5),
    ExecRetryEvent(seq=1, label="Tw=100/light", key="ab" * 32,
                   attempt=1, cause="timeout", delay=0.5),
    ExecCrashEvent(seq=2, label="Tw=100/light", key="ab" * 32,
                   attempt=1, cause="crash"),
)


class TestRoundTrip:
    @pytest.mark.parametrize("event", SAMPLES, ids=lambda e: e.kind)
    def test_to_dict_and_back(self, event):
        data = event_to_dict(event)
        assert data["kind"] == event.kind
        assert next(iter(data)) == "kind"  # kind leads the JSON object
        assert event_from_dict(data) == event

    def test_every_kind_registered(self):
        assert set(EVENT_TYPES) == {e.kind for e in SAMPLES}


class TestErrors:
    def test_missing_kind_rejected(self):
        with pytest.raises(ConfigError):
            event_from_dict({"cycle": 1})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            event_from_dict({"kind": "teleport", "cycle": 1})

    def test_malformed_payload_rejected(self):
        with pytest.raises(ConfigError):
            event_from_dict({"kind": "power", "cycle": 1})  # watts missing
        with pytest.raises(ConfigError):
            event_from_dict({"kind": "power", "cycle": 1, "watts": 2.0,
                             "bogus": True})
