"""Unit tests for the trace exporters (Perfetto JSON, CSV, summaries)."""

import json

import pytest

from repro.errors import ConfigError
from repro.telemetry.export import (
    iter_trace,
    power_series_from_trace,
    read_trace,
    summarize_trace,
    to_chrome_trace,
    to_csv,
    write_chrome_trace,
)

RECORDS = [
    {"kind": "power", "cycle": 0, "watts": 10.0},
    {"kind": "power", "cycle": 100, "watts": 6.0},
    {"kind": "power", "cycle": 200, "watts": 8.0},
    {"kind": "transition", "cycle": 60, "link_id": 2, "link_kind": "mesh",
     "direction": "down", "from_level": 5, "to_level": 4, "duration": 12.0,
     "accepted": True},
    {"kind": "policy", "cycle": 60, "window_start": 0, "link_id": 2,
     "link_kind": "mesh", "lu": 0.1, "bu": 0.0, "decision": "down",
     "level": 5, "band": None},
    {"kind": "packet", "cycle": 90, "packet_id": 4, "src": 1, "dst": 6,
     "size": 4, "latency": 20.0},
    {"kind": "fault", "cycle": 95, "link_id": 3, "packet_id": 4},
]

EXEC_RECORDS = [
    {"kind": "exec_retry", "seq": 1, "label": "p0", "key": "k0",
     "attempt": 1, "cause": "timeout", "delay": 0.5},
    {"kind": "exec_point", "seq": 2, "label": "p0", "key": "k0",
     "status": "done", "attempt": 2, "elapsed": 3.25},
]


class TestSeriesAndSummary:
    def test_power_series_from_trace(self):
        assert power_series_from_trace(RECORDS) == [
            (0, 10.0), (100, 6.0), (200, 8.0),
        ]

    def test_summarize_trace(self):
        summary = summarize_trace(RECORDS)
        assert summary["events"] == len(RECORDS)
        assert summary["counts"]["power"] == 3
        assert summary["first_cycle"] == 0
        assert summary["last_cycle"] == 200
        assert summary["links_seen"] == 2
        assert summary["power_min_w"] == 6.0
        assert summary["power_max_w"] == 10.0
        assert summary["power_mean_w"] == pytest.approx(8.0)
        assert summary["packet_mean_latency"] == pytest.approx(20.0)

    def test_summarize_empty(self):
        summary = summarize_trace([])
        assert summary["events"] == 0
        assert summary["first_cycle"] is None
        assert "power_mean_w" not in summary


class TestChromeTrace:
    def test_structure_and_timestamps(self):
        trace = to_chrome_trace(RECORDS)
        events = trace["traceEvents"]
        by_ph = {}
        for event in events:
            by_ph.setdefault(event["ph"], []).append(event)
        # Metadata names the five synthetic processes.
        assert {e["args"]["name"] for e in by_ph["M"]} == {
            "network power", "links", "packets", "reliability",
            "sweep executor"}
        assert len(by_ph["C"]) == 3  # power counter samples
        # Packet slices span creation -> ejection.
        packet = next(e for e in by_ph["X"] if e["cat"] == "packet")
        assert packet["ts"] == 70.0 and packet["dur"] == 20.0
        transition = next(e for e in by_ph["X"] if e["cat"] == "transition")
        assert transition["ts"] == 60 and transition["dur"] == 12.0
        assert transition["tid"] == 2
        # Policy + fault become instants.
        assert {e["cat"] for e in by_ph["i"]} == {"policy", "reliability"}

    def test_executor_events_sequence_ordered_instants(self):
        trace = to_chrome_trace(EXEC_RECORDS)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert [e["cat"] for e in instants] == ["executor", "executor"]
        assert [e["ts"] for e in instants] == [1, 2]
        assert instants[0]["name"] == "exec_retry"
        assert instants[1]["name"] == "done:p0"
        assert instants[1]["args"]["elapsed"] == 3.25

    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(RECORDS, str(path))
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == count
        assert data["otherData"]["time_unit"] == "router cycles"


class TestCsv:
    def test_single_kind_rows(self, tmp_path):
        path = tmp_path / "power.csv"
        rows = to_csv(RECORDS, "power", str(path))
        lines = path.read_text().splitlines()
        assert rows == 3
        assert lines[0] == "cycle,watts"
        assert lines[1] == "0,10.0"
        assert len(lines) == 4

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            to_csv(RECORDS, "teleport", str(tmp_path / "x.csv"))


class TestJsonlParsing:
    def write(self, tmp_path, text):
        path = tmp_path / "trace.jsonl"
        path.write_text(text)
        return str(path)

    def test_round_trip_with_blank_lines(self, tmp_path):
        text = "\n".join(json.dumps(r) for r in RECORDS[:2]) + "\n\n"
        path = self.write(tmp_path, text)
        assert read_trace(path) == RECORDS[:2]

    def test_invalid_json_line_reported_with_number(self, tmp_path):
        path = self.write(tmp_path, '{"kind": "power"}\nnot json\n')
        with pytest.raises(ConfigError, match=":2:"):
            list(iter_trace(path))

    def test_records_must_be_objects_with_kind(self, tmp_path):
        with pytest.raises(ConfigError):
            list(iter_trace(self.write(tmp_path, "[1, 2]\n")))
        with pytest.raises(ConfigError):
            list(iter_trace(self.write(tmp_path, '{"cycle": 3}\n')))
