"""Unit tests for the hook registry and the phase profiler."""

import pytest

from repro.engine.hooks import EVENTS, HookRegistry
from repro.engine.profiler import PhaseProfiler
from repro.errors import ConfigError


class TestHookRegistry:
    def test_annotations_mirror_events(self):
        # The class-level annotations exist for static typing; this pins
        # them to the EVENTS tuple so neither can drift alone.
        annotated = [name for name in HookRegistry.__annotations__
                     if not name.startswith("_")]
        assert tuple(annotated) == EVENTS
        assert HookRegistry.__slots__ == EVENTS

    def test_add_fires_in_registration_order(self):
        hooks = HookRegistry()
        order = []
        hooks.add("window", lambda start, end: order.append("a"))
        hooks.add("window", lambda start, end: order.append("b"))
        for callback in hooks.window:
            callback(0, 100)
        assert order == ["a", "b"]

    def test_unknown_event_rejected(self):
        hooks = HookRegistry()
        with pytest.raises(ConfigError):
            hooks.add("no_such_event", lambda: None)
        with pytest.raises(ConfigError):
            hooks.remove("no_such_event", lambda: None)

    def test_non_callable_rejected(self):
        hooks = HookRegistry()
        with pytest.raises(ConfigError):
            hooks.add("delivery", "not callable")

    def test_remove_unregistered_rejected(self):
        hooks = HookRegistry()
        with pytest.raises(ConfigError):
            hooks.remove("delivery", lambda link, flit, now: None)

    def test_add_returns_callback_and_remove_round_trips(self):
        hooks = HookRegistry()
        callback = hooks.add("delivery", lambda link, flit, now: None)
        assert hooks.delivery == [callback]
        hooks.remove("delivery", callback)
        assert hooks.delivery == []

    def test_instrumented_tracks_phase_hooks(self):
        hooks = HookRegistry()
        assert not hooks.instrumented
        callback = hooks.add("phase_start", lambda phase, cycle: None)
        assert hooks.instrumented
        hooks.remove("phase_start", callback)
        assert not hooks.instrumented
        hooks.add("phase_end", lambda phase, cycle: None)
        assert hooks.instrumented

    def test_every_declared_event_exists(self):
        hooks = HookRegistry()
        for event in EVENTS:
            assert getattr(hooks, event) == []


class FakeClock:
    """A controllable clock: each phase appears to take ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestPhaseProfiler:
    def test_accumulates_per_phase(self):
        profiler = PhaseProfiler(clock=FakeClock())
        hooks = HookRegistry()
        profiler.attach(hooks)
        for cycle in range(3):
            for phase in ("deliver", "route"):
                for callback in hooks.phase_start:
                    callback(phase, cycle)
                for callback in hooks.phase_end:
                    callback(phase, cycle)
        assert profiler.calls == {"deliver": 3, "route": 3}
        assert profiler.seconds == {"deliver": 3.0, "route": 3.0}
        assert profiler.total_seconds == 6.0

    def test_double_attach_rejected(self):
        profiler = PhaseProfiler()
        hooks = HookRegistry()
        profiler.attach(hooks)
        with pytest.raises(ConfigError):
            profiler.attach(hooks)

    def test_detach_restores_uninstrumented(self):
        profiler = PhaseProfiler()
        hooks = HookRegistry()
        profiler.attach(hooks)
        assert hooks.instrumented
        profiler.detach()
        assert not hooks.instrumented
        with pytest.raises(ConfigError):
            profiler.detach()

    def test_report_mentions_every_phase(self):
        profiler = PhaseProfiler(clock=FakeClock())
        hooks = HookRegistry()
        profiler.attach(hooks)
        for callback in hooks.phase_start:
            callback("route", 0)
        for callback in hooks.phase_end:
            callback("route", 0)
        report = profiler.report()
        assert "route" in report
        assert "total" in report

    def test_empty_report(self):
        assert "nothing ran" in PhaseProfiler().report()
