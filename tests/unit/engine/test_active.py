"""Unit tests for the active-component registries."""

from dataclasses import dataclass

from repro.engine.active import ActiveSet


@dataclass(frozen=True)
class Item:
    key: int


def make_set():
    return ActiveSet(lambda item: item.key)


class TestMembership:
    def test_add_and_discard_are_idempotent(self):
        active = make_set()
        item = Item(1)
        active.add(item)
        active.add(item)
        assert len(active) == 1
        active.discard(item)
        active.discard(item)
        assert len(active) == 0

    def test_contains_and_bool(self):
        active = make_set()
        assert not active
        item = Item(7)
        active.add(item)
        assert active
        assert item in active
        assert Item(8) not in active

    def test_clear(self):
        active = make_set()
        for key in range(5):
            active.add(Item(key))
        active.clear()
        assert not active


class TestSnapshots:
    def test_snapshot_sorted_by_key(self):
        active = make_set()
        for key in (5, 1, 9, 3):
            active.add(Item(key))
        assert [item.key for item in active.snapshot()] == [1, 3, 5, 9]
        assert [item.key for item in active] == [1, 3, 5, 9]

    def test_snapshot_is_safe_under_mutation(self):
        active = make_set()
        for key in range(4):
            active.add(Item(key))
        seen = []
        for item in active.snapshot():
            seen.append(item.key)
            active.discard(item)
            active.add(Item(item.key + 100))
        assert seen == [0, 1, 2, 3]
        assert [item.key for item in active] == [100, 101, 102, 103]

    def test_insertion_order_does_not_matter(self):
        forward, backward = make_set(), make_set()
        items = [Item(key) for key in range(10)]
        for item in items:
            forward.add(item)
        for item in reversed(items):
            backward.add(item)
        assert forward.snapshot() == backward.snapshot()
