"""Unit tests for the event wheel."""

import math

import pytest

from repro.engine.wheel import (
    NEVER,
    PRI_EPOCH,
    PRI_SAMPLE,
    PRI_TRANSITION,
    PRI_WINDOW,
    EventWheel,
)
from repro.errors import ConfigError


class TestScheduling:
    def test_empty_wheel_never_fires(self):
        wheel = EventWheel()
        assert wheel.next_cycle == NEVER
        wheel.service(10_000)  # no-op, no error

    def test_event_fires_at_its_cycle(self):
        wheel = EventWheel()
        fired = []
        wheel.schedule(5, fired.append)
        assert wheel.next_cycle == 5
        wheel.service(4)
        assert fired == []
        wheel.service(5)
        assert fired == [5]
        assert wheel.next_cycle == NEVER

    def test_float_times_round_up(self):
        # ceil(when) is the first integer cycle where a legacy
        # ``now >= when`` poll would have fired.
        wheel = EventWheel()
        fired = []
        wheel.schedule(3.2, fired.append)
        wheel.service(3)
        assert fired == []
        wheel.service(4)
        assert fired == [4]

    def test_past_event_fires_on_next_service(self):
        wheel = EventWheel()
        fired = []
        wheel.schedule(0, fired.append)
        wheel.service(7)
        assert fired == [7]

    def test_non_finite_time_rejected(self):
        wheel = EventWheel()
        for bad in (math.inf, -math.inf, math.nan):
            with pytest.raises(ConfigError):
                wheel.schedule(bad, lambda now: None)


class TestOrdering:
    def test_same_cycle_priority_order(self):
        wheel = EventWheel()
        order = []
        wheel.schedule(3, lambda now: order.append("sample"), PRI_SAMPLE)
        wheel.schedule(3, lambda now: order.append("transition"),
                       PRI_TRANSITION)
        wheel.schedule(3, lambda now: order.append("epoch"), PRI_EPOCH)
        wheel.schedule(3, lambda now: order.append("window"), PRI_WINDOW)
        wheel.service(3)
        assert order == ["transition", "window", "epoch", "sample"]

    def test_equal_priority_preserves_insertion_order(self):
        wheel = EventWheel()
        order = []
        for tag in ("a", "b", "c"):
            wheel.schedule(1, lambda now, tag=tag: order.append(tag))
        wheel.service(1)
        assert order == ["a", "b", "c"]

    def test_catching_up_runs_buckets_in_cycle_order(self):
        wheel = EventWheel()
        order = []
        wheel.schedule(8, lambda now: order.append(8))
        wheel.schedule(2, lambda now: order.append(2))
        wheel.schedule(5, lambda now: order.append(5))
        wheel.service(10)
        assert order == [2, 5, 8]


class TestRescheduling:
    def test_callback_can_self_reschedule(self):
        wheel = EventWheel()
        fired = []

        def tick(now):
            fired.append(now)
            wheel.schedule(now + 10, tick)

        wheel.schedule(0, tick)
        for now in range(35):
            if wheel.next_cycle <= now:
                wheel.service(now)
        assert fired == [0, 10, 20, 30]

    def test_callback_scheduling_same_cycle_runs_same_service(self):
        wheel = EventWheel()
        fired = []

        def first(now):
            fired.append("first")
            wheel.schedule(now, lambda n: fired.append("second"))

        wheel.schedule(4, first)
        wheel.service(4)
        assert fired == ["first", "second"]
        assert wheel.next_cycle == NEVER
