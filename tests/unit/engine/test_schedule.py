"""Unit tests for the calendar-bucket delivery schedule.

Exercised through stub in-flight queues rather than full simulator runs
(the property suite covers end-to-end equivalence); here the calendar
semantics are pinned down cycle by cycle: arming, due-bucket pops in link
id order, lazy pruning of stale entries, and the cursor's catch-up
behaviour on a skipped cycle.
"""

from collections import deque

from repro.engine.schedule import DeliverySchedule
from repro.network.links import MESH, Link


def make_link(link_id: int, *arrivals: float) -> Link:
    link = Link(link_id, MESH)
    link._in_flight = deque((arrival, object()) for arrival in arrivals)
    return link


class TestRegistryProtocol:
    def test_add_contains_len_bool(self):
        schedule = DeliverySchedule()
        assert not schedule and len(schedule) == 0
        link = make_link(0, 2.0)
        schedule.add(link)
        assert link in schedule
        assert schedule and len(schedule) == 1

    def test_discard_removes_membership(self):
        schedule = DeliverySchedule()
        link = make_link(0, 2.0)
        schedule.add(link)
        schedule.discard(link)
        assert link not in schedule
        assert not schedule
        schedule.discard(link)  # idempotent, like set.discard

    def test_retire_after_full_drain(self):
        schedule = DeliverySchedule()
        link = make_link(3, 1.0)
        schedule.add(link)
        assert schedule.pop_due(1) == [link]
        link._in_flight.clear()
        schedule.retire(link)
        assert link not in schedule


class TestCalendarSemantics:
    def test_link_not_due_until_ceil_of_arrival(self):
        schedule = DeliverySchedule()
        link = make_link(0, 2.4)  # due at ceil(2.4) = 3
        schedule.add(link)
        assert schedule.pop_due(0) == []
        assert schedule.pop_due(1) == []
        assert schedule.pop_due(2) == []
        assert schedule.pop_due(3) == [link]

    def test_same_cycle_pops_come_out_in_link_id_order(self):
        schedule = DeliverySchedule()
        links = [make_link(link_id, 1.0) for link_id in (7, 2, 5, 0)]
        for link in links:
            schedule.add(link)
        popped = schedule.pop_due(1)
        assert [link.link_id for link in popped] == [0, 2, 5, 7]

    def test_rearm_schedules_the_next_arrival(self):
        schedule = DeliverySchedule()
        link = make_link(0, 1.0, 4.5)
        schedule.add(link)
        assert schedule.pop_due(1) == [link]
        link._in_flight.popleft()  # the deliver phase hands over flit 1
        schedule.rearm(link)
        assert schedule.pop_due(2) == []
        assert schedule.pop_due(3) == []
        assert schedule.pop_due(4) == []
        assert schedule.pop_due(5) == [link]

    def test_early_armed_link_is_rearmed_not_delivered(self):
        # An armed link whose head arrival moved later (e.g. the bucket
        # was armed for an arrival the deliver phase already consumed via
        # another path) must be re-armed for the true due cycle.
        schedule = DeliverySchedule()
        link = make_link(0, 1.0)
        schedule.add(link)
        link._in_flight[0] = (3.0, link._in_flight[0][1])
        assert schedule.pop_due(1) == []
        assert link in schedule  # still a member, just re-armed
        assert schedule.pop_due(3) == [link]

    def test_drained_member_is_pruned_lazily(self):
        schedule = DeliverySchedule()
        link = make_link(0, 1.0)
        schedule.add(link)
        link._in_flight.clear()  # drained through some other path
        assert schedule.pop_due(1) == []
        assert link not in schedule

    def test_discarded_link_never_comes_out_of_its_bucket(self):
        schedule = DeliverySchedule()
        link = make_link(0, 1.0)
        schedule.add(link)
        schedule.discard(link)
        assert schedule.pop_due(1) == []


class TestCursor:
    def test_skipped_cycles_drain_older_buckets(self):
        schedule = DeliverySchedule()
        early = make_link(1, 1.0)
        late = make_link(2, 3.0)
        schedule.add(early)
        schedule.add(late)
        # The caller jumps straight to cycle 3: both buckets must come out
        # (id-ascending), not just cycle 3's.
        assert schedule.pop_due(3) == [early, late]

    def test_already_popped_cycle_returns_nothing(self):
        schedule = DeliverySchedule()
        link = make_link(0, 1.0)
        schedule.add(link)
        assert schedule.pop_due(2) == [link]
        assert schedule.pop_due(1) == []  # behind the cursor: a no-op
        assert schedule.pop_due(2) == []


class TestDuplicateEntries:
    """The armed-due-cycle protocol: one live entry per link, ever.

    A ``discard`` + re-``add`` at the same due cycle used to file a
    second bucket entry; both validated at pop time and the link was
    delivered twice in one cycle (double-draining its arrivals).
    """

    def test_discard_then_readd_same_cycle_delivers_once(self):
        schedule = DeliverySchedule()
        link = make_link(0, 2.0)
        schedule.add(link)
        schedule.discard(link)  # drained through some other path ...
        schedule.add(link)      # ... then went nonempty again, same due
        popped = schedule.pop_due(2)
        assert popped == [link]
        assert popped.count(link) == 1

    def test_repeated_readds_file_one_entry(self):
        schedule = DeliverySchedule()
        link = make_link(3, 5.0)
        for _ in range(10):
            schedule.add(link)
            schedule.discard(link)
        schedule.add(link)
        assert len(schedule._buckets[5]) == 1
        assert schedule.pop_due(5) == [link]

    def test_rearm_after_stale_add_is_single_delivery(self):
        # Arm for cycle 2, then the arrival moves later and a rearm files
        # for cycle 4: only the cycle-4 entry is live.
        schedule = DeliverySchedule()
        link = make_link(1, 2.0)
        schedule.add(link)
        link._in_flight[0] = (4.0, link._in_flight[0][1])
        schedule.rearm(link)
        assert schedule.pop_due(2) == []
        assert link in schedule  # stale entry dropped, membership intact
        assert schedule.pop_due(3) == []
        assert schedule.pop_due(4) == [link]

    def test_catchup_pop_never_duplicates_across_buckets(self):
        # Entries for the same link at two different dues (one stale, one
        # live) merged by a cycle-skip catch-up must deliver once.
        schedule = DeliverySchedule()
        link = make_link(2, 1.0)
        schedule.add(link)
        link._in_flight[0] = (3.0, link._in_flight[0][1])
        schedule.rearm(link)  # live entry moves to due 3; due 1 is stale
        popped = schedule.pop_due(4)  # skip straight past both buckets
        assert popped == [link]
