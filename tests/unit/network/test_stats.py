"""Unit tests for the statistics collector."""

import math

import pytest

from repro.errors import ConfigError
from repro.network.packet import Packet
from repro.network.stats import StatsCollector


def deliver(stats: StatsCollector, create: int, eject: int, pid: int = 0,
            size: int = 1):
    packet = Packet(pid, src=0, dst=1, size=size, create_time=create)
    stats.packet_created(packet, create)
    stats.packet_delivered(packet, eject)
    return packet


class TestLatency:
    def test_mean_latency(self):
        stats = StatsCollector()
        deliver(stats, 0, 10, 1)
        deliver(stats, 0, 30, 2)
        assert stats.mean_latency == pytest.approx(20.0)

    def test_mean_nan_with_no_packets(self):
        assert math.isnan(StatsCollector().mean_latency)

    def test_warmup_excludes_early_packets(self):
        stats = StatsCollector(warmup_cycles=100)
        deliver(stats, 10, 500, 1)     # created during warmup -> excluded
        deliver(stats, 200, 210, 2)
        assert stats.mean_latency == pytest.approx(10.0)
        assert stats.measured_delivered == 1
        assert stats.packets_delivered == 2  # raw count keeps everything

    def test_max_latency(self):
        stats = StatsCollector()
        deliver(stats, 0, 5, 1)
        deliver(stats, 0, 50, 2)
        assert stats.latency_max == 50

    def test_percentiles(self):
        stats = StatsCollector()
        for i in range(1, 101):
            deliver(stats, 0, i, i)
        assert stats.latency_percentile(0.0) == 1
        assert stats.latency_percentile(1.0) == 100
        assert 49 <= stats.latency_percentile(0.5) <= 51

    def test_percentile_bounds_checked(self):
        with pytest.raises(ConfigError):
            StatsCollector().latency_percentile(1.5)

    def test_eject_time_written_back(self):
        stats = StatsCollector()
        packet = deliver(stats, 3, 17, 1)
        assert packet.latency == 14


class TestCounts:
    def test_in_flight_tracking(self):
        stats = StatsCollector()
        packet = Packet(1, src=0, dst=1, size=1, create_time=0)
        stats.packet_created(packet, 0)
        assert stats.in_flight == 1
        stats.packet_delivered(packet, 5)
        assert stats.in_flight == 0

    def test_flits_delivered(self):
        stats = StatsCollector()
        deliver(stats, 0, 10, 1, size=5)
        assert stats.flits_delivered == 5

    def test_accepted_rate(self):
        stats = StatsCollector()
        for i in range(10):
            deliver(stats, 0, 5, i)
        assert stats.accepted_rate(100) == pytest.approx(0.1)

    def test_accepted_rate_rejects_zero_cycles(self):
        with pytest.raises(ConfigError):
            StatsCollector().accepted_rate(0)


class TestSeries:
    def test_injection_series_buckets(self):
        stats = StatsCollector(sample_interval=10)
        for t in (0, 5, 9, 15):
            packet = Packet(t, src=0, dst=1, size=1, create_time=t)
            stats.packet_created(packet, t)
        series = stats.injection_series()
        assert series[0] == pytest.approx(0.3)
        assert series[1] == pytest.approx(0.1)

    def test_latency_series_mean_per_bucket(self):
        stats = StatsCollector(sample_interval=10)
        deliver(stats, 0, 5, 1)   # bucket 0, latency 5
        deliver(stats, 0, 9, 2)   # bucket 0, latency 9
        deliver(stats, 10, 15, 3)  # bucket 1, latency 5
        series = stats.latency_series()
        assert series[0] == pytest.approx(7.0)
        assert series[1] == pytest.approx(5.0)

    def test_latency_series_nan_for_empty_bucket(self):
        stats = StatsCollector(sample_interval=10)
        deliver(stats, 0, 25, 1)  # delivery in bucket 2
        series = stats.latency_series()
        assert math.isnan(series[0]) and math.isnan(series[1])
        assert series[2] == pytest.approx(25.0)

    def test_summary_keys(self):
        stats = StatsCollector()
        deliver(stats, 0, 10, 1)
        summary = stats.summary(100)
        for key in ("packets_created", "packets_delivered", "mean_latency",
                    "p95_latency", "max_latency", "accepted_rate",
                    "in_flight"):
            assert key in summary


class TestLatencyHistogram:
    """Regression: latencies used to be an unbounded per-packet list,
    re-sorted on every summary() call.  The sorted value->count histogram
    must report the exact same percentiles with O(distinct values) memory."""

    def test_percentile_matches_sorted_list_reference(self):
        import random

        rng = random.Random(7)
        stats = StatsCollector()
        reference = []
        for pid in range(500):
            create = rng.randrange(0, 1000)
            eject = create + rng.randrange(1, 60)
            deliver(stats, create, eject, pid)
            reference.append(eject - create)
        reference.sort()
        for fraction in (0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
            index = min(len(reference) - 1,
                        int(round(fraction * (len(reference) - 1))))
            assert stats.latency_percentile(fraction) == reference[index]

    def test_memory_bounded_by_distinct_values(self):
        stats = StatsCollector()
        for pid in range(10_000):
            deliver(stats, 0, 1 + pid % 7, pid)
        assert len(stats._latency_order) == 7
        assert len(stats._latency_counts) == 7
        assert sum(stats._latency_counts.values()) == 10_000

    def test_latencies_property_expands_sorted(self):
        stats = StatsCollector()
        for pid, latency in enumerate((5, 2, 5, 9, 2, 2)):
            deliver(stats, 0, latency, pid)
        assert stats.latencies == [2, 2, 2, 5, 5, 9]
