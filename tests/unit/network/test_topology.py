"""Unit tests for the clustered mesh topology builder and node boards."""

import pytest

from repro.config import NetworkConfig
from repro.errors import ConfigError
from repro.network.links import EJECTION, INJECTION, MESH
from repro.network.packet import Packet
from repro.network.stats import StatsCollector
from repro.network.topology import ClusteredMesh


@pytest.fixture
def mesh(tiny_network) -> ClusteredMesh:
    return ClusteredMesh(tiny_network, StatsCollector())


class TestStructure:
    def test_router_and_node_counts(self, mesh, tiny_network):
        assert len(mesh.routers) == tiny_network.num_routers == 4
        assert len(mesh.nodes) == tiny_network.num_nodes == 8

    def test_link_counts(self, mesh, tiny_network):
        n = tiny_network.num_nodes
        injection = len(mesh.links_of_kind(INJECTION))
        ejection = len(mesh.links_of_kind(EJECTION))
        meshes = len(mesh.links_of_kind(MESH))
        assert injection == n
        assert ejection == n
        # 2x2 mesh: 4 adjacent pairs, two unidirectional links each.
        assert meshes == 8
        assert len(mesh.links) == injection + ejection + meshes

    def test_paper_scale_link_count(self):
        config = NetworkConfig()  # 8x8x8
        full = ClusteredMesh(config, StatsCollector())
        assert len(full.links_of_kind(INJECTION)) == 512
        assert len(full.links_of_kind(EJECTION)) == 512
        # 8x8 mesh: 2*2*8*7 = 224 unidirectional inter-router links.
        assert len(full.links_of_kind(MESH)) == 224

    def test_router_coordinates(self, mesh):
        coords = [(r.x, r.y) for r in mesh.routers]
        assert coords == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_all_routed_outputs_attached(self, mesh):
        for router in mesh.routers:
            # Local ports always attached.
            for port in range(router.num_local):
                assert router.outputs[port] is not None

    def test_edge_routers_missing_offmesh_ports(self, mesh):
        corner = mesh.routers[0]  # (0, 0): no west, no north
        from repro.network.routing import NORTH, WEST

        assert corner.outputs[corner.num_local + WEST] is None
        assert corner.outputs[corner.num_local + NORTH] is None


class TestCreditWiring:
    def test_injection_credits_shared_with_node(self, mesh):
        node = mesh.nodes[0]
        router = mesh.routers[0]
        assert node.credits is router.inputs[0].upstream_credits

    def test_mesh_credits_shared_with_neighbour(self, mesh, tiny_network):
        from repro.network.routing import EAST, OPPOSITE

        r0, r1 = mesh.routers[0], mesh.routers[1]
        locals_ = tiny_network.nodes_per_cluster
        out = r0.outputs[locals_ + EAST]
        in_port = r1.inputs[locals_ + OPPOSITE[EAST]]
        assert out.credits is in_port.upstream_credits

    def test_downstream_buffers_recorded(self, mesh):
        for link, buffers in zip(mesh.links, mesh.downstream_buffers):
            if link.kind == EJECTION:
                assert buffers is None
            else:
                assert buffers is not None and len(buffers) > 0


class TestNodeIds:
    def test_node_id_mapping(self, mesh):
        assert mesh.node_id(0, 0, 0) == 0
        assert mesh.node_id(1, 0, 1) == 3
        assert mesh.node_id(1, 1, 0) == 6

    def test_node_id_out_of_range(self, mesh):
        with pytest.raises(ConfigError):
            mesh.node_id(5, 0, 0)
        with pytest.raises(ConfigError):
            mesh.node_id(0, 0, 9)

    def test_node_for_bounds(self, mesh):
        with pytest.raises(ConfigError):
            mesh.node_for(-1)
        with pytest.raises(ConfigError):
            mesh.node_for(100)


class TestNodeBehaviour:
    def test_injection_respects_credits(self, mesh):
        node = mesh.nodes[0]
        packet = Packet(1, src=0, dst=1, size=2, create_time=0)
        node.enqueue_packet(packet)
        for counter in node.credits:
            while counter.can_send():
                counter.consume()
        node.step(0.0)
        assert node.pending_flits == 2  # nothing sent

    def test_injection_serialises_on_link(self, mesh):
        node = mesh.nodes[0]
        packet = Packet(1, src=0, dst=1, size=2, create_time=0)
        node.enqueue_packet(packet)
        node.step(0.0)
        assert node.pending_flits == 1
        # The link is busy for service_time; an immediate retry fails.
        node.step(0.5)
        assert node.pending_flits == 1
        node.step(1.0)
        assert node.pending_flits == 0

    def test_packet_flits_share_vc(self, mesh):
        node = mesh.nodes[0]
        packet = Packet(1, src=0, dst=1, size=2, create_time=0)
        node.enqueue_packet(packet)
        node.step(0.0)
        node.step(1.0)
        arrivals = node.link.pop_arrivals(100.0)
        assert len(arrivals) == 2
        assert arrivals[0].vc == arrivals[1].vc

    def test_sink_records_delivery_on_tail(self, mesh):
        stats = mesh.stats
        packet = Packet(1, src=0, dst=1, size=2, create_time=0)
        stats.packet_created(packet, 0)
        head, tail = packet.make_flits()
        node = mesh.nodes[1]
        node.receive_flit(head, 10.0)
        assert stats.packets_delivered == 0
        node.receive_flit(tail, 11.0)
        assert stats.packets_delivered == 1
        assert packet.eject_time == 11
