"""Unit tests for mesh routing functions."""

import pytest

from repro.errors import ConfigError
from repro.network.routing import (
    EAST,
    NORTH,
    OPPOSITE,
    SOUTH,
    WEST,
    get_routing_function,
    hop_count,
    xy_route,
    yx_route,
)


class TestXy:
    def test_x_before_y(self):
        assert xy_route(0, 0, 2, 2) == EAST
        assert xy_route(3, 0, 2, 2) == WEST

    def test_y_after_x_done(self):
        assert xy_route(2, 0, 2, 2) == SOUTH
        assert xy_route(2, 3, 2, 2) == NORTH

    def test_arrived(self):
        assert xy_route(2, 2, 2, 2) == -1

    def test_full_path_reaches_destination(self):
        x, y = 0, 3
        dst = (3, 0)
        offsets = {EAST: (1, 0), WEST: (-1, 0), NORTH: (0, -1), SOUTH: (0, 1)}
        for _ in range(10):
            d = xy_route(x, y, *dst)
            if d < 0:
                break
            dx, dy = offsets[d]
            x, y = x + dx, y + dy
        assert (x, y) == dst

    def test_path_length_is_minimal(self):
        x, y, dst = 0, 0, (3, 2)
        hops = 0
        offsets = {EAST: (1, 0), WEST: (-1, 0), NORTH: (0, -1), SOUTH: (0, 1)}
        while True:
            d = xy_route(x, y, *dst)
            if d < 0:
                break
            dx, dy = offsets[d]
            x, y = x + dx, y + dy
            hops += 1
        assert hops == hop_count(0, 0, *dst) == 5


class TestYx:
    def test_y_before_x(self):
        assert yx_route(0, 0, 2, 2) == SOUTH
        assert yx_route(0, 3, 2, 2) == NORTH

    def test_x_after_y_done(self):
        assert yx_route(0, 2, 2, 2) == EAST

    def test_arrived(self):
        assert yx_route(1, 1, 1, 1) == -1


class TestWestFirst:
    def test_west_taken_first(self):
        west_first = get_routing_function("west_first")
        assert west_first(3, 0, 1, 2) == WEST

    def test_east_region_prefers_x(self):
        west_first = get_routing_function("west_first")
        assert west_first(0, 0, 2, 2) == EAST


class TestRegistry:
    def test_known_names(self):
        for name in ("xy", "yx", "west_first"):
            assert callable(get_routing_function(name))

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            get_routing_function("adaptive-magic")


class TestHelpers:
    def test_opposites(self):
        assert OPPOSITE[EAST] == WEST
        assert OPPOSITE[WEST] == EAST
        assert OPPOSITE[NORTH] == SOUTH
        assert OPPOSITE[SOUTH] == NORTH

    def test_hop_count_manhattan(self):
        assert hop_count(0, 0, 3, 4) == 7
        assert hop_count(2, 2, 2, 2) == 0
