"""Unit tests for flits and packets."""

import pytest

from repro.errors import ConfigError
from repro.network.packet import Packet


class TestPacket:
    def test_make_flits_roles(self):
        packet = Packet(1, src=0, dst=3, size=4, create_time=10)
        flits = packet.make_flits()
        assert len(flits) == 4
        assert flits[0].is_head and not flits[0].is_tail
        assert flits[-1].is_tail and not flits[-1].is_head
        assert all(not f.is_head and not f.is_tail for f in flits[1:-1])

    def test_single_flit_is_head_and_tail(self):
        packet = Packet(1, src=0, dst=1, size=1, create_time=0)
        (flit,) = packet.make_flits()
        assert flit.is_head and flit.is_tail

    def test_flit_indices_ordered(self):
        packet = Packet(1, src=0, dst=1, size=5, create_time=0)
        assert [f.index for f in packet.make_flits()] == [0, 1, 2, 3, 4]

    def test_flits_reference_packet(self):
        packet = Packet(7, src=0, dst=1, size=2, create_time=0)
        assert all(f.packet is packet for f in packet.make_flits())

    def test_default_vc_zero(self):
        packet = Packet(1, src=0, dst=1, size=1, create_time=0)
        assert packet.make_flits()[0].vc == 0

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigError):
            Packet(1, src=0, dst=1, size=0, create_time=0)

    def test_self_send_rejected(self):
        with pytest.raises(ConfigError):
            Packet(1, src=3, dst=3, size=1, create_time=0)

    def test_latency_of_in_flight_packet_raises(self):
        packet = Packet(1, src=0, dst=1, size=1, create_time=5)
        with pytest.raises(ConfigError):
            _ = packet.latency

    def test_latency_after_ejection(self):
        packet = Packet(1, src=0, dst=1, size=1, create_time=5)
        packet.eject_time = 42
        assert packet.latency == 37
