"""Unit tests for input buffers and credit counters."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.network.buffers import CreditCounter, InputBuffer
from repro.network.packet import Packet


def make_flits(n: int):
    return Packet(1, src=0, dst=1, size=n, create_time=0).make_flits()


class TestInputBuffer:
    def test_fifo_order(self):
        buffer = InputBuffer(4)
        flits = make_flits(3)
        for i, flit in enumerate(flits):
            buffer.push(flit, now=i)
        assert [buffer.pop(10).index for _ in range(3)] == [0, 1, 2]

    def test_overflow_raises(self):
        buffer = InputBuffer(2)
        flits = make_flits(3)
        buffer.push(flits[0], 0)
        buffer.push(flits[1], 0)
        with pytest.raises(SimulationError):
            buffer.push(flits[2], 0)

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            InputBuffer(2).pop(0)

    def test_head_empty_raises(self):
        with pytest.raises(SimulationError):
            InputBuffer(2).head()

    def test_occupancy_and_free_slots(self):
        buffer = InputBuffer(4)
        (flit,) = make_flits(1)
        buffer.push(flit, 0)
        assert buffer.occupancy == 1
        assert buffer.free_slots == 3
        assert not buffer.is_empty
        assert not buffer.is_full

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigError):
            InputBuffer(0)


class TestOccupancyIntegral:
    def test_constant_occupancy_window(self):
        buffer = InputBuffer(4)
        (flit,) = make_flits(1)
        buffer.push(flit, 0.0)
        # One flit in a 4-slot buffer for the whole [0, 100) window.
        assert buffer.mean_utilisation(0.0, 100.0) == pytest.approx(0.25)

    def test_half_window_occupancy(self):
        buffer = InputBuffer(4)
        (flit,) = make_flits(1)
        buffer.push(flit, 50.0)
        assert buffer.mean_utilisation(0.0, 100.0) == pytest.approx(0.125)

    def test_push_then_pop_partial(self):
        buffer = InputBuffer(2)
        (flit,) = make_flits(1)
        buffer.push(flit, 0.0)
        buffer.pop(25.0)
        # 1 flit of 2 slots for a quarter of the window.
        assert buffer.mean_utilisation(0.0, 100.0) == pytest.approx(0.125)

    def test_integral_resets_per_window(self):
        buffer = InputBuffer(4)
        (flit,) = make_flits(1)
        buffer.push(flit, 0.0)
        buffer.pop(100.0)
        assert buffer.mean_utilisation(0.0, 100.0) == pytest.approx(0.25)
        # Next window: buffer was empty throughout.
        assert buffer.mean_utilisation(100.0, 200.0) == pytest.approx(0.0)

    def test_degenerate_window_rejected(self):
        with pytest.raises(ConfigError):
            InputBuffer(2).mean_utilisation(10.0, 10.0)


class TestCreditCounter:
    def test_starts_full(self):
        assert CreditCounter(8).available == 8

    def test_consume_refill_cycle(self):
        credits = CreditCounter(2)
        credits.consume()
        credits.consume()
        assert not credits.can_send()
        credits.refill()
        assert credits.can_send()
        assert credits.available == 1

    def test_underflow_raises(self):
        credits = CreditCounter(1)
        credits.consume()
        with pytest.raises(SimulationError):
            credits.consume()

    def test_overflow_raises(self):
        credits = CreditCounter(1)
        with pytest.raises(SimulationError):
            credits.refill()

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigError):
            CreditCounter(0)
