"""Unit tests for the topology abstraction layer.

Covers the registry (name dispatch and its error messages), each concrete
topology's geometry, the analytic hop models, the LINK_OFF gating, and
the route-table build-before-wiring error.
"""

import pytest

from repro.config import NetworkConfig
from repro.errors import ConfigError
from repro.network.arbiters import RoundRobinArbiter
from repro.network.buffers import CreditCounter
from repro.network.links import EJECTION, INJECTION, MESH, Link
from repro.network.router import OutputPort, Router
from repro.network.routing import EAST, NORTH, OPPOSITE, SOUTH, WEST
from repro.network.topologies import KNOWN_TOPOLOGIES, get_topology
from repro.network.topologies.cmesh import CMeshTopology
from repro.network.topologies.mesh import LineTopology, MeshTopology
from repro.network.topologies.torus import TorusTopology


def config(topology="mesh", width=4, height=4, locals_=2, **overrides):
    return NetworkConfig(mesh_width=width, mesh_height=height,
                         nodes_per_cluster=locals_, topology=topology,
                         **overrides)


class TestRegistry:
    @pytest.mark.parametrize("name,cls", [
        ("mesh", MeshTopology),
        ("torus", TorusTopology),
        ("cmesh", CMeshTopology),
        ("line", LineTopology),
    ])
    def test_dispatch(self, name, cls):
        topology = get_topology(config(name))
        assert type(topology) is cls
        assert topology.name == name

    def test_unknown_name_lists_the_known_ones(self):
        with pytest.raises(ConfigError) as exc:
            config("hypercube")
        message = str(exc.value)
        assert "hypercube" in message
        for name in KNOWN_TOPOLOGIES:
            assert name in message

    def test_torus_needs_two_vcs(self):
        with pytest.raises(ConfigError, match="num_vcs >= 2"):
            config("torus", num_vcs=1)

    def test_cmesh_concentration_must_divide(self):
        with pytest.raises(ConfigError, match="must divide"):
            config("cmesh", width=3, height=4)

    def test_node_count_is_topology_invariant(self):
        counts = {
            name: config(name).num_nodes for name in KNOWN_TOPOLOGIES
        }
        assert len(set(counts.values())) == 1


class TestMeshGeometry:
    def test_coords_row_major(self):
        topology = MeshTopology(3, 2, 2)
        assert topology.router_coords(0) == (0, 0)
        assert topology.router_coords(2) == (2, 0)
        assert topology.router_coords(3) == (0, 1)
        assert topology.router_at(2, 1) == 5

    def test_edge_routers_have_no_outward_neighbour(self):
        topology = MeshTopology(3, 2, 2)
        assert topology.neighbor(0, WEST) is None
        assert topology.neighbor(0, NORTH) is None
        assert topology.neighbor(0, EAST) == 1
        assert topology.neighbor(0, SOUTH) == 3

    def test_neighbour_relation_is_bijective(self):
        topology = MeshTopology(4, 3, 2)
        for rid in range(topology.num_routers):
            for direction in (EAST, WEST, NORTH, SOUTH):
                other = topology.neighbor(rid, direction)
                if other is not None:
                    assert topology.neighbor(other,
                                             OPPOSITE[direction]) == rid

    def test_mean_min_hops_matches_closed_form(self):
        for w, h in ((4, 4), (8, 8), (3, 5)):
            topology = MeshTopology(w, h, 2)
            closed = (w * w - 1) / (3.0 * w) + (h * h - 1) / (3.0 * h)
            assert topology.mean_min_hops() == closed

    def test_link_off_gating_locals_only(self):
        topology = MeshTopology(4, 4, 2)
        assert topology.link_off_allowed(INJECTION)
        assert topology.link_off_allowed(EJECTION)
        assert not topology.link_off_allowed(MESH)


class TestTorusGeometry:
    def test_wrap_neighbours(self):
        topology = TorusTopology(4, 4, 2)
        assert topology.neighbor(0, WEST) == 3
        assert topology.neighbor(3, EAST) == 0
        assert topology.neighbor(0, NORTH) == 12
        assert topology.neighbor(12, SOUTH) == 0

    def test_size_one_ring_has_no_self_link(self):
        topology = TorusTopology(1, 4, 2)
        assert topology.neighbor(0, EAST) is None
        assert topology.neighbor(0, WEST) is None

    def test_min_hops_uses_ring_distance(self):
        topology = TorusTopology(4, 4, 2)
        # (0,0) -> (3,0): one wrap hop west, not three east.
        assert topology.min_hops(0, 3) == 1
        # (0,0) -> (2,2): 2 + 2, no shorter wrap.
        assert topology.min_hops(0, topology.router_at(2, 2)) == 4

    def test_mean_min_hops_beats_mesh(self):
        assert TorusTopology(4, 4, 2).mean_min_hops() < \
            MeshTopology(4, 4, 2).mean_min_hops()

    def test_vc_class_marks_wrapping_journeys(self):
        topology = TorusTopology(4, 4, 2)
        # 0 -> 3 travels west with a wrap: dateline class 1.
        assert topology.vc_class(0, 3) == 1
        # 0 -> 1 travels east, no wrap: class 0.
        assert topology.vc_class(0, 1) == 0

    def test_rejects_non_dimension_order_routing(self):
        with pytest.raises(ConfigError):
            TorusTopology(4, 4, 2, routing="west_first")

    def test_link_off_allowed_everywhere(self):
        topology = TorusTopology(4, 4, 2)
        for kind in (INJECTION, EJECTION, MESH):
            assert topology.link_off_allowed(kind)


class TestCMeshGeometry:
    def test_wide_router_worklists_stay_polynomial(self):
        # A concentrated rack has P*c^2 + 4 ports; the work-list bitmask
        # expansion must chunk rather than precompute 2^36 tuples
        # (regression: construction used to hang / exhaust memory).
        from repro.network.router import _BITS, _BITS_LIMIT, _wide_bits

        topology = CMeshTopology(4, 4, 8, concentration=2)
        assert topology.nodes_per_router == 32
        router = Router(router_id=0, num_local=32, buffer_depth=64,
                        num_vcs=4, head_delay=3, topology=topology)
        assert router.num_ports == 36
        assert len(_BITS) <= _BITS_LIMIT
        # Chunked decode agrees with the table on every width.
        for mask in (0, 1, 0b1010, (1 << 35) | (1 << 16) | 0b11,
                     (1 << 36) - 1):
            expected = [b for b in range(40) if mask >> b & 1]
            assert _wide_bits(mask) == expected

    def test_concentration_shrinks_the_router_grid(self):
        topology = CMeshTopology(4, 4, 2, concentration=2)
        assert topology.grid_shape == (2, 2)
        assert topology.num_routers == 4
        assert topology.nodes_per_router == 8
        assert topology.num_nodes == 32

    def test_line_is_a_one_high_mesh(self):
        topology = LineTopology(6, 2)
        assert topology.grid_shape == (6, 1)
        assert topology.neighbor(0, SOUTH) is None
        assert topology.min_hops(0, 5) == 5


class TestFallbackDirections:
    def test_preferred_direction_comes_first(self):
        topology = MeshTopology(3, 3, 2)
        # 0 -> 8 (bottom-right): XY prefers east; south also productive.
        order = topology.fallback_directions(0, 8)
        assert order[0] == EAST
        assert SOUTH in order[1:]
        # Non-productive fallbacks follow the productive ones.
        assert order.index(SOUTH) < max(
            order.index(d) for d in order if d not in (EAST, SOUTH)
        )

    def test_all_four_directions_at_most_once(self):
        topology = MeshTopology(3, 3, 2)
        for src in range(topology.num_routers):
            for dst in range(topology.num_routers):
                if src == dst:
                    continue
                order = topology.fallback_directions(src, dst)
                assert len(order) == len(set(order))
                assert set(order) <= {EAST, WEST, NORTH, SOUTH}


class TestBuildRouteTableErrors:
    def test_build_before_wiring_is_a_config_error(self):
        topology = MeshTopology(2, 2, 2)
        router = Router(router_id=0, num_local=2, buffer_depth=8,
                        num_vcs=2, head_delay=3, topology=topology)
        with pytest.raises(ConfigError, match="no link attached"):
            router.build_route_table()

    def test_torus_table_needs_enough_vcs_for_classes(self):
        # Fully wired single-VC router on a 2x2 torus: the table builds,
        # but the dateline scheme needs two VC classes.
        topology = TorusTopology(2, 2, 2)
        router = Router(router_id=0, num_local=2, buffer_depth=8,
                        num_vcs=1, head_delay=3, topology=topology)
        for port in range(router.num_ports):
            kind = EJECTION if port < router.num_local else MESH
            credits = None if kind == EJECTION else [CreditCounter(8)]
            router.attach_output(port, OutputPort(
                Link(port, kind), credits=credits, num_vcs=1,
                arbiter=RoundRobinArbiter(router.num_ports)))
        with pytest.raises(ConfigError, match="VC classes"):
            router.build_route_table()
