"""Unit tests for the cycle-driven simulator core."""

import pytest

from repro.errors import ConfigError
from repro.network.simulator import Simulator
from repro.traffic.base import TrafficSource
from repro.traffic.trace import TraceRecord, TraceReplaySource
from repro.traffic.uniform import UniformRandomTraffic


class SilentTraffic(TrafficSource):
    """A source that never generates."""

    def generate(self, now):
        return []

    def exhausted(self, now):
        return True


class OneShotTraffic(TrafficSource):
    """Injects one configurable packet at cycle 0."""

    def __init__(self, num_nodes, src, dst, size):
        super().__init__(num_nodes)
        self._pending = [(src, dst, size)]

    def generate(self, now):
        if not self._pending:
            return []
        src, dst, size = self._pending.pop()
        return [self._make_packet(src, dst, size, now)]

    def exhausted(self, now):
        return not self._pending


class TestConstruction:
    def test_traffic_node_count_must_match(self, tiny_sim_config):
        wrong = UniformRandomTraffic(999, 0.1)
        with pytest.raises(ConfigError):
            Simulator(tiny_sim_config, wrong)

    def test_baseline_has_no_power_manager(self, tiny_baseline_config):
        sim = Simulator(tiny_baseline_config,
                        SilentTraffic(tiny_baseline_config.network.num_nodes))
        assert sim.power is None
        assert sim.relative_power() == 1.0

    def test_power_aware_has_manager(self, tiny_sim_config):
        sim = Simulator(tiny_sim_config,
                        SilentTraffic(tiny_sim_config.network.num_nodes))
        assert sim.power is not None


class TestDelivery:
    def test_single_packet_delivered(self, tiny_baseline_config):
        nodes = tiny_baseline_config.network.num_nodes
        sim = Simulator(tiny_baseline_config,
                        OneShotTraffic(nodes, src=0, dst=nodes - 1, size=3))
        sim.run(200)
        assert sim.stats.packets_delivered == 1

    def test_zero_load_latency_close_to_model(self, tiny_baseline_config):
        # One packet crossing the full diagonal of the 2x2 mesh.
        nodes = tiny_baseline_config.network.num_nodes
        sim = Simulator(tiny_baseline_config,
                        OneShotTraffic(nodes, src=0, dst=nodes - 1, size=1))
        sim.run(100)
        # 2 mesh hops: 3 routers x 3 pipeline + 4 links x 2 = 17 cycles.
        assert sim.stats.mean_latency == pytest.approx(17.0, abs=2.0)

    def test_idle_step_is_cheap_and_safe(self, tiny_baseline_config):
        sim = Simulator(tiny_baseline_config,
                        SilentTraffic(tiny_baseline_config.network.num_nodes))
        sim.run(100)
        assert sim.cycle == 100
        assert sim.stats.packets_created == 0

    def test_negative_cycles_rejected(self, tiny_baseline_config):
        sim = Simulator(tiny_baseline_config,
                        SilentTraffic(tiny_baseline_config.network.num_nodes))
        with pytest.raises(ConfigError):
            sim.run(-1)


class TestDeterminism:
    def test_identical_seeds_identical_runs(self, tiny_sim_config):
        def run():
            traffic = UniformRandomTraffic(
                tiny_sim_config.network.num_nodes, 0.3, seed=42)
            sim = Simulator(tiny_sim_config, traffic)
            sim.run(2000)
            return sim.summary()

        assert run() == run()

    def test_different_seeds_differ(self, tiny_sim_config):
        def run(seed):
            traffic = UniformRandomTraffic(
                tiny_sim_config.network.num_nodes, 0.3, seed=seed)
            sim = Simulator(tiny_sim_config, traffic)
            sim.run(2000)
            return sim.summary()

        assert run(1) != run(2)


class TestDrain:
    def test_run_until_drained(self, tiny_baseline_config):
        nodes = tiny_baseline_config.network.num_nodes
        records = [TraceRecord(0, 0, 1, 4), TraceRecord(10, 2, 5, 4)]
        sim = Simulator(tiny_baseline_config,
                        TraceReplaySource(nodes, records))
        assert sim.run_until_drained(5000, poll_interval=16)
        assert sim.stats.packets_delivered == 2
        assert sim.stats.in_flight == 0

    def test_drain_timeout_returns_false(self, tiny_baseline_config):
        nodes = tiny_baseline_config.network.num_nodes
        records = [TraceRecord(0, 0, nodes - 1, 8)]
        sim = Simulator(tiny_baseline_config,
                        TraceReplaySource(nodes, records))
        assert not sim.run_until_drained(3)

    def test_poll_interval_relative_to_start(self, tiny_baseline_config):
        # Resuming from a cycle that is not a multiple of poll_interval
        # must still poll on schedule: with the old absolute
        # ``cycle % poll_interval`` check this run would only test for
        # drain at its max_cycles deadline.
        nodes = tiny_baseline_config.network.num_nodes
        records = [TraceRecord(0, 0, 1, 4)]
        sim = Simulator(tiny_baseline_config,
                        TraceReplaySource(nodes, records))
        sim.run(37)  # arbitrary offset, coprime with the poll interval
        start = sim.cycle
        assert sim.run_until_drained(10_000, poll_interval=100)
        # Early exit happened at a poll, i.e. a multiple of poll_interval
        # cycles after the start, far before the deadline.
        assert (sim.cycle - start) % 100 == 0
        assert sim.cycle - start < 10_000

    def test_poll_interval_validated(self, tiny_baseline_config):
        nodes = tiny_baseline_config.network.num_nodes
        sim = Simulator(tiny_baseline_config, SilentTraffic(nodes))
        with pytest.raises(ConfigError):
            sim.run_until_drained(100, poll_interval=0)
        with pytest.raises(ConfigError):
            sim.run_until_drained(0)


class TestHooks:
    def test_delivery_hook_sees_every_flit(self, tiny_baseline_config):
        nodes = tiny_baseline_config.network.num_nodes
        sim = Simulator(tiny_baseline_config,
                        OneShotTraffic(nodes, src=0, dst=1, size=4))
        seen = []
        sim.hooks.add("delivery", lambda link, flit, now: seen.append(
            (link.link_id, flit.packet.packet_id, now)))
        sim.run_until_drained(5000, poll_interval=16)
        # 4 flits over injection + ejection links at least (same-rack pair
        # may still route through the router): every hop is observed.
        assert len(seen) >= 8
        assert all(now <= sim.cycle for _, _, now in seen)

    def test_phase_profiler_times_real_run(self, tiny_baseline_config):
        from repro.engine import PhaseProfiler
        from repro.network.simulator import PHASES

        nodes = tiny_baseline_config.network.num_nodes
        traffic = UniformRandomTraffic(nodes, 0.2, seed=2)
        sim = Simulator(tiny_baseline_config, traffic)
        profiler = PhaseProfiler().attach(sim.hooks)
        sim.run(500)
        assert set(profiler.calls) == set(PHASES)
        assert all(count == 500 for count in profiler.calls.values())
        profiler.detach()
        sim.run(100)
        assert profiler.calls["route"] == 500  # detached: no more timing

    def test_step_all_mode_matches_engine_mode(self, tiny_sim_config):
        def run(step_all):
            traffic = UniformRandomTraffic(
                tiny_sim_config.network.num_nodes, 0.3, seed=9)
            sim = Simulator(tiny_sim_config, traffic, step_all=step_all)
            sim.run(1200)
            return sim.summary(), tuple(sim.power.power_series)

        assert run(False) == run(True)


class TestSummary:
    def test_summary_includes_power(self, tiny_sim_config):
        traffic = UniformRandomTraffic(
            tiny_sim_config.network.num_nodes, 0.2, seed=1)
        sim = Simulator(tiny_sim_config, traffic)
        sim.run(1000)
        summary = sim.summary()
        assert 0.0 < summary["relative_power"] <= 1.0
        assert summary["cycles"] == 1000.0


class DelayedOneShot(TrafficSource):
    """Injects one packet at a configurable (late) cycle."""

    def __init__(self, num_nodes, at, src=0, dst=None, size=4):
        super().__init__(num_nodes)
        self.at = at
        self.src = src
        self.dst = num_nodes - 1 if dst is None else dst
        self.size = size
        self._sent = False

    def generate(self, now):
        if now == self.at and not self._sent:
            self._sent = True
            return [self._make_packet(self.src, self.dst, self.size, now)]
        return []

    def exhausted(self, now):
        return self._sent


class TestStallWatchdogLateAttach:
    """Regression: StallWatchdog initialised ``_last_progress_cycle`` to 0,
    so one attached to a simulator that had already run reported a bogus
    stall spanning the whole pre-attach history.  It must start from the
    simulator's current cycle."""

    def test_no_bogus_stall_after_late_attach(self, tiny_network):
        from repro.config import SimulationConfig
        from repro.network.simulator import StallWatchdog

        config = SimulationConfig(network=tiny_network, power=None,
                                  sample_interval=100,
                                  stall_limit_cycles=0)
        nodes = tiny_network.num_nodes
        sim = Simulator(config, DelayedOneShot(nodes, at=1000))
        sim.run(1000)  # a silent kilocycle before the watchdog exists
        watchdog = StallWatchdog(sim, limit=256).attach()
        assert watchdog._last_progress_cycle == 1000
        # The packet injected at cycle 1000 is in flight when the first
        # check fires; with the old zero init this raised SimulationError
        # ("no flit delivered for 1000 cycles").
        sim.run(300)
        assert sim.stats.packets_delivered == 1


class TestDrainBatching:
    """Regression: run_until_drained must stay bit-identical to the
    stepped reference loop it replaced (one step() per cycle, drain check
    on poll-interval boundaries relative to the start)."""

    def _stepped_reference(self, sim, max_cycles, poll_interval):
        start = sim.cycle
        while sim.cycle - start < max_cycles:
            sim.step()
            if (sim.cycle - start) % poll_interval == 0 \
                    and sim._is_drained():
                return True
        return sim._is_drained()

    def test_batched_matches_stepped_reference(self, tiny_sim_config):
        nodes = tiny_sim_config.network.num_nodes

        def make():
            return Simulator(tiny_sim_config,
                             OneShotTraffic(nodes, 0, nodes - 1, 4))

        batched = make()
        reference = make()
        poll = 7  # deliberately not a divisor of anything interesting
        drained_a = batched.run_until_drained(2000, poll_interval=poll)
        drained_b = self._stepped_reference(reference, 2000, poll)
        assert drained_a is True and drained_b is True
        assert batched.cycle == reference.cycle
        assert batched.summary() == reference.summary()

    def test_batched_matches_reference_when_never_draining(
            self, tiny_sim_config):
        nodes = tiny_sim_config.network.num_nodes

        def make():
            traffic = UniformRandomTraffic(nodes, 0.1, seed=5)
            return Simulator(tiny_sim_config, traffic)

        batched = make()
        reference = make()
        drained_a = batched.run_until_drained(500, poll_interval=64)
        drained_b = self._stepped_reference(reference, 500, 64)
        assert drained_a is False and drained_b is False
        assert batched.cycle == reference.cycle == 500
        assert batched.summary() == reference.summary()


class TestStallDiagnosticsStayLazy:
    """The congestion report (``repro.metrics.inspect``) walks the whole
    network and is only worth building when a stall is actually being
    diagnosed.  Its import must therefore stay out of the watchdog's
    healthy path: a progressing run — in either engine or step-all mode —
    must never load the module, while raising the stall error must."""

    def _run_progressing(self, tiny_network, step_all):
        from repro.config import SimulationConfig

        config = SimulationConfig(network=tiny_network, power=None,
                                  sample_interval=100,
                                  stall_limit_cycles=256)
        nodes = tiny_network.num_nodes
        sim = Simulator(config, UniformRandomTraffic(nodes, 0.1, seed=4),
                        step_all=step_all)
        sim.run(2000)
        assert sim.stats.packets_delivered > 0
        return sim

    @pytest.mark.parametrize("step_all", [False, True])
    def test_healthy_watchdog_never_imports_inspect(
            self, tiny_network, step_all, monkeypatch):
        import sys

        monkeypatch.delitem(sys.modules, "repro.metrics.inspect",
                            raising=False)
        self._run_progressing(tiny_network, step_all)
        assert "repro.metrics.inspect" not in sys.modules

    def test_stall_error_imports_and_embeds_report(self, tiny_network,
                                                   monkeypatch):
        import sys

        from repro.network.simulator import _stall_error

        sim = self._run_progressing(tiny_network, step_all=False)
        monkeypatch.delitem(sys.modules, "repro.metrics.inspect",
                            raising=False)
        err = _stall_error(sim, "synthetic stall for the test.")
        assert "repro.metrics.inspect" in sys.modules
        assert "synthetic stall for the test." in str(err)
