"""Unit tests for the topology self-check."""

import pytest

from repro.config import NetworkConfig
from repro.network.stats import StatsCollector
from repro.network.topology import ClusteredMesh
from repro.network.validation import validate_topology


def build(**overrides) -> ClusteredMesh:
    defaults = {"mesh_width": 3, "mesh_height": 2, "nodes_per_cluster": 2,
                "buffer_depth": 8, "num_vcs": 2}
    defaults.update(overrides)
    return ClusteredMesh(NetworkConfig(**defaults), StatsCollector())


class TestCleanTopologies:
    @pytest.mark.parametrize("shape", [
        {"mesh_width": 1, "mesh_height": 1, "nodes_per_cluster": 2},
        {"mesh_width": 2, "mesh_height": 2, "nodes_per_cluster": 1},
        {"mesh_width": 4, "mesh_height": 3, "nodes_per_cluster": 4},
        {"mesh_width": 8, "mesh_height": 8, "nodes_per_cluster": 8,
         "buffer_depth": 16, "num_vcs": 4},
    ])
    def test_builder_output_validates(self, shape):
        defaults = {"buffer_depth": 8, "num_vcs": 2}
        defaults.update(shape)
        mesh = ClusteredMesh(NetworkConfig(**defaults), StatsCollector())
        assert validate_topology(mesh) == []


class TestDetection:
    def test_detects_missing_deliver(self):
        mesh = build()
        mesh.links[0].deliver = None
        problems = validate_topology(mesh)
        assert any("undelivered" in p for p in problems)

    def test_detects_unwired_node(self):
        mesh = build()
        mesh.nodes[0].link = None
        problems = validate_topology(mesh)
        assert any("no injection wiring" in p for p in problems)

    def test_detects_missing_mesh_output(self):
        mesh = build()
        # Corner router's east output should exist on a 3-wide mesh.
        from repro.network.routing import EAST

        locals_ = mesh.config.nodes_per_cluster
        mesh.routers[0].outputs[locals_ + EAST] = None
        problems = validate_topology(mesh)
        assert any("missing east output" in p for p in problems)

    def test_detects_foreign_credits(self):
        mesh = build()
        from repro.network.buffers import CreditCounter
        from repro.network.routing import EAST

        locals_ = mesh.config.nodes_per_cluster
        output = mesh.routers[0].outputs[locals_ + EAST]
        output.credits = [CreditCounter(4) for _ in range(2)]
        problems = validate_topology(mesh)
        assert any("not the neighbour's upstream counters" in p
                   for p in problems)
