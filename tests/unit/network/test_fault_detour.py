"""Regression tests for dateline-class handling on fault detours.

A torus detour can leave the fabric travelling a different direction
than the minimal route the RC-stage class table described — e.g. a
perpendicular hop off the y=0 edge crosses the column ring's wrap link
even though the canonical route never wrapped.  The class latched for VC
allocation must be re-derived for the direction actually chosen
(:meth:`Topology.detour_vc_class`), or the worm travels the wrap edge in
class 0 and can close exactly the credit cycle the dateline scheme
exists to break.

The first two tests fail against the pre-fix router (which kept the
canonical class on detours); the drain test pins the behavioural
consequence — a torus with a dead link keeps delivering without
deadlock.
"""

from repro.config import NetworkConfig, SimulationConfig
from repro.network.packet import Packet
from repro.network.routing import EAST, NORTH
from repro.network.simulator import Simulator
from repro.network.stats import StatsCollector
from repro.network.topology import NetworkFabric
from repro.reliability import FaultConfig, LinkFailure
from tests.integration.test_reliability import FiniteUniformSource


def make_torus(width=4, height=4, locals_=2):
    network = NetworkConfig(mesh_width=width, mesh_height=height,
                            nodes_per_cluster=locals_, buffer_depth=8,
                            num_vcs=2, topology="torus")
    return NetworkFabric(network, StatsCollector())


class TestDetourClass:
    def test_detour_rederives_the_dateline_class(self):
        # Router 0 sits in the (0, 0) corner; destination router 1 is one
        # hop east, a minimal route that never wraps (class 0).  With the
        # east link dead the detour preference order picks NORTH, which
        # IS the column ring's wrap edge from y=0 — the latched class
        # must flip to 1.
        fabric = make_torus()
        router = fabric.routers[0]
        east_port = router.num_local + EAST
        router.outputs[east_port].link.failed = True

        packet = Packet(1, src=0, dst=1 * router.num_local, size=1,
                        create_time=0)
        (flit,) = packet.make_flits()
        out = router._route(flit)
        direction = out - router.num_local

        assert direction == NORTH
        assert fabric.topology.vc_class(0, 1) == 0
        assert fabric.topology.detour_vc_class(0, 1, direction) == 1
        assert router._rc_class == 1

    def test_detour_grant_comes_from_the_rederived_band(self):
        # Same scenario end-to-end through the router pipeline: the VC
        # granted for the detour hop must come from the class-1 band
        # (VC 1 of 2), not the canonical class-0 band.
        fabric = make_torus()
        router = fabric.routers[0]
        east_port = router.num_local + EAST
        router.outputs[east_port].link.failed = True

        packet = Packet(1, src=0, dst=1 * router.num_local, size=1,
                        create_time=0)
        for head in packet.make_flits():
            head.vc = 0
            # Injecting straight into the input port bypasses the
            # injection link, so balance the credit the forward stage
            # will refill.
            credits = router.inputs[0].upstream_credits
            if credits is not None:
                credits[head.vc].consume()
            router.receive_flit(0, head, 0.0)
        forwarded = []
        for t in range(8):
            forwarded += router.step(float(t))
        assert len(forwarded) == 1
        out, flit = forwarded[0]
        assert out == router.num_local + NORTH
        assert flit.vc == 1  # class-1 band of a 2-VC torus port

    def test_minimal_route_class_is_unchanged(self):
        # Sanity: with every link alive the table path still latches the
        # canonical class — the fix only touches the detour branch.
        fabric = make_torus()
        router = fabric.routers[0]
        packet = Packet(1, src=0, dst=1 * router.num_local, size=1,
                        create_time=0)
        (flit,) = packet.make_flits()
        assert router._route(flit) == router.num_local + EAST
        assert router._rc_class == 0


class TestTorusLinkFailureDrain:
    def test_torus_drains_after_a_wrapless_link_dies(self):
        # Kill router 0's east link mid-run on a 4x4 torus and require
        # the run to drain completely: detoured worms now cross wrap
        # edges their canonical class never accounted for, so a
        # class-inconsistent grant would be able to wedge the rings.
        network = NetworkConfig(mesh_width=4, mesh_height=4,
                                nodes_per_cluster=2, num_vcs=2,
                                topology="torus")
        fabric = NetworkFabric(network, StatsCollector())
        dead = fabric.routers[0].outputs[
            fabric.routers[0].num_local + EAST].link.link_id
        config = SimulationConfig(
            network=network,
            power=None,
            faults=FaultConfig(
                seed=7,
                failures=(LinkFailure(dead, at_cycle=500),),
            ),
            stall_limit_cycles=4000,
        )
        traffic = FiniteUniformSource(network.num_nodes, seed=3,
                                      rate=0.3, until=2000)
        sim = Simulator(config, traffic)
        assert sim.run_until_drained(40_000)
        assert sim.stats.packets_delivered == sim.stats.packets_created
        assert sim.stats.packets_created > 100
        report = sim.reliability.report()
        assert report.failed_links == 1
        assert report.reroutes > 0
