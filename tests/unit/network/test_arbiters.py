"""Unit tests for the round-robin and matrix arbiters."""

import pytest

from repro.errors import ConfigError
from repro.network.arbiters import MatrixArbiter, RoundRobinArbiter


class TestRoundRobin:
    def test_single_requester_wins(self):
        arbiter = RoundRobinArbiter(4)
        assert arbiter.grant([2]) == 2

    def test_no_requests(self):
        assert RoundRobinArbiter(4).grant([]) == -1

    def test_rotation_after_grant(self):
        arbiter = RoundRobinArbiter(4)
        assert arbiter.grant([0, 1]) == 0
        # Priority rotated past 0, so 1 wins the rematch.
        assert arbiter.grant([0, 1]) == 1

    def test_round_robin_is_fair_over_cycle(self):
        arbiter = RoundRobinArbiter(3)
        winners = [arbiter.grant([0, 1, 2]) for _ in range(6)]
        assert winners == [0, 1, 2, 0, 1, 2]

    def test_wraps_around(self):
        arbiter = RoundRobinArbiter(4)
        arbiter.grant([3])
        assert arbiter.grant([0, 3]) == 0

    def test_out_of_range_request_rejected(self):
        with pytest.raises(ConfigError):
            RoundRobinArbiter(2).grant([5])

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigError):
            RoundRobinArbiter(0)


class TestMatrix:
    def test_single_requester_wins(self):
        assert MatrixArbiter(4).grant([3]) == 3

    def test_no_requests(self):
        assert MatrixArbiter(4).grant([]) == -1

    def test_least_recently_served(self):
        arbiter = MatrixArbiter(3)
        assert arbiter.grant([0, 1]) == 0
        # 0 just won, so it now loses to everyone.
        assert arbiter.grant([0, 1]) == 1
        assert arbiter.grant([0, 2]) == 2
        assert arbiter.grant([1, 2]) == 1

    def test_fair_over_cycle(self):
        arbiter = MatrixArbiter(3)
        winners = [arbiter.grant([0, 1, 2]) for _ in range(6)]
        assert sorted(winners[:3]) == [0, 1, 2]
        assert sorted(winners[3:]) == [0, 1, 2]

    def test_out_of_range_request_rejected(self):
        with pytest.raises(ConfigError):
            MatrixArbiter(2).grant([2])
