"""Unit tests for the virtual-channel router, driven in isolation.

A single router is wired by hand with stub links so pipeline timing, VC
allocation, wormhole ownership and credit behaviour can be asserted
cycle by cycle.
"""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.network.arbiters import RoundRobinArbiter
from repro.network.buffers import CreditCounter
from repro.network.links import EJECTION, MESH, Link
from repro.network.packet import Packet
from repro.network.router import OutputPort, Router
from repro.network.routing import EAST, xy_route

NUM_VCS = 2
BUFFER_DEPTH = 8


def make_router(num_local=2, x=0, y=0, width=2) -> Router:
    return Router(router_id=y * width + x, x=x, y=y, mesh_width=width,
                  num_local=num_local, buffer_depth=BUFFER_DEPTH,
                  num_vcs=NUM_VCS, head_delay=3, route_fn=xy_route,
                  nodes_per_cluster=num_local)


def attach_all_outputs(router: Router) -> dict[int, Link]:
    """Attach ejection links on local ports and a mesh link heading east."""
    links = {}
    for port in range(router.num_local):
        link = Link(port, EJECTION)
        router.attach_output(port, OutputPort(
            link, credits=None, num_vcs=NUM_VCS,
            arbiter=RoundRobinArbiter(router.num_ports * NUM_VCS)))
        links[port] = link
    east_port = router.num_local + EAST
    link = Link(east_port, MESH)
    credits = [CreditCounter(BUFFER_DEPTH // NUM_VCS) for _ in range(NUM_VCS)]
    router.attach_output(east_port, OutputPort(
        link, credits=credits, num_vcs=NUM_VCS,
        arbiter=RoundRobinArbiter(router.num_ports * NUM_VCS)))
    links[east_port] = link
    return links


def inject(router: Router, port: int, packet: Packet, now: float, vc=0):
    for flit in packet.make_flits():
        flit.vc = vc
        router.receive_flit(port, flit, now)


def run_steps(router: Router, cycles: int, start: int = 0):
    """Step the router over a time range, collecting forwarded flits."""
    forwarded = []
    for t in range(start, start + cycles):
        forwarded += router.step(float(t))
    return forwarded


class TestPipelineTiming:
    def test_head_waits_pipeline_delay(self):
        router = make_router()
        links = attach_all_outputs(router)
        packet = Packet(1, src=0, dst=1, size=1, create_time=0)  # local eject
        inject(router, 0, packet, now=0.0)
        assert router.step(0.0) == []          # RC done, waiting VA/SA
        assert router.step(2.0) == []          # still in pipeline
        forwarded = router.step(3.0)           # head_delay elapsed
        assert len(forwarded) == 1
        assert forwarded[0][0] == 1            # ejection port of node 1
        assert links[1].has_in_flight

    def test_body_flits_follow_one_per_cycle(self):
        router = make_router()
        attach_all_outputs(router)
        packet = Packet(1, src=0, dst=1, size=3, create_time=0)
        inject(router, 0, packet, now=0.0)
        sent = []
        for t in range(8):
            sent += [f.index for _, f in router.step(float(t))]
        assert sent == [0, 1, 2]


class TestRouting:
    def test_local_delivery_port(self):
        router = make_router()
        attach_all_outputs(router)
        # dst 0 lives on this router (router 0, local 0).
        packet = Packet(1, src=1, dst=0, size=1, create_time=0)
        inject(router, 1, packet, now=0.0)
        forwarded = run_steps(router, 6)
        assert forwarded[0][0] == 0

    def test_remote_goes_east(self):
        router = make_router()
        attach_all_outputs(router)
        # dst node 2 -> router 1 (east neighbour on a 2-wide mesh).
        packet = Packet(1, src=0, dst=2, size=1, create_time=0)
        inject(router, 0, packet, now=0.0)
        forwarded = run_steps(router, 6)
        assert forwarded[0][0] == router.num_local + EAST

    def test_body_flit_without_route_is_invariant_violation(self):
        router = make_router()
        attach_all_outputs(router)
        packet = Packet(1, src=0, dst=1, size=2, create_time=0)
        body = packet.make_flits()[1]
        router.receive_flit(0, body, 0.0)
        with pytest.raises(SimulationError):
            router.step(0.0)


class TestWormhole:
    def test_packets_do_not_interleave_within_vc(self):
        # A single-VC router: both packets must share the one downstream
        # VC, so the owner holds it until its tail passes.
        router = Router(router_id=0, x=0, y=0, mesh_width=2, num_local=2,
                        buffer_depth=8, num_vcs=1, head_delay=3,
                        route_fn=xy_route, nodes_per_cluster=2)
        for port in range(router.num_local):
            router.attach_output(port, OutputPort(
                Link(port, EJECTION), credits=None, num_vcs=1,
                arbiter=RoundRobinArbiter(router.num_ports)))
        a = Packet(1, src=0, dst=1, size=3, create_time=0)
        b = Packet(2, src=0, dst=1, size=3, create_time=0)
        inject(router, 0, a, now=0.0, vc=0)
        inject(router, 1, b, now=0.0, vc=0)
        order = []
        for t in range(14):
            order += [f.packet.packet_id for _, f in router.step(float(t))]
        # Ids must appear as two contiguous runs (one VC, held per packet).
        assert sorted(order) == [1, 1, 1, 2, 2, 2]
        switch_points = sum(
            1 for i in range(1, len(order)) if order[i] != order[i - 1]
        )
        assert switch_points == 1

    def test_two_vcs_interleave_on_one_link(self):
        router = make_router()
        attach_all_outputs(router)
        a = Packet(1, src=0, dst=2, size=4, create_time=0)
        b = Packet(2, src=0, dst=2, size=4, create_time=0)
        inject(router, 0, a, now=0.0, vc=0)
        inject(router, 1, b, now=0.0, vc=0)
        order = []
        for t in range(16):
            order += [f.packet.packet_id for _, f in router.step(float(t))]
        # Different downstream VCs -> flit-level interleaving is allowed
        # (and the round-robin arbiter produces it).
        assert sorted(order) == [1, 1, 1, 1, 2, 2, 2, 2]
        switch_points = sum(
            1 for i in range(1, len(order)) if order[i] != order[i - 1]
        )
        assert switch_points > 1


class TestCredits:
    def test_mesh_sends_stop_without_credits(self):
        router = make_router()
        links = attach_all_outputs(router)
        east_port = router.num_local + EAST
        op = router.outputs[east_port]
        for credits in op.credits:
            while credits.can_send():
                credits.consume()
        packet = Packet(1, src=0, dst=2, size=1, create_time=0)
        inject(router, 0, packet, now=0.0)
        assert run_steps(router, 8) == []
        assert not links[east_port].has_in_flight

    def test_upstream_credit_refilled_on_forward(self):
        router = make_router()
        attach_all_outputs(router)
        upstream = [CreditCounter(4) for _ in range(NUM_VCS)]
        upstream[0].consume()
        router.inputs[0].upstream_credits = upstream
        packet = Packet(1, src=0, dst=1, size=1, create_time=0)
        inject(router, 0, packet, now=0.0)
        run_steps(router, 6)
        assert upstream[0].available == 4


class TestConstruction:
    def test_double_attach_rejected(self):
        router = make_router()
        link = Link(0, EJECTION)
        port = OutputPort(link, credits=None, num_vcs=NUM_VCS,
                          arbiter=RoundRobinArbiter(4))
        router.attach_output(0, port)
        with pytest.raises(ConfigError):
            router.attach_output(0, port)

    def test_buffer_smaller_than_vcs_rejected(self):
        with pytest.raises(ConfigError):
            Router(0, 0, 0, 2, num_local=2, buffer_depth=1, num_vcs=2,
                   head_delay=3, route_fn=xy_route, nodes_per_cluster=2)

    def test_unattached_output_is_simulation_error(self):
        router = make_router()
        # Only attach local ports; then route a packet east.
        for port in range(router.num_local):
            router.attach_output(port, OutputPort(
                Link(port, EJECTION), credits=None, num_vcs=NUM_VCS,
                arbiter=RoundRobinArbiter(4)))
        packet = Packet(1, src=0, dst=2, size=1, create_time=0)
        inject(router, 0, packet, now=0.0)
        with pytest.raises(SimulationError):
            run_steps(router, 6)


class TestMalformedInput:
    def test_out_of_range_vc_rejected(self):
        router = make_router()
        attach_all_outputs(router)
        packet = Packet(1, src=0, dst=1, size=1, create_time=0)
        (flit,) = packet.make_flits()
        flit.vc = 7  # router only has NUM_VCS=2
        with pytest.raises(SimulationError, match="VC 7"):
            router.receive_flit(0, flit, 0.0)

    def test_negative_vc_rejected(self):
        router = make_router()
        attach_all_outputs(router)
        packet = Packet(1, src=0, dst=1, size=1, create_time=0)
        (flit,) = packet.make_flits()
        flit.vc = -1
        with pytest.raises(SimulationError):
            router.receive_flit(0, flit, 0.0)
