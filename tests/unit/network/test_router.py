"""Unit tests for the virtual-channel router, driven in isolation.

A single router is wired by hand with stub links so pipeline timing, VC
allocation, wormhole ownership and credit behaviour can be asserted
cycle by cycle.
"""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.network.arbiters import RoundRobinArbiter
from repro.network.buffers import CreditCounter
from repro.network.links import EJECTION, MESH, Link
from repro.network.packet import Packet
from repro.network.router import OutputPort, Router
from repro.network.routing import EAST
from repro.network.topologies.mesh import MeshTopology

NUM_VCS = 2
BUFFER_DEPTH = 8


def make_router(num_local=2, x=0, y=0, width=2) -> Router:
    topology = MeshTopology(width, 2, num_local)
    return Router(router_id=y * width + x, num_local=num_local,
                  buffer_depth=BUFFER_DEPTH, num_vcs=NUM_VCS, head_delay=3,
                  topology=topology)


def attach_all_outputs(router: Router) -> dict[int, Link]:
    """Attach ejection links on local ports and a mesh link heading east."""
    links = {}
    for port in range(router.num_local):
        link = Link(port, EJECTION)
        router.attach_output(port, OutputPort(
            link, credits=None, num_vcs=NUM_VCS,
            arbiter=RoundRobinArbiter(router.num_ports * NUM_VCS)))
        links[port] = link
    east_port = router.num_local + EAST
    link = Link(east_port, MESH)
    credits = [CreditCounter(BUFFER_DEPTH // NUM_VCS) for _ in range(NUM_VCS)]
    router.attach_output(east_port, OutputPort(
        link, credits=credits, num_vcs=NUM_VCS,
        arbiter=RoundRobinArbiter(router.num_ports * NUM_VCS)))
    links[east_port] = link
    return links


def inject(router: Router, port: int, packet: Packet, now: float, vc=0):
    for flit in packet.make_flits():
        flit.vc = vc
        router.receive_flit(port, flit, now)


def run_steps(router: Router, cycles: int, start: int = 0):
    """Step the router over a time range, collecting forwarded flits."""
    forwarded = []
    for t in range(start, start + cycles):
        forwarded += router.step(float(t))
    return forwarded


class TestPipelineTiming:
    def test_head_waits_pipeline_delay(self):
        router = make_router()
        links = attach_all_outputs(router)
        packet = Packet(1, src=0, dst=1, size=1, create_time=0)  # local eject
        inject(router, 0, packet, now=0.0)
        assert router.step(0.0) == []          # RC done, waiting VA/SA
        assert router.step(2.0) == []          # still in pipeline
        forwarded = router.step(3.0)           # head_delay elapsed
        assert len(forwarded) == 1
        assert forwarded[0][0] == 1            # ejection port of node 1
        assert links[1].has_in_flight

    def test_body_flits_follow_one_per_cycle(self):
        router = make_router()
        attach_all_outputs(router)
        packet = Packet(1, src=0, dst=1, size=3, create_time=0)
        inject(router, 0, packet, now=0.0)
        sent = []
        for t in range(8):
            sent += [f.index for _, f in router.step(float(t))]
        assert sent == [0, 1, 2]


class TestRouting:
    def test_local_delivery_port(self):
        router = make_router()
        attach_all_outputs(router)
        # dst 0 lives on this router (router 0, local 0).
        packet = Packet(1, src=1, dst=0, size=1, create_time=0)
        inject(router, 1, packet, now=0.0)
        forwarded = run_steps(router, 6)
        assert forwarded[0][0] == 0

    def test_remote_goes_east(self):
        router = make_router()
        attach_all_outputs(router)
        # dst node 2 -> router 1 (east neighbour on a 2-wide mesh).
        packet = Packet(1, src=0, dst=2, size=1, create_time=0)
        inject(router, 0, packet, now=0.0)
        forwarded = run_steps(router, 6)
        assert forwarded[0][0] == router.num_local + EAST

    def test_body_flit_without_route_is_invariant_violation(self):
        router = make_router()
        attach_all_outputs(router)
        packet = Packet(1, src=0, dst=1, size=2, create_time=0)
        body = packet.make_flits()[1]
        router.receive_flit(0, body, 0.0)
        with pytest.raises(SimulationError):
            router.step(0.0)


class TestWormhole:
    def test_packets_do_not_interleave_within_vc(self):
        # A single-VC router: both packets must share the one downstream
        # VC, so the owner holds it until its tail passes.
        router = Router(router_id=0, num_local=2, buffer_depth=8, num_vcs=1,
                        head_delay=3, topology=MeshTopology(2, 2, 2))
        for port in range(router.num_local):
            router.attach_output(port, OutputPort(
                Link(port, EJECTION), credits=None, num_vcs=1,
                arbiter=RoundRobinArbiter(router.num_ports)))
        a = Packet(1, src=0, dst=1, size=3, create_time=0)
        b = Packet(2, src=0, dst=1, size=3, create_time=0)
        inject(router, 0, a, now=0.0, vc=0)
        inject(router, 1, b, now=0.0, vc=0)
        order = []
        for t in range(14):
            order += [f.packet.packet_id for _, f in router.step(float(t))]
        # Ids must appear as two contiguous runs (one VC, held per packet).
        assert sorted(order) == [1, 1, 1, 2, 2, 2]
        switch_points = sum(
            1 for i in range(1, len(order)) if order[i] != order[i - 1]
        )
        assert switch_points == 1

    def test_two_vcs_interleave_on_one_link(self):
        router = make_router()
        attach_all_outputs(router)
        a = Packet(1, src=0, dst=2, size=4, create_time=0)
        b = Packet(2, src=0, dst=2, size=4, create_time=0)
        inject(router, 0, a, now=0.0, vc=0)
        inject(router, 1, b, now=0.0, vc=0)
        order = []
        for t in range(16):
            order += [f.packet.packet_id for _, f in router.step(float(t))]
        # Different downstream VCs -> flit-level interleaving is allowed
        # (and the round-robin arbiter produces it).
        assert sorted(order) == [1, 1, 1, 1, 2, 2, 2, 2]
        switch_points = sum(
            1 for i in range(1, len(order)) if order[i] != order[i - 1]
        )
        assert switch_points > 1


class TestCredits:
    def test_mesh_sends_stop_without_credits(self):
        router = make_router()
        links = attach_all_outputs(router)
        east_port = router.num_local + EAST
        op = router.outputs[east_port]
        for credits in op.credits:
            while credits.can_send():
                credits.consume()
        packet = Packet(1, src=0, dst=2, size=1, create_time=0)
        inject(router, 0, packet, now=0.0)
        assert run_steps(router, 8) == []
        assert not links[east_port].has_in_flight

    def test_upstream_credit_refilled_on_forward(self):
        router = make_router()
        attach_all_outputs(router)
        upstream = [CreditCounter(4) for _ in range(NUM_VCS)]
        upstream[0].consume()
        router.inputs[0].upstream_credits = upstream
        packet = Packet(1, src=0, dst=1, size=1, create_time=0)
        inject(router, 0, packet, now=0.0)
        run_steps(router, 6)
        assert upstream[0].available == 4


class TestConstruction:
    def test_double_attach_rejected(self):
        router = make_router()
        link = Link(0, EJECTION)
        port = OutputPort(link, credits=None, num_vcs=NUM_VCS,
                          arbiter=RoundRobinArbiter(4))
        router.attach_output(0, port)
        with pytest.raises(ConfigError):
            router.attach_output(0, port)

    def test_buffer_smaller_than_vcs_rejected(self):
        with pytest.raises(ConfigError):
            Router(router_id=0, num_local=2, buffer_depth=1, num_vcs=2,
                   head_delay=3, topology=MeshTopology(2, 2, 2))

    def test_unattached_output_is_simulation_error(self):
        router = make_router()
        # Only attach local ports; then route a packet east.
        for port in range(router.num_local):
            router.attach_output(port, OutputPort(
                Link(port, EJECTION), credits=None, num_vcs=NUM_VCS,
                arbiter=RoundRobinArbiter(4)))
        packet = Packet(1, src=0, dst=2, size=1, create_time=0)
        inject(router, 0, packet, now=0.0)
        with pytest.raises(SimulationError):
            run_steps(router, 6)


def make_mesh():
    """A fully wired 2x2 mesh (the route tables need attached outputs)."""
    from repro.config import NetworkConfig
    from repro.network.stats import StatsCollector
    from repro.network.topology import ClusteredMesh

    network = NetworkConfig(mesh_width=2, mesh_height=2, nodes_per_cluster=2,
                            buffer_depth=8, num_vcs=2)
    return ClusteredMesh(network, StatsCollector())


class TestRouteTable:
    def test_table_matches_the_topology_routing_everywhere(self):
        mesh = make_mesh()
        for router in mesh.routers:
            table = router._route_table
            assert table is not None and len(table) == len(mesh.routers)
            for dst_router, out in enumerate(table):
                if dst_router == router.router_id:
                    assert out == -1
                    continue
                direction = mesh.topology.route_direction(
                    router.router_id, dst_router
                )
                assert out == router.num_local + direction

    def test_route_uses_the_table(self):
        mesh = make_mesh()
        router = mesh.routers[0]
        packet = Packet(1, src=0, dst=7, size=1, create_time=0)
        (flit,) = packet.make_flits()
        # dst node 7 -> router 3: XY goes east first.
        assert router._route(flit) == router._route_table[3]
        assert router._route_table[3] == router.num_local + EAST

    def test_local_delivery_resolves_before_the_table(self):
        mesh = make_mesh()
        router = mesh.routers[0]
        packet = Packet(1, src=2, dst=1, size=1, create_time=0)
        (flit,) = packet.make_flits()
        assert router._route(flit) == 1  # local ejection port

    def test_invalidate_clears_only_routes_through_the_port(self):
        mesh = make_mesh()
        router = mesh.routers[0]
        east_port = router.num_local + EAST
        before = list(router._route_table)
        router.invalidate_routes_via(east_port)
        for dst, out in enumerate(router._route_table):
            if before[dst] == east_port:
                assert out == -1
            else:
                assert out == before[dst]

    def test_invalidated_route_falls_back_to_the_routing_function(self):
        mesh = make_mesh()
        router = mesh.routers[0]
        east_port = router.num_local + EAST
        router.invalidate_routes_via(east_port)
        packet = Packet(1, src=0, dst=7, size=1, create_time=0)
        (flit,) = packet.make_flits()
        # The link is alive, so the slow path recomputes the same answer.
        assert router._route(flit) == east_port

    def test_stale_table_hit_never_routes_onto_a_failed_link(self):
        mesh = make_mesh()
        router = mesh.routers[0]
        east_port = router.num_local + EAST
        router.outputs[east_port].link.failed = True
        # The table still names the east port (no invalidation happened);
        # the defensive check must reject it and detour south instead.
        assert router._route_table[3] == east_port
        packet = Packet(1, src=0, dst=7, size=1, create_time=0)
        (flit,) = packet.make_flits()
        detour = router._route(flit)
        assert detour != east_port
        assert not router.outputs[detour].link.failed

    def test_standalone_router_has_no_table(self):
        router = make_router()
        attach_all_outputs(router)
        assert router._route_table is None
        packet = Packet(1, src=0, dst=2, size=1, create_time=0)
        (flit,) = packet.make_flits()
        assert router._route(flit) == router.num_local + EAST


class TestWorkListInvariants:
    """The incremental work-list state (`_active_mask`, per-port `nonempty`
    VC masks, per-port `occupancy` counters) must mirror the buffers at
    every step boundary."""

    def assert_consistent(self, router: Router) -> None:
        for index, ip in enumerate(router.inputs):
            expected_occupancy = 0
            expected_nonempty = 0
            for v, vc in enumerate(ip.vcs):
                held = len(vc.buffer)
                expected_occupancy += held
                if held:
                    expected_nonempty |= 1 << v
            assert ip.occupancy == expected_occupancy
            assert ip.nonempty == expected_nonempty
            assert bool(router._active_mask & (1 << index)) == \
                bool(expected_nonempty)

    def test_receive_sets_masks_and_counts(self):
        router = make_router()
        attach_all_outputs(router)
        packet = Packet(1, src=0, dst=1, size=3, create_time=0)
        inject(router, 0, packet, now=0.0, vc=1)
        assert router.inputs[0].occupancy == 3
        assert router.inputs[0].nonempty == 1 << 1
        assert router._active_mask == 1 << 0
        self.assert_consistent(router)

    def test_masks_clear_as_the_router_drains(self):
        router = make_router()
        attach_all_outputs(router)
        a = Packet(1, src=0, dst=1, size=2, create_time=0)
        b = Packet(2, src=1, dst=2, size=2, create_time=0)
        inject(router, 0, a, now=0.0, vc=0)
        inject(router, 1, b, now=0.0, vc=1)
        for t in range(12):
            router.step(float(t))
            self.assert_consistent(router)
        assert router._active_mask == 0
        assert all(ip.occupancy == 0 for ip in router.inputs)
        assert all(ip.nonempty == 0 for ip in router.inputs)

    def test_blocked_router_keeps_its_masks(self):
        router = make_router()
        attach_all_outputs(router)
        east_port = router.num_local + EAST
        for credits in router.outputs[east_port].credits:
            while credits.can_send():
                credits.consume()
        packet = Packet(1, src=0, dst=2, size=1, create_time=0)
        inject(router, 0, packet, now=0.0)
        for t in range(8):
            router.step(float(t))
            self.assert_consistent(router)
        assert router._active_mask == 1 << 0
        assert router.inputs[0].occupancy == 1


class TestMalformedInput:
    def test_out_of_range_vc_rejected(self):
        router = make_router()
        attach_all_outputs(router)
        packet = Packet(1, src=0, dst=1, size=1, create_time=0)
        (flit,) = packet.make_flits()
        flit.vc = 7  # router only has NUM_VCS=2
        with pytest.raises(SimulationError, match="VC 7"):
            router.receive_flit(0, flit, 0.0)

    def test_negative_vc_rejected(self):
        router = make_router()
        attach_all_outputs(router)
        packet = Packet(1, src=0, dst=1, size=1, create_time=0)
        (flit,) = packet.make_flits()
        flit.vc = -1
        with pytest.raises(SimulationError):
            router.receive_flit(0, flit, 0.0)
