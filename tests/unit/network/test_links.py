"""Unit tests for the variable-bit-rate link transport."""

import pytest

from repro.errors import ConfigError, LinkStateError
from repro.network.links import INJECTION, MESH, Link
from repro.network.packet import Packet


def make_flits(n: int):
    return Packet(1, src=0, dst=1, size=n, create_time=0).make_flits()


def make_link(service_time=1.0, propagation=1.0) -> Link:
    return Link(0, MESH, propagation_cycles=propagation,
                service_time=service_time)


class TestSerialisation:
    def test_flit_arrives_after_service_plus_propagation(self):
        link = make_link(service_time=2.0, propagation=1.0)
        (flit,) = make_flits(1)
        link.push(flit, 10.0)
        assert link.pop_arrivals(12.9) == []
        assert link.pop_arrivals(13.0) == [flit]

    def test_back_to_back_spacing(self):
        link = make_link(service_time=2.0, propagation=0.0)
        flits = make_flits(2)
        link.push(flits[0], 0.0)
        assert not link.can_accept(1.0)
        assert link.can_accept(2.0)
        link.push(flits[1], 2.0)
        assert link.pop_arrivals(2.0) == [flits[0]]
        assert link.pop_arrivals(4.0) == [flits[1]]

    def test_push_while_busy_raises(self):
        link = make_link(service_time=2.0)
        flits = make_flits(2)
        link.push(flits[0], 0.0)
        with pytest.raises(LinkStateError):
            link.push(flits[1], 1.0)

    def test_arrivals_in_order(self):
        link = make_link(service_time=1.0, propagation=2.0)
        flits = make_flits(3)
        for i, flit in enumerate(flits):
            link.push(flit, float(i))
        assert link.pop_arrivals(100.0) == flits


class TestRateChange:
    def test_faster_rate_shortens_service(self):
        link = make_link(service_time=2.0, propagation=0.0)
        flits = make_flits(2)
        link.push(flits[0], 0.0)
        link.set_service_time(1.0)
        link.push(flits[1], 2.0)
        # Second flit serialised in 1 cycle at the new rate.
        assert link.free_at == pytest.approx(3.0)

    def test_in_flight_keeps_old_timing(self):
        link = make_link(service_time=2.0, propagation=1.0)
        (flit,) = make_flits(1)
        link.push(flit, 0.0)
        link.set_service_time(1.0)
        assert link.pop_arrivals(2.9) == []
        assert link.pop_arrivals(3.0) == [flit]

    def test_invalid_service_time_rejected(self):
        with pytest.raises(ConfigError):
            make_link().set_service_time(0.0)


class TestDisable:
    def test_disabled_link_refuses(self):
        link = make_link()
        link.disable_for(10.0, 20.0)
        assert not link.can_accept(29.9)
        assert link.can_accept(30.0)

    def test_disable_never_shrinks(self):
        link = make_link()
        link.disable_for(0.0, 50.0)
        link.disable_for(10.0, 10.0)
        assert link.disabled_until == 50.0

    def test_push_while_disabled_raises(self):
        link = make_link()
        link.disable_for(0.0, 5.0)
        (flit,) = make_flits(1)
        with pytest.raises(LinkStateError):
            link.push(flit, 2.0)


class TestCounters:
    def test_busy_time_accumulates_service(self):
        link = make_link(service_time=2.0, propagation=0.0)
        flits = make_flits(3)
        for i, flit in enumerate(flits):
            link.push(flit, i * 2.0)
        assert link.take_busy_time() == pytest.approx(6.0)
        assert link.take_busy_time() == 0.0  # reset on read

    def test_pressure_independent_of_busy(self):
        link = make_link()
        link.pressure_accum += 5.0
        assert link.take_pressure_time() == 5.0
        assert link.take_pressure_time() == 0.0

    def test_flits_carried(self):
        link = make_link(service_time=1.0)
        for i, flit in enumerate(make_flits(4)):
            link.push(flit, float(i))
        assert link.flits_carried == 4


class TestRegistry:
    def test_registry_tracks_in_flight(self):
        active: set[Link] = set()
        link = make_link()
        link.registry = active
        (flit,) = make_flits(1)
        link.push(flit, 0.0)
        assert link in active
        # The simulator removes drained links itself; registry only adds.
        link.pop_arrivals(100.0)
        assert not link.has_in_flight

    def test_invalid_kind_rejected(self):
        with pytest.raises(ConfigError):
            Link(0, "wireless")

    def test_kinds_exposed(self):
        assert make_link().kind == MESH
        assert Link(1, INJECTION).kind == INJECTION


class TestBusyTimeProRating:
    """Regression: push bills a flit's full service time up front, so a
    flit straddling a sampling-window boundary used to be counted entirely
    in the window where the push happened.  take_busy_time(now) must carry
    the still-ahead serialisation time into the next window."""

    def test_straddling_flit_split_across_windows(self):
        link = make_link(service_time=4.0)
        (flit,) = make_flits(1)
        link.push(flit, 8.0)  # serialises over [8, 12)
        # Window ends at 10: only 2 of the 4 cycles belong to it.
        assert link.take_busy_time(10.0) == pytest.approx(2.0)
        assert link.busy_accum == pytest.approx(2.0)
        # The carried 2 cycles land in the next window.
        assert link.take_busy_time(20.0) == pytest.approx(2.0)
        assert link.busy_accum == 0.0

    def test_flit_fully_inside_window_is_fully_billed(self):
        link = make_link(service_time=3.0)
        (flit,) = make_flits(1)
        link.push(flit, 1.0)
        assert link.take_busy_time(10.0) == pytest.approx(3.0)
        assert link.busy_accum == 0.0

    def test_omitting_now_takes_the_full_accumulator(self):
        link = make_link(service_time=4.0)
        (flit,) = make_flits(1)
        link.push(flit, 8.0)
        assert link.take_busy_time() == pytest.approx(4.0)
        assert link.busy_accum == 0.0

    def test_windows_sum_to_total_service_time(self):
        link = make_link(service_time=2.5, propagation=0.0)
        flits = make_flits(4)
        now = 0.0
        for flit in flits:
            link.push(flit, now)
            now += 2.5
        total = sum(
            link.take_busy_time(float(end)) for end in (3, 6, 9, 12)
        )
        assert total == pytest.approx(4 * 2.5)
        assert link.busy_accum == 0.0
