"""Unit tests for repro.units — conversions and validation helpers."""

import math

import pytest

from repro.errors import ConfigError
from repro import units


class TestRateConversions:
    def test_gbps_roundtrip(self):
        assert units.to_gbps(units.gbps(10.0)) == pytest.approx(10.0)

    def test_gbps_magnitude(self):
        assert units.gbps(1.0) == 1e9

    def test_mw_roundtrip(self):
        assert units.to_mw(units.mw(290.0)) == pytest.approx(290.0)

    def test_uw(self):
        assert units.uw(25.0) == pytest.approx(25e-6)


class TestDecibels:
    def test_db_to_ratio_zero_is_unity(self):
        assert units.db_to_ratio(0.0) == 1.0

    def test_db_to_ratio_3db_doubles(self):
        assert units.db_to_ratio(3.0103) == pytest.approx(2.0, rel=1e-4)

    def test_ratio_to_db_roundtrip(self):
        for ratio in (0.1, 0.5, 1.0, 2.0, 16.0):
            assert units.db_to_ratio(units.ratio_to_db(ratio)) == \
                pytest.approx(ratio)

    def test_ratio_to_db_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            units.ratio_to_db(0.0)
        with pytest.raises(ConfigError):
            units.ratio_to_db(-1.0)

    def test_dbm_zero_is_one_milliwatt(self):
        assert units.dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_watts_to_dbm_roundtrip(self):
        assert units.watts_to_dbm(units.dbm_to_watts(-12.0)) == \
            pytest.approx(-12.0)

    def test_watts_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            units.watts_to_dbm(0.0)


class TestWavelength:
    def test_1550nm_is_193thz(self):
        freq = units.wavelength_to_frequency(1.55e-6)
        assert freq == pytest.approx(1.934e14, rel=1e-3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            units.wavelength_to_frequency(0.0)


class TestValidators:
    def test_require_positive_accepts(self):
        assert units.require_positive("x", 1.5) == 1.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.nan, math.inf])
    def test_require_positive_rejects(self, bad):
        with pytest.raises(ConfigError):
            units.require_positive("x", bad)

    def test_require_non_negative_accepts_zero(self):
        assert units.require_non_negative("x", 0.0) == 0.0

    @pytest.mark.parametrize("bad", [-0.1, math.nan])
    def test_require_non_negative_rejects(self, bad):
        with pytest.raises(ConfigError):
            units.require_non_negative("x", bad)

    @pytest.mark.parametrize("good", [0.0, 0.5, 1.0])
    def test_require_fraction_accepts(self, good):
        assert units.require_fraction("x", good) == good

    @pytest.mark.parametrize("bad", [-0.01, 1.01, math.nan])
    def test_require_fraction_rejects(self, bad):
        with pytest.raises(ConfigError):
            units.require_fraction("x", bad)
