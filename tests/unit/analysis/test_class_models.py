"""The class-model layer behind the MC/RC stateful-invariant rules.

Each test parses a miniature source tree and asserts on the
:class:`~repro.analysis.project.ClassModelIndex` directly — the package
idioms the models must understand (inherited ``__init__``, the frozen
``object.__setattr__`` hash cache, conditional assignment, ``reset()``
delegation, in-place restoration through local aliases) each get a
fixture here so a model regression is named before it surfaces as a
false RC/MC finding.
"""

from __future__ import annotations

import pytest

from repro.analysis.framework import Project, SourceFile
from repro.analysis.project import build_class_models


@pytest.fixture
def model_tree(tmp_path):
    """Write ``{rel: source}`` files and build their class-model index."""

    def _build(files: dict[str, str]):
        sources = []
        for rel, source in files.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source, encoding="utf-8")
            sources.append(SourceFile.parse(target, rel))
        return build_class_models(Project(sources, tmp_path))

    return _build


class TestBasicWrites:
    def test_init_and_reset_attrs(self, model_tree):
        index = model_tree({"repro/a.py": (
            "class Gadget:\n"
            "    def __init__(self):\n"
            "        self.a = 1\n"
            "        self.b = []\n"
            "    def reset(self):\n"
            "        self.a = 0\n"
        )})
        model = index.get("repro/a.py", "Gadget")
        assert index.init_attrs(model) == {"a", "b"}
        rebound, restored = index.reset_coverage(model)
        assert rebound == {"a"}
        assert restored == set()

    def test_conditional_assignment_counts_once(self, model_tree):
        index = model_tree({"repro/a.py": (
            "class Gadget:\n"
            "    def __init__(self, fast):\n"
            "        if fast:\n"
            "            self.mode = 'fast'\n"
            "        else:\n"
            "            self.mode = 'slow'\n"
        )})
        model = index.get("repro/a.py", "Gadget")
        assert index.init_attrs(model) == {"mode"}
        # First write wins for the report line (the if-branch store).
        assert index.init_write_line(model, "mode") == 4

    def test_augassign_and_tuple_targets(self, model_tree):
        index = model_tree({"repro/a.py": (
            "class Gadget:\n"
            "    def __init__(self):\n"
            "        self.a, self.b = 1, 2\n"
            "    def tick(self):\n"
            "        self.a += 1\n"
        )})
        model = index.get("repro/a.py", "Gadget")
        assert model.bound_attrs("__init__") == {"a", "b"}
        # AugAssign touches but does not (re)bind.
        assert model.bound_attrs("tick") == set()
        assert model.touched_attrs("tick") == {"a"}

    def test_clear_call_is_a_restore(self, model_tree):
        index = model_tree({"repro/a.py": (
            "class Gadget:\n"
            "    def __init__(self):\n"
            "        self.history = []\n"
            "    def reset(self):\n"
            "        self.history.clear()\n"
        )})
        model = index.get("repro/a.py", "Gadget")
        _, restored = index.reset_coverage(model)
        assert restored == {"history"}


class TestSetattrIdiom:
    def test_object_setattr_binds(self, model_tree):
        # The frozen-dataclass hash-cache idiom (journal.point_key).
        index = model_tree({"repro/a.py": (
            "class Point:\n"
            "    def __init__(self):\n"
            "        object.__setattr__(self, '_key', None)\n"
        )})
        model = index.get("repro/a.py", "Point")
        assert model.bound_attrs("__init__") == {"_key"}
        write = model.first_write("__init__", "_key")
        assert write.kind == "setattr" and write.binds

    def test_dynamic_setattr_name_is_ignored(self, model_tree):
        index = model_tree({"repro/a.py": (
            "class Point:\n"
            "    def __init__(self, name):\n"
            "        object.__setattr__(self, name, None)\n"
        )})
        model = index.get("repro/a.py", "Point")
        assert model.bound_attrs("__init__") == set()


class TestDelegationAndInheritance:
    def test_reset_delegates_to_shared_init_helper(self, model_tree):
        # The Simulator idiom: __init__ and reset() share _init_run_state.
        index = model_tree({"repro/a.py": (
            "class Sim:\n"
            "    def __init__(self):\n"
            "        self.config = {}\n"
            "        self._init_run_state()\n"
            "    def _init_run_state(self):\n"
            "        self.cycle = 0\n"
            "        self.queue = []\n"
            "    def reset(self):\n"
            "        self._init_run_state()\n"
        )})
        model = index.get("repro/a.py", "Sim")
        assert index.init_attrs(model) == {"config", "cycle", "queue"}
        rebound, _ = index.reset_coverage(model)
        assert rebound == {"cycle", "queue"}

    def test_delegation_cycles_terminate(self, model_tree):
        index = model_tree({"repro/a.py": (
            "class Sim:\n"
            "    def __init__(self):\n"
            "        self.a = 1\n"
            "    def reset(self):\n"
            "        self.other()\n"
            "    def other(self):\n"
            "        self.a = 0\n"
            "        self.reset()\n"
        )})
        model = index.get("repro/a.py", "Sim")
        rebound, _ = index.reset_coverage(model)
        assert rebound == {"a"}

    def test_inherited_init_is_resolved(self, model_tree):
        index = model_tree({"repro/a.py": (
            "class Base:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n"
            "class Child(Base):\n"
            "    def reset(self):\n"
            "        self.x = 0\n"
        )})
        child = index.get("repro/a.py", "Child")
        assert index.has_method(child, "__init__")
        assert index.init_attrs(child) == {"x"}

    def test_super_init_expands_base_attrs(self, model_tree):
        index = model_tree({"repro/a.py": (
            "class Base:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n"
            "class Child(Base):\n"
            "    def __init__(self):\n"
            "        super().__init__()\n"
            "        self.y = 2\n"
        )})
        child = index.get("repro/a.py", "Child")
        assert index.init_attrs(child) == {"x", "y"}

    def test_own_init_without_super_hides_base_attrs(self, model_tree):
        index = model_tree({"repro/a.py": (
            "class Base:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n"
            "class Child(Base):\n"
            "    def __init__(self):\n"
            "        self.y = 2\n"
        )})
        child = index.get("repro/a.py", "Child")
        assert index.init_attrs(child) == {"y"}

    def test_cross_file_base_resolution(self, model_tree):
        index = model_tree({
            "repro/base.py": (
                "class Base:\n"
                "    def __init__(self):\n"
                "        self.x = 1\n"
            ),
            "repro/child.py": (
                "class Child(Base):\n"
                "    def reset(self):\n"
                "        self.x = 0\n"
            ),
        })
        child = index.get("repro/child.py", "Child")
        assert index.init_attrs(child) == {"x"}

    def test_ambiguous_base_name_resolves_to_nothing(self, model_tree):
        index = model_tree({
            "repro/one.py": "class Base:\n    def __init__(self):\n"
                            "        self.x = 1\n",
            "repro/two.py": "class Base:\n    def __init__(self):\n"
                            "        self.y = 1\n",
            "repro/child.py": "class Child(Base):\n"
                              "    def reset(self):\n        pass\n",
        })
        child = index.get("repro/child.py", "Child")
        # Guessing wrong would poison the chain; ambiguity gives up.
        assert index.find("Base", near="repro/child.py") is None
        assert index.init_attrs(child) == set()


class TestAliasedRestores:
    def test_matrix_arbiter_alias_loop(self, model_tree):
        # reset() restores the matrix in place through two local aliases.
        index = model_tree({"repro/a.py": (
            "class MatrixArbiter:\n"
            "    def __init__(self, size):\n"
            "        self._beats = [[False] * size for _ in range(size)]\n"
            "    def reset(self):\n"
            "        beats = self._beats\n"
            "        for i in range(3):\n"
            "            row = beats[i]\n"
            "            for j in range(3):\n"
            "                row[j] = i < j\n"
        )})
        model = index.get("repro/a.py", "MatrixArbiter")
        _, restored = index.reset_coverage(model)
        assert restored == {"_beats"}

    def test_direct_subscript_store_restores(self, model_tree):
        index = model_tree({"repro/a.py": (
            "class Table:\n"
            "    def __init__(self):\n"
            "        self.slots = [0, 0]\n"
            "    def reset(self):\n"
            "        self.slots[0] = 0\n"
        )})
        model = index.get("repro/a.py", "Table")
        _, restored = index.reset_coverage(model)
        assert restored == {"slots"}

    def test_sub_object_attribute_is_not_credited(self, model_tree):
        # self.stats.in_flight = 0 restores stats' state, not .stats —
        # sub-object state is that object's own reset obligation.
        index = model_tree({"repro/a.py": (
            "class Sim:\n"
            "    def __init__(self):\n"
            "        self.stats = object()\n"
            "    def reset(self):\n"
            "        self.stats.in_flight = 0\n"
        )})
        model = index.get("repro/a.py", "Sim")
        rebound, restored = index.reset_coverage(model)
        assert "stats" not in rebound and "stats" not in restored
