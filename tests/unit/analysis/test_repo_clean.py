"""Meta-tests: the checker's verdict on this repository, and the CLI.

``test_repository_is_clean`` is the contract the CI ``check`` job
enforces: the shipped tree has zero non-suppressed findings.  The seeded
regression test demonstrates the failure mode that the job exists to
catch — drop a violation in, and the exit code flips to 1.
"""

import json

from repro.analysis.cli import main as check_main
from repro.analysis.framework import run_check
from repro.cli import main as repro_main


class TestRepositoryIsClean:
    def test_repository_is_clean(self):
        result = run_check()
        assert result.ok, "\n" + result.format_text()

    def test_repository_suppressions_stay_few(self):
        # Suppressions are individually justified; a creeping count means
        # the rules are being routed around instead of satisfied.
        result = run_check()
        assert result.suppressed <= 10

    def test_cli_exit_zero_on_repository(self, capsys):
        assert repro_main(["check"]) == 0
        assert "clean: 0 findings" in capsys.readouterr().out


class TestSeededRegression:
    def test_seeded_violation_fails_the_check(self, tmp_path, capsys):
        target = tmp_path / "repro" / "network" / "seeded.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "import random\n"
            "def jitter():\n"
            "    return random.random()\n",
            encoding="utf-8",
        )
        code = check_main([str(tmp_path), "--root", str(tmp_path),
                           "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"DT001": 1}
        assert payload["findings"][0]["rule"] == "DT001"

    def test_json_artifact_written_for_ci(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        code = check_main(["--format", "json", "--output", str(report)])
        assert code == 0
        payload = json.loads(report.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        assert payload["findings"] == []

    def test_unknown_rule_id_is_usage_error(self, capsys):
        assert check_main(["--rules", "ZZ123"]) == 2
        assert "unknown rule ids" in capsys.readouterr().err
