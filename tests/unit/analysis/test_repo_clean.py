"""Meta-tests: the checker's verdict on this repository, and the CLI.

``test_repository_is_clean`` is the contract the CI ``check`` job
enforces: the shipped tree has zero non-suppressed findings.  The seeded
regression test demonstrates the failure mode that the job exists to
catch — drop a violation in, and the exit code flips to 1.
"""

import json

from repro.analysis.cli import main as check_main
from repro.analysis.framework import run_check
from repro.analysis.rules import all_rules
from repro.cli import main as repro_main

#: The stateful-invariant families added over the warm/batched engine.
STATEFUL_FAMILIES = {
    "MC001", "MC002", "MC003",
    "RC001", "RC002", "RC003",
    "CK001", "CK002", "CK003",
    "SP001", "SP002", "SP003",
    "SU001",
}


class TestRuleRegistry:
    def test_rule_ids_are_unique(self):
        rules = all_rules()
        ids = [rule.rule_id for rule in rules]
        assert len(ids) == len(set(ids))

    def test_stateful_invariant_families_are_registered(self):
        ids = {rule.rule_id for rule in all_rules()}
        assert STATEFUL_FAMILIES <= ids
        assert len(ids) >= 29

    def test_every_rule_documents_itself(self):
        for rule in all_rules():
            assert rule.description, rule.rule_id
            assert rule.hint, rule.rule_id


class TestRepositoryIsClean:
    def test_repository_is_clean(self):
        result = run_check()
        assert result.ok, "\n" + result.format_text()

    def test_repository_is_clean_under_stateful_families_alone(self):
        # The four new families (plus the suppression meta-rule) hold on
        # their own: no pre-existing violation is being masked by rule
        # ordering or by another family's suppression comment.
        result = run_check(rule_ids=sorted(STATEFUL_FAMILIES))
        assert result.ok, "\n" + result.format_text()

    def test_repository_suppressions_stay_few(self):
        # Suppressions are individually justified; a creeping count means
        # the rules are being routed around instead of satisfied.
        result = run_check()
        assert result.suppressed <= 10

    def test_cli_exit_zero_on_repository(self, capsys):
        assert repro_main(["check"]) == 0
        assert "clean: 0 findings" in capsys.readouterr().out


class TestSeededRegression:
    def test_seeded_violation_fails_the_check(self, tmp_path, capsys):
        target = tmp_path / "repro" / "network" / "seeded.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "import random\n"
            "def jitter():\n"
            "    return random.random()\n",
            encoding="utf-8",
        )
        code = check_main([str(tmp_path), "--root", str(tmp_path),
                           "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"DT001": 1}
        assert payload["findings"][0]["rule"] == "DT001"

    def test_json_artifact_written_for_ci(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        code = check_main(["--format", "json", "--output", str(report)])
        assert code == 0
        payload = json.loads(report.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        assert payload["findings"] == []

    def test_unknown_rule_id_is_usage_error(self, capsys):
        assert check_main(["--rules", "ZZ123"]) == 2
        assert "unknown rule ids" in capsys.readouterr().err
