"""Flag / no-flag fixtures for the mirror-coherence rules (MC001-MC003).

Fixtures are written to the real module paths (``repro/network/...``)
so the maintainer/exemption spec tables match; the MC003 tests build a
fully consistent mini-tree first and then perturb one spec-relevant
fact at a time.
"""

from __future__ import annotations


def rule_ids_of(result):
    return [finding.rule_id for finding in result.findings]


ROUTER_OK = (
    "class VirtualChannel:\n"
    "    def __init__(self):\n"
    "        self.route_out = None\n"
    "\n"
    "class OutputPort:\n"
    "    def __init__(self):\n"
    "        self.free_at = 0\n"
    "\n"
    "class Router:\n"
    "    def reset(self):\n"
    "        self.route_out = None\n"
    "    def receive_flit(self):\n"
    "        pass\n"
    "    def step(self):\n"
    "        pass\n"
    "    def step_candidates(self):\n"
    "        pass\n"
    "    def _forward(self):\n"
    "        pass\n"
    "    def _mirror_route(self):\n"
    "        pass\n"
    "    def _mirror_grant(self):\n"
    "        pass\n"
)

LINKS_OK = (
    "class Link:\n"
    "    def __init__(self):\n"
    "        self.free_at = 0\n"
    "    def reset(self):\n"
    "        self.free_at = 0\n"
    "    def push(self):\n"
    "        self.free_at = 1\n"
)

TOPOLOGY_OK = (
    "class Node:\n"
    "    def step(self):\n"
    "        self.link.free_at = 2\n"
)

BATCH_OK = (
    "class BatchRouteBackend:\n"
    "    def __init__(self, sim):\n"
    "        self.routers = []\n"
    "        self.links = []\n"
    "        self.registry = []\n"
    "        self.num_vcs = 2\n"
    "        self._pv = {}\n"
    "        self._link_owner = {}\n"
    "        self._link_out = {}\n"
    "        self.elig = [0]\n"
    "    def resync(self):\n"
    "        self.elig = [0]\n"
)


def full_tree(**overrides):
    tree = {
        "repro/network/router.py": ROUTER_OK,
        "repro/network/links.py": LINKS_OK,
        "repro/network/topology.py": TOPOLOGY_OK,
        "repro/network/batch.py": BATCH_OK,
    }
    tree.update(overrides)
    return tree


class TestMirrorCoherence:
    def test_flags_store_outside_maintainers(self, check_tree):
        result = check_tree({
            "repro/network/controlflow.py": (
                "def sneak(vc):\n"
                "    vc.route_out = 3\n"
            ),
        }, rule_ids=["MC001"])
        assert rule_ids_of(result) == ["MC001"]
        assert "route_out" in result.findings[0].message

    def test_flags_augassign_to_mirrored_field(self, check_tree):
        result = check_tree({
            "repro/network/controlflow.py": (
                "class Gate:\n"
                "    def advance(self, port):\n"
                "        port.free_at += 1\n"
            ),
        }, rule_ids=["MC001"])
        assert rule_ids_of(result) == ["MC001"]

    def test_maintainer_method_passes(self, check_tree):
        result = check_tree({
            "repro/network/router.py": (
                "class Router:\n"
                "    def reset(self):\n"
                "        self.route_out = None\n"
            ),
        }, rule_ids=["MC001"])
        assert result.ok

    def test_exempt_method_passes(self, check_tree):
        result = check_tree({
            "repro/network/links.py": (
                "class Link:\n"
                "    def push(self):\n"
                "        self.free_at = 1\n"
            ),
        }, rule_ids=["MC001"])
        assert result.ok

    def test_reliability_layer_is_exempt_wholesale(self, check_tree):
        result = check_tree({
            "repro/reliability/faults.py": (
                "def detour(vc):\n"
                "    vc.route_out = None\n"
            ),
        }, rule_ids=["MC001"])
        assert result.ok

    def test_unmirrored_field_passes(self, check_tree):
        result = check_tree({
            "repro/network/controlflow.py": (
                "def sneak(vc):\n"
                "    vc.route_hint = 3\n"
            ),
        }, rule_ids=["MC001"])
        assert result.ok


class TestMirrorRebuild:
    def test_flags_mirror_missing_from_resync(self, check_tree):
        result = check_tree({
            "repro/network/batch.py": (
                "class BatchRouteBackend:\n"
                "    def __init__(self, sim):\n"
                "        self.routers = []\n"
                "        self.elig = [0]\n"
                "        self.extra = [0]\n"
                "    def resync(self):\n"
                "        self.elig = [0]\n"
            ),
        }, rule_ids=["MC002"])
        assert rule_ids_of(result) == ["MC002"]
        assert "extra" in result.findings[0].message

    def test_resync_covering_every_mirror_passes(self, check_tree):
        result = check_tree({
            "repro/network/batch.py": (
                "class BatchRouteBackend:\n"
                "    def __init__(self, sim):\n"
                "        self.elig = [0]\n"
                "        self.extra = [0]\n"
                "    def resync(self):\n"
                "        self.elig = [0]\n"
                "        self.extra = [0]\n"
            ),
        }, rule_ids=["MC002"])
        assert result.ok

    def test_structural_arrays_are_exempt(self, check_tree):
        result = check_tree({
            "repro/network/batch.py": (
                "class BatchRouteBackend:\n"
                "    def __init__(self, sim):\n"
                "        self.routers = []\n"
                "        self._link_owner = {}\n"
                "    def resync(self):\n"
                "        pass\n"
            ),
        }, rule_ids=["MC002"])
        assert result.ok

    def test_in_place_resync_counts(self, check_tree):
        # resync() rebuilding an array element-wise (numpy fill idiom).
        result = check_tree({
            "repro/network/batch.py": (
                "class BatchRouteBackend:\n"
                "    def __init__(self, sim):\n"
                "        self.elig = [0]\n"
                "    def resync(self):\n"
                "        self.elig[:] = [0]\n"
            ),
        }, rule_ids=["MC002"])
        assert result.ok

    def test_tree_without_backend_passes(self, check_tree):
        result = check_tree({
            "repro/network/router.py": ROUTER_OK,
        }, rule_ids=["MC002"])
        assert result.ok


class TestMirrorSpecStaleness:
    def test_consistent_tree_passes(self, check_tree):
        result = check_tree(full_tree(), rule_ids=["MC003"])
        assert result.ok, "\n" + result.format_text()

    def test_flags_vanished_maintainer_method(self, check_tree):
        router = ROUTER_OK.replace(
            "    def _mirror_grant(self):\n        pass\n", "")
        result = check_tree(full_tree(**{
            "repro/network/router.py": router,
        }), rule_ids=["MC003"])
        assert rule_ids_of(result) == ["MC003"]
        assert "Router._mirror_grant" in result.findings[0].message

    def test_flags_vanished_structural_attr(self, check_tree):
        batch = BATCH_OK.replace("        self.num_vcs = 2\n", "")
        result = check_tree(full_tree(**{
            "repro/network/batch.py": batch,
        }), rule_ids=["MC003"])
        assert rule_ids_of(result) == ["MC003"]
        assert "num_vcs" in result.findings[0].message

    def test_rule_gates_on_backend_presence(self, check_tree):
        # A mini-tree without the backend (most fixtures) must not be
        # flooded with missing-module staleness reports.
        result = check_tree({
            "repro/network/router.py": "class Router:\n    pass\n",
        }, rule_ids=["MC003"])
        assert result.ok
