"""SARIF 2.1.0 rendering of ``repro check`` reports.

Structural assertions always run; when ``jsonschema`` is importable the
output is additionally validated against an offline subset of the SARIF
2.1.0 schema covering everything this tool emits (the CI container has
no network, so the full schemastore document cannot be fetched here).
"""

from __future__ import annotations

import json

from repro.analysis.cli import main as check_main
from repro.analysis.rules import all_rules
from repro.analysis.sarif import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    TOOL_NAME,
    to_sarif,
    to_sarif_json,
)

try:
    import jsonschema
except ImportError:  # pragma: no cover - optional in the test image
    jsonschema = None

SEEDED = {
    "repro/network/seeded.py": (
        "import random\n"
        "def jitter():\n"
        "    return random.random()\n"
    ),
}

#: Offline subset of the SARIF 2.1.0 schema: the required skeleton plus
#: every property :mod:`repro.analysis.sarif` emits, with
#: ``additionalProperties`` pinned so an unknown key fails validation.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string"},
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "additionalProperties": False,
                "properties": {
                    "columnKind": {
                        "enum": ["utf16CodeUnits", "unicodeCodePoints"],
                    },
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "informationUri": {
                                        "type": "string",
                                        "format": "uri",
                                    },
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer", "minimum": 0,
                                },
                                "level": {
                                    "enum": ["none", "note", "warning",
                                             "error"],
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {"type": "array"},
                            },
                        },
                    },
                },
            },
        },
    },
}


def validate_subset(log: dict) -> None:
    if jsonschema is not None:
        jsonschema.validate(log, SARIF_SUBSET_SCHEMA)


class TestSarifStructure:
    def test_clean_run_skeleton(self, check_tree):
        result = check_tree({"repro/network/clean.py": "X = 1\n"})
        log = to_sarif(result, all_rules())
        validate_subset(log)
        assert log["$schema"] == SARIF_SCHEMA_URI
        assert log["version"] == SARIF_VERSION
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == TOOL_NAME
        assert run["results"] == []
        assert run["columnKind"] == "unicodeCodePoints"

    def test_every_registered_rule_has_a_descriptor(self, check_tree):
        result = check_tree({"repro/network/clean.py": "X = 1\n"})
        log = to_sarif(result, all_rules())
        descriptors = log["runs"][0]["tool"]["driver"]["rules"]
        ids = [d["id"] for d in descriptors]
        assert ids == sorted(ids)
        assert set(ids) == {rule.rule_id for rule in all_rules()}
        for descriptor in descriptors:
            assert descriptor["shortDescription"]["text"]
            assert descriptor["defaultConfiguration"]["level"] in (
                "error", "warning")

    def test_finding_becomes_an_annotated_result(self, check_tree):
        result = check_tree(SEEDED)
        log = to_sarif(result, all_rules())
        validate_subset(log)
        (res,) = log["runs"][0]["results"]
        assert res["ruleId"] == "DT001"
        assert res["level"] == "error"
        location = res["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == \
            "repro/network/seeded.py"
        # Findings are 1-based lines / 0-based cols; SARIF regions are
        # 1-based on both axes.
        assert location["region"]["startLine"] == 3
        assert location["region"]["startColumn"] >= 1
        descriptors = log["runs"][0]["tool"]["driver"]["rules"]
        assert descriptors[res["ruleIndex"]]["id"] == "DT001"

    def test_json_rendering_round_trips(self, check_tree):
        result = check_tree(SEEDED)
        log = json.loads(to_sarif_json(result, all_rules()))
        validate_subset(log)
        assert log == json.loads(to_sarif_json(result, all_rules()))


class TestSarifCli:
    def test_sarif_format_on_clean_repository(self, tmp_path, capsys):
        report = tmp_path / "check.sarif"
        code = check_main(["--format", "sarif", "--output", str(report)])
        assert code == 0
        log = json.loads(report.read_text(encoding="utf-8"))
        validate_subset(log)
        assert log["runs"][0]["results"] == []

    def test_sarif_respects_rule_subset(self, tmp_path, capsys):
        target = tmp_path / "repro" / "network" / "seeded.py"
        target.parent.mkdir(parents=True)
        target.write_text(SEEDED["repro/network/seeded.py"],
                          encoding="utf-8")
        code = check_main([str(tmp_path), "--root", str(tmp_path),
                           "--format", "sarif", "--rules", "DT001"])
        assert code == 1
        log = json.loads(capsys.readouterr().out)
        descriptors = log["runs"][0]["tool"]["driver"]["rules"]
        assert [d["id"] for d in descriptors] == ["DT001"]
        assert log["runs"][0]["results"][0]["ruleIndex"] == 0
