"""Fixture helpers for the static-analysis tests.

Each test builds a miniature source tree under ``tmp_path`` shaped like
the real package (``repro/network/...``), runs :func:`run_check` against
it and asserts on the resulting findings.  ``check_tree`` hides the
boilerplate.
"""

from __future__ import annotations

import pytest

from repro.analysis.framework import CheckResult, run_check


@pytest.fixture
def check_tree(tmp_path):
    """Write ``{rel_path: source}`` files and run the checker on them."""

    def _run(files: dict[str, str], rule_ids=None) -> CheckResult:
        for rel, source in files.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source, encoding="utf-8")
        return run_check(paths=[tmp_path], root=tmp_path, rule_ids=rule_ids)

    return _run
