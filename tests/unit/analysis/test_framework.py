"""Framework-level tests: suppressions, JSON schema, rule registry."""

import json

import pytest

from repro.analysis.framework import (
    JSON_SCHEMA_VERSION,
    Finding,
    run_check,
)
from repro.analysis.rules import all_rules

FLAGGED = "import random\nx = random.random()\n"


def rule_ids_of(result):
    return [finding.rule_id for finding in result.findings]


class TestSuppression:
    def test_line_noqa_suppresses_only_that_line(self, check_tree):
        result = check_tree({
            "repro/a.py": (
                "import random\n"
                "x = random.random()  # repro: noqa[DT001] test fixture\n"
                "y = random.random()\n"
            ),
        })
        assert rule_ids_of(result) == ["DT001"]
        assert result.suppressed == 1
        assert result.findings[0].line == 3

    def test_file_noqa_suppresses_everywhere(self, check_tree):
        result = check_tree({
            "repro/a.py": (
                "# repro: noqa-file[DT001] test fixture\n"
                "import random\n"
                "x = random.random()\n"
                "y = random.random()\n"
            ),
        })
        assert result.ok
        assert result.suppressed == 2

    def test_noqa_with_multiple_ids(self, check_tree):
        result = check_tree({
            "repro/a.py": (
                "import random, time\n"
                "x = random.random() + time.time()"
                "  # repro: noqa[DT001,DT004] fixture\n"
            ),
        })
        assert result.ok
        assert result.suppressed == 2

    def test_noqa_for_other_rule_does_not_suppress(self, check_tree):
        result = check_tree({
            "repro/a.py": (
                "import random\n"
                "x = random.random()  # repro: noqa[DT004] wrong id\n"
            ),
        })
        # The wrong-id noqa both fails to suppress DT001 and is itself
        # stale (SU001): it never matched anything in this run.
        assert sorted(rule_ids_of(result)) == ["DT001", "SU001"]
        assert result.suppressed == 0


class TestJsonReport:
    def test_schema_and_round_trip(self, check_tree):
        result = check_tree({"repro/a.py": FLAGGED})
        payload = json.loads(result.to_json())
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["files_checked"] == 1
        assert payload["suppressed"] == 0
        assert payload["counts"] == {"DT001": 1}
        assert set(payload["findings"][0]) == {
            "rule", "severity", "path", "line", "col", "message", "hint",
        }
        restored = [Finding.from_dict(f) for f in payload["findings"]]
        assert restored == result.findings

    def test_clean_report(self, check_tree):
        result = check_tree({"repro/a.py": "x = 1\n"})
        assert result.ok
        assert "clean: 0 findings" in result.format_text()

    def test_text_report_lists_path_line_rule(self, check_tree):
        result = check_tree({"repro/a.py": FLAGGED})
        text = result.format_text()
        assert "repro/a.py:2:4: DT001" in text
        assert "hint:" in text


class TestRuleRegistry:
    def test_rule_ids_unique(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert len(ids) == len(set(ids))

    def test_at_least_four_families_and_ten_rules(self):
        ids = [rule.rule_id for rule in all_rules()]
        families = {rule_id[:2] for rule_id in ids}
        assert {"DT", "UN", "HC", "HP"} <= families
        assert len(ids) >= 10

    def test_every_rule_documents_itself(self):
        for rule in all_rules():
            assert rule.description, rule.rule_id
            assert rule.hint, rule.rule_id

    def test_rule_ids_filter(self, check_tree):
        result = check_tree(
            {"repro/a.py": "import random, time\n"
                           "x = random.random()\n"
                           "t = time.time()\n"},
            rule_ids=["DT001"],
        )
        assert rule_ids_of(result) == ["DT001"]

    def test_unknown_rule_id_raises(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        with pytest.raises(ValueError, match="XX999"):
            run_check(paths=[tmp_path], root=tmp_path, rule_ids=["XX999"])
