"""Fixtures for the stale-suppression meta-rule (SU001).

Staleness is computed inside :func:`run_check` after the suppression
filter has matched findings to ``noqa`` sites; these tests pin the two
documented asymmetries (inactive rules never reported, ``noqa[SU001]``
never stale) along with the basic flag / no-flag behaviour.
"""

from __future__ import annotations


def rule_ids_of(result):
    return [finding.rule_id for finding in result.findings]


USED_NOQA = (
    "import random\n"
    "\n"
    "def jitter():\n"
    "    return random.random()  # repro: noqa[DT001] fixture\n"
)


class TestStaleSuppression:
    def test_flags_noqa_that_suppresses_nothing(self, check_tree):
        result = check_tree({
            "repro/network/clean.py": (
                "X = 1  # repro: noqa[DT001] nothing here any more\n"),
        }, rule_ids=["DT001", "SU001"])
        assert rule_ids_of(result) == ["SU001"]
        finding = result.findings[0]
        assert finding.line == 1
        assert "noqa[DT001]" in finding.message

    def test_flags_stale_file_wide_noqa(self, check_tree):
        result = check_tree({
            "repro/network/clean.py": (
                "# repro: noqa-file[DT001] stale blanket\n"
                "X = 1\n"),
        }, rule_ids=["DT001", "SU001"])
        assert rule_ids_of(result) == ["SU001"]
        assert "noqa-file[DT001]" in result.findings[0].message

    def test_used_noqa_passes(self, check_tree):
        result = check_tree({
            "repro/network/dirty.py": USED_NOQA,
        }, rule_ids=["DT001", "SU001"])
        assert result.ok
        assert result.suppressed == 1

    def test_inactive_rule_suppressions_are_not_reported(self, check_tree):
        # With only SU001 active, DT001 never ran — its noqa might have
        # matched, so it must not be called stale.
        result = check_tree({
            "repro/network/clean.py": (
                "X = 1  # repro: noqa[DT001] rule not in this run\n"),
        }, rule_ids=["SU001"])
        assert result.ok

    def test_su001_noqa_is_never_stale(self, check_tree):
        result = check_tree({
            "repro/network/clean.py": (
                "X = 1  # repro: noqa[SU001] reviewed decision\n"),
        }, rule_ids=["DT001", "SU001"])
        assert result.ok

    def test_stale_report_is_itself_suppressible(self, check_tree):
        # noqa[DT001,SU001]: the DT001 site is stale, but the SU001 site
        # on the same line swallows the stale report (and counts as a
        # suppression, not a finding).
        result = check_tree({
            "repro/network/clean.py": (
                "X = 1  # repro: noqa[DT001,SU001] migration leftover\n"),
        }, rule_ids=["DT001", "SU001"])
        assert result.ok
        assert result.suppressed == 1

    def test_no_stale_pass_without_su001(self, check_tree):
        # SU001 excluded from the run: stale noqa comments stay silent
        # (the meta-rule is opt-in via the registry like any other).
        result = check_tree({
            "repro/network/clean.py": (
                "X = 1  # repro: noqa[DT001] stale but unchecked\n"),
        }, rule_ids=["DT001"])
        assert result.ok
