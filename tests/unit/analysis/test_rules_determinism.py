"""Flag / no-flag fixtures for the determinism rules (DT001-DT004)."""


def rule_ids_of(result):
    return [finding.rule_id for finding in result.findings]


class TestUnseededRandom:
    def test_flags_global_random_call(self, check_tree):
        result = check_tree({
            "repro/core/x.py": "import random\nv = random.uniform(0, 1)\n",
        })
        assert rule_ids_of(result) == ["DT001"]

    def test_flags_legacy_numpy_random(self, check_tree):
        result = check_tree({
            "repro/core/x.py": "import numpy as np\nv = np.random.rand(4)\n",
        })
        assert rule_ids_of(result) == ["DT001"]

    def test_seeded_instance_passes(self, check_tree):
        result = check_tree({
            "repro/core/x.py": (
                "import random\n"
                "rng = random.Random(42)\n"
                "v = rng.uniform(0, 1)\n"
            ),
        })
        assert result.ok


class TestUnsortedSetIteration:
    def test_flags_for_over_set_attribute(self, check_tree):
        result = check_tree({
            "repro/network/x.py": (
                "class Pool:\n"
                "    def __init__(self):\n"
                "        self.members: set[int] = set()\n"
                "    def drain(self):\n"
                "        for m in self.members:\n"
                "            print(m)\n"
            ),
        }, rule_ids=["DT002"])
        assert rule_ids_of(result) == ["DT002"]

    def test_flags_comprehension_over_local_set(self, check_tree):
        result = check_tree({
            "repro/engine/x.py": (
                "def f(xs):\n"
                "    pending = set(xs)\n"
                "    return [x + 1 for x in pending]\n"
            ),
        })
        assert rule_ids_of(result) == ["DT002"]

    def test_sorted_iteration_passes(self, check_tree):
        result = check_tree({
            "repro/network/x.py": (
                "def f(xs):\n"
                "    pending = set(xs)\n"
                "    return [x for x in sorted(pending)]\n"
            ),
        })
        assert result.ok

    def test_out_of_scope_layer_not_flagged(self, check_tree):
        result = check_tree({
            "repro/experiments/x.py": (
                "def f(xs):\n"
                "    pending = set(xs)\n"
                "    return [x + 1 for x in pending]\n"
            ),
        })
        assert result.ok


class TestIdOrdering:
    def test_flags_sorted_key_id(self, check_tree):
        result = check_tree({
            "repro/core/x.py": "def f(xs):\n    return sorted(xs, key=id)\n",
        })
        assert rule_ids_of(result) == ["DT003"]

    def test_flags_lambda_id_key(self, check_tree):
        result = check_tree({
            "repro/core/x.py": (
                "def f(xs):\n"
                "    xs.sort(key=lambda v: id(v))\n"
            ),
        })
        assert rule_ids_of(result) == ["DT003"]

    def test_domain_key_passes(self, check_tree):
        result = check_tree({
            "repro/core/x.py": (
                "def f(xs):\n"
                "    return sorted(xs, key=lambda v: v.link_id)\n"
            ),
        })
        assert result.ok


class TestWallClock:
    def test_flags_time_call_in_engine(self, check_tree):
        result = check_tree({
            "repro/engine/x.py": "import time\nt0 = time.perf_counter()\n",
        })
        assert rule_ids_of(result) == ["DT004"]

    def test_flags_datetime_now(self, check_tree):
        result = check_tree({
            "repro/metrics/x.py": (
                "from datetime import datetime\n"
                "stamp = datetime.now()\n"
            ),
        })
        assert rule_ids_of(result) == ["DT004"]

    def test_cli_layer_allowed(self, check_tree):
        result = check_tree({
            "repro/cli.py": "import time\nt0 = time.perf_counter()\n",
        })
        assert result.ok

    def test_clock_reference_passes(self, check_tree):
        # Injectable default argument: a reference, not a read.
        result = check_tree({
            "repro/engine/x.py": (
                "import time\n"
                "def f(clock=time.perf_counter):\n"
                "    return clock()\n"
            ),
        })
        assert result.ok
