"""Flag / no-flag fixtures for the cache-key coverage rules (CK001-CK003).

Fixtures write to the spec'd module paths (``repro/experiments/...``,
``repro/core/manager.py``) so the SWEEP_CONSUMERS / MEMO_KEYS /
GUARD_PAIRS tables match.
"""

from __future__ import annotations


def rule_ids_of(result):
    return [finding.rule_id for finding in result.findings]


def runner_module(fields: str, run_point_body: str) -> str:
    return (
        "class SweepPoint:\n"
        f"{fields}"
        "\n"
        "def run_point(point):\n"
        f"{run_point_body}"
    )


class TestSweepPointCoverage:
    def test_flags_field_missing_from_one_executor(self, check_tree):
        result = check_tree({
            "repro/experiments/runner.py": runner_module(
                "    label: str\n    seed: int\n",
                "    return (point.label, point.seed)\n"),
            "repro/experiments/warm.py": (
                "def run_point_warm(point):\n"
                "    return point.label\n"),
        }, rule_ids=["CK001"])
        assert rule_ids_of(result) == ["CK001"]
        finding = result.findings[0]
        assert "run_point_warm" in finding.message
        assert "SweepPoint.seed" in finding.message
        assert finding.path.endswith("warm.py")

    def test_every_field_reaching_both_executors_passes(self, check_tree):
        result = check_tree({
            "repro/experiments/runner.py": runner_module(
                "    label: str\n    seed: int\n",
                "    return (point.label, point.seed)\n"),
            "repro/experiments/warm.py": (
                "def run_point_warm(point):\n"
                "    return (point.label, point.seed)\n"),
        }, rule_ids=["CK001"])
        assert result.ok

    def test_absent_consumer_module_stays_quiet(self, check_tree):
        result = check_tree({
            "repro/experiments/runner.py": runner_module(
                "    label: str\n",
                "    return point.label\n"),
        }, rule_ids=["CK001"])
        assert result.ok

    def test_tree_without_sweep_point_stays_quiet(self, check_tree):
        result = check_tree({
            "repro/experiments/warm.py": (
                "def run_point_warm(point):\n"
                "    return point.label\n"),
        }, rule_ids=["CK001"])
        assert result.ok


class TestMemoKeyCoverage:
    def test_flags_config_read_outside_the_key(self, check_tree):
        result = check_tree({
            "repro/core/manager.py": (
                "def _table_for_config(config):\n"
                "    key = (config.technology, config.num_levels)\n"
                "    return config.min_bit_rate\n"),
        }, rule_ids=["CK002"])
        assert rule_ids_of(result) == ["CK002"]
        assert "min_bit_rate" in result.findings[0].message

    def test_flags_missing_key_assignment(self, check_tree):
        result = check_tree({
            "repro/core/manager.py": (
                "def _table_for_config(config):\n"
                "    return config.technology\n"),
        }, rule_ids=["CK002"])
        assert rule_ids_of(result) == ["CK002"]
        assert "key" in result.findings[0].message

    def test_key_covering_every_read_passes(self, check_tree):
        result = check_tree({
            "repro/core/manager.py": (
                "def _table_for_config(config):\n"
                "    key = (config.technology, config.num_levels)\n"
                "    return (key, config.technology, config.num_levels)\n"),
        }, rule_ids=["CK002"])
        assert result.ok


GUARDED_MANAGER = (
    "def _table_for_config(config):\n"
    "    key = (config.technology, config.num_levels)\n"
    "    return key\n"
    "\n"
    "def structurally_compatible(config, current):\n"
    "    return (config.technology == current.technology\n"
    "            and config.num_levels == current.num_levels)\n"
)


class TestGuardKeyAgreement:
    def test_agreeing_field_sets_pass(self, check_tree):
        result = check_tree({
            "repro/core/manager.py": GUARDED_MANAGER,
        }, rule_ids=["CK003"])
        assert result.ok

    def test_flags_field_only_in_the_guard(self, check_tree):
        widened = GUARDED_MANAGER.replace(
            "    key = (config.technology, config.num_levels)\n",
            "    key = (config.technology,)\n")
        result = check_tree({
            "repro/core/manager.py": widened,
        }, rule_ids=["CK003"])
        assert rule_ids_of(result) == ["CK003"]
        assert "guard but not the memo key" in result.findings[0].message

    def test_flags_field_only_in_the_key(self, check_tree):
        narrowed = GUARDED_MANAGER.replace(
            "            and config.num_levels == current.num_levels", "")
        result = check_tree({
            "repro/core/manager.py": narrowed,
        }, rule_ids=["CK003"])
        assert rule_ids_of(result) == ["CK003"]
        assert "memo key but not the" in result.findings[0].message

    def test_absent_guard_stays_quiet(self, check_tree):
        result = check_tree({
            "repro/core/manager.py": (
                "def _table_for_config(config):\n"
                "    key = (config.technology,)\n"
                "    return key\n"),
        }, rule_ids=["CK003"])
        assert result.ok
