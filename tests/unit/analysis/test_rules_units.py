"""Flag / no-flag fixtures for the unit-consistency rules (UN001-UN004)."""


def rule_ids_of(result):
    return [finding.rule_id for finding in result.findings]


class TestMixedUnitArithmetic:
    def test_flags_adding_db_to_watts(self, check_tree):
        result = check_tree({
            "repro/photonics/x.py": (
                "def f(margin_db, power_w):\n"
                "    return margin_db + power_w\n"
            ),
        })
        assert rule_ids_of(result) == ["UN001"]

    def test_flags_mixed_comparison(self, check_tree):
        result = check_tree({
            "repro/photonics/x.py": (
                "def f(rate_gbps, window_s):\n"
                "    return rate_gbps > window_s\n"
            ),
        })
        assert rule_ids_of(result) == ["UN001"]

    def test_same_unit_passes(self, check_tree):
        result = check_tree({
            "repro/photonics/x.py": (
                "def f(tx_power_w, rx_power_w):\n"
                "    return tx_power_w - rx_power_w\n"
            ),
        })
        assert result.ok

    def test_db_offset_on_dbm_level_allowed(self, check_tree):
        result = check_tree({
            "repro/photonics/x.py": (
                "def f(level_dbm, loss_db):\n"
                "    return level_dbm - loss_db\n"
            ),
        })
        assert result.ok

    def test_inference_follows_assignment(self, check_tree):
        result = check_tree({
            "repro/photonics/x.py": (
                "def f(sensitivity_dbm, budget_w):\n"
                "    floor = sensitivity_dbm\n"
                "    return floor + budget_w\n"
            ),
        })
        assert rule_ids_of(result) == ["UN001"]

    def test_outside_photonics_not_flagged(self, check_tree):
        result = check_tree({
            "repro/metrics/x.py": (
                "def f(margin_db, power_w):\n"
                "    return margin_db + power_w\n"
            ),
        })
        assert result.ok


class TestMagicScaleConstant:
    def test_flags_1e9_multiplication(self, check_tree):
        result = check_tree({
            "repro/cli2.py": "def f(rate_gbps):\n    return rate_gbps * 1e9\n",
        })
        assert rule_ids_of(result) == ["UN002"]

    def test_flags_1e_minus_6(self, check_tree):
        result = check_tree({
            "repro/config2.py": "def f(us):\n    return us * 1e-6\n",
        })
        assert rule_ids_of(result) == ["UN002"]

    def test_units_module_owns_its_constants(self, check_tree):
        result = check_tree({
            "repro/units.py": "GIGA = 1e9\ndef gbps(v):\n    return v * 1e9\n",
        })
        assert result.ok

    def test_non_scale_float_passes(self, check_tree):
        result = check_tree({
            "repro/config2.py": "def f(x):\n    return x * 2.5\n",
        })
        assert result.ok


class TestSuffixContradiction:
    def test_flags_watts_name_given_dbm_value(self, check_tree):
        result = check_tree({
            "repro/photonics/x.py": (
                "from repro.units import watts_to_dbm\n"
                "def f(p):\n"
                "    power_w = watts_to_dbm(p)\n"
                "    return power_w\n"
            ),
        })
        assert rule_ids_of(result) == ["UN003"]

    def test_matching_suffix_passes(self, check_tree):
        result = check_tree({
            "repro/photonics/x.py": (
                "from repro.units import dbm_to_watts\n"
                "def f(level_dbm):\n"
                "    power_w = dbm_to_watts(level_dbm)\n"
                "    return power_w\n"
            ),
        })
        assert result.ok


class TestInlineDbMath:
    def test_flags_open_coded_conversion(self, check_tree):
        result = check_tree({
            "repro/photonics/x.py": (
                "def f(loss_db):\n"
                "    return 10.0 ** (loss_db / 10.0)\n"
            ),
        })
        assert rule_ids_of(result) == ["UN004"]

    def test_units_module_may_define_it(self, check_tree):
        result = check_tree({
            "repro/units.py": (
                "def db_to_ratio(db):\n"
                "    return 10.0 ** (db / 10.0)\n"
            ),
        })
        assert result.ok

    def test_unrelated_power_passes(self, check_tree):
        result = check_tree({
            "repro/photonics/x.py": (
                "def f(x):\n"
                "    return 10.0 ** (x / 2.0)\n"
            ),
        })
        assert result.ok
