"""Flag / no-flag fixtures for the reset-completeness rules (RC001-RC003).

RC001/RC002 fixtures use neutral module paths; the exemption-driven
cases write to the real spec paths (``repro/core/policy.py``,
``repro/network/arbiters.py``) so the ``RESET_EXEMPT`` entries apply.
"""

from __future__ import annotations


def rule_ids_of(result):
    return [finding.rule_id for finding in result.findings]


class TestResetCompleteness:
    def test_flags_attribute_reset_forgets(self, check_tree):
        result = check_tree({
            "repro/network/gadget.py": (
                "class Gadget:\n"
                "    def __init__(self):\n"
                "        self.a = 1\n"
                "        self.b = []\n"
                "    def reset(self):\n"
                "        self.a = 0\n"
            ),
        }, rule_ids=["RC001"])
        assert rule_ids_of(result) == ["RC001"]
        assert "Gadget.b" in result.findings[0].message
        # The finding anchors at the __init__ store of the leaked attr.
        assert result.findings[0].line == 4

    def test_complete_reset_passes(self, check_tree):
        result = check_tree({
            "repro/network/gadget.py": (
                "class Gadget:\n"
                "    def __init__(self):\n"
                "        self.a = 1\n"
                "        self.b = []\n"
                "    def reset(self):\n"
                "        self.a = 0\n"
                "        self.b.clear()\n"
            ),
        }, rule_ids=["RC001"])
        assert result.ok

    def test_class_without_reset_is_not_checked(self, check_tree):
        result = check_tree({
            "repro/network/gadget.py": (
                "class Gadget:\n"
                "    def __init__(self):\n"
                "        self.a = 1\n"
            ),
        }, rule_ids=["RC001"])
        assert result.ok

    def test_delegated_init_helper_passes(self, check_tree):
        result = check_tree({
            "repro/network/gadget.py": (
                "class Sim:\n"
                "    def __init__(self):\n"
                "        self._init_run_state()\n"
                "    def _init_run_state(self):\n"
                "        self.cycle = 0\n"
                "        self.queue = []\n"
                "    def reset(self):\n"
                "        self._init_run_state()\n"
            ),
        }, rule_ids=["RC001"])
        assert result.ok

    def test_inherited_init_attrs_are_owed(self, check_tree):
        result = check_tree({
            "repro/network/gadget.py": (
                "class Base:\n"
                "    def __init__(self):\n"
                "        self.x = 1\n"
                "class Child(Base):\n"
                "    def reset(self):\n"
                "        pass\n"
            ),
        }, rule_ids=["RC001"])
        assert rule_ids_of(result) == ["RC001"]
        assert "Child.x" in result.findings[0].message

    def test_alias_subscript_restore_passes(self, check_tree):
        # The MatrixArbiter idiom: in-place restoration through aliases.
        result = check_tree({
            "repro/network/arbiters.py": (
                "class MatrixArbiter:\n"
                "    def __init__(self, size):\n"
                "        self.size = size\n"
                "        self._beats = [[False] * size "
                "for _ in range(size)]\n"
                "    def reset(self):\n"
                "        beats = self._beats\n"
                "        for i in range(self.size):\n"
                "            row = beats[i]\n"
                "            for j in range(self.size):\n"
                "                row[j] = i < j\n"
            ),
        }, rule_ids=["RC001"])
        assert result.ok

    def test_exempt_structural_attr_passes(self, check_tree):
        # `config` is exempted for LinkPolicyController in RESET_EXEMPT.
        result = check_tree({
            "repro/core/policy.py": (
                "class LinkPolicyController:\n"
                "    def __init__(self, config):\n"
                "        self.config = config\n"
                "        self.decisions = {}\n"
                "    def reset(self):\n"
                "        self.decisions = {}\n"
            ),
        }, rule_ids=["RC001"])
        assert result.ok

    def test_exemption_does_not_travel_to_other_modules(self, check_tree):
        result = check_tree({
            "repro/network/gadget.py": (
                "class LinkPolicyController:\n"
                "    def __init__(self, config):\n"
                "        self.config = config\n"
                "    def reset(self):\n"
                "        pass\n"
            ),
        }, rule_ids=["RC001"])
        assert rule_ids_of(result) == ["RC001"]


class TestResetDrift:
    def test_flags_reset_of_unknown_attribute(self, check_tree):
        result = check_tree({
            "repro/network/gadget.py": (
                "class Gadget:\n"
                "    def __init__(self):\n"
                "        self.count = 0\n"
                "    def reset(self):\n"
                "        self.count = 0\n"
                "        self.cout = 0\n"
            ),
        }, rule_ids=["RC002"])
        assert rule_ids_of(result) == ["RC002"]
        assert "cout" in result.findings[0].message

    def test_matching_attribute_sets_pass(self, check_tree):
        result = check_tree({
            "repro/network/gadget.py": (
                "class Gadget:\n"
                "    def __init__(self):\n"
                "        self.count = 0\n"
                "    def reset(self):\n"
                "        self.count = 0\n"
            ),
        }, rule_ids=["RC002"])
        assert result.ok


ARBITERS_OK = (
    "class RoundRobinArbiter:\n"
    "    def __init__(self, size):\n"
    "        self.size = size\n"
    "        self._next = 0\n"
    "    def reset(self):\n"
    "        self._next = 0\n"
    "\n"
    "class MatrixArbiter:\n"
    "    def __init__(self, size):\n"
    "        self.size = size\n"
    "        self._beats = []\n"
    "    def reset(self):\n"
    "        self._beats = []\n"
)


class TestResetExemptionStaleness:
    def test_live_exemptions_pass(self, check_tree):
        result = check_tree({
            "repro/network/arbiters.py": ARBITERS_OK,
        }, rule_ids=["RC003"])
        assert result.ok, "\n" + result.format_text()

    def test_flags_exemption_for_vanished_class(self, check_tree):
        without_matrix = ARBITERS_OK.split("\nclass MatrixArbiter")[0] + "\n"
        result = check_tree({
            "repro/network/arbiters.py": without_matrix,
        }, rule_ids=["RC003"])
        assert rule_ids_of(result) == ["RC003"]
        assert "MatrixArbiter" in result.findings[0].message

    def test_flags_exemption_for_vanished_attribute(self, check_tree):
        renamed = ARBITERS_OK.replace(
            "        self.size = size\n        self._next = 0\n",
            "        self.width = size\n        self._next = 0\n")
        result = check_tree({
            "repro/network/arbiters.py": renamed,
        }, rule_ids=["RC003"])
        assert rule_ids_of(result) == ["RC003"]
        assert "RoundRobinArbiter.size" in result.findings[0].message

    def test_flags_exemption_now_restored(self, check_tree):
        restored = ARBITERS_OK.replace(
            "    def reset(self):\n        self._next = 0\n",
            "    def reset(self):\n        self._next = 0\n"
            "        self.size = 0\n")
        result = check_tree({
            "repro/network/arbiters.py": restored,
        }, rule_ids=["RC003"])
        assert rule_ids_of(result) == ["RC003"]
        assert "stale" in result.findings[0].message

    def test_rule_gates_on_spec_module_presence(self, check_tree):
        result = check_tree({
            "repro/network/gadget.py": "class Gadget:\n    pass\n",
        }, rule_ids=["RC003"])
        assert result.ok
