"""Flag / no-flag fixtures for the serialization-purity rules (SP001-SP003).

SP002's scope is the declared hashing functions, so those fixtures
write to ``repro/experiments/journal.py``; the pool-boundary rules
apply across the package.
"""

from __future__ import annotations


def rule_ids_of(result):
    return [finding.rule_id for finding in result.findings]


class TestPoolSubmission:
    def test_flags_lambda_submission(self, check_tree):
        result = check_tree({
            "repro/experiments/executor.py": (
                "def launch(pool, work):\n"
                "    return pool.submit(lambda: work)\n"),
        }, rule_ids=["SP001"])
        assert rule_ids_of(result) == ["SP001"]
        assert "lambda" in result.findings[0].message

    def test_flags_nested_function_submission(self, check_tree):
        result = check_tree({
            "repro/experiments/executor.py": (
                "def launch(pool, work):\n"
                "    def task():\n"
                "        return work\n"
                "    return pool.submit(task)\n"),
        }, rule_ids=["SP001"])
        assert rule_ids_of(result) == ["SP001"]
        assert "task" in result.findings[0].message

    def test_flags_lambda_map(self, check_tree):
        result = check_tree({
            "repro/experiments/executor.py": (
                "def fan_out(pool, items):\n"
                "    return pool.map(lambda item: item, items)\n"),
        }, rule_ids=["SP001"])
        assert rule_ids_of(result) == ["SP001"]

    def test_module_level_function_passes(self, check_tree):
        result = check_tree({
            "repro/experiments/executor.py": (
                "def run_one(work):\n"
                "    return work\n"
                "\n"
                "def launch(pool, work):\n"
                "    return pool.submit(run_one, work)\n"),
        }, rule_ids=["SP001"])
        assert result.ok

    def test_analysis_package_is_out_of_scope(self, check_tree):
        result = check_tree({
            "repro/analysis/helper.py": (
                "def launch(pool, work):\n"
                "    return pool.submit(lambda: work)\n"),
        }, rule_ids=["SP001"])
        assert result.ok


class TestCanonicalHashing:
    def test_flags_unsorted_dumps_in_hashing_function(self, check_tree):
        result = check_tree({
            "repro/experiments/journal.py": (
                "import json\n"
                "def point_key(payload):\n"
                "    return json.dumps(payload)\n"),
        }, rule_ids=["SP002"])
        assert rule_ids_of(result) == ["SP002"]
        assert "sort_keys" in result.findings[0].message

    def test_flags_set_iteration_in_hashing_function(self, check_tree):
        result = check_tree({
            "repro/experiments/journal.py": (
                "def _canonical(values):\n"
                "    return [v for v in set(values)]\n"),
        }, rule_ids=["SP002"])
        assert rule_ids_of(result) == ["SP002"]
        assert "set" in result.findings[0].message

    def test_canonical_serialisation_passes(self, check_tree):
        result = check_tree({
            "repro/experiments/journal.py": (
                "import json\n"
                "def point_key(payload):\n"
                "    return json.dumps(payload, sort_keys=True)\n"
                "def _canonical(values):\n"
                "    return [v for v in sorted(values)]\n"),
        }, rule_ids=["SP002"])
        assert result.ok

    def test_other_functions_in_the_module_pass(self, check_tree):
        result = check_tree({
            "repro/experiments/journal.py": (
                "import json\n"
                "def render(payload):\n"
                "    return json.dumps(payload)\n"),
        }, rule_ids=["SP002"])
        assert result.ok

    def test_other_modules_are_out_of_scope(self, check_tree):
        result = check_tree({
            "repro/metrics/report_helpers.py": (
                "import json\n"
                "def point_key(payload):\n"
                "    return json.dumps(payload)\n"),
        }, rule_ids=["SP002"])
        assert result.ok


class TestBoundaryField:
    def test_flags_lambda_field(self, check_tree):
        result = check_tree({
            "repro/experiments/figures.py": (
                "def build():\n"
                "    return SweepPoint(label='x', "
                "traffic_factory=lambda n, s: None)\n"),
        }, rule_ids=["SP003"])
        assert rule_ids_of(result) == ["SP003"]
        assert "lambda" in result.findings[0].message

    def test_flags_nested_function_field(self, check_tree):
        result = check_tree({
            "repro/experiments/figures.py": (
                "def build():\n"
                "    def factory(n, s):\n"
                "        return None\n"
                "    return SweepPoint(label='x', "
                "traffic_factory=factory)\n"),
        }, rule_ids=["SP003"])
        assert rule_ids_of(result) == ["SP003"]

    def test_module_level_factory_passes(self, check_tree):
        result = check_tree({
            "repro/experiments/figures.py": (
                "def make_traffic(n, s):\n"
                "    return None\n"
                "\n"
                "def build():\n"
                "    return SweepPoint(label='x', "
                "traffic_factory=make_traffic)\n"),
        }, rule_ids=["SP003"])
        assert result.ok

    def test_other_constructors_pass(self, check_tree):
        result = check_tree({
            "repro/experiments/figures.py": (
                "def build():\n"
                "    return sorted([3, 1], key=lambda v: -v)\n"),
        }, rule_ids=["SP003"])
        assert result.ok
