"""Flag / no-flag fixtures for the hot-path purity rules (HP001-HP004).

The hot set is the explicit ``HOT_FUNCTIONS`` map; fixtures are written
to the same module paths (``repro/network/router.py``) so the scope
matches, with violations inside ``Router.step`` (hot) and the same
constructs inside a non-hot method as the negative control.
"""


def rule_ids_of(result):
    return [finding.rule_id for finding in result.findings]


def router_module(step_body: str, other_body: str = "        pass\n") -> str:
    return (
        "class Router:\n"
        "    def step(self, now):\n"
        f"{step_body}"
        "\n"
        "    def build_route_table(self, num_routers):\n"
        f"{other_body}"
    )


class TestLocalImport:
    def test_flags_import_in_hot_body(self, check_tree):
        result = check_tree({
            "repro/network/router.py": router_module(
                "        import heapq\n        return heapq\n"),
        }, rule_ids=["HP001"])
        assert rule_ids_of(result) == ["HP001"]

    def test_import_in_cold_method_passes(self, check_tree):
        result = check_tree({
            "repro/network/router.py": router_module(
                "        return None\n",
                "        import heapq\n        return heapq\n"),
        }, rule_ids=["HP001"])
        assert result.ok


class TestLoggingInHotPath:
    def test_flags_print(self, check_tree):
        result = check_tree({
            "repro/network/router.py": router_module(
                "        print(now)\n"),
        }, rule_ids=["HP002"])
        assert rule_ids_of(result) == ["HP002"]

    def test_flags_logger_call(self, check_tree):
        result = check_tree({
            "repro/network/router.py": router_module(
                "        logger.debug('tick %s', now)\n"),
        }, rule_ids=["HP002"])
        assert rule_ids_of(result) == ["HP002"]

    def test_print_elsewhere_passes(self, check_tree):
        result = check_tree({
            "repro/metrics/report_helpers.py": "def f(x):\n    print(x)\n",
        }, rule_ids=["HP002"])
        assert result.ok


class TestClosureInHotPath:
    def test_flags_lambda(self, check_tree):
        result = check_tree({
            "repro/network/router.py": router_module(
                "        key = lambda flit: flit.age\n        return key\n"),
        }, rule_ids=["HP003"])
        assert rule_ids_of(result) == ["HP003"]

    def test_flags_nested_def(self, check_tree):
        result = check_tree({
            "repro/network/router.py": router_module(
                "        def helper():\n            return 1\n"
                "        return helper()\n"),
        }, rule_ids=["HP003"])
        assert rule_ids_of(result) == ["HP003"]


class TestComprehensionInHotPath:
    def test_flags_list_comprehension(self, check_tree):
        result = check_tree({
            "repro/network/router.py": router_module(
                "        return [f for f in self.pending]\n"),
        }, rule_ids=["HP004"])
        assert rule_ids_of(result) == ["HP004"]

    def test_comprehension_severity_is_warning(self, check_tree):
        result = check_tree({
            "repro/network/router.py": router_module(
                "        return [f for f in self.pending]\n"),
        }, rule_ids=["HP004"])
        assert result.findings[0].severity == "warning"

    def test_suppressed_comprehension_passes(self, check_tree):
        result = check_tree({
            "repro/network/router.py": router_module(
                "        return [f for f in self.pending]"
                "  # repro: noqa[HP004] cold branch fixture\n"),
        }, rule_ids=["HP004"])
        assert result.ok
        assert result.suppressed == 1

    def test_cold_method_comprehension_passes(self, check_tree):
        result = check_tree({
            "repro/network/router.py": router_module(
                "        return None\n",
                "        return [i for i in range(num_routers)]\n"),
        }, rule_ids=["HP004"])
        assert result.ok


class TestTopologyCoverage:
    """The topology package sits under the same static-analysis contract."""

    def test_topology_route_relations_are_in_the_hot_set(self):
        from repro.analysis.rules.hotpath import HOT_FUNCTIONS

        assert "MeshTopology.route_direction" in \
            HOT_FUNCTIONS["repro/network/topologies/mesh.py"]
        assert {"TorusTopology.route_direction", "TorusTopology.vc_class"} \
            <= HOT_FUNCTIONS["repro/network/topologies/torus.py"]

    def test_determinism_rules_scope_covers_topologies(self):
        from repro.analysis.rules.determinism import DETERMINISTIC_LAYERS

        rel = "repro/network/topologies/torus.py"
        assert rel.startswith(DETERMINISTIC_LAYERS)

    def test_flags_comprehension_in_topology_hot_body(self, check_tree):
        result = check_tree({
            "repro/network/topologies/torus.py": (
                "class TorusTopology:\n"
                "    def vc_class(self, router_id, dst_router):\n"
                "        return sum(c for c in self._coords)\n"
            ),
        }, rule_ids=["HP004"])
        assert rule_ids_of(result) == ["HP004"]
