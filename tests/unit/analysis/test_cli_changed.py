"""The ``--changed`` pre-commit mode: findings filtered to the git diff.

Each test builds a throwaway git repository with seeded violations in
two files, changes one, and asserts only the changed file's findings
survive the filter.  Cross-file rules still see the whole tree — only
the *reporting* is filtered.
"""

from __future__ import annotations

import json
import subprocess

import pytest

from repro.analysis.cli import changed_files
from repro.analysis.cli import main as check_main

SEEDED = (
    "import random\n"
    "def jitter():\n"
    "    return random.random()\n"
)


def git(repo, *args):
    proc = subprocess.run(
        ["git", "-C", str(repo), "-c", "user.email=t@example.invalid",
         "-c", "user.name=t", *args],
        capture_output=True, text=True,
    )
    if proc.returncode != 0:
        pytest.skip(f"git unavailable: {proc.stderr.strip()}")
    return proc.stdout


@pytest.fixture
def seeded_repo(tmp_path):
    """A git repo with two committed violations; one file then changed."""
    for name in ("stable", "touched"):
        target = tmp_path / "repro" / "network" / f"{name}.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(SEEDED, encoding="utf-8")
    git(tmp_path, "init", "-q")
    git(tmp_path, "add", "-A")
    git(tmp_path, "commit", "-q", "-m", "seed")
    touched = tmp_path / "repro" / "network" / "touched.py"
    touched.write_text(SEEDED + "\n# edited\n", encoding="utf-8")
    return tmp_path


class TestChangedFilter:
    def test_only_changed_file_findings_reported(self, seeded_repo, capsys):
        code = check_main([str(seeded_repo), "--root", str(seeded_repo),
                           "--changed", "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        paths = {finding["path"] for finding in payload["findings"]}
        assert paths == {"repro/network/touched.py"}

    def test_untracked_files_count_as_changed(self, seeded_repo, capsys):
        fresh = seeded_repo / "repro" / "network" / "fresh.py"
        fresh.write_text(SEEDED, encoding="utf-8")
        code = check_main([str(seeded_repo), "--root", str(seeded_repo),
                           "--changed", "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        paths = {finding["path"] for finding in payload["findings"]}
        assert paths == {"repro/network/touched.py",
                         "repro/network/fresh.py"}

    def test_clean_diff_exits_zero(self, seeded_repo, capsys):
        touched = seeded_repo / "repro" / "network" / "touched.py"
        touched.write_text(SEEDED, encoding="utf-8")  # back to committed
        code = check_main([str(seeded_repo), "--root", str(seeded_repo),
                           "--changed", "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []

    def test_explicit_base_ref(self, seeded_repo, capsys):
        git(seeded_repo, "add", "-A")
        git(seeded_repo, "commit", "-q", "-m", "edit")
        # Nothing vs. HEAD, everything-touched vs. the first commit.
        code = check_main([str(seeded_repo), "--root", str(seeded_repo),
                           "--changed", "--format", "json"])
        assert code == 0
        capsys.readouterr()
        code = check_main([str(seeded_repo), "--root", str(seeded_repo),
                           "--changed", "HEAD~1", "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        paths = {finding["path"] for finding in payload["findings"]}
        assert paths == {"repro/network/touched.py"}

    def test_not_a_repository_is_a_usage_error(self, tmp_path, capsys):
        target = tmp_path / "repro" / "network" / "seeded.py"
        target.parent.mkdir(parents=True)
        target.write_text(SEEDED, encoding="utf-8")
        code = check_main([str(tmp_path), "--root", str(tmp_path),
                           "--changed", "--format", "json"])
        assert code == 2
        assert "cannot diff" in capsys.readouterr().err

    def test_changed_files_returns_none_outside_git(self, tmp_path):
        assert changed_files("HEAD", tmp_path) is None
