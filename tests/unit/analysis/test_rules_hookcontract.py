"""Flag / no-flag fixtures for the hook-contract rules (HC001-HC004).

Each fixture is a miniature project: a registry module at
``repro/engine/hooks.py`` defining ``EVENTS``, engine code firing the
events, and subscribers registering callbacks.
"""


def rule_ids_of(result):
    return [finding.rule_id for finding in result.findings]


HOOKS = (
    'EVENTS = ("window", "delivery")\n'
    "\n"
    "class HookRegistry:\n"
    "    def add(self, event, callback):\n"
    "        pass\n"
)

ENGINE = (
    "class Sim:\n"
    "    def __init__(self, hooks):\n"
    "        self.hooks = hooks\n"
    "\n"
    "    def step(self, now):\n"
    "        for cb in self.hooks.window:\n"
    "            cb(now, now + 1)\n"
    "        delivery_hooks = self.hooks.delivery\n"
    "        for cb in delivery_hooks:\n"
    "            cb(None, None, now)\n"
)

SUBSCRIBER = (
    "class Watch:\n"
    "    def attach(self, hooks):\n"
    '        hooks.add("window", self._on_window)\n'
    "\n"
    "    def _on_window(self, start, end):\n"
    "        pass\n"
)


class TestUnknownRegistration:
    def test_flags_misspelled_event(self, check_tree):
        bad = SUBSCRIBER.replace('"window"', '"windoww"')
        result = check_tree({
            "repro/engine/hooks.py": HOOKS,
            "repro/network/sim.py": ENGINE,
            "repro/metrics/watch.py": bad,
        }, rule_ids=["HC001"])
        assert rule_ids_of(result) == ["HC001"]
        assert "windoww" in result.findings[0].message

    def test_known_event_passes(self, check_tree):
        result = check_tree({
            "repro/engine/hooks.py": HOOKS,
            "repro/network/sim.py": ENGINE,
            "repro/metrics/watch.py": SUBSCRIBER,
        }, rule_ids=["HC001"])
        assert result.ok


class TestUnknownFire:
    def test_flags_read_of_undefined_event(self, check_tree):
        bad = ENGINE.replace("self.hooks.delivery", "self.hooks.deliverd")
        result = check_tree({
            "repro/engine/hooks.py": HOOKS,
            "repro/network/sim.py": bad,
        }, rule_ids=["HC002"])
        assert rule_ids_of(result) == ["HC002"]
        assert "deliverd" in result.findings[0].message

    def test_registry_api_reads_pass(self, check_tree):
        engine = ENGINE + (
            "\n"
            "    def instrumented(self):\n"
            "        return self.hooks.instrumented\n"
        )
        result = check_tree({
            "repro/engine/hooks.py": HOOKS,
            "repro/network/sim.py": engine,
        }, rule_ids=["HC002"])
        assert result.ok


class TestUnfiredEvent:
    def test_flags_event_nothing_fires(self, check_tree):
        hooks = HOOKS.replace(
            '("window", "delivery")', '("window", "delivery", "unused")')
        result = check_tree({
            "repro/engine/hooks.py": hooks,
            "repro/network/sim.py": ENGINE,
        }, rule_ids=["HC003"])
        assert rule_ids_of(result) == ["HC003"]
        assert "unused" in result.findings[0].message
        assert result.findings[0].path.endswith("repro/engine/hooks.py")

    def test_alias_load_counts_as_fire_evidence(self, check_tree):
        # delivery is only read through a local alias; still evidence.
        result = check_tree({
            "repro/engine/hooks.py": HOOKS,
            "repro/network/sim.py": ENGINE,
        }, rule_ids=["HC003"])
        assert result.ok


class TestSignatureMismatch:
    def test_flags_inconsistent_fire_arity(self, check_tree):
        engine = ENGINE + (
            "\n"
            "    def window_tick(self, now):\n"
            "        for cb in self.hooks.window:\n"
            "            cb(now)\n"
        )
        result = check_tree({
            "repro/engine/hooks.py": HOOKS,
            "repro/network/sim.py": engine,
        }, rule_ids=["HC004"])
        assert rule_ids_of(result) == ["HC004"]
        assert "'window'" in result.findings[0].message

    def test_flags_callback_that_cannot_accept_fire_args(self, check_tree):
        narrow = (
            "class Watch:\n"
            "    def attach(self, hooks):\n"
            '        hooks.add("window", self._on_window)\n'
            "\n"
            "    def _on_window(self, start):\n"
            "        pass\n"
        )
        result = check_tree({
            "repro/engine/hooks.py": HOOKS,
            "repro/network/sim.py": ENGINE,
            "repro/metrics/watch.py": narrow,
        }, rule_ids=["HC004"])
        assert rule_ids_of(result) == ["HC004"]
        assert "fire sites pass 2" in result.findings[0].message

    def test_matching_contract_passes(self, check_tree):
        result = check_tree({
            "repro/engine/hooks.py": HOOKS,
            "repro/network/sim.py": ENGINE,
            "repro/metrics/watch.py": SUBSCRIBER,
        }, rule_ids=["HC004"])
        assert result.ok

    def test_defaulted_callback_params_pass(self, check_tree):
        flexible = (
            "class Watch:\n"
            "    def attach(self, hooks):\n"
            '        hooks.add("window", self._on_window)\n'
            "\n"
            "    def _on_window(self, start, end=None, extra=None):\n"
            "        pass\n"
        )
        result = check_tree({
            "repro/engine/hooks.py": HOOKS,
            "repro/network/sim.py": ENGINE,
            "repro/metrics/watch.py": flexible,
        }, rule_ids=["HC004"])
        assert result.ok
