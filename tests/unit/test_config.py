"""Unit tests for the configuration dataclasses."""

import pytest

from repro.config import (
    MODULATOR,
    NetworkConfig,
    PolicyConfig,
    PowerAwareConfig,
    SimulationConfig,
    TransitionConfig,
    VCSEL,
    small_network,
)
from repro.errors import ConfigError


class TestNetworkConfig:
    def test_paper_defaults(self):
        config = NetworkConfig()
        assert config.num_routers == 64
        assert config.num_nodes == 512
        assert config.buffer_depth == 16
        assert config.flit_width_bits == 16
        assert config.router_frequency_hz == 625e6

    def test_cycle_time(self):
        assert NetworkConfig().cycle_time_s == pytest.approx(1.6e-9)

    def test_flit_service_time_at_operating_point(self):
        config = NetworkConfig()
        # 16 bits at 625 MHz = exactly one cycle at 10 Gb/s.
        assert config.flit_service_time(10e9, 10e9) == pytest.approx(1.0)
        assert config.flit_service_time(5e9, 10e9) == pytest.approx(2.0)

    def test_flit_service_time_bounds(self):
        config = NetworkConfig()
        with pytest.raises(ConfigError):
            config.flit_service_time(11e9, 10e9)
        with pytest.raises(ConfigError):
            config.flit_service_time(0.0, 10e9)

    def test_microseconds_to_cycles(self):
        config = NetworkConfig()
        # 100 us at 625 MHz = 62 500 cycles (the paper's VOA response).
        assert config.microseconds_to_cycles(100.0) == 62_500

    def test_buffer_must_fit_vcs(self):
        with pytest.raises(ConfigError):
            NetworkConfig(buffer_depth=2, num_vcs=4)

    def test_small_network_helper(self):
        config = small_network()
        assert config.num_routers == 16


class TestPolicyConfig:
    def test_paper_table1_defaults(self):
        config = PolicyConfig()
        assert (config.threshold_low_uncongested,
                config.threshold_high_uncongested) == (0.4, 0.6)
        assert (config.threshold_low_congested,
                config.threshold_high_congested) == (0.6, 0.7)
        assert config.congestion_threshold == 0.5
        assert config.window_cycles == 1000

    def test_threshold_ordering_enforced(self):
        with pytest.raises(ConfigError):
            PolicyConfig(threshold_low_uncongested=0.7,
                         threshold_high_uncongested=0.6)

    def test_window_positive(self):
        with pytest.raises(ConfigError):
            PolicyConfig(window_cycles=0)


class TestTransitionConfig:
    def test_paper_defaults(self):
        config = TransitionConfig()
        assert config.bit_rate_transition_cycles == 20
        assert config.voltage_transition_cycles == 100
        assert config.optical_transition_cycles == 62_500
        assert config.laser_epoch_cycles == 125_000

    def test_ideal_zeroes_electrical_delays(self):
        ideal = TransitionConfig.ideal()
        assert ideal.bit_rate_transition_cycles == 0
        assert ideal.voltage_transition_cycles == 0
        # Optical constants untouched.
        assert ideal.optical_transition_cycles == 62_500

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            TransitionConfig(bit_rate_transition_cycles=-1)


class TestPowerAwareConfig:
    def test_defaults(self):
        config = PowerAwareConfig()
        assert config.technology == VCSEL
        assert config.num_levels == 6
        assert config.min_bit_rate == 5e9

    def test_bad_technology(self):
        with pytest.raises(ConfigError):
            PowerAwareConfig(technology="copper")

    def test_optical_levels_need_modulator(self):
        with pytest.raises(ConfigError):
            PowerAwareConfig(technology=VCSEL, optical_levels=3)
        # Fine for modulators.
        PowerAwareConfig(technology=MODULATOR, optical_levels=3)

    def test_rate_ordering(self):
        with pytest.raises(ConfigError):
            PowerAwareConfig(min_bit_rate=11e9, max_bit_rate=10e9)

    def test_single_level_needs_equal_rates(self):
        with pytest.raises(ConfigError):
            PowerAwareConfig(num_levels=1, min_bit_rate=5e9)
        PowerAwareConfig(num_levels=1, min_bit_rate=10e9, max_bit_rate=10e9)


class TestSimulationConfig:
    def test_baseline_factory(self):
        config = SimulationConfig.baseline()
        assert config.power is None

    def test_default_is_power_aware(self):
        assert SimulationConfig().power is not None

    def test_warmup_validation(self):
        with pytest.raises(ConfigError):
            SimulationConfig(warmup_cycles=-1)
