"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scale == "smoke"
        assert args.traffic == "uniform"
        assert args.technology == "vcsel"

    def test_run_option_validation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scale", "galaxy"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--optical-levels", "7"])

    def test_trace_arguments(self):
        args = build_parser().parse_args(
            ["trace", "synth", "lu", "--nodes", "16", "--duration", "500"])
        assert args.benchmark == "lu"
        assert args.nodes == 16

    def test_trace_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_trace_convert_arguments(self):
        args = build_parser().parse_args(
            ["trace", "convert", "run.jsonl", "--format", "csv",
             "--kind", "policy"])
        assert args.trace_command == "convert"
        assert args.kind == "policy"

    def test_run_trace_arguments(self):
        args = build_parser().parse_args(
            ["run", "--trace", "out.jsonl", "--trace-kinds",
             "power,policy", "--trace-links", "0,3"])
        assert args.trace == "out.jsonl"
        assert args.trace_kinds == "power,policy"


class TestCommands:
    def test_table2_command(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "vcsel" in out
        assert "OK" in out

    def test_trace_synth_command(self, tmp_path, capsys):
        out_file = tmp_path / "lu.trace"
        code = main(["trace", "synth", "lu", "--nodes", "8",
                     "--duration", "2000", "--out", str(out_file)])
        assert code == 0
        assert out_file.exists()
        from repro.traffic.trace import read_trace_file

        records = read_trace_file(out_file)
        assert records

    def test_run_trace_then_convert_and_summarize(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        code = main(["run", "--scale", "smoke", "--rate", "0.1",
                     "--cycles", "2500", "--trace", str(trace)])
        assert code == 0
        assert trace.exists()
        code = main(["trace", "summarize", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "power" in out
        chrome = tmp_path / "run.json"
        code = main(["trace", "convert", str(trace),
                     "--out", str(chrome)])
        assert code == 0
        import json

        assert json.loads(chrome.read_text())["traceEvents"]
        csv_out = tmp_path / "power.csv"
        code = main(["trace", "convert", str(trace), "--format", "csv",
                     "--kind", "power", "--out", str(csv_out)])
        assert code == 0
        assert csv_out.read_text().startswith("cycle,watts")

    def test_run_trace_refuses_baseline(self, capsys):
        code = main(["run", "--trace", "x.jsonl", "--baseline"])
        assert code == 2
        assert "--trace" in capsys.readouterr().err

    def test_run_command_quick(self, capsys):
        code = main(["run", "--scale", "smoke", "--rate", "0.1",
                     "--cycles", "1500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "relative power" in out

    def test_run_with_baseline(self, capsys):
        # Longer than the smoke scale's 1500-cycle warmup, so measured
        # latencies exist on both sides of the normalisation.
        code = main(["run", "--scale", "smoke", "--rate", "0.1",
                     "--cycles", "4000", "--baseline"])
        assert code == 0
        out = capsys.readouterr().out
        assert "latency ratio" in out

    def test_run_hotspot_traffic(self, capsys):
        code = main(["run", "--scale", "smoke", "--traffic", "hotspot",
                     "--cycles", "1200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "hot-spot" in out

    def test_run_modulator_three_levels(self, capsys):
        code = main(["run", "--scale", "smoke", "--rate", "0.1",
                     "--cycles", "1200", "--technology", "modulator",
                     "--optical-levels", "3"])
        assert code == 0
        assert "modulator" in capsys.readouterr().out

    def test_run_splash_traffic(self, capsys):
        code = main(["run", "--scale", "smoke", "--traffic", "splash",
                     "--benchmark", "radix", "--cycles", "2000"])
        assert code == 0
        assert "splash/radix" in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep_parser(self):
        args = build_parser().parse_args(["sweep", "window"])
        assert args.kind == "window"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "everything"])

    def test_sweep_ablation_runs(self, capsys):
        # The ablation sweep is the cheapest CLI sweep; run it at smoke
        # scale with the light load baked into run_ablation's default?
        # run_ablation(load="medium") is a few seconds per variant, so
        # run only the parser-to-table plumbing with a monkeypatched
        # harness instead.
        import repro.cli as cli
        from repro.metrics.summary import RunResult

        fake = RunResult(
            label="full", cycles=100, packets_created=10,
            packets_delivered=10, mean_latency=40.0, p95_latency=60.0,
            max_latency=80.0, relative_power=0.3, accepted_rate=0.1,
        )

        import repro.experiments.ablation as ablation_module

        original = ablation_module.run_ablation
        ablation_module.run_ablation = lambda scale, seed=1: {"full": fake}
        try:
            code = main(["sweep", "ablation", "--scale", "smoke"])
        finally:
            ablation_module.run_ablation = original
        assert code == 0
        out = capsys.readouterr().out
        assert "full" in out and "rel power" in out
