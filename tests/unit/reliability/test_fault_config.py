"""Unit tests for the fault configuration and spec parser."""

import pytest

from repro.errors import ConfigError
from repro.reliability.config import (
    DEFAULT_RECEIVED_POWER_W,
    FaultConfig,
    LinkDegradation,
    LinkFailure,
    StuckTransition,
    neutral_fault_config,
    parse_fault_spec,
)


class TestFaultConfig:
    def test_defaults(self):
        config = FaultConfig()
        assert config.ber_injection
        assert config.margin_guard
        assert config.received_power_w == DEFAULT_RECEIVED_POWER_W
        assert not config.has_scenarios

    def test_scenarios_flag(self):
        config = FaultConfig(failures=(LinkFailure(3, 100),))
        assert config.has_scenarios

    def test_duplicate_failures_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            FaultConfig(failures=(LinkFailure(3, 100), LinkFailure(3, 200)))

    @pytest.mark.parametrize("kwargs", [
        {"seed": -1},
        {"received_power_w": 0.0},
        {"ber_scale": 0.0},
        {"ack_timeout_cycles": -1},
        {"retry_limit": -1},
        {"backoff_base_cycles": -1},
        {"guard_max_ber": 0.0},
        {"guard_max_ber": 0.5},
    ])
    def test_field_validation(self, kwargs):
        with pytest.raises(ConfigError):
            FaultConfig(**kwargs)

    def test_scenario_validation(self):
        with pytest.raises(ConfigError):
            LinkFailure(-1, 0)
        with pytest.raises(ConfigError):
            LinkDegradation(0, 0, duration_cycles=0)
        with pytest.raises(ConfigError):
            LinkDegradation(0, 0, duration_cycles=10, ber_multiplier=0.0)
        with pytest.raises(ConfigError):
            StuckTransition(0, -1, duration_cycles=5)


class TestParseFaultSpec:
    def test_empty_spec_is_default(self):
        assert parse_fault_spec("") == FaultConfig()

    def test_full_spec(self):
        config = parse_fault_spec(
            "seed=7, rx_uw=14, scale=2.5, retries=3, timeout=6, backoff=1,"
            " max_ber=1e-6, ber=on, guard=off,"
            " fail=12@4000, degrade=3@2000+1000x20, stuck=5@100+50"
        )
        assert config.seed == 7
        assert config.received_power_w == pytest.approx(14e-6)
        assert config.ber_scale == 2.5
        assert config.retry_limit == 3
        assert config.ack_timeout_cycles == 6
        assert config.backoff_base_cycles == 1
        assert config.guard_max_ber == 1e-6
        assert config.ber_injection
        assert not config.margin_guard
        assert config.failures == (LinkFailure(12, 4000),)
        assert config.degradations == (
            LinkDegradation(3, 2000, 1000, ber_multiplier=20.0),)
        assert config.stuck_transitions == (StuckTransition(5, 100, 50),)

    def test_degrade_default_multiplier(self):
        config = parse_fault_spec("degrade=3@2000+1000")
        assert config.degradations[0].ber_multiplier == 10.0

    def test_repeatable_entries(self):
        config = parse_fault_spec("fail=1@10,fail=2@20")
        assert [f.link_id for f in config.failures] == [1, 2]

    @pytest.mark.parametrize("spec", [
        "bogus=1",                 # unknown key
        "seed",                    # not KEY=VALUE
        "seed=x",                  # bad int
        "fail=12",                 # missing @CYC
        "degrade=3@2000",          # missing +DUR
        "stuck=5@100+50x2",        # stuck takes no multiplier
        "ber=maybe",               # bad toggle
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigError):
            parse_fault_spec(spec)


def test_neutral_config_perturbs_nothing():
    config = neutral_fault_config()
    assert not config.ber_injection
    assert not config.margin_guard
    assert not config.has_scenarios
