"""Unit tests for per-link fault injection and retransmission."""

import pytest

from repro.network.flit import Flit
from repro.network.links import MESH, Link
from repro.network.packet import Packet
from repro.photonics.ber import ReceiverNoiseModel
from repro.photonics.constants import MAX_BIT_RATE
from repro.reliability.channel import LinkChannelModel
from repro.reliability.config import FaultConfig
from repro.reliability.faults import LinkFaultState, fault_stream_seed

TIMEOUT = 4
BACKOFF = 2


class FixedRng:
    """A 'random' stream that always returns the same value."""

    def __init__(self, value: float):
        self.value = value

    def random(self) -> float:
        return self.value


def make_flit(index: int = 0) -> Flit:
    packet = Packet(index, src=0, dst=1, size=1, create_time=0)
    return packet.make_flits()[0]


def make_state(*, rx_uw: float = 25.0, retry_limit: int = 8,
               seed: int = 1) -> LinkFaultState:
    link = Link(0, MESH, propagation_cycles=1.0, service_time=1.0)
    channel = LinkChannelModel(
        ReceiverNoiseModel(),
        received_power_w=rx_uw * 1e-6,
        flit_bits=16,
        max_bit_rate=MAX_BIT_RATE,
    )
    config = FaultConfig(
        seed=seed, ack_timeout_cycles=TIMEOUT, retry_limit=retry_limit,
        backoff_base_cycles=BACKOFF, received_power_w=rx_uw * 1e-6,
    )
    return LinkFaultState(link, channel, config)


class TestStreamSeed:
    def test_deterministic(self):
        assert fault_stream_seed(1, 0) == fault_stream_seed(1, 0)

    def test_distinct_per_link_and_base(self):
        seeds = {fault_stream_seed(base, link)
                 for base in range(4) for link in range(16)}
        assert len(seeds) == 64


class TestCleanPath:
    def test_clean_arrivals_pass_through_in_order(self):
        state = make_state()
        state.rng = FixedRng(0.999999)  # never below any realistic p
        link = state.link
        first, second = make_flit(0), make_flit(1)
        link.push(first, 0.0)
        link.push(second, 1.0)
        assert state.filter_arrivals(5.0) == [first, second]
        assert state.flits_corrupted == 0
        assert not link.has_in_flight

    def test_not_yet_due_flit_stays(self):
        state = make_state()
        state.rng = FixedRng(0.999999)
        state.link.push(make_flit(), 0.0)
        assert state.filter_arrivals(0.0) == []
        assert state.link.has_in_flight


class TestRetransmission:
    def test_corrupted_flit_is_rescheduled_at_front(self):
        state = make_state(retry_limit=8)
        state.rng = FixedRng(0.0)  # every trial corrupts
        link = state.link
        flit = make_flit()
        link.push(flit, 0.0)  # arrives at 2.0 (service 1 + propagation 1)

        assert state.filter_arrivals(2.0) == []
        assert state.flits_corrupted == 1
        assert state.flits_retransmitted == 1
        assert state.flits_dropped == 0
        # Re-arrival: now + timeout + backoff*2^0 + service + propagation.
        expected = 2.0 + TIMEOUT + BACKOFF + 1.0 + 1.0
        assert link._in_flight[0] == (expected, flit)
        # The retransmission occupies the serialiser (busy time + free_at).
        assert link.free_at == expected - 1.0
        assert state.retry_busy_cycles == 1.0

    def test_backoff_doubles_per_attempt(self):
        state = make_state(retry_limit=8)
        state.rng = FixedRng(0.0)
        link = state.link
        link.push(make_flit(), 0.0)
        arrival = 2.0
        for attempt in range(1, 4):
            assert state.filter_arrivals(arrival) == []
            delay = TIMEOUT + BACKOFF * 2 ** (attempt - 1)
            arrival = arrival + delay + 2.0  # + service + propagation
            assert link._in_flight[0][0] == arrival
        assert state.flits_retransmitted == 3

    def test_corrupted_front_blocks_later_flits(self):
        state = make_state(retry_limit=8)
        state.rng = FixedRng(0.0)
        link = state.link
        first, second = make_flit(0), make_flit(1)
        link.push(first, 0.0)
        link.push(second, 1.0)
        # Both are due at cycle 3, but the corrupted front blocks delivery.
        assert state.filter_arrivals(3.0) == []
        assert len(link._in_flight) == 2
        assert link._in_flight[1][1] is second

    def test_budget_exhaustion_delivers_and_counts_drop(self):
        state = make_state(retry_limit=0)
        state.rng = FixedRng(0.0)
        flit = make_flit()
        state.link.push(flit, 0.0)
        assert state.filter_arrivals(2.0) == [flit]
        assert state.flits_corrupted == 1
        assert state.flits_retransmitted == 0
        assert state.flits_dropped == 1
        assert not state.link.has_in_flight

    def test_recovery_after_retries(self):
        state = make_state(retry_limit=2)
        state.rng = FixedRng(0.0)
        link = state.link
        flit = make_flit()
        link.push(flit, 0.0)
        assert state.filter_arrivals(2.0) == []      # attempt 1
        assert state.filter_arrivals(100.0) == []    # attempt 2
        state.rng = FixedRng(0.999999)               # channel recovers
        assert state.filter_arrivals(300.0) == [flit]
        assert state.flits_dropped == 0
        assert state._attempts == {}


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        outcomes = []
        for _ in range(2):
            state = make_state(rx_uw=10.0, seed=42)
            link = state.link
            delivered = []
            now = 0.0
            for index in range(200):
                if link.can_accept(now):
                    link.push(make_flit(index), now)
                delivered += [f.packet.packet_id
                              for f in state.filter_arrivals(now)]
                now += 1.0
            # Drain the stragglers.
            for _ in range(2000):
                now += 1.0
                delivered += [f.packet.packet_id
                              for f in state.filter_arrivals(now)]
                if not link.has_in_flight:
                    break
            outcomes.append((delivered, state.flits_corrupted,
                             state.flits_retransmitted, state.flits_dropped))
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][1] > 0  # the scenario actually exercised faults

    def test_in_order_delivery_under_faults(self):
        state = make_state(rx_uw=10.0, seed=7)
        link = state.link
        delivered = []
        now = 0.0
        for index in range(300):
            if link.can_accept(now):
                link.push(make_flit(index), now)
            delivered += [f.packet.packet_id
                          for f in state.filter_arrivals(now)]
            now += 1.0
        while link.has_in_flight:
            now += 1.0
            delivered += [f.packet.packet_id
                          for f in state.filter_arrivals(now)]
        assert delivered == sorted(delivered)


class TestDegradationWindow:
    def test_multiplier_applies_only_inside_window(self):
        state = make_state(rx_uw=25.0)
        base = state.flit_error_probability(0.0)
        state.degrade(1e6, until=100.0)
        assert state.flit_error_probability(50.0) > base * 1e3
        assert state.flit_error_probability(100.0) == pytest.approx(base)

    def test_degrade_extends_not_shrinks(self):
        state = make_state()
        state.degrade(10.0, until=200.0)
        state.degrade(10.0, until=50.0)
        assert state.degrade_until == 200.0
