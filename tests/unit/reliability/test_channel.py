"""Unit tests for the link channel model (operating point -> BER)."""

import pytest

from repro.errors import ConfigError
from repro.photonics.ber import ReceiverNoiseModel
from repro.photonics.constants import MAX_BIT_RATE, TARGET_BER
from repro.reliability.channel import LinkChannelModel

LADDER_RATES = [5e9, 6e9, 7e9, 8e9, 9e9, 10e9]


def make_channel(**overrides):
    kwargs = dict(
        received_power_w=25e-6,
        flit_bits=16,
        max_bit_rate=MAX_BIT_RATE,
        ber_scale=1.0,
        drive_proportional=True,
    )
    kwargs.update(overrides)
    return LinkChannelModel(ReceiverNoiseModel(), **kwargs)


def test_nominal_point_meets_design_target():
    channel = make_channel()
    assert channel.ber(MAX_BIT_RATE) == pytest.approx(TARGET_BER, rel=0.05)


def test_vcsel_descending_ladder_raises_ber():
    """Descending the drive-proportional ladder must measurably raise BER."""
    channel = make_channel(drive_proportional=True)
    bers = [channel.ber(rate) for rate in LADDER_RATES]  # ascending rates
    for slower_rate_ber, faster_rate_ber in zip(bers, bers[1:]):
        assert slower_rate_ber > faster_rate_ber * 10  # decades, not epsilon

    p_flit = [channel.flit_error_probability(rate) for rate in LADDER_RATES]
    assert p_flit == sorted(p_flit, reverse=True)


def test_modulator_band_drop_raises_ber():
    channel = make_channel(drive_proportional=False)
    full = channel.ber(MAX_BIT_RATE, band_fraction=1.0)
    half = channel.ber(MAX_BIT_RATE, band_fraction=0.5)
    quarter = channel.ber(MAX_BIT_RATE, band_fraction=0.25)
    assert quarter > half > full


def test_modulator_rate_cut_improves_ber():
    """Same light, less noise bandwidth: lower rate helps a modulator."""
    channel = make_channel(drive_proportional=False)
    assert channel.ber(5e9, band_fraction=1.0) \
        < channel.ber(10e9, band_fraction=1.0)


def test_received_power_models():
    vcsel = make_channel(drive_proportional=True)
    assert vcsel.received_power(5e9) == pytest.approx(12.5e-6)
    modulator = make_channel(drive_proportional=False)
    assert modulator.received_power(5e9, band_fraction=0.5) \
        == pytest.approx(12.5e-6)


def test_scale_and_multiplier_are_applied_and_capped():
    channel = make_channel(ber_scale=100.0)
    base = make_channel().ber(MAX_BIT_RATE)
    assert channel.ber(MAX_BIT_RATE) == pytest.approx(100.0 * base)
    assert channel.ber(MAX_BIT_RATE, multiplier=1e30) == 0.5


def test_flit_error_probability_formula_and_cache():
    channel = make_channel(received_power_w=13e-6, flit_bits=16)
    ber = channel.ber(MAX_BIT_RATE)
    expected = 1.0 - (1.0 - ber) ** 16
    assert channel.flit_error_probability(MAX_BIT_RATE) \
        == pytest.approx(expected)
    # Second call must come from the memo, not a fresh evaluation.
    assert (MAX_BIT_RATE, 1.0, 1.0) in channel._cache
    assert channel.flit_error_probability(MAX_BIT_RATE) == pytest.approx(
        expected)


@pytest.mark.parametrize("kwargs", [
    {"received_power_w": 0.0},
    {"flit_bits": 0},
    {"max_bit_rate": 0.0},
    {"ber_scale": 0.0},
])
def test_constructor_validation(kwargs):
    with pytest.raises(ConfigError):
        make_channel(**kwargs)
