"""Unit tests for the persistent benchmark trajectory (``repro bench``)."""

import json

import pytest

from repro import perfbench
from repro.errors import ConfigError


def fake_snapshot(throughputs: dict[str, float],
                  calibration: float = 1_000_000.0) -> dict:
    return {
        "schema_version": perfbench.SCHEMA_VERSION,
        "pr": 4,
        "quick": True,
        "python": "3.11.7",
        "implementation": "CPython",
        "machine": "x86_64",
        "calibration_ops_per_sec": calibration,
        "peak_rss_kb": 40_000,
        "datapoints": [
            {
                "label": label,
                "injection_rate": perfbench.RATES[label],
                "cycles": 1500,
                "repeats": 2,
                "cycles_per_sec_cpu": cps,
                "summary": {},
                "phase_profile": {},
            }
            for label, cps in throughputs.items()
        ],
    }


class TestCompare:
    def test_identical_snapshots_pass(self):
        snapshot = fake_snapshot({"light": 100_000.0, "moderate": 20_000.0})
        assert perfbench.compare(snapshot, snapshot) == []

    def test_regression_beyond_tolerance_is_reported(self):
        baseline = fake_snapshot({"light": 100_000.0, "moderate": 20_000.0})
        current = fake_snapshot({"light": 100_000.0, "moderate": 15_000.0})
        regressions = perfbench.compare(current, baseline, tolerance=0.15)
        assert len(regressions) == 1
        assert regressions[0].startswith("moderate:")

    def test_drop_within_tolerance_passes(self):
        baseline = fake_snapshot({"moderate": 20_000.0})
        current = fake_snapshot({"moderate": 18_000.0})
        assert perfbench.compare(current, baseline, tolerance=0.15) == []

    def test_calibration_normalisation_forgives_a_slower_machine(self):
        # Half the raw throughput on a machine scoring half the
        # calibration: identical code, no regression.
        baseline = fake_snapshot({"moderate": 20_000.0},
                                 calibration=2_000_000.0)
        current = fake_snapshot({"moderate": 10_000.0},
                                calibration=1_000_000.0)
        assert perfbench.compare(current, baseline) == []

    def test_calibration_normalisation_catches_a_masked_regression(self):
        # Same raw throughput on a machine twice as fast IS a regression.
        baseline = fake_snapshot({"moderate": 20_000.0},
                                 calibration=1_000_000.0)
        current = fake_snapshot({"moderate": 20_000.0},
                                calibration=2_000_000.0)
        assert perfbench.compare(current, baseline) != []

    def test_unshared_labels_are_ignored(self):
        baseline = fake_snapshot({"light": 100_000.0})
        current = fake_snapshot({"moderate": 1.0})
        assert perfbench.compare(current, baseline) == []

    def test_missing_calibration_rejected(self):
        good = fake_snapshot({"light": 1.0})
        bad = fake_snapshot({"light": 1.0})
        del bad["calibration_ops_per_sec"]
        with pytest.raises(ConfigError):
            perfbench.compare(good, bad)

    def test_bad_tolerance_rejected(self):
        snapshot = fake_snapshot({"light": 1.0})
        for tolerance in (0.0, 1.0, -0.5):
            with pytest.raises(ConfigError):
                perfbench.compare(snapshot, snapshot, tolerance=tolerance)


class TestSnapshotIO:
    def test_write_load_round_trip(self, tmp_path):
        snapshot = fake_snapshot({"light": 100_000.0})
        path = tmp_path / "bench.json"
        perfbench.write_snapshot(snapshot, str(path))
        assert perfbench.load_snapshot(str(path)) == snapshot

    def test_missing_file_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            perfbench.load_snapshot(str(tmp_path / "absent.json"))

    def test_malformed_json_is_config_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="malformed"):
            perfbench.load_snapshot(str(path))

    def test_unknown_schema_rejected(self, tmp_path):
        snapshot = fake_snapshot({"light": 1.0})
        snapshot["schema_version"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(snapshot))
        with pytest.raises(ConfigError, match="schema"):
            perfbench.load_snapshot(str(path))


class TestMeasurement:
    def test_measure_rate_smoke(self):
        point = perfbench.measure_rate("light", 0.02, cycles=300,
                                       repeats=2, profile=False)
        assert point.cycles_per_sec_cpu > 0
        assert point.summary["cycles"] == 300
        assert point.phase_profile == {}
        json.dumps(point.to_json())  # must be serialisable as-is

    def test_phase_profile_shares_sum_to_one(self):
        profile = perfbench._phase_profile(0.02, cycles=300)
        assert set(profile) == {"deliver", "route", "inject", "generate",
                                "control"}
        assert sum(profile.values()) == pytest.approx(1.0, abs=0.01)

    def test_calibration_is_positive(self):
        assert perfbench.calibrate(rounds=1) > 0


class TestCli:
    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench", "--quick"])
        assert args.quick and args.tolerance == 0.15
        assert args.out is None and args.compare is None

    def test_bench_command_writes_and_gates(self, tmp_path, capsys,
                                            monkeypatch):
        from repro import cli

        snapshot = fake_snapshot({"light": 100_000.0})

        def fast_run(quick=False, pr=None, profile=True, topology="mesh",
                     backend="python"):
            return dict(snapshot, pr=pr, quick=quick)

        monkeypatch.setattr(perfbench, "run_benchmarks", fast_run)
        out = tmp_path / "BENCH_t.json"
        assert cli.main(["bench", "--quick", "--out", str(out)]) == 0
        assert perfbench.load_snapshot(str(out))["quick"] is True

        # Gate against itself: passes; against an inflated baseline: fails.
        assert cli.main(["bench", "--quick", "--compare", str(out)]) == 0
        inflated = fake_snapshot({"light": 1_000_000.0})
        baseline = tmp_path / "baseline.json"
        perfbench.write_snapshot(inflated, str(baseline))
        assert cli.main(["bench", "--quick",
                         "--compare", str(baseline)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err

    def test_pr_number_names_the_default_output(self, tmp_path, capsys,
                                                monkeypatch):
        from repro import cli

        monkeypatch.setattr(
            perfbench, "run_benchmarks",
            lambda quick=False, pr=None, profile=True, topology="mesh",
            backend="python":
            dict(fake_snapshot({"light": 1.0}), pr=pr))
        monkeypatch.chdir(tmp_path)
        assert cli.main(["bench", "--quick", "--pr", "9"]) == 0
        assert perfbench.load_snapshot(str(tmp_path / "BENCH_9.json"))[
            "pr"] == 9


class TestCalibrationDrift:
    def with_probes(self, throughputs, calibration=1_000_000.0,
                    probe=None):
        snapshot = fake_snapshot(throughputs, calibration=calibration)
        for point in snapshot["datapoints"]:
            point["calibration_ops_per_sec"] = (
                probe if probe is not None else calibration)
        return snapshot

    def test_clean_snapshots_produce_no_warnings(self):
        snapshot = self.with_probes({"light": 1.0})
        assert perfbench.calibration_warnings(snapshot, snapshot) == []

    def test_intra_snapshot_probe_drift_is_flagged(self):
        # A probe 30% off its own snapshot's score: the machine moved
        # mid-session, so every ratio involving that point is suspect.
        drifted = self.with_probes({"light": 1.0}, calibration=1_000_000.0,
                                   probe=700_000.0)
        clean = self.with_probes({"light": 1.0})
        warnings = perfbench.calibration_warnings(drifted, clean)
        assert len(warnings) == 1
        assert "comparison unreliable" in warnings[0]
        assert "current" in warnings[0]

    def test_same_machine_cross_snapshot_shift_is_flagged(self):
        current = self.with_probes({"light": 1.0}, calibration=700_000.0,
                                   probe=700_000.0)
        baseline = self.with_probes({"light": 1.0},
                                    calibration=1_000_000.0)
        warnings = perfbench.calibration_warnings(current, baseline)
        assert len(warnings) == 1

    def test_different_machine_shift_is_not_flagged(self):
        # The snapshot-level normalisation exists exactly for honest
        # machine differences; only an identical machine drifting warns.
        current = self.with_probes({"light": 1.0}, calibration=700_000.0,
                                   probe=700_000.0)
        baseline = self.with_probes({"light": 1.0},
                                    calibration=1_000_000.0)
        baseline["machine"] = "aarch64"
        assert perfbench.calibration_warnings(current, baseline) == []

    def test_compare_prefers_per_point_probes(self):
        # Same raw throughput; the snapshot-level scores diverge but the
        # per-point probes agree — per-point normalisation must win and
        # report no regression.
        current = self.with_probes({"moderate": 20_000.0},
                                   calibration=2_000_000.0,
                                   probe=1_000_000.0)
        baseline = self.with_probes({"moderate": 20_000.0},
                                    calibration=1_000_000.0,
                                    probe=1_000_000.0)
        assert perfbench.compare(current, baseline) == []

    def test_compare_falls_back_to_snapshot_score(self):
        # A pre-probe baseline (no point-level probes) still gates via
        # the snapshot-level score.
        current = fake_snapshot({"moderate": 10_000.0},
                                calibration=1_000_000.0)
        baseline = fake_snapshot({"moderate": 20_000.0},
                                 calibration=1_000_000.0)
        assert perfbench.compare(current, baseline) != []


def fake_sweep_snapshot(points_per_sec: dict[str, float],
                        calibration: float = 1_000_000.0) -> dict:
    snapshot = fake_snapshot({}, calibration=calibration)
    snapshot["sweep_datapoints"] = [
        {
            "label": label,
            "variant": label.split("_")[1],
            "points": 24,
            "cycles_per_point": 200,
            "warm": label.endswith("warm"),
            "jobs": 1,
            "clock": "cpu",
            "points_per_sec": pps,
            "calibration_ops_per_sec": calibration,
        }
        for label, pps in points_per_sec.items()
    ]
    return snapshot


class TestCompareSweeps:
    def test_identical_snapshots_pass(self):
        snapshot = fake_sweep_snapshot({"sweep_short_cold": 60.0,
                                        "sweep_short_warm": 160.0})
        assert perfbench.compare_sweeps(snapshot, snapshot) == []

    def test_regression_beyond_tolerance_is_reported(self):
        baseline = fake_sweep_snapshot({"sweep_short_warm": 160.0})
        current = fake_sweep_snapshot({"sweep_short_warm": 100.0})
        regressions = perfbench.compare_sweeps(current, baseline)
        assert len(regressions) == 1
        assert regressions[0].startswith("sweep_short_warm:")

    def test_calibration_normalisation_applies(self):
        baseline = fake_sweep_snapshot({"sweep_short_warm": 160.0},
                                       calibration=2_000_000.0)
        current = fake_sweep_snapshot({"sweep_short_warm": 80.0},
                                      calibration=1_000_000.0)
        assert perfbench.compare_sweeps(current, baseline) == []

    def test_mismatched_geometry_is_skipped(self):
        # points/sec across different sweep shapes is meaningless; a
        # re-parameterised variant must not gate against the old shape.
        baseline = fake_sweep_snapshot({"sweep_short_warm": 160.0})
        current = fake_sweep_snapshot({"sweep_short_warm": 10.0})
        current["sweep_datapoints"][0]["cycles_per_point"] = 500
        assert perfbench.compare_sweeps(current, baseline) == []

    def test_snapshots_without_sweeps_compare_vacuously(self):
        plain = fake_snapshot({"light": 1.0})
        sweeping = fake_sweep_snapshot({"sweep_short_warm": 160.0})
        assert perfbench.compare_sweeps(plain, sweeping) == []
        assert perfbench.compare_sweeps(sweeping, plain) == []

    def test_bad_tolerance_rejected(self):
        snapshot = fake_sweep_snapshot({"sweep_short_warm": 1.0})
        with pytest.raises(ConfigError):
            perfbench.compare_sweeps(snapshot, snapshot, tolerance=1.0)


class TestSweepMeasurement:
    TINY_VARIANTS = {
        "short": {"points": 3, "cycles": 120, "warmup": 25,
                  "rates": (0.02,)},
    }

    def test_measure_sweep_smoke(self, monkeypatch):
        monkeypatch.setattr(perfbench, "SWEEP_VARIANTS", self.TINY_VARIANTS)
        cold = perfbench.measure_sweep("short", warm=False, repeats=1)
        warm = perfbench.measure_sweep("short", warm=True, repeats=1)
        assert warm.pop("results") == cold.pop("results")
        assert cold["label"] == "sweep_short_cold"
        assert warm["label"] == "sweep_short_warm"
        assert cold["points_per_sec"] > 0 and warm["points_per_sec"] > 0
        assert cold["clock"] == "cpu"
        json.dumps([cold, warm])  # must be serialisable as-is

    def test_run_sweep_benchmarks_quick(self, monkeypatch):
        monkeypatch.setattr(perfbench, "SWEEP_VARIANTS", self.TINY_VARIANTS)
        doc = perfbench.run_sweep_benchmarks(quick=True)
        labels = [p["label"] for p in doc["sweep_datapoints"]]
        assert labels == ["sweep_short_cold", "sweep_short_warm"]
        assert "short" in doc["sweep_speedups"]
        for point in doc["sweep_datapoints"]:
            assert "results" not in point

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigError, match="unknown sweep variant"):
            perfbench.sweep_bench_points("nope")

    def test_bad_jobs_rejected(self):
        with pytest.raises(ConfigError):
            perfbench.measure_sweep("short", warm=True, jobs=0)


class TestCommittedSnapshotsCarryProfiles:
    def test_post_pr9_datapoints_have_phase_profiles(self):
        # BENCH_8 shipped torus/numpy riders with an empty phase_profile
        # (the riders hardcoded profile=False); from PR 9 on, every
        # committed single-run datapoint must carry a non-empty profile.
        import glob
        import os

        root = os.path.join(os.path.dirname(__file__), "..", "..")
        checked = 0
        for path in sorted(glob.glob(os.path.join(root, "BENCH_*.json"))):
            stem = os.path.basename(path)
            number = int(stem[len("BENCH_"):-len(".json")])
            if number < 9:
                continue
            snapshot = perfbench.load_snapshot(path)
            for point in snapshot["datapoints"]:
                assert point["phase_profile"], (
                    f"{stem} datapoint {point['label']!r} has an empty "
                    "phase_profile"
                )
                checked += 1
        assert checked > 0, "no post-PR9 snapshot committed"
