"""Unit tests for experiment scales and reference rates."""

import pytest

from repro.config import NetworkConfig, VCSEL
from repro.errors import ConfigError
from repro.experiments.configs import (
    SCALES,
    get_scale,
    power_config,
    reference_rates,
    static_rate_config,
    uniform_saturation_packets,
)


class TestScales:
    def test_known_scales(self):
        assert set(SCALES) == {"smoke", "bench", "paper"}

    def test_get_scale(self):
        assert get_scale("paper").network.num_nodes == 512
        with pytest.raises(ConfigError):
            get_scale("galactic")

    def test_scaled_transitions_keep_paper_ratios(self):
        for name in ("smoke", "bench", "paper"):
            scale = get_scale(name)
            transitions = scale.transitions()
            # Tw : Tv : Tbr stays 1000 : 100 : 20.
            ratio = scale.policy_window_cycles / 1000.0
            assert transitions.voltage_transition_cycles == round(100 * ratio)
            assert transitions.bit_rate_transition_cycles == round(20 * ratio)

    def test_paper_scale_is_exact(self):
        transitions = get_scale("paper").transitions()
        assert transitions.voltage_transition_cycles == 100
        assert transitions.bit_rate_transition_cycles == 20
        assert transitions.optical_transition_cycles == 62_500

    def test_scaled_racks_stay_at_eight_nodes(self):
        # The node-to-mesh-link ratio governs policy behaviour; scaled
        # presets must not thin the racks.
        for name in ("smoke", "bench"):
            assert get_scale(name).network.nodes_per_cluster == 8


class TestPowerConfigs:
    def test_power_config_uses_scale_policy_window(self):
        scale = get_scale("smoke")
        config = power_config(scale)
        assert config.policy.window_cycles == scale.policy_window_cycles

    def test_ideal_transitions_flag(self):
        scale = get_scale("smoke")
        config = power_config(scale, ideal_transitions=True)
        assert config.transitions.bit_rate_transition_cycles == 0
        assert config.transitions.voltage_transition_cycles == 0

    def test_static_rate_config_is_one_level(self):
        scale = get_scale("smoke")
        config = static_rate_config(scale, 3.3e9)
        assert config.num_levels == 1
        assert config.min_bit_rate == config.max_bit_rate == 3.3e9

    def test_technology_passthrough(self):
        scale = get_scale("smoke")
        assert power_config(scale, technology=VCSEL).technology == VCSEL


class TestReferenceRates:
    def test_paper_scale_rates_match_paper(self):
        rates = reference_rates(NetworkConfig())
        # 8x8 with 5-flit packets: theoretical saturation 6.4 pkt/cycle;
        # the paper's operating points were 1.25 / 3.3 / 5.
        assert rates["light"] == pytest.approx(1.25, abs=0.01)
        assert rates["medium"] == pytest.approx(2.88, abs=0.01)
        assert rates["heavy"] == pytest.approx(4.16, abs=0.01)

    def test_ordering(self):
        rates = reference_rates(NetworkConfig(mesh_width=4, mesh_height=4))
        assert rates["light"] < rates["medium"] < rates["heavy"]

    def test_saturation_estimate(self):
        # Bisection bound: 4 * min(w, h) flits/cycle.
        assert uniform_saturation_packets(NetworkConfig(), 5) == \
            pytest.approx(6.4)
        assert uniform_saturation_packets(
            NetworkConfig(mesh_width=4, mesh_height=4), 5
        ) == pytest.approx(3.2)


class TestBaselinePower:
    def test_baseline_link_power_matches_topology(self):
        from repro.experiments.configs import baseline_link_power

        scale = get_scale("smoke")
        config = power_config(scale)
        watts = baseline_link_power(scale, config)
        # smoke: 4x4x8 -> 128 inj + 128 ej + 48 mesh = 304 links x 290 mW.
        assert watts == pytest.approx(304 * 0.290)
