"""Unit tests for the pure helper functions of the figure harnesses.

The simulation-heavy paths are covered by the benchmarks; these tests pin
the cheap, deterministic pieces: schedules, node placement, intensity
calibration, configuration sets and curve post-processing.
"""

import pytest

from repro.config import NetworkConfig
from repro.experiments import fig5, fig6, fig7
from repro.experiments.configs import get_scale
from repro.metrics.summary import RunResult


def result_with(latency: float, rate: float = 0.5) -> RunResult:
    return RunResult(
        label="x", cycles=1000, packets_created=10, packets_delivered=10,
        mean_latency=latency, p95_latency=latency, max_latency=latency,
        relative_power=0.5, accepted_rate=rate,
    )


class TestFig5Helpers:
    def test_uniform_factory_builds_fresh_sources(self):
        factory = fig5.uniform_factory(0.5)
        a = factory(16, seed=1)
        b = factory(16, seed=1)
        assert a is not b
        assert a.injection_rate == 0.5

    def test_ladder_configurations_cover_paper_variants(self):
        scale = get_scale("smoke")
        configs = fig5.ladder_configurations(scale)
        assert configs["baseline"] is None
        assert configs["vcsel_5_10"].min_bit_rate == 5e9
        assert configs["vcsel_3.3_10"].min_bit_rate == pytest.approx(3.3e9)
        assert configs["static_3.3"].num_levels == 1

    def test_throughput_of_curve(self):
        points = [
            (0.5, result_with(40.0)),
            (1.0, result_with(55.0)),
            (1.5, result_with(300.0)),   # above 2 x zero-load
        ]
        assert fig5.throughput_of_curve(points, zero_load_latency=30.0) == 1.0

    def test_throughput_of_curve_all_saturated(self):
        points = [(0.5, result_with(500.0))]
        assert fig5.throughput_of_curve(points, 30.0) == 0.0

    def test_throughput_of_curve_ignores_nan(self):
        points = [(0.5, result_with(40.0)),
                  (1.0, result_with(float("nan")))]
        assert fig5.throughput_of_curve(points, 30.0) == 0.5


class TestFig6Helpers:
    def test_schedule_fits_run_budget(self):
        scale = get_scale("smoke")
        schedule = fig6.schedule_for_scale(scale)
        assert schedule[0].start_cycle == 0
        assert schedule[-1].start_cycle < scale.run_cycles

    def test_schedule_rates_scaled_by_capacity(self):
        smoke = get_scale("smoke")
        paper = get_scale("paper")
        smoke_schedule = fig6.schedule_for_scale(smoke)
        paper_schedule = fig6.schedule_for_scale(paper)
        # 4x4 has half the bisection of 8x8 -> half the rates.
        assert smoke_schedule[0].injection_rate == pytest.approx(
            paper_schedule[0].injection_rate / 2
        )

    def test_default_hotspot_node_paper_scale(self):
        network = NetworkConfig()  # 8x8x8
        node = fig6.default_hotspot_node(network)
        # Paper: node 4 in rack(3,5) -> router 5*8+3 = 43, local 4.
        assert node == 43 * 8 + 4

    def test_default_hotspot_node_in_range(self):
        for w, h, n in ((2, 2, 2), (4, 4, 8), (5, 3, 4)):
            network = NetworkConfig(mesh_width=w, mesh_height=h,
                                    nodes_per_cluster=n)
            node = fig6.default_hotspot_node(network)
            assert 0 <= node < network.num_nodes


class TestFig7Helpers:
    def test_active_nodes_is_first_row(self):
        assert fig7.active_nodes_for(NetworkConfig()) == 64  # paper: 8 racks
        assert fig7.active_nodes_for(
            NetworkConfig(mesh_width=4, mesh_height=4, nodes_per_cluster=8)
        ) == 32

    def test_intensity_independent_of_mesh(self):
        # The calibration targets the active row's centre-link utilisation,
        # which is size-independent by construction.
        a = fig7.splash_intensity(NetworkConfig())
        b = fig7.splash_intensity(
            NetworkConfig(mesh_width=4, mesh_height=4, nodes_per_cluster=8))
        assert a == pytest.approx(b)

    def test_factory_traces_stay_on_active_nodes(self):
        scale = get_scale("smoke")
        factory = fig7.splash_factory("radix", scale)
        source = factory(scale.network.num_nodes, seed=1)
        active = fig7.active_nodes_for(scale.network)
        assert all(r.src < active and r.dst < active
                   for r in source.records)

    def test_table3_rows_structure(self):
        fake = {
            "fft": {"normalised": _normalised(1.5, 0.25)},
            "lu": {"normalised": _normalised(1.8, 0.26)},
        }
        rows = fig7.table3_rows(fake)
        assert rows[0]["trace"] == "FFT"
        assert rows[0]["power_latency_product"] == pytest.approx(0.375)

    def test_mean_power_savings(self):
        fake = {
            "fft": {"normalised": _normalised(1.0, 0.2)},
            "lu": {"normalised": _normalised(1.0, 0.3)},
        }
        assert fig7.mean_power_savings(fake) == pytest.approx(0.75)


def _normalised(latency_ratio: float, power_ratio: float):
    from repro.metrics.summary import NormalisedResult

    return NormalisedResult("x", latency_ratio, power_ratio, 100.0,
                            100.0 * latency_ratio)


class TestWindowSweepScaling:
    def test_windows_for_scale_multiples(self):
        from repro.experiments.fig5 import WINDOW_MULTIPLES, windows_for_scale

        scale = get_scale("paper")
        assert windows_for_scale(scale) == (100, 300, 1000, 3000, 10_000)
        smoke = get_scale("smoke")
        expected = tuple(round(m * smoke.policy_window_cycles)
                         for m in WINDOW_MULTIPLES)
        assert windows_for_scale(smoke) == expected

    def test_windows_never_below_floor(self):
        from repro.experiments.configs import ExperimentScale
        from repro.experiments.fig5 import windows_for_scale

        tiny = ExperimentScale(
            name="tiny", network=NetworkConfig(mesh_width=2, mesh_height=2),
            run_cycles=1000, slow_constant_divisor=100, warmup_cycles=0,
            sample_interval=100, policy_window_cycles=50,
        )
        assert min(windows_for_scale(tiny)) >= 10
