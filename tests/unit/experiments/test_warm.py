"""Unit tests for the warm-worker construction cache (experiments.warm)."""

import pickle
import subprocess
import sys

import pytest

from repro.config import PowerAwareConfig
from repro.errors import ConfigError
from repro.experiments import warm
from repro.experiments.journal import point_key
from repro.experiments.runner import SweepPoint, run_pair, run_point
from repro.experiments.warm import (
    cache_info,
    clear_cache,
    run_point_warm,
    structural_key,
)
from tests.sweeputil import TINY, tiny_point


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestStructuralKey:
    def test_key_is_the_network_config(self):
        point = tiny_point()
        assert structural_key(point) == TINY.network

    def test_seed_rate_and_power_do_not_change_the_key(self):
        base = tiny_point(seed=1)
        other = SweepPoint(label="q", scale=TINY, power=PowerAwareConfig(),
                           traffic_factory=base.traffic_factory, seed=9,
                           cycles=300)
        assert structural_key(base) == structural_key(other)


class TestWarmExecution:
    def test_bit_identical_to_cold(self):
        points = [tiny_point(label=f"p{i}", seed=i + 1) for i in range(3)]
        cold = [run_point(p) for p in points]
        assert [run_point_warm(p) for p in points] == cold

    def test_cache_hits_after_first_point(self):
        points = [tiny_point(label=f"p{i}", seed=i + 1) for i in range(3)]
        for point in points:
            run_point_warm(point)
        info = cache_info()
        assert info == {"hits": 2, "misses": 1, "size": 1}

    def test_power_toggle_reuses_the_fabric(self):
        baseline = tiny_point(label="b", seed=4)
        aware = SweepPoint(label="a", scale=TINY, power=PowerAwareConfig(),
                           traffic_factory=baseline.traffic_factory, seed=4,
                           cycles=1_200)
        cold = [run_point(aware), run_point(baseline)]
        assert [run_point_warm(aware), run_point_warm(baseline)] == cold
        assert cache_info()["misses"] == 1

    def test_failed_point_evicts_its_simulator(self):
        good = tiny_point(label="good", seed=2)
        run_point_warm(good)
        assert cache_info()["size"] == 1

        class Boom(RuntimeError):
            pass

        def exploding_run(cycles):
            raise Boom("mid-run death")

        bad = tiny_point(label="bad", seed=3)
        original = warm._acquire

        def sabotaged(config, traffic):
            sim = original(config, traffic)
            sim.run = exploding_run
            return sim

        warm._acquire = sabotaged
        try:
            with pytest.raises(Boom):
                run_point_warm(bad)
        finally:
            warm._acquire = original
        assert cache_info()["size"] == 0
        # And the next warm run rebuilds cold, correctly.
        assert run_point_warm(good) == run_point(good)

    def test_cache_is_bounded(self):
        for width in (2, 3):
            from dataclasses import replace

            from repro.config import NetworkConfig
            scale = replace(TINY, name=f"t{width}",
                            network=NetworkConfig(
                                mesh_width=width, mesh_height=2,
                                nodes_per_cluster=2, buffer_depth=8,
                                num_vcs=2))
            point = SweepPoint(label=f"w{width}", scale=scale, power=None,
                               traffic_factory=tiny_point().traffic_factory,
                               seed=1, cycles=400)
            run_point_warm(point)
        assert cache_info()["size"] <= warm._CACHE_MAX


class TestRunPairSharing:
    def test_run_pair_is_bit_identical_with_cold_memos(self):
        # run_pair's two sides share the per-process immutable artifacts
        # (topology memo, route-table cache, operating-point table); the
        # regression gate is that results equal a run with every memo
        # cold, computed in a pristine subprocess.
        from repro.experiments.fig5 import uniform_factory

        aware, baseline, norm = run_pair(
            TINY, PowerAwareConfig(), uniform_factory(0.05),
            label="pair", seed=5, cycles=900)
        script = (
            "import json\n"
            "from tests.sweeputil import TINY\n"
            "from repro.config import PowerAwareConfig\n"
            "from repro.experiments.fig5 import uniform_factory\n"
            "from repro.experiments.runner import run_pair\n"
            "aware, baseline, norm = run_pair(TINY, PowerAwareConfig(),\n"
            "    uniform_factory(0.05), label='pair', seed=5, cycles=900)\n"
            "print(json.dumps([aware.mean_latency, aware.relative_power,\n"
            "    baseline.mean_latency, norm.latency_ratio]))\n"
        )
        out = subprocess.run([sys.executable, "-c", script],
                             capture_output=True, text=True, check=True)
        import json

        assert json.loads(out.stdout) == [
            aware.mean_latency, aware.relative_power,
            baseline.mean_latency, norm.latency_ratio,
        ]


class TestPointKeyCache:
    def test_cached_key_matches_recomputation(self):
        point = tiny_point(label="k", seed=7)
        first = point_key(point)
        assert point.__dict__["_point_key"] == first
        assert point_key(point) == first

    def test_cache_is_invisible_to_hashing_and_equality(self):
        a = tiny_point(label="k", seed=7)
        b = tiny_point(label="k", seed=7)
        point_key(a)  # a now carries the cache, b does not
        assert a == b
        assert point_key(b) == point_key(a)

    def test_key_is_stable_across_processes(self):
        point = tiny_point(label="x", seed=11)
        local = point_key(point)
        # Ship the point (cache already populated) to a fresh process
        # and have it recompute from scratch there.
        payload = pickle.dumps(point)
        script = (
            "import pickle, sys\n"
            "from repro.experiments.journal import point_key\n"
            "point = pickle.loads(sys.stdin.buffer.read())\n"
            "object.__delattr__(point, '_point_key') if '_point_key' in "
            "point.__dict__ else None\n"
            "print(point_key(point))\n"
        )
        out = subprocess.run([sys.executable, "-c", script],
                             input=payload, capture_output=True, check=True)
        assert out.stdout.decode().strip() == local


class TestExecutorIntegration:
    def test_execute_sweep_warm_matches_cold(self):
        from repro.experiments.executor import ExecutionPlan, execute_sweep

        points = [tiny_point(label=f"e{i}", seed=i + 1) for i in range(4)]
        cold = execute_sweep(points, max_workers=1,
                             plan=ExecutionPlan(warm=False))
        clear_cache()
        hot = execute_sweep(points, max_workers=1,
                            plan=ExecutionPlan(warm=True))
        assert hot.results == cold.results
        assert cache_info()["hits"] == 3

    def test_plan_defaults_to_warm(self):
        from repro.experiments.executor import ExecutionPlan

        assert ExecutionPlan().warm is True


class TestAcquireFallback:
    def test_reset_failure_falls_back_to_cold_construction(self):
        point = tiny_point(label="f", seed=1)
        expected = run_point(point)
        run_point_warm(point)
        # Corrupt the cached simulator so its next reset raises.
        (cached,) = warm._CACHE.values()
        cached.reset = None  # type: ignore[assignment]
        result = run_point_warm(point)
        assert result == expected
        info = cache_info()
        assert info["misses"] == 2  # cold build replaced the corpse


def test_structural_key_raises_nothing_on_faulted_points():
    from repro.reliability import FaultConfig

    point = SweepPoint(label="f", scale=TINY, power=None,
                       traffic_factory=tiny_point().traffic_factory,
                       seed=1, cycles=400,
                       faults=FaultConfig(seed=3, received_power_w=13e-6))
    assert structural_key(point) == TINY.network


def test_warm_and_cold_agree_on_faulted_points():
    from repro.reliability import FaultConfig

    factory = tiny_point().traffic_factory
    faulted = SweepPoint(label="f", scale=TINY, power=PowerAwareConfig(),
                         traffic_factory=factory, seed=1, cycles=900,
                         faults=FaultConfig(seed=3, received_power_w=13e-6))
    clean = SweepPoint(label="c", scale=TINY, power=PowerAwareConfig(),
                       traffic_factory=factory, seed=1, cycles=900)
    cold = [run_point(faulted), run_point(clean), run_point(faulted)]
    assert [run_point_warm(faulted), run_point_warm(clean),
            run_point_warm(faulted)] == cold
