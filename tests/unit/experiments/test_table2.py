"""Unit tests for the Table 2 harness — the paper cross-check must be exact."""

import pytest

from repro.experiments import table2


class TestTable2:
    def test_verification_is_clean(self):
        assert table2.verify_against_paper() == []

    def test_trend_rows_cover_all_components(self):
        names = [r["component"] for r in table2.trend_model_rows()]
        assert names == ["vcsel", "vcsel_driver", "modulator_driver",
                         "tia", "cdr"]

    def test_physics_rows_match_paper(self):
        rows = table2.physics_model_rows()
        for name, (paper_mw, _) in table2.PAPER_TABLE2.items():
            assert rows[name] == pytest.approx(paper_mw)

    def test_link_totals(self):
        totals = table2.link_totals()
        assert totals["vcsel_at_10g_mw"] == pytest.approx(290.0)
        assert totals["modulator_at_10g_mw"] == pytest.approx(290.0)
        assert totals["vcsel_savings_at_5g"] == pytest.approx(0.793, abs=0.01)

    def test_vcsel_beats_modulator_at_reduced_rate(self):
        # The paper's Fig. 6(d) claim, visible already in the models: at
        # 5 Gb/s the VCSEL link dissipates less because its transmitter
        # scales with voltage too.
        totals = table2.link_totals()
        assert totals["vcsel_at_5g_mw"] < totals["modulator_at_5g_mw"]
