"""Unit tests for the resilient sweep executor (serial paths).

Parallel/crash/timeout recovery lives in
tests/integration/test_executor_chaos.py; these tests cover plan
validation, retry accounting, journaling, dedup, hooks and the strict
vs degraded contract — all in-process, so they are fast.
"""

import json
from dataclasses import dataclass

import pytest

from repro.engine.hooks import HookRegistry
from repro.errors import ConfigError
from repro.experiments.executor import (
    ExecutionPlan,
    ResilientSweepExecutor,
    SweepOutcome,
    execute_sweep,
)
from repro.experiments.runner import run_point, run_sweep

from tests.sweeputil import tiny_point


@dataclass(frozen=True)
class MisconfiguredFactory:
    """A picklable traffic factory that refuses to build."""

    def __call__(self, num_nodes, seed):
        raise ConfigError("rate table is empty")


class TestExecutionPlan:
    @pytest.mark.parametrize("kwargs", [
        {"timeout": 0.0},
        {"timeout": -1.0},
        {"retries": -1},
        {"backoff": -0.1},
        {"backoff_cap": -1.0},
        {"grace": -0.5},
        {"resume": True},  # resume without a journal path
    ], ids=lambda kwargs: next(iter(kwargs)))
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            ExecutionPlan(**kwargs)

    def test_attempts_allowed(self):
        assert ExecutionPlan().attempts_allowed == 1
        assert ExecutionPlan(retries=3).attempts_allowed == 4

    def test_backoff_doubles_then_caps(self):
        plan = ExecutionPlan(backoff=0.5, backoff_cap=3.0)
        assert [plan.backoff_delay(n) for n in (1, 2, 3, 4, 5)] == \
            [0.5, 1.0, 2.0, 3.0, 3.0]

    def test_zero_backoff_is_free(self):
        assert ExecutionPlan(backoff=0.0).backoff_delay(7) == 0.0


class TestValidation:
    def test_executor_rejects_bad_worker_count(self):
        with pytest.raises(ConfigError, match="max_workers"):
            ResilientSweepExecutor(max_workers=0)

    def test_run_sweep_validates_workers_before_listing_points(self):
        consumed = []

        def points():
            consumed.append(True)
            yield tiny_point()

        with pytest.raises(ConfigError, match="max_workers"):
            run_sweep(points(), max_workers=0)
        assert not consumed


class TestSerialExecution:
    def test_results_align_with_points(self):
        points = [tiny_point(label=f"p{i}", seed=i + 1) for i in range(3)]
        outcome = execute_sweep(points)
        assert isinstance(outcome, SweepOutcome)
        assert outcome.complete
        assert not outcome.report
        assert [r.label for r in outcome.results] == ["p0", "p1", "p2"]
        assert outcome.stats.executed == 3
        assert outcome.stats.cached == 0
        assert outcome.results == [run_point(p) for p in points]

    def test_journal_dedups_identical_points_within_a_sweep(self, tmp_path):
        plan = ExecutionPlan(journal=tmp_path / "j.sqlite")
        point = tiny_point(label="dup")
        outcome = execute_sweep([point, point], plan=plan)
        assert outcome.stats.executed == 1
        assert outcome.results[0] == outcome.results[1]
        assert outcome.results[0] is not None

    def test_resume_serves_journal_and_is_bit_identical(self, tmp_path):
        points = [tiny_point(label=f"p{i}", seed=i + 1) for i in range(3)]
        journal = tmp_path / "j.sqlite"
        first = execute_sweep(points, plan=ExecutionPlan(journal=journal))
        events = []
        hooks = HookRegistry()
        hooks.add("exec_point",
                  lambda label, key, status, attempt, elapsed:
                  events.append((label, status, attempt)))
        second = execute_sweep(
            points, plan=ExecutionPlan(journal=journal, resume=True),
            hooks=hooks)
        assert second.stats.executed == 0
        assert second.stats.cached == 3
        assert second.results == first.results
        assert events == [("p0", "cached", 0), ("p1", "cached", 0),
                          ("p2", "cached", 0)]

    def test_resume_requires_existing_journal(self, tmp_path):
        plan = ExecutionPlan(journal=tmp_path / "absent.sqlite",
                             resume=True)
        with pytest.raises(ConfigError, match="does not exist"):
            execute_sweep([tiny_point()], plan=plan)


class TestRetriesAndDegradation:
    def test_retry_recovers_and_backs_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "error*1:flaky")
        delays = []
        plan = ExecutionPlan(retries=2, backoff=0.25, backoff_cap=10.0)
        outcome = execute_sweep(
            [tiny_point(label="flaky"), tiny_point(label="solid", seed=2)],
            plan=plan, sleep=delays.append)
        monkeypatch.delenv("REPRO_CHAOS")
        assert outcome.complete
        assert outcome.stats.retries == 1
        assert outcome.stats.failed == 0
        assert delays == [0.25]
        # The sabotaged point still produced the untouched result.
        assert outcome.results[0] == run_point(tiny_point(label="flaky"))

    def test_exhausted_point_degrades_without_losing_siblings(
            self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CHAOS", "oom*9:doomed")
        plan = ExecutionPlan(retries=1, backoff=0.0,
                             journal=tmp_path / "j.sqlite")
        points = [tiny_point(label="p0"), tiny_point(label="doomed", seed=2),
                  tiny_point(label="p2", seed=3)]
        outcome = execute_sweep(points, plan=plan)
        monkeypatch.delenv("REPRO_CHAOS")
        assert not outcome.complete
        assert outcome.results[0] == run_point(points[0])
        assert outcome.results[1] is None
        assert outcome.results[2] == run_point(points[2])
        assert outcome.stats.failed == 1
        [failure] = outcome.report.failures
        assert failure.label == "doomed"
        assert failure.attempts == 2
        assert failure.causes == ("error", "error")
        assert "MemoryError" in failure.error
        assert "doomed" in outcome.report.summary()
        # The journal agrees: siblings done, the doomed point failed.
        from repro.experiments.journal import SweepJournal
        with SweepJournal(tmp_path / "j.sqlite") as j:
            assert j.counts() == {"done": 2, "failed": 1}

    def test_hooks_see_the_whole_lifecycle(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "error*1:flaky")
        hooks = HookRegistry()
        points_seen, retries_seen = [], []
        hooks.add("exec_point",
                  lambda label, key, status, attempt, elapsed:
                  points_seen.append((label, status, attempt)))
        hooks.add("exec_retry",
                  lambda label, key, attempt, cause, delay:
                  retries_seen.append((label, attempt, cause, delay)))
        plan = ExecutionPlan(retries=1, backoff=0.125)
        execute_sweep([tiny_point(label="flaky")], plan=plan, hooks=hooks,
                      sleep=lambda s: None)
        monkeypatch.delenv("REPRO_CHAOS")
        assert retries_seen == [("flaky", 1, "error", 0.125)]
        assert points_seen == [("flaky", "done", 2)]

    def test_trace_path_writes_lifecycle_events(self, tmp_path):
        trace = tmp_path / "exec.jsonl"
        plan = ExecutionPlan(trace_path=str(trace))
        execute_sweep([tiny_point(label="traced")], plan=plan)
        records = [json.loads(line)
                   for line in trace.read_text().splitlines()]
        assert [(r["kind"], r["label"], r["status"]) for r in records] == \
            [("exec_point", "traced", "done")]


class TestStrictMode:
    def test_strict_reraises_the_injected_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "error*9:bad")
        plan = ExecutionPlan(strict=True)
        with pytest.raises(RuntimeError, match="chaos error injected"):
            execute_sweep([tiny_point(label="bad")], plan=plan)
        monkeypatch.delenv("REPRO_CHAOS")

    def test_strict_config_error_names_the_point(self):
        from dataclasses import replace
        point = replace(tiny_point(label="built-wrong"),
                        traffic_factory=MisconfiguredFactory())
        with pytest.raises(ConfigError,
                           match="sweep point 'built-wrong'.*rate table"):
            run_sweep([point])  # legacy path defaults to strict

    def test_run_sweep_degraded_returns_none_gaps(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "error*9:bad")
        results = run_sweep(
            [tiny_point(label="good"), tiny_point(label="bad", seed=2)],
            execution=ExecutionPlan(retries=0))
        monkeypatch.delenv("REPRO_CHAOS")
        assert results[0] is not None
        assert results[1] is None
