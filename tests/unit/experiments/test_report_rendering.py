"""Unit tests for the report's section renderers, on synthetic data.

The full ``generate_report`` runs many minutes of simulation; these tests
feed the renderers hand-built results so the markdown plumbing is covered
in milliseconds.
"""

import math

from repro.experiments import report
from repro.experiments.configs import get_scale
from repro.metrics.summary import NormalisedResult, RunResult, SweepSeries


def run_result(label="x", latency=50.0, power=0.3,
               power_series=((0, 10.0), (500, 4.0))) -> RunResult:
    return RunResult(
        label=label, cycles=1000, packets_created=50, packets_delivered=50,
        mean_latency=latency, p95_latency=latency * 1.4,
        max_latency=latency * 2, relative_power=power, accepted_rate=0.05,
        power_series=tuple(power_series),
        injection_series=(0.1, 0.3, 0.2),
    )


def normalised(latency_ratio=1.4, power_ratio=0.3) -> NormalisedResult:
    return NormalisedResult("x", latency_ratio, power_ratio, 100.0,
                            100.0 * latency_ratio)


class TestRenderSweep:
    def test_sections_per_load(self):
        series = SweepSeries(name="light", x_label="Tw")
        series.append(100, normalised())
        series.append(1000, normalised(1.2, 0.4))
        text = report.render_sweep({"light": series}, "Tw", "Title", "Note")
        assert "## Title" in text
        assert "### load: light" in text
        assert "| 100 |" in text
        assert "Note" in text

    def test_fractional_x_formatting(self):
        series = SweepSeries(name="medium", x_label="threshold")
        series.append(0.45, normalised())
        text = report.render_sweep({"medium": series}, "T", "T", "n")
        assert "| 0.45 |" in text


class TestRenderInjection:
    def test_throughput_annotated_per_curve(self):
        scale = get_scale("smoke")
        curves = {
            "baseline": [(0.5, run_result(latency=30.0, power=1.0)),
                         (2.0, run_result(latency=500.0, power=1.0))],
            "vcsel_5_10": [(0.5, run_result(latency=40.0)),
                           (2.0, run_result(latency=700.0))],
        }
        text = report.render_injection(curves, scale)
        assert "### baseline (throughput >=" in text
        assert "### vcsel_5_10 (throughput >=" in text
        assert "| 0.50 | 30.0 | 1.000 |" in text


class TestRenderFig6:
    def test_tables_present(self):
        entry = {"result": run_result(),
                 "latency_series": [40.0, math.nan, 60.0],
                 "relative_power_series": [(0, 0.8), (500, 0.3)]}
        ablation = {"non_power_aware": entry, "power_aware": entry,
                    "power_aware_ideal": entry}
        optical = {"non_power_aware": entry, "single_optical_level": entry,
                   "three_optical_levels": entry}
        tech = {"vcsel": entry, "modulator": entry}
        text = report.render_fig6(ablation, optical, tech)
        assert "### (b) transition-delay ablation" in text
        assert "### (c) optical power levels" in text
        assert "### (d) VCSEL vs modulator power" in text
        # Sampled mean of the power series: (0.8 + 0.3) / 2.
        assert "0.550" in text


class TestRenderFig7:
    def test_paper_comparison_included(self):
        data = {
            bench: {
                "normalised": normalised(1.8, 0.26),
                "aware": run_result(),
                "baseline": run_result(power=1.0),
                "injection_series": [0.1, 0.2],
                "relative_power_series": [(0, 0.5)],
            }
            for bench in ("fft", "lu", "radix")
        }
        text = report.render_fig7(data)
        assert "Paper Table 3 for comparison" in text
        assert "| FFT | 1.80 | 0.26 |" in text
        assert "Mean power saving: 74.0%" in text
        assert "Known gap" in text
