"""Unit tests for the chaos-injection spec parser and dispatcher."""

import pytest

from repro.errors import ConfigError
from repro.experiments.chaos import (
    ChaosDirective,
    maybe_inject,
    parse_chaos_spec,
)


class TestParsing:
    def test_single_directive(self):
        assert parse_chaos_spec("crash:p0") == \
            (ChaosDirective(mode="crash", label="p0", times=1),)

    def test_repeat_count_and_multiple_directives(self):
        first, second = parse_chaos_spec("hang*3:Tw=100/heavy;oom:p1")
        assert first == ChaosDirective(mode="hang", label="Tw=100/heavy",
                                       times=3)
        assert second == ChaosDirective(mode="oom", label="p1", times=1)

    def test_label_may_contain_colons(self):
        # Only the first ':' splits mode from label.
        [directive] = parse_chaos_spec("error:faults/rx25uW:extra")
        assert directive.label == "faults/rx25uW:extra"

    def test_whitespace_and_empty_segments_tolerated(self):
        directives = parse_chaos_spec(" crash:p0 ; ; error:p1 ")
        assert [d.mode for d in directives] == ["crash", "error"]
        assert [d.label for d in directives] == ["p0", "p1"]

    @pytest.mark.parametrize("spec", [
        "",  # nothing at all
        ";;",  # only separators
        "crash",  # no label
        "warp:p0",  # unknown mode
        "crash*x:p0",  # non-integer repeat
        "crash*0:p0",  # repeat below 1
        "crash:",  # empty label
    ])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ConfigError):
            parse_chaos_spec(spec)


class TestMatching:
    def test_matches_exact_label_and_attempt_window(self):
        directive = ChaosDirective(mode="error", label="p0", times=2)
        assert directive.matches("p0", 1)
        assert directive.matches("p0", 2)
        assert not directive.matches("p0", 3)
        assert not directive.matches("p00", 1)
        assert not directive.matches("p", 1)


class TestInjection:
    def test_noop_when_env_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        maybe_inject("anything", 1)  # must not raise

    def test_noop_when_label_differs(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "error:someone-else")
        maybe_inject("me", 1)  # must not raise

    def test_error_mode_raises_runtime_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "error:victim")
        with pytest.raises(RuntimeError, match="chaos error injected"):
            maybe_inject("victim", 1)

    def test_oom_mode_raises_memory_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "oom:victim")
        with pytest.raises(MemoryError, match="chaos oom injected"):
            maybe_inject("victim", 1)

    def test_times_bounds_the_attempts_hit(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "error*2:victim")
        with pytest.raises(RuntimeError):
            maybe_inject("victim", 1)
        with pytest.raises(RuntimeError):
            maybe_inject("victim", 2)
        maybe_inject("victim", 3)  # past the budget: clean

    def test_malformed_env_spec_surfaces_as_config_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "nonsense")
        with pytest.raises(ConfigError):
            maybe_inject("victim", 1)
