"""Unit tests for the sweep journal: hashing contract and persistence."""

import json
import sqlite3
from dataclasses import dataclass, replace

import pytest

from repro.errors import ConfigError
from repro.experiments.fig5 import uniform_factory
from repro.experiments.journal import SweepJournal, point_key
from repro.experiments.runner import run_point

from tests.sweeputil import tiny_point


class TestPointKey:
    def test_stable_and_hex(self):
        point = tiny_point()
        key = point_key(point)
        assert key == point_key(tiny_point())
        assert len(key) == 64
        int(key, 16)  # hex digest

    @pytest.mark.parametrize("change", [
        {"label": "other"},
        {"seed": 2},
        {"cycles": 999},
        {"drain": True},
        {"traffic_factory": uniform_factory(0.06)},
    ], ids=lambda change: next(iter(change)))
    def test_every_field_participates(self, change):
        assert point_key(replace(tiny_point(), **change)) != \
            point_key(tiny_point())

    def test_unhashable_factory_names_the_point(self):
        point = replace(tiny_point(label="lambda-point"),
                        traffic_factory=lambda n, s: None)
        with pytest.raises(ConfigError, match="lambda-point"):
            point_key(point)

    def test_non_string_dict_keys_rejected(self):
        @dataclass(frozen=True)
        class BadFactory:
            table: dict

            def __call__(self, num_nodes, seed):  # pragma: no cover
                raise AssertionError

        point = replace(tiny_point(label="bad-dict"),
                        traffic_factory=BadFactory(table={1: "x"}))
        with pytest.raises(ConfigError, match="bad-dict"):
            point_key(point)


class TestJournalPersistence:
    def test_done_round_trip_is_bit_identical(self, tmp_path):
        point = tiny_point()
        result = run_point(point)
        key = point_key(point)
        path = tmp_path / "j.sqlite"
        with SweepJournal(path) as journal:
            journal.record_done(key, point.label, result, attempts=1,
                                elapsed=0.5)
        with SweepJournal(path) as journal:
            assert journal.get(key) == result
            assert journal.counts() == {"done": 1}

    def test_missing_and_failed_keys_return_none(self, tmp_path):
        with SweepJournal(tmp_path / "j.sqlite") as journal:
            assert journal.get("0" * 64) is None
            journal.record_failed("0" * 64, "p", attempts=2,
                                  error="RuntimeError: boom", elapsed=1.0)
            # A stale failure is never served as a result: resume retries.
            assert journal.get("0" * 64) is None
            assert journal.counts() == {"failed": 1}
            [failure] = journal.failures()
            assert failure["label"] == "p"
            assert failure["attempts"] == 2
            assert "boom" in failure["error"]

    def test_attempt_log_is_append_only(self, tmp_path):
        with SweepJournal(tmp_path / "j.sqlite") as journal:
            journal.record_attempt("k1", "p1", 1, "retry", "timeout", 1.5)
            journal.record_attempt("k1", "p1", 2, "done", None, 0.7)
            journal.record_attempt("k2", "p2", 1, "failed", "error", 0.1)
            log = journal.attempt_log()
            assert [(e["key"], e["attempt"], e["outcome"]) for e in log] == \
                [("k1", 1, "retry"), ("k1", 2, "done"), ("k2", 1, "failed")]
            assert [e["attempt"] for e in journal.attempt_log("k1")] == [1, 2]

    def test_done_overwrites_failed(self, tmp_path):
        point = tiny_point()
        result = run_point(point)
        key = point_key(point)
        with SweepJournal(tmp_path / "j.sqlite") as journal:
            journal.record_failed(key, point.label, 1, "boom", 0.1)
            journal.record_done(key, point.label, result, 2, 0.9)
            assert journal.get(key) == result
            assert journal.counts() == {"done": 1}

    def test_schema_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "j.sqlite"
        SweepJournal(path).close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET v = '99' WHERE k = 'schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(ConfigError, match="schema version 99"):
            SweepJournal(path)

    def test_commits_survive_connection_loss(self, tmp_path):
        # Simulate a crash: write through one connection, never close it,
        # and read through a brand-new one.
        path = tmp_path / "j.sqlite"
        point = tiny_point()
        result = run_point(point)
        journal = SweepJournal(path)
        journal.record_done(point_key(point), point.label, result, 1, 0.1)
        with SweepJournal(path) as fresh:
            assert fresh.get(point_key(point)) == result

    def test_float_payload_round_trips_exactly(self, tmp_path):
        # The resume bit-identity claim rests on JSON float exactness.
        values = [0.1, 1 / 3, 2.0 ** -52, 1e308, -0.0]
        assert [json.loads(json.dumps(v)) for v in values] == values
