"""Unit tests for the experiment runner and the report renderer."""

import pytest

from repro.experiments import report
from repro.experiments.configs import get_scale, power_config
from repro.experiments.fig5 import uniform_factory
from repro.experiments.runner import (
    build_simulator,
    collect_result,
    run_pair,
    run_simulation,
)


class TestRunner:
    def test_build_simulator_wires_traffic(self):
        scale = get_scale("smoke")
        sim = build_simulator(scale.network, None, uniform_factory(0.2),
                              seed=4, warmup_cycles=100, sample_interval=100)
        assert sim.traffic.injection_rate == 0.2
        assert sim.config.warmup_cycles == 100

    def test_collect_result_baseline_fields(self):
        scale = get_scale("smoke")
        sim = build_simulator(scale.network, None, uniform_factory(0.2),
                              seed=4, warmup_cycles=0, sample_interval=100)
        sim.run(1200)
        result = collect_result(sim, "unit")
        assert result.label == "unit"
        assert result.cycles == 1200
        assert result.relative_power == 1.0
        assert result.transitions_up == 0
        assert result.power_series == ()

    def test_run_simulation_respects_cycle_override(self):
        scale = get_scale("smoke")
        result = run_simulation(scale, None, uniform_factory(0.1),
                                label="short", cycles=700)
        assert result.cycles == 700

    def test_run_pair_same_traffic_both_sides(self):
        scale = get_scale("smoke")
        aware, baseline, normalised = run_pair(
            scale, power_config(scale), uniform_factory(0.15),
            label="pair", cycles=5000,
        )
        # Identical seeds -> identical packet populations.
        assert aware.packets_created == baseline.packets_created
        assert normalised.power_ratio == pytest.approx(aware.relative_power)
        assert baseline.relative_power == 1.0

    def test_telemetry_sink_closed_when_run_raises(self, tmp_path,
                                                   monkeypatch):
        # Regression: a failing run used to leak the telemetry sink (open
        # file handle, buffered events never flushed).
        from repro.network.simulator import Simulator
        from repro.telemetry.config import TelemetryConfig
        from repro.telemetry.recorder import TraceRecorder

        closed = []
        original_close = TraceRecorder.close

        def tracking_close(self):
            closed.append(True)
            original_close(self)

        monkeypatch.setattr(TraceRecorder, "close", tracking_close)

        def exploding_run(self, cycles):
            raise RuntimeError("mid-run explosion")

        monkeypatch.setattr(Simulator, "run", exploding_run)
        scale = get_scale("smoke")
        telemetry = TelemetryConfig(path=str(tmp_path / "t.jsonl"))
        with pytest.raises(RuntimeError, match="mid-run explosion"):
            run_simulation(scale, None, uniform_factory(0.1),
                           label="boom", cycles=200, telemetry=telemetry)
        assert closed == [True]


class TestReportRendering:
    def test_markdown_table(self):
        text = report.markdown_table(["a", "b"], [["1", "2"], ["3", "4"]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "| --- | --- |"
        assert lines[3] == "| 3 | 4 |"

    def test_fmt_handles_nan(self):
        assert report._fmt(float("nan")) == "nan"
        assert report._fmt(1.23456) == "1.235"

    def test_render_table2_reports_ok(self):
        text = report.render_table2()
        assert "Table 2" in text
        assert "Cross-check vs paper: OK" in text
        assert "| vcsel | 30.0 | Vdd |" in text
