"""Unit tests for the stabiliser ablation harness."""

import pytest

from repro.config import PolicyConfig
from repro.experiments.ablation import (
    VARIANTS,
    ablation_table,
    run_ablation,
    variant_policy,
)
from repro.experiments.configs import get_scale


class TestVariantPolicies:
    def test_full_variant_is_default(self):
        policy = variant_policy("full", 200)
        default = PolicyConfig(window_cycles=200)
        assert policy == default

    def test_paper_literal_disables_everything(self):
        policy = variant_policy("paper_literal", 200)
        assert not policy.congestion_inhibits_downscale
        assert policy.rescue_threshold >= 1.0
        assert not policy.downscale_headroom_check
        assert not policy.pressure_aware_utilisation

    def test_each_single_ablation_differs_from_full(self):
        full = variant_policy("full", 200)
        for name in ("no_guard", "no_rescue", "no_headroom", "no_pressure"):
            assert variant_policy(name, 200) != full

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            variant_policy("no_everything", 200)


class TestRunAblation:
    def test_runs_selected_variants(self):
        scale = get_scale("smoke")
        results = run_ablation(scale, load="light",
                               variants=("full", "paper_literal"))
        assert set(results) == {"full", "paper_literal"}
        for result in results.values():
            assert result.packets_delivered > 0
            assert result.relative_power < 1.0

    def test_table_rendering(self):
        scale = get_scale("smoke")
        results = run_ablation(scale, load="light", variants=("full",))
        table = ablation_table(results)
        assert "full" in table
        assert "rel power" in table


class TestVariantRegistry:
    def test_registry_complete(self):
        assert set(VARIANTS) == {
            "full", "no_guard", "no_rescue", "no_headroom", "no_pressure",
            "paper_literal",
        }
