"""Unit tests for the link transition state machine (paper Section 3.2)."""

import pytest

from repro.config import TransitionConfig
from repro.core.levels import BitRateLadder
from repro.core.transitions import LinkTransitionEngine, TransitionState
from repro.errors import LinkStateError
from repro.network.links import MESH, Link

TV = 100
TBR = 20


def make_engine(initial_level=None, tv=TV, tbr=TBR):
    link = Link(0, MESH)
    ladder = BitRateLadder.paper_default()
    config = TransitionConfig(bit_rate_transition_cycles=tbr,
                              voltage_transition_cycles=tv)

    def service_time(level: int) -> float:
        return ladder.max_rate / ladder.rate(level)

    engine = LinkTransitionEngine(link, ladder, config, service_time,
                                  initial_level)
    return engine, link


class TestInitialState:
    def test_starts_at_top_by_default(self):
        engine, link = make_engine()
        assert engine.level == 5
        assert link.service_time == pytest.approx(1.0)

    def test_explicit_initial_level(self):
        engine, link = make_engine(initial_level=0)
        assert engine.level == 0
        assert link.service_time == pytest.approx(2.0)

    def test_stable_initially(self):
        engine, _ = make_engine()
        assert not engine.in_transition


class TestStepDown:
    def test_sequence(self):
        engine, link = make_engine()
        assert engine.request_step(-1, now=1000.0)
        # Frequency switches first: link disabled for T_br, new service
        # time already configured.
        assert engine.state is TransitionState.RELOCK
        assert link.disabled_until == 1000.0 + TBR
        assert link.service_time == pytest.approx(10.0 / 9.0)
        # After relock: voltage ramps down in the background (link live).
        engine.advance(1000.0 + TBR)
        assert engine.state is TransitionState.VOLTAGE_RAMP_DOWN
        assert link.can_accept(1000.0 + TBR)
        # After the ramp: stable at the lower level.
        engine.advance(1000.0 + TBR + TV)
        assert engine.state is TransitionState.STABLE
        assert engine.level == 4

    def test_billing_stays_high_during_down(self):
        engine, _ = make_engine()
        engine.request_step(-1, now=0.0)
        assert engine.billing_level == 5
        engine.advance(TBR)
        assert engine.billing_level == 5  # voltage still ramping down
        engine.advance(TBR + TV)
        assert engine.billing_level == 4

    def test_step_down_at_bottom_refused(self):
        engine, _ = make_engine(initial_level=0)
        assert not engine.request_step(-1, now=0.0)


class TestStepUp:
    def test_sequence(self):
        engine, link = make_engine(initial_level=0)
        assert engine.request_step(1, now=0.0)
        # Voltage rises first; link keeps running at the old rate.
        assert engine.state is TransitionState.VOLTAGE_RAMP_UP
        assert link.can_accept(10.0)
        assert link.service_time == pytest.approx(2.0)
        # Then the frequency hop disables the link for T_br.
        engine.advance(float(TV))
        assert engine.state is TransitionState.RELOCK
        assert not link.can_accept(TV + TBR - 1.0)
        assert link.service_time == pytest.approx(10e9 / 6e9)
        engine.advance(float(TV + TBR))
        assert engine.state is TransitionState.STABLE
        assert engine.level == 1

    def test_billing_jumps_to_target_on_up(self):
        engine, _ = make_engine(initial_level=0)
        engine.request_step(1, now=0.0)
        assert engine.billing_level == 1

    def test_step_up_at_top_refused(self):
        engine, _ = make_engine()
        assert not engine.request_step(1, now=0.0)

    def test_request_during_transition_refused(self):
        engine, _ = make_engine(initial_level=0)
        assert engine.request_step(1, now=0.0)
        assert not engine.request_step(1, now=10.0)
        assert not engine.request_step(-1, now=10.0)

    def test_operating_rate_during_phases(self):
        engine, _ = make_engine(initial_level=0)
        engine.request_step(1, now=0.0)
        assert engine.operating_rate == 5e9      # still old during ramp
        engine.advance(float(TV))
        assert engine.operating_rate == 6e9      # switched at relock


class TestZeroDelay:
    def test_instant_completion(self):
        engine, link = make_engine(initial_level=0, tv=0, tbr=0)
        assert engine.request_step(1, now=0.0)
        assert engine.state is TransitionState.STABLE
        assert engine.level == 1
        assert link.can_accept(0.0)


class TestBookkeeping:
    def test_counters(self):
        engine, _ = make_engine(initial_level=2)
        engine.request_step(1, now=0.0)
        engine.advance(1000.0)
        engine.request_step(-1, now=2000.0)
        engine.advance(5000.0)
        assert engine.steps_up == 1
        assert engine.steps_down == 1
        assert engine.disabled_cycles == 2 * TBR

    def test_billing_listener_called_with_event_times(self):
        engine, _ = make_engine(initial_level=0)
        times = []
        engine.billing_listener = times.append
        engine.request_step(1, now=7.0)
        engine.advance(1000.0)
        assert times[0] == 7.0                 # request time
        assert times[-1] == 7.0 + TV + TBR     # completion time

    def test_invalid_direction_rejected(self):
        engine, _ = make_engine()
        with pytest.raises(LinkStateError):
            engine.request_step(2, now=0.0)
