"""Unit tests for the external laser source controller (Section 3.3)."""

import pytest

from repro.config import TransitionConfig
from repro.core.laser_policy import OpticalPowerController
from repro.core.levels import OpticalBands
from repro.errors import LinkStateError

T_OPT = 500


def make_controller(initial_band=None) -> OpticalPowerController:
    config = TransitionConfig(optical_transition_cycles=T_OPT,
                              laser_epoch_cycles=1000)
    return OpticalPowerController(OpticalBands.paper_three_level(), config,
                                  initial_band=initial_band)


class TestInitialState:
    def test_starts_at_top_band(self):
        assert make_controller().band == 2

    def test_explicit_band(self):
        assert make_controller(initial_band=0).band == 0

    def test_invalid_band_rejected(self):
        with pytest.raises(LinkStateError):
            make_controller(initial_band=5)


class TestIncrease:
    def test_pinc_settles_after_voa_delay(self):
        controller = make_controller(initial_band=0)
        controller.request_increase(10e9, now=100.0)
        assert controller.in_transition
        assert not controller.can_support(10e9, now=100.0 + T_OPT - 1)
        assert controller.can_support(10e9, now=100.0 + T_OPT)
        assert controller.band == 2

    def test_idempotent_requests(self):
        controller = make_controller(initial_band=0)
        controller.request_increase(10e9, now=0.0)
        controller.request_increase(10e9, now=50.0)
        assert controller.increases == 1
        # The settle clock was not pushed back by the duplicate.
        assert controller.ready_at == T_OPT

    def test_request_for_current_band_is_noop(self):
        controller = make_controller()
        controller.request_increase(10e9, now=0.0)
        assert controller.increases == 0
        assert not controller.in_transition


class TestSupport:
    def test_low_band_supports_low_rates_only(self):
        controller = make_controller(initial_band=0)
        assert controller.can_support(3.3e9, now=0.0)
        assert not controller.can_support(5e9, now=0.0)
        assert not controller.can_support(10e9, now=0.0)

    def test_top_band_supports_everything(self):
        controller = make_controller()
        for rate in (3.3e9, 5e9, 10e9):
            assert controller.can_support(rate, now=0.0)


class TestEpochDecrease:
    def test_pdec_after_quiet_epoch(self):
        controller = make_controller()
        controller.note_rate(3.3e9)   # whole epoch fits in band 0
        controller.on_epoch(now=1000.0)
        # Only one band per epoch (the paper halves the power per Pdec).
        assert controller.band == 1
        assert controller.decreases == 1

    def test_no_pdec_when_band_needed(self):
        controller = make_controller()
        controller.note_rate(3.3e9)
        controller.note_rate(10e9)
        controller.on_epoch(now=1000.0)
        assert controller.band == 2

    def test_usage_resets_each_epoch(self):
        controller = make_controller()
        controller.note_rate(10e9)
        controller.on_epoch(now=1000.0)
        controller.note_rate(3.3e9)
        controller.on_epoch(now=2000.0)
        assert controller.band == 1

    def test_no_pdec_below_bottom(self):
        controller = make_controller(initial_band=0)
        controller.note_rate(3.3e9)
        controller.on_epoch(now=1000.0)
        assert controller.band == 0

    def test_no_pdec_while_increase_pending(self):
        controller = make_controller(initial_band=0)
        controller.request_increase(10e9, now=900.0)
        controller.on_epoch(now=1000.0)  # before the VOA settles
        assert controller.pending_band == 2
        assert controller.decreases == 0
