"""Unit tests for the network-wide power manager."""

import pytest

from repro.config import (
    MODULATOR,
    NetworkConfig,
    PolicyConfig,
    PowerAwareConfig,
    TransitionConfig,
    VCSEL,
)
from repro.core.manager import (
    NetworkPowerManager,
    ladder_from_config,
    power_model_from_config,
)
from repro.errors import ConfigError
from repro.network.stats import StatsCollector
from repro.network.topology import ClusteredMesh


def make_manager(technology=VCSEL, optical_levels=1, window=100):
    network = NetworkConfig(mesh_width=2, mesh_height=2, nodes_per_cluster=2,
                            buffer_depth=8, num_vcs=2)
    topology = ClusteredMesh(network, StatsCollector())
    power = PowerAwareConfig(
        technology=technology,
        optical_levels=optical_levels,
        policy=PolicyConfig(window_cycles=window, history_windows=1),
        transitions=TransitionConfig(
            bit_rate_transition_cycles=2, voltage_transition_cycles=10,
            optical_transition_cycles=300, laser_epoch_cycles=400,
        ),
    )
    return NetworkPowerManager(topology, power, network), topology


class TestConfigHelpers:
    def test_ladder_from_config(self):
        ladder = ladder_from_config(PowerAwareConfig())
        assert ladder.num_levels == 6
        assert ladder.max_rate == 10e9

    def test_power_model_selection(self):
        assert power_model_from_config(
            PowerAwareConfig(technology=VCSEL)).technology == "vcsel"
        assert power_model_from_config(
            PowerAwareConfig(technology=MODULATOR)).technology == "modulator"


class TestConstruction:
    def test_one_power_link_per_fiber(self):
        manager, topology = make_manager()
        assert len(manager.links) == len(topology.links)

    def test_vcsel_never_gets_optical_controller(self):
        manager, _ = make_manager(technology=VCSEL)
        assert all(pal.optical is None for pal in manager.links)

    def test_modulator_three_levels_gets_controllers(self):
        manager, _ = make_manager(technology=MODULATOR, optical_levels=3)
        assert all(pal.optical is not None for pal in manager.links)

    def test_modulator_single_level_has_no_controllers(self):
        manager, _ = make_manager(technology=MODULATOR, optical_levels=1)
        assert all(pal.optical is None for pal in manager.links)

    def test_unsupported_optical_level_count(self):
        with pytest.raises(ConfigError):
            make_manager(technology=MODULATOR, optical_levels=2)


class TestDriving:
    def test_idle_network_scales_down_over_windows(self):
        manager, _ = make_manager(window=50)
        for now in range(1, 2000):
            manager.on_cycle(now)
        histogram = manager.level_histogram()
        assert histogram[0] == len(manager.links)

    def test_power_decreases_from_baseline(self):
        manager, _ = make_manager(window=50)
        for now in range(1, 2000):
            manager.on_cycle(now)
        manager.finalize(2000)
        assert manager.relative_power(2000) < 1.0

    def test_relative_power_one_when_pinned(self):
        # A manager whose window never fires keeps all links at max.
        manager, _ = make_manager(window=10_000)
        for now in range(1, 100):
            manager.on_cycle(now)
        manager.finalize(100)
        assert manager.relative_power(100) == pytest.approx(1.0)

    def test_minimum_relative_power_matches_model(self):
        manager, _ = make_manager(window=50)
        for now in range(1, 4000):
            manager.on_cycle(now)
        manager.finalize(4000)
        floor = manager.power_model.power(5e9) / manager.power_model.max_power
        # Long idle run converges to the 5 Gb/s floor (plus the descent
        # transient at the start).
        assert manager.relative_power(4000) == pytest.approx(floor, abs=0.05)

    def test_power_series_sampling(self):
        manager, _ = make_manager()
        manager.sample_power(0)
        manager.sample_power(100)
        assert len(manager.power_series) == 2
        assert manager.power_series[0][1] == pytest.approx(
            manager.baseline_power()
        )

    def test_transition_totals_accumulate(self):
        manager, _ = make_manager(window=50)
        for now in range(1, 1000):
            manager.on_cycle(now)
        totals = manager.transition_totals()
        assert totals["down"] > 0
        assert totals["up"] == 0  # idle network never climbs

    def test_average_power_requires_positive_cycles(self):
        manager, _ = make_manager()
        with pytest.raises(ConfigError):
            manager.average_power(0)


class TestFinalizeIdempotence:
    def test_repeated_finalize_accrues_no_energy(self):
        manager, _ = make_manager(window=50)
        for now in range(1, 2000):
            manager.on_cycle(now)
        manager.finalize(2000)
        first = manager.total_energy_watt_cycles()
        manager.finalize(2000)
        manager.finalize(1500)  # at/before the last finalize: a no-op
        assert manager.total_energy_watt_cycles() == first
        assert manager.relative_power(2000) == manager.relative_power(2000)

    def test_later_finalize_extends_the_integral(self):
        manager, _ = make_manager(window=50)
        for now in range(1, 1000):
            manager.on_cycle(now)
        manager.finalize(1000)
        first = manager.total_energy_watt_cycles()
        for now in range(1000, 2000):
            manager.on_cycle(now)
        manager.finalize(2000)
        assert manager.total_energy_watt_cycles() > first

    class _PoisonLinks:
        """Raises if the summary path walks the per-link list again."""

        def __iter__(self):
            raise AssertionError("post-finalize summary walked the links")

        def __len__(self):  # pragma: no cover - shape compatibility only
            return 0

    def test_post_finalize_summary_is_o1(self):
        # baseline_power is cached at construction and the energy total at
        # finalize; repeated summary-path queries must not touch the links.
        manager, _ = make_manager(window=50)
        for now in range(1, 1000):
            manager.on_cycle(now)
        manager.finalize(1000)
        expected_energy = manager.total_energy_watt_cycles()
        expected_baseline = manager.baseline_power()
        manager.links = self._PoisonLinks()
        assert manager.total_energy_watt_cycles() == expected_energy
        assert manager.baseline_power() == expected_baseline
        assert manager.relative_power(1000) == \
            expected_energy / 1000 / expected_baseline
        manager.finalize(1000)  # idempotent re-finalize must not walk either
        manager.finalize(800)

    def test_baseline_power_cached_at_construction(self):
        manager, topology = make_manager()
        expected = len(topology.links) * manager.table.max_power
        manager.links = self._PoisonLinks()
        assert manager.baseline_power() == pytest.approx(expected)

    def test_simulator_summary_is_repeatable(self, tiny_sim_config):
        from repro.network.simulator import Simulator
        from repro.traffic.uniform import UniformRandomTraffic

        traffic = UniformRandomTraffic(
            tiny_sim_config.network.num_nodes, 0.2, seed=5)
        sim = Simulator(tiny_sim_config, traffic)
        sim.run(1500)
        first = sim.summary()
        second = sim.summary()
        assert first == second
        assert sim.power.total_energy_watt_cycles() == \
            sim.power.total_energy_watt_cycles()


class TestReporting:
    def test_link_report_rows(self):
        manager, topology = make_manager(window=50)
        for now in range(1, 500):
            manager.on_cycle(now)
        manager.finalize(500)
        rows = manager.link_report(500)
        assert len(rows) == len(topology.links)
        kinds = {row["kind"] for row in rows}
        assert kinds == {"injection", "ejection", "mesh"}
        for row in rows:
            assert row["avg_power_w"] > 0.0
            assert 0 <= row["level"] <= manager.ladder.top_level

    def test_energy_by_kind_sums_to_total(self):
        manager, _ = make_manager(window=50)
        for now in range(1, 500):
            manager.on_cycle(now)
        manager.finalize(500)
        by_kind = manager.energy_by_kind(500)
        assert sum(by_kind.values()) == pytest.approx(
            manager.average_power(500)
        )

    def test_report_requires_positive_cycles(self):
        manager, _ = make_manager()
        with pytest.raises(ConfigError):
            manager.link_report(0)
        with pytest.raises(ConfigError):
            manager.energy_by_kind(-1)


class TestModelReplacement:
    def test_replace_before_run(self):
        from repro.photonics.measured import MeasuredLinkPowerModel

        manager, _ = make_manager()
        measured = MeasuredLinkPowerModel(samples=(
            (5e9, 0.055), (10e9, 0.280),
        ))
        manager.replace_power_model(measured)
        assert manager.power_model is measured
        for pal in manager.links:
            assert pal.level_powers[-1] == pytest.approx(0.280)
            assert pal.level_powers[0] == pytest.approx(0.055)

    def test_replace_after_energy_accrued_refused(self):
        from repro.photonics.electrical import ElectricalLinkModel

        manager, _ = make_manager(window=50)
        for now in range(1, 200):
            manager.on_cycle(now)
        manager.finalize(200)
        with pytest.raises(ConfigError):
            manager.replace_power_model(
                ElectricalLinkModel().as_power_model())

    def test_baseline_power_follows_replacement(self):
        from repro.photonics.electrical import ElectricalLinkModel

        manager, _ = make_manager()
        model = ElectricalLinkModel().as_power_model()
        manager.replace_power_model(model)
        assert manager.baseline_power() == pytest.approx(
            len(manager.links) * model.max_power
        )


class TestTransitionIterationDeterminism:
    """Regression: on_cycle used to iterate the ``_transitioning`` set
    directly.  PowerAwareLink hashes by identity, so the visit order varied
    between processes — a violation of the determinism contract ("no
    unordered-set iteration in any decision path").  The fix iterates a
    snapshot sorted by link_id."""

    def test_on_cycle_advances_transitioning_links_in_id_order(
            self, monkeypatch):
        from repro.core.power_link import PowerAwareLink

        manager, _ = make_manager(window=50)
        order: list[int] = []
        original = PowerAwareLink.advance

        def spy(self, now):
            order.append(self.link.link_id)
            original(self, now)

        monkeypatch.setattr(PowerAwareLink, "advance", spy)
        # An idle first window makes every link request a down-step at the
        # same boundary: all of them enter _transitioning together.
        for now in range(1, 51):
            manager.on_cycle(now)
        assert len(manager._transitioning) == len(manager.links)
        order.clear()
        manager.on_cycle(51)
        assert len(order) == len(manager.links)
        assert order == sorted(order)

    def test_completed_transitions_discarded_during_iteration(self):
        manager, _ = make_manager(window=50)
        for now in range(1, 51):
            manager.on_cycle(now)
        assert manager._transitioning
        # The 12-cycle down transitions (2 relock + 10 ramp) all finish
        # well before the next window; the snapshot iteration must be able
        # to discard every one of them mid-loop without skipping any.
        for now in range(51, 70):
            manager.on_cycle(now)
        assert not manager._transitioning
        assert all(pal.engine.steps_down == 1 for pal in manager.links)
