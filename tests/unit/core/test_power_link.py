"""Unit tests for the power-aware link binding."""

import pytest

from repro.config import PolicyConfig, TransitionConfig
from repro.core.laser_policy import OpticalPowerController
from repro.core.levels import BitRateLadder, OpticalBands
from repro.core.power_link import PowerAwareLink
from repro.network.buffers import InputBuffer
from repro.network.links import MESH, Link
from repro.photonics.power_model import LinkPowerModel

TV = 10
TBR = 2
WINDOW = 100.0


def make_pal(optical=False, initial_level=None):
    link = Link(0, MESH)
    ladder = BitRateLadder.paper_default()
    transitions = TransitionConfig(
        bit_rate_transition_cycles=TBR,
        voltage_transition_cycles=TV,
        optical_transition_cycles=300,
        laser_epoch_cycles=600,
    )
    controller = None
    if optical:
        controller = OpticalPowerController(
            OpticalBands.paper_three_level(), transitions, initial_band=0
        )
    buffer = InputBuffer(16)
    pal = PowerAwareLink(
        link=link,
        ladder=ladder,
        power_model=LinkPowerModel.vcsel_link(),
        policy_config=PolicyConfig(window_cycles=int(WINDOW),
                                   history_windows=1),
        transition_config=transitions,
        service_time_fn=lambda level: ladder.max_rate / ladder.rate(level),
        downstream_buffer=(buffer,),
        optical=controller,
        initial_level=initial_level,
    )
    return pal, link, buffer


class TestEnergyAccounting:
    def test_constant_level_energy(self):
        pal, _, _ = make_pal()
        pal.finalize(1000.0)
        expected = pal.level_powers[5] * 1000.0
        assert pal.energy_watt_cycles == pytest.approx(expected)

    def test_average_power(self):
        pal, _, _ = make_pal(initial_level=0)
        pal.finalize(500.0)
        assert pal.average_power(500.0) == pytest.approx(pal.level_powers[0])

    def test_energy_across_one_down_step(self):
        pal, link, _ = make_pal()
        # Idle window -> step down; billing stays at the old level until
        # the voltage ramp completes.
        pal.on_window(0.0, WINDOW)
        assert pal.engine.in_transition
        for t in range(int(WINDOW), int(WINDOW) + TV + TBR + 2):
            pal.advance(float(t))
        pal.finalize(2 * WINDOW)
        high, low = pal.level_powers[5], pal.level_powers[4]
        transition_end = WINDOW + TBR + TV
        expected = high * transition_end + low * (2 * WINDOW - transition_end)
        assert pal.energy_watt_cycles == pytest.approx(expected, rel=1e-6)

    def test_current_power_tracks_billing(self):
        pal, _, _ = make_pal(initial_level=3)
        assert pal.current_power() == pal.level_powers[3]


class TestWindowDecisions:
    def test_idle_link_descends(self):
        pal, _, _ = make_pal()
        start = 0.0
        for i in range(20):
            end = start + WINDOW
            pal.on_window(start, end)
            for t in range(int(end), int(end) + TV + TBR + 2):
                pal.advance(float(t))
            start = end
        assert pal.level == 0

    def test_busy_link_climbs(self):
        pal, link, _ = make_pal(initial_level=0)
        start = 0.0
        for i in range(20):
            end = start + WINDOW
            link.busy_accum = WINDOW  # fully busy window
            pal.on_window(start, end)
            for t in range(int(end), int(end) + TV + TBR + 2):
                pal.advance(float(t))
            start = end
        assert pal.level == 5

    def test_bu_read_from_downstream_buffers(self):
        pal, link, buffer = make_pal()
        from repro.network.packet import Packet

        flit = Packet(1, 0, 1, 1, 0).make_flits()[0]
        buffer.push(flit, 0.0)  # occupies 1/16 for the window
        link.busy_accum = WINDOW * 0.5
        pal.on_window(0.0, WINDOW)
        assert pal.policy.last_sample[1] == pytest.approx(1 / 16)

    def test_windows_observed_counter(self):
        pal, _, _ = make_pal()
        pal.on_window(0.0, WINDOW)
        pal.on_window(WINDOW, 2 * WINDOW)
        assert pal.windows_observed == 2


class TestOpticalGating:
    def test_up_step_waits_for_light(self):
        pal, link, _ = make_pal(optical=True, initial_level=0)
        # Level 0 = 5 Gb/s needs band 1; the controller starts at band 0,
        # so even the first up-step (to 6 Gb/s = band 2) must wait.
        link.busy_accum = WINDOW
        pal.on_window(0.0, WINDOW)
        assert pal.pending_up
        assert not pal.engine.in_transition
        assert pal.optical.in_transition

    def test_up_step_proceeds_once_light_settles(self):
        pal, link, _ = make_pal(optical=True, initial_level=0)
        link.busy_accum = WINDOW
        pal.on_window(0.0, WINDOW)          # requests Pinc (settle 300)
        link.busy_accum = WINDOW
        pal.on_window(WINDOW, 2 * WINDOW)   # still settling
        assert pal.pending_up
        link.busy_accum = WINDOW
        pal.on_window(3 * WINDOW, 4 * WINDOW)  # 400 > 300: light is there
        assert not pal.pending_up
        assert pal.engine.in_transition

    def test_rate_usage_noted_for_epochs(self):
        pal, link, _ = make_pal(optical=True, initial_level=0)
        pal.on_window(0.0, WINDOW)
        assert pal.optical.max_band_needed == \
            pal.optical.bands.band_for_rate(5e9)


class TestReporting:
    def test_bit_rate_property(self):
        pal, _, _ = make_pal(initial_level=2)
        assert pal.bit_rate == 7e9

    def test_transition_counts(self):
        pal, _, _ = make_pal()
        pal.on_window(0.0, WINDOW)
        assert pal.transition_counts() == {"up": 0, "down": 1}
