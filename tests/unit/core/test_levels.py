"""Unit tests for bit-rate ladders and optical bands."""

import pytest

from repro.core.levels import BitRateLadder, OpticalBands
from repro.errors import ConfigError
from repro.photonics.constants import NOMINAL_VDD


class TestLadderConstruction:
    def test_paper_default_levels(self):
        ladder = BitRateLadder.paper_default()
        assert ladder.num_levels == 6
        assert ladder.min_rate == 5e9
        assert ladder.max_rate == 10e9
        assert ladder.rates == (5e9, 6e9, 7e9, 8e9, 9e9, 10e9)

    def test_paper_wide_bottom(self):
        assert BitRateLadder.paper_wide().min_rate == pytest.approx(3.3e9)

    def test_single_level(self):
        ladder = BitRateLadder.linear(10e9, 10e9, 1)
        assert ladder.rates == (10e9,)

    def test_single_level_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            BitRateLadder.linear(5e9, 10e9, 1)

    def test_descending_rejected(self):
        with pytest.raises(ConfigError):
            BitRateLadder(rates=(10e9, 5e9))

    def test_duplicates_rejected(self):
        with pytest.raises(ConfigError):
            BitRateLadder(rates=(5e9, 5e9))

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            BitRateLadder(rates=())


class TestLadderQueries:
    @pytest.fixture
    def ladder(self):
        return BitRateLadder.paper_default()

    def test_rate_lookup(self, ladder):
        assert ladder.rate(0) == 5e9
        assert ladder.rate(ladder.top_level) == 10e9

    def test_rate_out_of_range(self, ladder):
        with pytest.raises(ConfigError):
            ladder.rate(6)
        with pytest.raises(ConfigError):
            ladder.rate(-1)

    def test_vdd_linear_scaling(self, ladder):
        assert ladder.vdd(ladder.top_level) == NOMINAL_VDD
        assert ladder.vdd(0) == pytest.approx(0.9)

    def test_clamp(self, ladder):
        assert ladder.clamp(-3) == 0
        assert ladder.clamp(99) == ladder.top_level
        assert ladder.clamp(2) == 2

    def test_level_for_rate(self, ladder):
        assert ladder.level_for_rate(5e9) == 0
        assert ladder.level_for_rate(5.5e9) == 1
        assert ladder.level_for_rate(10e9) == 5
        assert ladder.level_for_rate(99e9) == 5


class TestOpticalBands:
    def test_paper_three_level(self):
        bands = OpticalBands.paper_three_level()
        assert bands.num_bands == 3
        assert bands.power_fractions == (0.25, 0.5, 1.0)

    def test_band_for_rate_boundaries(self):
        bands = OpticalBands.paper_three_level()
        assert bands.band_for_rate(3.9e9) == 0
        assert bands.band_for_rate(4e9) == 1    # inclusive low boundary
        assert bands.band_for_rate(5.9e9) == 1
        assert bands.band_for_rate(6e9) == 2
        assert bands.band_for_rate(10e9) == 2

    def test_single_band(self):
        bands = OpticalBands.single()
        assert bands.num_bands == 1
        assert bands.band_for_rate(1e9) == 0
        assert bands.band_for_rate(10e9) == 0

    def test_attenuations_are_halving_steps(self):
        bands = OpticalBands.paper_three_level()
        assert bands.attenuation_db(2) == pytest.approx(0.0)
        assert bands.attenuation_db(1) == pytest.approx(3.0103, rel=1e-3)
        assert bands.attenuation_db(0) == pytest.approx(6.0206, rel=1e-3)

    def test_attenuation_out_of_range(self):
        with pytest.raises(ConfigError):
            OpticalBands.paper_three_level().attenuation_db(3)

    def test_fraction_count_must_match(self):
        with pytest.raises(ConfigError):
            OpticalBands(upper_rates=(4e9,), power_fractions=(1.0,))

    def test_top_fraction_must_be_one(self):
        with pytest.raises(ConfigError):
            OpticalBands(upper_rates=(4e9,), power_fractions=(0.25, 0.5))
