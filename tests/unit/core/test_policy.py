"""Unit tests for the link policy controller (paper Section 3.3, Table 1)."""

import pytest

from repro.config import PolicyConfig
from repro.core.policy import HOLD, STEP_DOWN, STEP_UP, LinkPolicyController
from repro.errors import ConfigError


def make_controller(**overrides) -> LinkPolicyController:
    return LinkPolicyController(PolicyConfig(**overrides))


class TestThresholdSelection:
    def test_uncongested_pair(self):
        controller = make_controller()
        assert controller.thresholds(bu=0.2) == (0.4, 0.6)

    def test_congested_pair_at_bu_con(self):
        # Table 1 switches at Bu >= 0.5.
        controller = make_controller()
        assert controller.thresholds(bu=0.5) == (0.6, 0.7)

    def test_invalid_bu_rejected(self):
        with pytest.raises(ConfigError):
            make_controller().thresholds(bu=1.5)


class TestBasicDecisions:
    def test_high_utilisation_steps_up(self):
        controller = make_controller(history_windows=1)
        assert controller.observe(lu=0.9, bu=0.0) == STEP_UP

    def test_low_utilisation_steps_down(self):
        controller = make_controller(history_windows=1)
        assert controller.observe(lu=0.1, bu=0.0) == STEP_DOWN

    def test_in_band_holds(self):
        controller = make_controller(history_windows=1)
        assert controller.observe(lu=0.5, bu=0.0) == HOLD

    def test_invalid_lu_rejected(self):
        with pytest.raises(ConfigError):
            make_controller().observe(lu=1.5, bu=0.0)

    def test_decision_counters(self):
        controller = make_controller(history_windows=1)
        controller.observe(0.9, 0.0)
        controller.observe(0.1, 0.0)
        controller.observe(0.5, 0.0)
        assert controller.decisions == {STEP_UP: 1, STEP_DOWN: 1, HOLD: 1}


class TestSlidingWindow:
    def test_average_over_history(self):
        controller = make_controller(history_windows=3)
        controller.observe(0.9, 0.0)
        controller.observe(0.9, 0.0)
        controller.observe(0.3, 0.0)
        # Eq. 11: (0.9 + 0.9 + 0.3) / 3 = 0.7.
        assert controller.averaged_utilisation == pytest.approx(0.7)

    def test_history_is_bounded(self):
        controller = make_controller(history_windows=2)
        for lu in (0.9, 0.1, 0.1):
            controller.observe(lu, 0.0)
        assert controller.averaged_utilisation == pytest.approx(0.1)

    def test_one_spike_does_not_trigger_with_history(self):
        controller = make_controller(history_windows=4)
        for _ in range(3):
            controller.observe(0.5, 0.0)
        # A single 1.0 spike averages to 0.625 < 0.7... but above 0.6:
        # with uncongested thresholds it *does* exceed TH=0.6, so use a
        # smaller spike to show smoothing.
        assert controller.observe(0.65, 0.0) == HOLD

    def test_reset_clears_history(self):
        controller = make_controller(history_windows=3)
        controller.observe(0.9, 0.0)
        controller.reset()
        assert controller.averaged_utilisation == 0.0

    def test_reset_restores_fresh_state(self):
        # Regression: reset() used to clear only the history, leaving the
        # decision counters and last (Lu, Bu) sample from the previous run
        # to leak into warm-reused controllers (RC001).
        controller = make_controller(history_windows=3)
        for lu in (0.9, 0.9, 0.1, 0.5):
            controller.observe(lu, 0.8)
        controller.reset()
        fresh = make_controller(history_windows=3)
        assert controller.decisions == fresh.decisions
        assert controller.last_sample == fresh.last_sample == (0.0, 0.0)
        assert controller.averaged_utilisation == fresh.averaged_utilisation

    def test_reset_controller_decides_like_fresh(self):
        controller = make_controller(history_windows=2)
        for lu in (0.95, 0.95, 0.95):
            controller.observe(lu, 0.9)
        controller.reset()
        fresh = make_controller(history_windows=2)
        trace = [(0.7, 0.2), (0.1, 0.0), (0.5, 0.95)]
        for lu, bu in trace:
            assert controller.observe(lu, bu) == fresh.observe(lu, bu)
        assert controller.decisions == fresh.decisions

    def test_last_sample_exposed(self):
        controller = make_controller()
        controller.observe(0.3, 0.7)
        assert controller.last_sample == (0.3, 0.7)


class TestCongestedBehaviour:
    def test_congested_raises_bar_for_up(self):
        # Lu 0.65 steps up when uncongested (TH 0.6) but holds when
        # congested (TH 0.7) — the paper's "more aggressive" saving.
        uncongested = make_controller(history_windows=1)
        congested = make_controller(history_windows=1)
        assert uncongested.observe(0.65, bu=0.0) == STEP_UP
        assert congested.observe(0.65, bu=0.6) == HOLD

    def test_guard_blocks_down_when_congested(self):
        controller = make_controller(history_windows=1)
        # Lu below congested TL=0.6 would step down per Table 1; the
        # stability guard holds instead (starved-link reading).
        assert controller.observe(0.3, bu=0.6) == HOLD

    def test_paper_literal_mode_steps_down_when_congested(self):
        controller = make_controller(history_windows=1,
                                     congestion_inhibits_downscale=False)
        assert controller.observe(0.3, bu=0.6) == STEP_DOWN

    def test_rescue_fires_on_very_full_buffer(self):
        controller = make_controller(history_windows=1)
        # Even with Lu near zero (credit starvation), a nearly full
        # downstream buffer forces an up-step.
        assert controller.observe(0.05, bu=0.8) == STEP_UP

    def test_rescue_disabled_when_threshold_above_one(self):
        controller = make_controller(history_windows=1, rescue_threshold=1.1)
        assert controller.observe(0.05, bu=0.85) == HOLD  # guard holds it

    def test_rescue_threshold_must_exceed_congestion(self):
        with pytest.raises(ConfigError):
            PolicyConfig(rescue_threshold=0.3, congestion_threshold=0.5)


class TestHeadroomCheck:
    def test_headroom_blocks_marginal_down(self):
        # Uncongested: Lu_a = 0.39 < TL=0.4 wants DOWN, but at a 2x slower
        # level the projected 0.78 > TH=0.6 -> hold.
        controller = make_controller(history_windows=1)
        assert controller.observe(0.39, bu=0.0, down_ratio=2.0) == HOLD

    def test_down_allowed_with_headroom(self):
        controller = make_controller(history_windows=1)
        assert controller.observe(0.2, bu=0.0, down_ratio=1.2) == STEP_DOWN

    def test_headroom_check_can_be_disabled(self):
        controller = make_controller(history_windows=1,
                                     downscale_headroom_check=False)
        assert controller.observe(0.39, bu=0.0, down_ratio=2.0) == STEP_DOWN

    def test_invalid_down_ratio_rejected(self):
        with pytest.raises(ConfigError):
            make_controller().observe(0.5, 0.0, down_ratio=0.5)


class TestThresholdSweepHelper:
    def test_with_average_threshold(self):
        config = PolicyConfig().with_average_threshold(0.55)
        assert config.threshold_low_uncongested == pytest.approx(0.5)
        assert config.threshold_high_uncongested == pytest.approx(0.6)
        # Congested pair shifts by the same offset.
        assert config.threshold_low_congested == pytest.approx(0.65)

    def test_out_of_range_average_rejected(self):
        with pytest.raises(ConfigError):
            PolicyConfig().with_average_threshold(0.02)
