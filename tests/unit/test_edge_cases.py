"""Cross-cutting edge-case tests: idempotence, degenerate shapes, bounds."""

import pytest

from repro.config import (
    NetworkConfig,
    PolicyConfig,
    SimulationConfig,
)
from repro.experiments.table3 import shape_check
from repro.metrics.latency import mean_hop_count
from repro.network.simulator import Simulator
from repro.traffic.uniform import UniformRandomTraffic


class TestFinalizeIdempotence:
    def test_relative_power_stable_across_calls(self, tiny_sim_config):
        traffic = UniformRandomTraffic(
            tiny_sim_config.network.num_nodes, 0.2, seed=2)
        sim = Simulator(tiny_sim_config, traffic)
        sim.run(1500)
        first = sim.relative_power()
        second = sim.relative_power()
        third = sim.summary()["relative_power"]
        assert first == second == third

    def test_finalize_then_run_continues_accounting(self, tiny_sim_config):
        traffic = UniformRandomTraffic(
            tiny_sim_config.network.num_nodes, 0.2, seed=2)
        sim = Simulator(tiny_sim_config, traffic)
        sim.run(1000)
        sim.finalize()
        energy_mid = sim.power.total_energy_watt_cycles()
        sim.run(1000)
        sim.finalize()
        assert sim.power.total_energy_watt_cycles() > energy_mid


class TestDegenerateNetworks:
    def test_single_router_mesh(self):
        # 1x1 mesh: all traffic is intra-rack (injection -> ejection only).
        network = NetworkConfig(mesh_width=1, mesh_height=1,
                                nodes_per_cluster=4, buffer_depth=8,
                                num_vcs=2)
        config = SimulationConfig(network=network, power=None,
                                  sample_interval=100)
        traffic = UniformRandomTraffic(4, 0.2, seed=1)
        sim = Simulator(config, traffic)
        sim.run(2000)
        stats = sim.stats
        assert stats.packets_delivered > 0.9 * stats.packets_created
        assert sim.network.links_of_kind("mesh") == []

    def test_one_by_n_mesh(self):
        network = NetworkConfig(mesh_width=4, mesh_height=1,
                                nodes_per_cluster=2, buffer_depth=8,
                                num_vcs=2)
        config = SimulationConfig(network=network, power=None,
                                  sample_interval=100)
        traffic = UniformRandomTraffic(8, 0.2, seed=1)
        sim = Simulator(config, traffic)
        sim.run(3000)
        assert sim.stats.packets_delivered > 0.9 * sim.stats.packets_created

    def test_single_vc_network(self):
        network = NetworkConfig(mesh_width=2, mesh_height=2,
                                nodes_per_cluster=2, buffer_depth=8,
                                num_vcs=1)
        config = SimulationConfig(network=network, power=None,
                                  sample_interval=100)
        traffic = UniformRandomTraffic(8, 0.3, seed=1)
        sim = Simulator(config, traffic)
        sim.run(3000)
        assert sim.stats.packets_delivered > 0.9 * sim.stats.packets_created


class TestHopCount:
    def test_rectangular_mesh(self):
        network = NetworkConfig(mesh_width=4, mesh_height=2)
        # (16-1)/12 + (4-1)/6 = 1.25 + 0.5 = 1.75
        assert mean_hop_count(network) == pytest.approx(1.75)

    def test_single_router(self):
        network = NetworkConfig(mesh_width=1, mesh_height=1)
        assert mean_hop_count(network) == 0.0


class TestTable3ShapeCheck:
    def _row(self, trace, latency, power):
        return {
            "trace": trace,
            "latency_ratio": latency,
            "power_ratio": power,
            "power_latency_product": latency * power,
        }

    def test_clean_rows_pass(self):
        rows = [self._row("FFT", 1.2, 0.25), self._row("LU", 1.5, 0.25),
                self._row("RADIX", 1.6, 0.25)]
        assert shape_check(rows) == []

    def test_power_violation_detected(self):
        rows = [self._row("FFT", 1.2, 0.8)]
        problems = shape_check(rows)
        assert any("power ratio" in p for p in problems)

    def test_latency_violation_detected(self):
        rows = [self._row("FFT", 3.0, 0.25)]
        problems = shape_check(rows)
        assert any("latency ratio" in p for p in problems)

    def test_fft_ordering_violation_detected(self):
        rows = [self._row("FFT", 2.0, 0.25), self._row("LU", 1.2, 0.25)]
        problems = shape_check(rows)
        assert any("not lowest" in p for p in problems)


class TestPolicyWindowInteraction:
    def test_window_larger_than_run_never_fires(self, tiny_network):
        from repro.config import PowerAwareConfig

        power = PowerAwareConfig(policy=PolicyConfig(window_cycles=100_000))
        config = SimulationConfig(network=tiny_network, power=power,
                                  sample_interval=100)
        traffic = UniformRandomTraffic(tiny_network.num_nodes, 0.2, seed=1)
        sim = Simulator(config, traffic)
        sim.run(2000)
        assert sim.relative_power() == pytest.approx(1.0)
        assert sim.power.transition_totals() == {"up": 0, "down": 0}
