"""Unit tests for the time-varying hot-spot workload (paper Fig. 6(a))."""

import pytest

from repro.errors import ConfigError
from repro.traffic.hotspot import HotspotTraffic, Phase, paper_like_schedule


def make_source(phases=None, num_nodes=32, weight=4.0, seed=1):
    phases = phases or (Phase(0, 1.0), Phase(1000, 3.0), Phase(2000, 0.5))
    return HotspotTraffic(num_nodes, phases, hotspot_node=5,
                          hotspot_weight=weight, seed=seed)


class TestSchedule:
    def test_phase_validation_sorted(self):
        with pytest.raises(ConfigError):
            HotspotTraffic(8, (Phase(100, 1.0), Phase(0, 2.0)), 0)

    def test_first_phase_at_zero(self):
        with pytest.raises(ConfigError):
            HotspotTraffic(8, (Phase(10, 1.0),), 0)

    def test_duplicate_starts_rejected(self):
        with pytest.raises(ConfigError):
            HotspotTraffic(8, (Phase(0, 1.0), Phase(0, 2.0)), 0)

    def test_current_phase_lookup(self):
        source = make_source()
        assert source.current_phase(500).injection_rate == 1.0
        assert source.current_phase(1500).injection_rate == 3.0
        assert source.current_phase(99999).injection_rate == 0.5

    def test_rate_changes_take_effect(self):
        source = make_source()
        counts = {0: 0, 1: 0}
        for t in range(0, 1000):
            counts[0] += len(source.generate(t))
        for t in range(1000, 2000):
            counts[1] += len(source.generate(t))
        assert counts[0] / 1000 == pytest.approx(1.0, rel=0.2)
        assert counts[1] / 1000 == pytest.approx(3.0, rel=0.2)

    def test_paper_like_schedule_scaling(self):
        base = paper_like_schedule(scale=1)
        scaled = paper_like_schedule(scale=10)
        assert len(base) == len(scaled)
        assert scaled[1].start_cycle == base[1].start_cycle // 10
        assert scaled[5].injection_rate == base[5].injection_rate

    def test_paper_like_schedule_has_big_jump(self):
        phases = paper_like_schedule()
        rates = [p.injection_rate for p in phases]
        jumps = [abs(b - a) for a, b in zip(rates, rates[1:])]
        assert max(jumps) > 2.0  # triggers the optical level change


class TestSpatialSkew:
    def test_hotspot_receives_about_weight_times_average(self):
        source = make_source(weight=4.0, num_nodes=32)
        counts = [0] * 32
        for t in range(6000):
            for packet in source.generate(t):
                counts[packet.dst] += 1
        cold_mean = sum(c for i, c in enumerate(counts) if i != 5) / 31
        assert counts[5] / cold_mean == pytest.approx(4.0, rel=0.25)

    def test_no_self_sends(self):
        source = make_source()
        for t in range(2000):
            for packet in source.generate(t):
                assert packet.src != packet.dst

    def test_invalid_hotspot_node(self):
        with pytest.raises(ConfigError):
            HotspotTraffic(8, (Phase(0, 1.0),), hotspot_node=9)

    def test_weight_below_one_rejected(self):
        with pytest.raises(ConfigError):
            make_source(weight=0.5)
