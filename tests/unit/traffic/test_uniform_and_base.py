"""Unit tests for the traffic base machinery and uniform random traffic."""

import pytest

from repro.errors import ConfigError
from repro.traffic.uniform import UniformRandomTraffic


class TestConstruction:
    def test_needs_two_nodes(self):
        with pytest.raises(ConfigError):
            UniformRandomTraffic(1, 0.5)

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigError):
            UniformRandomTraffic(16, -0.1)

    def test_zero_size_packet_rejected(self):
        with pytest.raises(ConfigError):
            UniformRandomTraffic(16, 0.5, packet_size=0)


class TestGeneration:
    def test_zero_rate_generates_nothing(self):
        source = UniformRandomTraffic(16, 0.0)
        assert all(source.generate(t) == [] for t in range(100))

    def test_mean_rate_approximates_target(self):
        source = UniformRandomTraffic(64, 2.0, seed=3)
        total = sum(len(source.generate(t)) for t in range(5000))
        assert total / 5000 == pytest.approx(2.0, rel=0.05)

    def test_no_self_sends(self):
        source = UniformRandomTraffic(4, 3.0, seed=1)
        for t in range(500):
            for packet in source.generate(t):
                assert packet.src != packet.dst

    def test_nodes_in_range(self):
        source = UniformRandomTraffic(8, 3.0, seed=1)
        for t in range(200):
            for packet in source.generate(t):
                assert 0 <= packet.src < 8
                assert 0 <= packet.dst < 8

    def test_destination_distribution_roughly_uniform(self):
        source = UniformRandomTraffic(8, 5.0, seed=7)
        counts = [0] * 8
        for t in range(4000):
            for packet in source.generate(t):
                counts[packet.dst] += 1
        mean = sum(counts) / 8
        for count in counts:
            assert abs(count - mean) < 0.15 * mean

    def test_packet_ids_unique_and_monotonic(self):
        source = UniformRandomTraffic(8, 2.0, seed=1)
        ids = []
        for t in range(200):
            ids += [p.packet_id for p in source.generate(t)]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))

    def test_packet_sizes_fixed(self):
        source = UniformRandomTraffic(8, 2.0, packet_size=7, seed=1)
        for t in range(100):
            for packet in source.generate(t):
                assert packet.size == 7

    def test_create_time_is_now(self):
        source = UniformRandomTraffic(8, 3.0, seed=1)
        for t in range(100):
            for packet in source.generate(t):
                assert packet.create_time == t

    def test_seeded_reproducibility(self):
        def draw(seed):
            source = UniformRandomTraffic(16, 1.0, seed=seed)
            return [(p.src, p.dst) for t in range(300)
                    for p in source.generate(t)]

        assert draw(11) == draw(11)
        assert draw(11) != draw(12)

    def test_never_exhausts(self):
        source = UniformRandomTraffic(8, 0.1)
        assert not source.exhausted(10**9)
