"""Unit tests for the synthetic SPLASH2-like trace generators."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.traffic.splash import (
    BENCHMARKS,
    envelope_for,
    fft_envelope,
    generate_splash_trace,
    lu_envelope,
    mean_packet_size,
    radix_envelope,
)


class TestEnvelopes:
    def test_fft_has_smooth_swells(self):
        env = fft_envelope(9000)
        # Three swells -> three local maxima well inside the range.
        peaks = [i for i in range(1, 8999)
                 if env[i] >= env[i - 1] and env[i] >= env[i + 1]
                 and env[i] > 0.9 * env.max()]
        assert len(peaks) >= 3

    def test_fft_bounds(self):
        env = fft_envelope(5000, peak_rate=0.28, base_rate=0.05)
        assert env.min() >= 0.05 - 1e-9
        assert env.max() <= 0.28 + 1e-9

    def test_lu_bursts_decay(self):
        env = lu_envelope(10_000, bursts=10)
        period = 1000
        first_burst = env[:400].max()
        last_burst = env[9 * period:9 * period + 400].max()
        assert last_burst < first_burst

    def test_lu_has_base_between_bursts(self):
        env = lu_envelope(10_000, base_rate=0.04, bursts=10)
        assert env.min() == pytest.approx(0.04)

    def test_radix_is_two_valued(self):
        env = radix_envelope(6000, peak_rate=0.32, base_rate=0.02)
        assert set(np.round(np.unique(env), 6)) == {0.02, 0.32}

    def test_radix_duty_cycle_half(self):
        env = radix_envelope(6000)
        high = (env > env.mean()).mean()
        assert high == pytest.approx(0.5, abs=0.05)

    def test_envelope_for_dispatch(self):
        for name in BENCHMARKS:
            env = envelope_for(name, 1000)
            assert len(env) == 1000

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigError):
            envelope_for("nqueens", 100)

    def test_intensity_scales_linearly(self):
        full = envelope_for("fft", 1000, intensity=1.0)
        half = envelope_for("fft", 1000, intensity=0.5)
        assert np.allclose(half, full * 0.5)


class TestTraceGeneration:
    def test_records_sorted_and_bounded(self):
        records = generate_splash_trace("lu", 16, 5000, seed=2)
        cycles = [r.cycle for r in records]
        assert cycles == sorted(cycles)
        assert all(0 <= r.src < 16 and 0 <= r.dst < 16 for r in records)

    def test_mean_packet_size_near_48(self):
        records = generate_splash_trace("fft", 64, 30_000, seed=3)
        assert mean_packet_size(records) == pytest.approx(48.0, abs=4.0)

    def test_bimodal_sizes(self):
        records = generate_splash_trace("radix", 16, 10_000, seed=1)
        sizes = {r.size for r in records}
        assert sizes <= {8, 72}

    def test_total_volume_tracks_envelope(self):
        duration = 20_000
        records = generate_splash_trace("fft", 32, duration, seed=5)
        expected = envelope_for("fft", duration).sum()
        assert len(records) == pytest.approx(expected, rel=0.2)

    def test_burst_mean_one_is_smooth(self):
        smooth = generate_splash_trace("fft", 32, 5000, seed=1, burst_mean=1.0)
        bursty = generate_splash_trace("fft", 32, 5000, seed=1, burst_mean=20.0)
        # Same expected volume, very different clustering: measure the
        # max records per (cycle, src) group.
        def max_group(records):
            from collections import Counter

            return max(Counter((r.cycle, r.src) for r in records).values())

        assert max_group(bursty) > max_group(smooth)

    def test_seeded_reproducibility(self):
        a = generate_splash_trace("radix", 16, 4000, seed=9)
        b = generate_splash_trace("radix", 16, 4000, seed=9)
        assert a == b

    def test_burst_mean_below_one_rejected(self):
        with pytest.raises(ConfigError):
            generate_splash_trace("fft", 16, 100, burst_mean=0.5)

    def test_mean_packet_size_empty_is_nan(self):
        import math

        assert math.isnan(mean_packet_size([]))
