"""Unit tests for permutation traffic patterns."""

import pytest

from repro.errors import ConfigError
from repro.traffic.permutation import (
    PermutationTraffic,
    bit_complement,
    bit_reverse,
    transpose,
)


class TestPatternFunctions:
    def test_bit_complement(self):
        assert bit_complement(0b0000, 16) == 0b1111
        assert bit_complement(0b1010, 16) == 0b0101

    def test_bit_complement_involution(self):
        for n in range(16):
            assert bit_complement(bit_complement(n, 16), 16) == n

    def test_bit_reverse(self):
        assert bit_reverse(0b0001, 16) == 0b1000
        assert bit_reverse(0b0110, 16) == 0b0110

    def test_bit_reverse_involution(self):
        for n in range(32):
            assert bit_reverse(bit_reverse(n, 32), 32) == n

    def test_transpose(self):
        # 4-bit ids: swap the two halves.
        assert transpose(0b0111, 16) == 0b1101
        assert transpose(0b1100, 16) == 0b0011

    def test_transpose_involution(self):
        for n in range(16):
            assert transpose(transpose(n, 16), 16) == n

    def test_transpose_needs_even_bits(self):
        with pytest.raises(ConfigError):
            transpose(1, 8)


class TestPermutationTraffic:
    def test_destinations_follow_pattern(self):
        source = PermutationTraffic(16, 2.0, pattern="bit_complement", seed=1)
        for t in range(200):
            for packet in source.generate(t):
                assert packet.dst == bit_complement(packet.src, 16)

    def test_identity_nodes_never_send(self):
        source = PermutationTraffic(16, 3.0, pattern="bit_reverse", seed=1)
        palindromes = {n for n in range(16) if bit_reverse(n, 16) == n}
        for t in range(300):
            for packet in source.generate(t):
                assert packet.src not in palindromes

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigError):
            PermutationTraffic(12, 1.0)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ConfigError):
            PermutationTraffic(16, 1.0, pattern="tornado")
