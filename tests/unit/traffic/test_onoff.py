"""Unit tests for the ON/OFF bursty traffic source."""

import pytest

from repro.errors import ConfigError
from repro.traffic.onoff import OnOffTraffic


class TestConstruction:
    def test_duty_cycle_bounds(self):
        with pytest.raises(ConfigError):
            OnOffTraffic(16, 0.5, duty_cycle=0.0)
        with pytest.raises(ConfigError):
            OnOffTraffic(16, 0.5, duty_cycle=1.5)

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigError):
            OnOffTraffic(16, -1.0)

    def test_on_rate_compensates_duty(self):
        source = OnOffTraffic(10, 1.0, duty_cycle=0.25)
        # Per node: 1.0/10 average; ON rate 4x that.
        assert source.on_rate == pytest.approx(0.4)


class TestStatistics:
    def test_long_run_average_rate(self):
        source = OnOffTraffic(32, 1.0, duty_cycle=0.3,
                              mean_burst_cycles=100, seed=5)
        total = sum(len(source.generate(t)) for t in range(30_000))
        assert total / 30_000 == pytest.approx(1.0, rel=0.15)

    def test_stationary_on_fraction(self):
        source = OnOffTraffic(512, 1.0, duty_cycle=0.2, seed=2)
        fractions = []
        for t in range(3000):
            source.generate(t)
            fractions.append(source.on_fraction())
        mean_fraction = sum(fractions) / len(fractions)
        assert mean_fraction == pytest.approx(0.2, abs=0.05)

    def test_burstier_than_poisson(self):
        """Per-window variance must exceed the Poisson baseline."""
        import numpy as np

        source = OnOffTraffic(32, 1.0, duty_cycle=0.1,
                              mean_burst_cycles=300, seed=7)
        window = 200
        counts = []
        for w in range(100):
            count = sum(len(source.generate(w * window + t))
                        for t in range(window))
            counts.append(count)
        counts = np.array(counts, dtype=float)
        mean = counts.mean()
        # Poisson windows would have variance ~ mean; ON/OFF with a 10%
        # duty cycle is far more variable.
        assert counts.var() > 2.0 * mean

    def test_no_self_sends(self):
        source = OnOffTraffic(8, 2.0, duty_cycle=0.5, seed=1)
        for t in range(2000):
            for packet in source.generate(t):
                assert packet.src != packet.dst

    def test_reproducible(self):
        def draw(seed):
            source = OnOffTraffic(16, 1.0, seed=seed)
            return [(p.src, p.dst) for t in range(2000)
                    for p in source.generate(t)]

        assert draw(3) == draw(3)
