"""Unit tests for the trace format, IO and replay source."""

import io

import pytest

from repro.errors import ConfigError, TraceFormatError
from repro.traffic.trace import (
    TraceRecord,
    TraceReplaySource,
    read_trace,
    trace_from_string,
    write_trace,
    write_trace_file,
    read_trace_file,
)


class TestRecordValidation:
    def test_valid_record(self):
        record = TraceRecord(10, 0, 3, 48)
        assert record.cycle == 10

    def test_negative_cycle_rejected(self):
        with pytest.raises(TraceFormatError):
            TraceRecord(-1, 0, 1, 1)

    def test_self_send_rejected(self):
        with pytest.raises(TraceFormatError):
            TraceRecord(0, 2, 2, 1)

    def test_zero_size_rejected(self):
        with pytest.raises(TraceFormatError):
            TraceRecord(0, 0, 1, 0)


class TestIo:
    def test_roundtrip(self):
        records = [TraceRecord(0, 0, 1, 8), TraceRecord(5, 2, 3, 48),
                   TraceRecord(5, 1, 0, 72)]
        stream = io.StringIO()
        assert write_trace(records, stream) == 3
        stream.seek(0)
        assert read_trace(stream) == records

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.txt"
        records = [TraceRecord(i, 0, 1, 4) for i in range(10)]
        write_trace_file(records, path)
        assert read_trace_file(path) == records

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\n0 0 1 4  # inline comment\n\n7 1 2 8\n"
        records = trace_from_string(text)
        assert [r.cycle for r in records] == [0, 7]

    def test_field_count_checked(self):
        with pytest.raises(TraceFormatError):
            trace_from_string("0 1 2\n")

    def test_non_integer_rejected(self):
        with pytest.raises(TraceFormatError):
            trace_from_string("0 a 2 4\n")

    def test_ordering_enforced(self):
        with pytest.raises(TraceFormatError):
            trace_from_string("10 0 1 4\n5 0 1 4\n")


class TestReplay:
    def test_injects_at_recorded_cycles(self):
        records = [TraceRecord(0, 0, 1, 2), TraceRecord(3, 1, 2, 2),
                   TraceRecord(3, 2, 0, 2)]
        source = TraceReplaySource(4, records)
        assert len(source.generate(0)) == 1
        assert source.generate(1) == []
        assert len(source.generate(3)) == 2
        assert source.exhausted(3)

    def test_late_polling_catches_up(self):
        # If the caller skips cycles, pending records flush at once.
        records = [TraceRecord(0, 0, 1, 1), TraceRecord(5, 0, 1, 1)]
        source = TraceReplaySource(2, records)
        assert len(source.generate(10)) == 2

    def test_remaining_counter(self):
        records = [TraceRecord(0, 0, 1, 1), TraceRecord(5, 0, 1, 1)]
        source = TraceReplaySource(2, records)
        assert source.remaining == 2
        source.generate(0)
        assert source.remaining == 1

    def test_node_bounds_checked(self):
        with pytest.raises(ConfigError):
            TraceReplaySource(2, [TraceRecord(0, 0, 5, 1)])

    def test_unsorted_records_rejected(self):
        bad = [TraceRecord(5, 0, 1, 1), TraceRecord(0, 0, 1, 1)]
        with pytest.raises(TraceFormatError):
            TraceReplaySource(2, bad)

    def test_packet_fields_copied(self):
        source = TraceReplaySource(4, [TraceRecord(2, 3, 1, 48)])
        (packet,) = source.generate(2)
        assert (packet.src, packet.dst, packet.size) == (3, 1, 48)
        assert packet.create_time == 2
