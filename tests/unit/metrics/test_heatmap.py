"""Unit tests for the mesh heatmap renderers."""

import pytest

from repro.errors import ConfigError
from repro.metrics.heatmap import (
    mesh_utilisation_table,
    rack_level_heatmap,
    rack_occupancy_heatmap,
)
from repro.network.simulator import Simulator
from repro.traffic.uniform import UniformRandomTraffic


def make_sim(config, rate=0.4, seed=2):
    traffic = UniformRandomTraffic(config.network.num_nodes, rate, seed=seed)
    return Simulator(config, traffic)


class TestOccupancyHeatmap:
    def test_grid_dimensions(self, tiny_baseline_config):
        sim = make_sim(tiny_baseline_config)
        sim.run(300)
        lines = rack_occupancy_heatmap(sim).splitlines()
        network = tiny_baseline_config.network
        assert len(lines) == network.mesh_height + 1  # grid + legend
        assert all(len(line) == network.mesh_width
                   for line in lines[:-1])

    def test_idle_network_uniform_grid(self, tiny_baseline_config):
        sim = make_sim(tiny_baseline_config, rate=0.0)
        sim.run(100)
        lines = rack_occupancy_heatmap(sim).splitlines()[:-1]
        assert len({c for line in lines for c in line}) == 1


class TestLevelHeatmap:
    def test_requires_power_aware(self, tiny_baseline_config):
        sim = make_sim(tiny_baseline_config)
        with pytest.raises(ConfigError):
            rack_level_heatmap(sim)

    def test_idle_network_reaches_low_digits(self, tiny_sim_config):
        sim = make_sim(tiny_sim_config, rate=0.0)
        sim.run(4000)
        lines = rack_level_heatmap(sim).splitlines()
        digits = {c for line in lines[:-1] for c in line}
        assert digits == {"0"}

    def test_fresh_network_starts_high(self, tiny_sim_config):
        sim = make_sim(tiny_sim_config, rate=0.0)
        sim.run(1)
        lines = rack_level_heatmap(sim).splitlines()
        digits = {c for line in lines[:-1] for c in line}
        assert digits == {"9"}


class TestUtilisationTable:
    def test_sorted_busiest_first(self, tiny_baseline_config):
        sim = make_sim(tiny_baseline_config, rate=1.0)
        for link in sim.network.links:
            link.busy_accum = 0.0
        sim.run(500)
        rows = mesh_utilisation_table(sim, window=500.0)
        fractions = [float(row.split(": ")[1]) for row in rows]
        assert fractions == sorted(fractions, reverse=True)
        assert all(0.0 <= f <= 1.0 for f in fractions)

    def test_row_count_matches_mesh_links(self, tiny_baseline_config):
        sim = make_sim(tiny_baseline_config)
        rows = mesh_utilisation_table(sim, window=100.0)
        # 2x2 mesh: 8 unidirectional inter-router links.
        assert len(rows) == 8

    def test_window_validation(self, tiny_baseline_config):
        sim = make_sim(tiny_baseline_config)
        with pytest.raises(ConfigError):
            mesh_utilisation_table(sim, window=0.0)
