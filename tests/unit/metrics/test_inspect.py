"""Unit tests for the live-simulation introspection helpers."""

from repro.metrics.inspect import (
    attach_level_timeline,
    buffer_occupancy_map,
    congestion_report,
    level_map,
    source_backlog_map,
)
from repro.network.simulator import Simulator
from repro.traffic.uniform import UniformRandomTraffic


def make_sim(config, rate=0.4, seed=3):
    traffic = UniformRandomTraffic(config.network.num_nodes, rate, seed=seed)
    return Simulator(config, traffic)


class TestSnapshots:
    def test_idle_network_has_empty_maps(self, tiny_baseline_config):
        sim = make_sim(tiny_baseline_config, rate=0.0)
        sim.run(200)
        assert buffer_occupancy_map(sim) == {}
        assert source_backlog_map(sim) == []

    def test_loaded_network_shows_occupancy(self, tiny_sim_config):
        sim = make_sim(tiny_sim_config, rate=1.2)
        sim.run(400)
        # With sustained load something must be buffered or queued.
        occupied = buffer_occupancy_map(sim)
        backlog = source_backlog_map(sim)
        assert occupied or backlog or sim.stats.in_flight == 0

    def test_level_map_empty_for_baseline(self, tiny_baseline_config):
        sim = make_sim(tiny_baseline_config)
        sim.run(100)
        assert level_map(sim) == {}

    def test_level_map_counts_all_links(self, tiny_sim_config):
        sim = make_sim(tiny_sim_config, rate=0.1)
        sim.run(600)
        levels = level_map(sim)
        counted = sum(sum(counter.values()) for counter in levels.values())
        assert counted == len(sim.power.links)

    def test_congestion_report_is_text(self, tiny_sim_config):
        sim = make_sim(tiny_sim_config, rate=0.5)
        sim.run(500)
        report = congestion_report(sim)
        assert f"cycle {sim.cycle}" in report
        assert "link levels" in report

    def test_backlog_sorted_descending(self, tiny_baseline_config):
        sim = make_sim(tiny_baseline_config, rate=2.0)
        sim.run(300)
        backlog = source_backlog_map(sim, top=5)
        sizes = [flits for _, flits in backlog]
        assert sizes == sorted(sizes, reverse=True)


class TestStallWatchdog:
    def test_healthy_run_never_trips(self, tiny_network):
        from repro.config import SimulationConfig

        config = SimulationConfig(network=tiny_network, power=None,
                                  stall_limit_cycles=2000)
        sim = make_sim(config, rate=0.3)
        sim.run(5000)  # must not raise
        assert sim.stats.packets_delivered > 0

    def test_artificial_stall_detected(self, tiny_network):
        import pytest

        from repro.config import SimulationConfig
        from repro.errors import SimulationError

        config = SimulationConfig(network=tiny_network, power=None,
                                  stall_limit_cycles=512)
        sim = make_sim(config, rate=0.3)
        sim.run(600)
        # Simulate a wedged network: disable every link far into the
        # future so nothing can move while packets are in flight.
        assert sim.stats.in_flight > 0 or sim.network.total_pending_flits > 0
        for link in sim.network.links:
            link.disable_for(sim.cycle, 10_000_000)
        with pytest.raises(SimulationError, match="flow-control bug"):
            sim.run(3000)


class TestLevelTimeline:
    def test_samples_every_window_boundary(self, tiny_sim_config):
        sim = make_sim(tiny_sim_config, rate=0.1)
        timeline = attach_level_timeline(sim)
        window = sim.power.window
        sim.run(window * 3 + 1)  # boundaries at w, 2w, 3w
        assert [cycle for cycle, _ in timeline.samples] == \
            [window, window * 2, window * 3]
        for _, histogram in timeline.samples:
            assert sum(histogram) == len(sim.power.links)

    def test_detach_stops_sampling(self, tiny_sim_config):
        sim = make_sim(tiny_sim_config, rate=0.1)
        timeline = attach_level_timeline(sim)
        window = sim.power.window
        sim.run(window + 1)
        timeline.detach()
        sim.run(window * 2)
        assert len(timeline.samples) == 1

    def test_baseline_rejected(self, tiny_baseline_config):
        import pytest

        from repro.errors import ConfigError

        sim = make_sim(tiny_baseline_config)
        with pytest.raises(ConfigError):
            attach_level_timeline(sim)
