"""Unit tests for the metrics package."""

import math

import pytest

from repro.config import NetworkConfig
from repro.errors import ConfigError
from repro.metrics.energy import (
    average_power_watts,
    normalise_power_series,
    series_mean,
    smooth_series,
    watt_cycles_to_joules,
)
from repro.metrics.latency import (
    find_throughput,
    mean_hop_count,
    zero_load_latency,
)
from repro.metrics.summary import NormalisedResult, RunResult, normalise


def make_result(latency=100.0, power=0.3, label="x") -> RunResult:
    return RunResult(
        label=label, cycles=1000, packets_created=100, packets_delivered=100,
        mean_latency=latency, p95_latency=latency * 1.5,
        max_latency=latency * 3, relative_power=power, accepted_rate=0.1,
    )


class TestEnergyHelpers:
    def test_watt_cycles_to_joules(self):
        network = NetworkConfig()
        # 625e6 watt-cycles at 625 MHz = 1 joule.
        assert watt_cycles_to_joules(625e6, network) == pytest.approx(1.0)

    def test_average_power(self):
        assert average_power_watts(100.0, 50.0) == pytest.approx(2.0)
        with pytest.raises(ConfigError):
            average_power_watts(1.0, 0.0)

    def test_normalise_power_series(self):
        series = [(0, 10.0), (100, 5.0)]
        assert normalise_power_series(series, 10.0) == [(0, 1.0), (100, 0.5)]
        with pytest.raises(ConfigError):
            normalise_power_series(series, 0.0)

    def test_smooth_series_flattens_spike(self):
        series = [(i, 1.0) for i in range(9)]
        series[4] = (4, 10.0)
        smoothed = smooth_series(series, window=3)
        assert smoothed[4][1] == pytest.approx(4.0)
        assert smoothed[0][1] == pytest.approx(1.0)

    def test_smooth_window_one_is_identity(self):
        series = [(0, 1.0), (1, 5.0)]
        assert smooth_series(series, window=1) == series

    def test_series_mean(self):
        assert series_mean([(0, 1.0), (1, 3.0)]) == pytest.approx(2.0)
        with pytest.raises(ConfigError):
            series_mean([])


class TestLatencyHelpers:
    def test_mean_hop_count_8x8(self):
        # (w^2-1)/(3w) per dimension = 63/24 = 2.625; two dims = 5.25.
        assert mean_hop_count(NetworkConfig()) == pytest.approx(5.25)

    def test_zero_load_latency_grows_with_packet_size(self):
        network = NetworkConfig()
        assert zero_load_latency(network, 48) > zero_load_latency(network, 5)

    def test_zero_load_latency_grows_with_service_time(self):
        network = NetworkConfig()
        assert zero_load_latency(network, 5, service_time=2.0) > \
            zero_load_latency(network, 5, service_time=1.0)

    def test_find_throughput_bisection(self):
        # A synthetic latency curve exploding at rate 2.0.
        def latency(rate):
            return 50.0 if rate < 2.0 else 1e9

        found = find_throughput(latency, zero_load=50.0, low=0.1, high=4.0,
                                tolerance=0.01)
        assert found == pytest.approx(2.0, abs=0.05)

    def test_find_throughput_all_saturated(self):
        found = find_throughput(lambda r: 1e9, zero_load=50.0,
                                low=0.5, high=4.0)
        assert found == 0.5

    def test_find_throughput_never_saturates(self):
        found = find_throughput(lambda r: 10.0, zero_load=50.0,
                                low=0.5, high=4.0)
        assert found == 4.0

    def test_find_throughput_handles_nan(self):
        def latency(rate):
            return 50.0 if rate < 1.0 else math.nan

        found = find_throughput(latency, zero_load=50.0, low=0.1, high=4.0)
        assert found < 1.05


class TestNormalisation:
    def test_normalise_ratios(self):
        aware = make_result(latency=150.0, power=0.25)
        baseline = make_result(latency=100.0, power=1.0, label="base")
        result = normalise(aware, baseline)
        assert result.latency_ratio == pytest.approx(1.5)
        assert result.power_ratio == pytest.approx(0.25)
        assert result.power_latency_product == pytest.approx(0.375)

    def test_baseline_must_be_non_power_aware(self):
        aware = make_result(power=0.25)
        fake_baseline = make_result(power=0.5)
        with pytest.raises(ConfigError):
            normalise(aware, fake_baseline)

    def test_baseline_latency_must_be_usable(self):
        aware = make_result()
        bad = make_result(latency=math.nan, power=1.0)
        with pytest.raises(ConfigError):
            normalise(aware, bad)

    def test_run_result_plp(self):
        result = make_result(latency=200.0, power=0.5)
        assert result.power_latency_product == pytest.approx(100.0)

    def test_delivery_fraction(self):
        result = make_result()
        assert result.delivery_fraction == 1.0

    def test_as_dict(self):
        n = NormalisedResult("x", 1.5, 0.25, 100.0, 150.0)
        d = n.as_dict()
        assert d["power_latency_product"] == pytest.approx(0.375)
