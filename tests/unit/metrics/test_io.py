"""Unit tests for result serialisation."""

import io
import math

import pytest

from repro.errors import ConfigError
from repro.metrics.io import (
    load_results,
    load_results_file,
    normalised_from_dict,
    normalised_to_dict,
    result_from_dict,
    result_to_dict,
    save_results,
    save_results_file,
)
from repro.metrics.summary import NormalisedResult, RunResult


def make_result(label="x") -> RunResult:
    return RunResult(
        label=label, cycles=5000, packets_created=100, packets_delivered=98,
        mean_latency=42.5, p95_latency=70.0, max_latency=120.0,
        relative_power=0.31, accepted_rate=0.02,
        transitions_up=3, transitions_down=17,
        power_series=((0, 10.0), (1000, 4.5)),
        injection_series=(0.1, 0.2, 0.15),
        level_histogram=(5, 0, 0, 0, 0, 1),
    )


class TestRunResultRoundTrip:
    def test_dict_round_trip(self):
        original = make_result()
        assert result_from_dict(result_to_dict(original)) == original

    def test_json_round_trip(self):
        results = {"a": make_result("a"), "b": make_result("b")}
        stream = io.StringIO()
        save_results(results, stream)
        stream.seek(0)
        assert load_results(stream) == results

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "results.json"
        results = {"run": make_result()}
        save_results_file(results, path)
        assert load_results_file(path) == results

    def test_nan_latency_survives(self):
        nan_result = RunResult(
            label="nan", cycles=10, packets_created=0, packets_delivered=0,
            mean_latency=math.nan, p95_latency=math.nan, max_latency=0.0,
            relative_power=1.0, accepted_rate=0.0,
        )
        restored = result_from_dict(result_to_dict(nan_result))
        assert math.isnan(restored.mean_latency)

    def test_unknown_schema_rejected(self):
        payload = result_to_dict(make_result())
        payload["schema_version"] = 99
        with pytest.raises(ConfigError):
            result_from_dict(payload)


class TestNormalisedRoundTrip:
    def test_round_trip(self):
        original = NormalisedResult("fft", 1.5, 0.25, 100.0, 150.0)
        assert normalised_from_dict(normalised_to_dict(original)) == original

    def test_schema_checked(self):
        payload = normalised_to_dict(
            NormalisedResult("x", 1.0, 0.5, 10.0, 10.0))
        payload["schema_version"] = 0
        with pytest.raises(ConfigError):
            normalised_from_dict(payload)
