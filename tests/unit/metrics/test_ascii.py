"""Unit tests for the plain-text rendering helpers."""

import math

import pytest

from repro.errors import ConfigError
from repro.metrics.ascii import (
    SPARK_CHARS,
    format_table,
    histogram_bar,
    sparkline,
)


class TestSparkline:
    def test_constant_series(self):
        line = sparkline([1.0, 1.0, 1.0])
        assert len(line) == 3
        assert set(line) == {SPARK_CHARS[0]}

    def test_min_and_max_map_to_ends(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == SPARK_CHARS[0]
        assert line[1] == SPARK_CHARS[-1]

    def test_nan_renders_as_space(self):
        line = sparkline([0.0, math.nan, 1.0])
        assert line[1] == " "

    def test_empty_series(self):
        assert sparkline([]) == "(no data)"
        assert sparkline([math.nan, math.nan]) == "(no data)"

    def test_resampling_to_width(self):
        line = sparkline(list(range(1000)), width=50)
        assert len(line) <= 50

    def test_monotone_series_monotone_chars(self):
        line = sparkline([float(i) for i in range(10)])
        indices = [SPARK_CHARS.index(c) for c in line]
        assert indices == sorted(indices)

    def test_invalid_width(self):
        with pytest.raises(ConfigError):
            sparkline([1.0], width=0)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_float_formatting(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.235" in text

    def test_nan_cell(self):
        text = format_table(["x"], [[math.nan]])
        assert "nan" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ConfigError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigError):
            format_table([], [])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestHistogramBar:
    def test_bars_proportional(self):
        lines = histogram_bar([1, 2, 4])
        assert lines[2].count("#") == 40
        assert lines[0].count("#") == 10

    def test_zero_counts(self):
        lines = histogram_bar([0, 0])
        assert all("#" not in line for line in lines)

    def test_counts_echoed(self):
        lines = histogram_bar([3, 7])
        assert lines[0].endswith("3")
        assert lines[1].endswith("7")
