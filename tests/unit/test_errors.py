"""Unit tests for the exception hierarchy contract."""

import pytest

from repro.errors import (
    ConfigError,
    LinkStateError,
    ReproError,
    SimulationError,
    TraceFormatError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        ConfigError, LinkStateError, SimulationError, TraceFormatError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_config_error_is_value_error(self):
        # Callers using plain ValueError handling still catch config
        # problems (ergonomics for library users).
        assert issubclass(ConfigError, ValueError)

    def test_trace_format_is_value_error(self):
        assert issubclass(TraceFormatError, ValueError)

    def test_runtime_errors(self):
        assert issubclass(SimulationError, RuntimeError)
        assert issubclass(LinkStateError, RuntimeError)

    def test_one_except_catches_everything(self):
        for exc in (ConfigError, LinkStateError, SimulationError,
                    TraceFormatError):
            with pytest.raises(ReproError):
                raise exc("boom")
