"""Integration tests: the reliability subsystem in whole-system runs.

Covers the PR's acceptance scenarios: fault-free runs are bit-identical
with and without a (neutral) fault config attached; a hard mesh-link
failure mid-run drains without deadlock while rerouting and
retransmitting; and the default configuration leaves every fault hook
unset.
"""

from dataclasses import replace

import pytest

from repro.config import NetworkConfig, SimulationConfig
from repro.errors import ConfigError
from repro.experiments.configs import get_scale, power_config, reference_rates
from repro.experiments.fig5 import uniform_factory
from repro.experiments.runner import run_simulation
from repro.network.links import MESH
from repro.network.simulator import Simulator
from repro.network.stats import StatsCollector
from repro.network.topology import ClusteredMesh
from repro.reliability import (
    FaultConfig,
    LinkFailure,
    neutral_fault_config,
)
from repro.traffic.base import TrafficSource

SCALE = get_scale("smoke")
CYCLES = 4000


def light_factory():
    return uniform_factory(reference_rates(SCALE.network)["light"])


class FiniteUniformSource(TrafficSource):
    """Uniform Poisson traffic that stops after a deadline (drainable)."""

    def __init__(self, num_nodes: int, seed: int = 1, *,
                 rate: float = 0.5, until: int = 2000,
                 packet_size: int = 5):
        super().__init__(num_nodes, seed)
        self.rate = rate
        self.until = until
        self.packet_size = packet_size

    def generate(self, now):
        if now >= self.until:
            return []
        packets = []
        for _ in range(int(self.rng.poisson(self.rate))):
            src = int(self.rng.integers(self.num_nodes))
            dst = self._random_destination(src)
            packets.append(self._make_packet(src, dst, self.packet_size, now))
        return packets

    def exhausted(self, now):
        return now >= self.until


class TestDefaultOff:
    def test_no_fault_config_leaves_every_hook_unset(self):
        sim = Simulator(
            SimulationConfig(network=NetworkConfig(
                mesh_width=2, mesh_height=2, nodes_per_cluster=2)),
            FiniteUniformSource(8, until=200),
        )
        assert sim.reliability is None
        assert all(link.faults is None for link in sim.network.links)
        assert all(not link.failed for link in sim.network.links)
        assert all(r.fault_stats is None for r in sim.network.routers)
        assert all(pal.step_down_guard is None for pal in sim.power.links)
        sim.run(400)
        assert not any(k.startswith("reliability_") for k in sim.summary())

    def test_neutral_fault_config_is_bit_identical(self):
        """The tentpole's equivalence regression: attaching the reliability
        machinery with everything off changes no simulation output."""
        power = power_config(SCALE)
        plain = run_simulation(
            SCALE, power, light_factory(), label="eq", seed=3, cycles=CYCLES,
        )
        neutral = run_simulation(
            SCALE, power, light_factory(), label="eq", seed=3, cycles=CYCLES,
            faults=neutral_fault_config(),
        )
        # Identical in every field; only the attached report may differ.
        assert replace(neutral, reliability=None) == plain
        report = neutral.reliability
        assert report.flits_corrupted == 0
        assert report.flits_retransmitted == 0
        assert report.guard_holds == 0
        assert report.effective_goodput == 1.0


class TestLinkFailure:
    def first_mesh_link_id(self, network: NetworkConfig) -> int:
        topology = ClusteredMesh(network, StatsCollector())
        return next(l.link_id for l in topology.links if l.kind == MESH)

    def test_mesh_link_kill_mid_run_drains_with_reroutes(self):
        network = NetworkConfig(mesh_width=4, mesh_height=4,
                                nodes_per_cluster=2)
        dead = self.first_mesh_link_id(network)
        config = SimulationConfig(
            network=network,
            power=None,
            faults=FaultConfig(
                seed=11,
                received_power_w=13e-6,  # low margin: retransmissions occur
                failures=(LinkFailure(dead, at_cycle=1000),),
            ),
            stall_limit_cycles=4000,
        )
        traffic = FiniteUniformSource(network.num_nodes, seed=2,
                                      rate=0.4, until=3000)
        sim = Simulator(config, traffic)
        assert sim.run_until_drained(40_000)
        assert sim.stats.packets_delivered == sim.stats.packets_created
        assert sim.stats.packets_created > 100
        report = sim.reliability.report()
        assert report.failed_links == 1
        assert report.reroutes > 0
        assert report.flits_retransmitted > 0
        assert sim.network.links[dead].failed

    def test_non_mesh_link_failure_rejected(self):
        network = NetworkConfig(mesh_width=2, mesh_height=2,
                                nodes_per_cluster=2)
        config = SimulationConfig(
            network=network, power=None,
            faults=FaultConfig(failures=(LinkFailure(0, 100),)),
        )
        with pytest.raises(ConfigError, match="mesh"):
            Simulator(config, FiniteUniformSource(8))

    def test_out_of_range_scenario_rejected(self):
        network = NetworkConfig(mesh_width=2, mesh_height=2,
                                nodes_per_cluster=2)
        config = SimulationConfig(
            network=network, power=None,
            faults=FaultConfig(failures=(LinkFailure(10_000, 100),)),
        )
        with pytest.raises(ConfigError, match="topology has only"):
            Simulator(config, FiniteUniformSource(8))


class TestEngineRequirements:
    def test_faults_require_event_engine(self):
        config = SimulationConfig(
            network=NetworkConfig(mesh_width=2, mesh_height=2,
                                  nodes_per_cluster=2),
            power=None, faults=FaultConfig(),
        )
        with pytest.raises(ConfigError, match="step_all"):
            Simulator(config, FiniteUniformSource(8), step_all=True)

    def test_validate_topology_flag_runs_clean(self):
        config = SimulationConfig(
            network=NetworkConfig(mesh_width=2, mesh_height=2,
                                  nodes_per_cluster=2),
            power=None, validate_topology=True,
        )
        sim = Simulator(config, FiniteUniformSource(8, until=100))
        sim.run(50)  # constructed and runnable: validation found nothing


class TestSummaryPlumbing:
    def test_reliability_keys_reach_summary_and_result(self):
        result = run_simulation(
            SCALE, None, light_factory(), label="keys", seed=5, cycles=1500,
            faults=FaultConfig(seed=5, received_power_w=13e-6),
        )
        report = result.reliability
        assert report is not None
        assert report.flits_corrupted > 0
        assert report.flits_carried > 0
        assert 0.9 < report.effective_goodput < 1.0
        assert report.observed_flit_error_rate > 0.0

    def test_margin_guard_blocks_descents_at_low_margin(self):
        """At 13 uW every lower level violates the BER target, so the
        guard pins the ladder at the top: no down transitions at all."""
        power = power_config(SCALE)
        result = run_simulation(
            SCALE, power, light_factory(), label="guard", seed=1,
            cycles=CYCLES, faults=FaultConfig(seed=1, received_power_w=13e-6),
        )
        assert result.reliability.guard_holds > 0
        assert result.transitions_down == 0
        unguarded = run_simulation(
            SCALE, power, light_factory(), label="noguard", seed=1,
            cycles=CYCLES,
            faults=FaultConfig(seed=1, received_power_w=13e-6,
                               margin_guard=False),
        )
        assert unguarded.transitions_down > 0
        assert unguarded.reliability.guard_holds == 0
