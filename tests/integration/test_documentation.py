"""Documentation fidelity tests.

The README's quickstart must actually run, and the shipped artefacts
(DESIGN.md inventory, EXPERIMENTS.md sections) must stay consistent with
the code they describe.
"""

from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestQuickstartSnippet:
    def test_readme_quickstart_runs(self):
        """Execute the exact import/flow the README shows (shortened run)."""
        from repro import SimulationConfig, Simulator, UniformRandomTraffic

        config = SimulationConfig()
        traffic = UniformRandomTraffic(config.network.num_nodes,
                                       injection_rate=1.25, seed=7)
        sim = Simulator(config, traffic)
        sim.run(1_000)   # README uses 50k; the flow is identical
        summary = sim.summary()
        assert {"mean_latency", "relative_power"} <= set(summary)


class TestShippedDocuments:
    @pytest.mark.parametrize("name", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md",
        "docs/policy.md", "docs/simulator.md",
    ])
    def test_document_exists_and_is_substantial(self, name):
        path = REPO_ROOT / name
        assert path.exists(), f"{name} missing"
        assert len(path.read_text(encoding="utf-8")) > 1000

    def test_experiments_covers_every_figure_and_table(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for section in ("Table 2", "Fig 5(a)(b)(c)", "Fig 5(d)(e)(f)",
                        "Fig 5(g)(h)", "Fig 6", "Fig 7 / Table 3",
                        "Ablation", "Throughput"):
            assert section in text, f"EXPERIMENTS.md lacks {section}"

    def test_design_inventory_modules_exist(self):
        """Every `repro.x.y` module named in DESIGN.md must import."""
        import importlib
        import re

        text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        modules = set(re.findall(r"`(repro(?:\.\w+)+)`", text))
        assert modules, "DESIGN.md names no modules?"
        for name in sorted(modules):
            root = name.split(".")[:2]
            importlib.import_module(".".join(root))

    def test_examples_listed_in_readme_exist(self):
        import re

        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        listed = re.findall(r"`(\w+\.py)`", readme)
        for script in listed:
            assert (REPO_ROOT / "examples" / script).exists(), script
