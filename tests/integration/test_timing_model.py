"""Integration: the analytic timing model versus measured simulations.

docs/simulator.md specifies the zero-load latency composition; these tests
hold the analytic formula to account against real single-packet runs over
a grid of configurations (pipeline depth, propagation delay, packet size,
mesh size, static link rates).
"""

import pytest

from repro.config import NetworkConfig, PowerAwareConfig, SimulationConfig
from repro.metrics.latency import zero_load_latency
from repro.network.simulator import Simulator
from repro.traffic.base import TrafficSource


class SinglePacket(TrafficSource):
    """Injects exactly one packet between the chosen corner nodes."""

    def __init__(self, num_nodes, src, dst, size):
        super().__init__(num_nodes)
        self._pending = [(src, dst, size)]

    def generate(self, now):
        if not self._pending:
            return []
        src, dst, size = self._pending.pop()
        return [self._make_packet(src, dst, size, now)]

    def exhausted(self, now):
        return not self._pending


def corner_latency(network: NetworkConfig, size: int,
                   power: PowerAwareConfig | None = None) -> float:
    """Measured latency of one corner-to-corner packet."""
    config = SimulationConfig(network=network, power=power,
                              sample_interval=1000)
    nodes = network.num_nodes
    sim = Simulator(config, SinglePacket(nodes, 0, nodes - 1, size))
    sim.run_until_drained(20_000)
    return sim.stats.mean_latency


def corner_prediction(network: NetworkConfig, size: int,
                      service: float = 1.0) -> float:
    """Analytic latency for the corner-to-corner path (max hops)."""
    hops = (network.mesh_width - 1) + (network.mesh_height - 1)
    per_link = service + network.link_propagation_cycles
    head = (hops + 1) * network.head_pipeline_delay + (hops + 2) * per_link
    return head + (size - 1) * service


class TestZeroLoadModel:
    @pytest.mark.parametrize("width,height", [(2, 2), (3, 2), (4, 4)])
    @pytest.mark.parametrize("size", [1, 5, 16])
    def test_full_rate_prediction_exact(self, width, height, size):
        network = NetworkConfig(mesh_width=width, mesh_height=height,
                                nodes_per_cluster=2, buffer_depth=8,
                                num_vcs=2)
        measured = corner_latency(network, size)
        predicted = corner_prediction(network, size)
        assert measured == pytest.approx(predicted, abs=1.0)

    @pytest.mark.parametrize("head_delay", [0, 2, 5])
    def test_pipeline_depth_scales_latency(self, head_delay):
        network = NetworkConfig(mesh_width=3, mesh_height=3,
                                nodes_per_cluster=2, buffer_depth=8,
                                num_vcs=2, head_pipeline_delay=head_delay)
        measured = corner_latency(network, 4)
        predicted = corner_prediction(network, 4)
        assert measured == pytest.approx(predicted, abs=1.0)

    @pytest.mark.parametrize("propagation", [0.0, 2.0, 4.0])
    def test_propagation_scales_latency(self, propagation):
        network = NetworkConfig(mesh_width=2, mesh_height=2,
                                nodes_per_cluster=2, buffer_depth=8,
                                num_vcs=2,
                                link_propagation_cycles=propagation)
        measured = corner_latency(network, 2)
        predicted = corner_prediction(network, 2)
        assert measured == pytest.approx(predicted, abs=1.0)

    def test_static_slow_links_match_service_prediction(self):
        network = NetworkConfig(mesh_width=2, mesh_height=2,
                                nodes_per_cluster=2, buffer_depth=8,
                                num_vcs=2)
        power = PowerAwareConfig(min_bit_rate=5e9, max_bit_rate=5e9,
                                 num_levels=1)
        measured = corner_latency(network, 4, power=power)
        predicted = corner_prediction(network, 4, service=2.0)
        # Body flits pace at max(1 cycle SA, service); with service 2.0
        # the serialisation dominates exactly as predicted.
        assert measured == pytest.approx(predicted, abs=2.0)

    def test_mean_formula_bounded_by_corner_case(self):
        # zero_load_latency uses *mean* hops; the corner path is the worst
        # case, so the mean-based figure must sit below it.
        network = NetworkConfig(mesh_width=4, mesh_height=4,
                                nodes_per_cluster=2, buffer_depth=8,
                                num_vcs=2)
        mean_formula = zero_load_latency(network, packet_size=5)
        corner = corner_prediction(network, 5)
        assert mean_formula < corner
