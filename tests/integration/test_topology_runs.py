"""Integration tests: alternative topologies end-to-end, and LINK_OFF.

Torus, cmesh and line substrates must run complete power-aware
simulations (with wiring validation on) and stay deterministic under
process-parallel sweeps; the LINK_OFF sleep rung must demonstrably be
reached, billed (zero power while off, a real wake penalty after) and
left again without losing a single packet.
"""

import pytest

from repro.config import (
    NetworkConfig,
    PolicyConfig,
    PowerAwareConfig,
    SimulationConfig,
    TransitionConfig,
)
from repro.experiments.configs import (
    get_scale,
    reference_rates,
    scale_with_topology,
)
from repro.experiments.fig5 import uniform_factory
from repro.experiments.runner import SweepPoint, run_simulation, run_sweep
from repro.network.links import MESH
from repro.network.simulator import Simulator
from repro.traffic.trace import TraceRecord, TraceReplaySource
from repro.traffic.uniform import UniformRandomTraffic


def topo_config(topology, power=None, **net_overrides) -> SimulationConfig:
    defaults = {"mesh_width": 4, "mesh_height": 4, "nodes_per_cluster": 2,
                "topology": topology}
    defaults.update(net_overrides)
    return SimulationConfig(network=NetworkConfig(**defaults), power=power,
                            sample_interval=200, validate_topology=True)


def fast_power(**overrides) -> PowerAwareConfig:
    return PowerAwareConfig(
        policy=PolicyConfig(window_cycles=100, history_windows=2),
        transitions=TransitionConfig(
            bit_rate_transition_cycles=3, voltage_transition_cycles=15,
            optical_transition_cycles=600, laser_epoch_cycles=1200,
            link_off_wake_cycles=50,
        ),
        **overrides,
    )


class TestAlternativeSubstrates:
    @pytest.mark.parametrize("topology", ["torus", "cmesh", "line"])
    def test_power_aware_run_completes(self, topology):
        config = topo_config(topology, power=fast_power())
        traffic = UniformRandomTraffic(config.network.num_nodes, 0.3, seed=11)
        sim = Simulator(config, traffic)
        sim.run(5000)
        stats = sim.stats
        assert stats.packets_delivered > 0
        assert stats.packets_delivered + stats.in_flight == \
            stats.packets_created

    def test_concentrated_racks_run_at_smoke_shape(self):
        """36-port cmesh routers (smoke scale's 8-node racks, c=2).

        Regression: the work-list bitmask table used to be precomputed
        for all 2^num_ports masks, which hung construction here.
        """
        config = topo_config("cmesh", power=fast_power(),
                             nodes_per_cluster=8)
        traffic = UniformRandomTraffic(config.network.num_nodes, 0.6,
                                       seed=3)
        sim = Simulator(config, traffic)
        sim.run(2000)
        stats = sim.stats
        assert stats.packets_delivered > 0
        assert stats.packets_delivered + stats.in_flight == \
            stats.packets_created

    def test_torus_beats_mesh_on_hops(self):
        """Wrap links shorten real paths, not just the analytic model."""
        latencies = {}
        for topology in ("mesh", "torus"):
            config = topo_config(topology)
            nodes = config.network.num_nodes
            # Corner-to-corner pairs: the torus wraps in one hop.
            records = [TraceRecord(t, 0, nodes - 1, 4)
                       for t in range(0, 2000, 50)]
            sim = Simulator(config, TraceReplaySource(nodes, records))
            assert sim.run_until_drained(50_000)
            latencies[topology] = sim.stats.mean_latency
        assert latencies["torus"] < latencies["mesh"]

    def test_serial_and_parallel_torus_sweeps_identical(self):
        scale = scale_with_topology(get_scale("smoke"), "torus")
        rate = reference_rates(scale.network)["light"]
        points = [
            SweepPoint(label=f"torus/{seed}", scale=scale,
                       power=fast_power() if seed % 2 else None,
                       traffic_factory=uniform_factory(rate),
                       seed=seed, cycles=2000)
            for seed in (3, 4)
        ]
        serial = run_sweep(points, max_workers=1)
        parallel = run_sweep(points, max_workers=2)
        assert serial == parallel

    def test_torus_run_simulation_smoke_scale(self):
        scale = scale_with_topology(get_scale("smoke"), "torus")
        rate = reference_rates(scale.network)["light"]
        result = run_simulation(scale, fast_power(), uniform_factory(rate),
                                label="torus-smoke", seed=2, cycles=3000)
        assert result.packets_delivered > 0


def burst_idle_burst(nodes):
    """Traffic with a long silent gap for links to sleep through."""
    records = []
    for start in (0, 3000):
        for t in range(start, start + 200, 10):
            src = t % nodes
            dst = (t + nodes // 2) % nodes
            if src != dst:
                records.append(TraceRecord(t, src, dst, 4))
    return TraceReplaySource(nodes, records), len(records)


class TestLinkOff:
    def run_pair(self, topology):
        """The same burst/idle/burst workload with and without LINK_OFF."""
        out = {}
        for link_off in (False, True):
            config = topo_config(topology,
                                 power=fast_power(link_off=link_off),
                                 mesh_width=2, mesh_height=2)
            traffic, n_packets = burst_idle_burst(config.network.num_nodes)
            sim = Simulator(config, traffic)
            assert sim.run_until_drained(60_000)
            assert sim.stats.packets_delivered == n_packets
            sim.summary()   # finalizes energy accounting
            out[link_off] = sim
        return out[False], out[True]

    def test_sleep_reached_billed_and_woken(self):
        plain, sleepy = self.run_pair("mesh")

        totals = sleepy.power.sleep_totals()
        assert totals["sleeps"] > 0
        assert totals["wakes"] > 0
        off_time = sum(p.engine.off_cycles for p in sleepy.power.links)
        assert off_time > 0.0
        # Links that served the second burst slept, woke and delivered;
        # idle links may have dozed off again during the drain tail.
        assert sleepy.power.asleep_count() <= len(sleepy.power.links)
        # The wake penalty is billed as real disabled time: sleepers
        # accrue it on top of whatever relock time both runs share.
        assert sum(p.engine.disabled_cycles for p in sleepy.power.links) > \
            sum(p.engine.disabled_cycles for p in plain.power.links)
        # Zero-power sleep over the idle gap must save net energy.
        assert sleepy.power.total_energy_watt_cycles() < \
            plain.power.total_energy_watt_cycles()
        # The baseline never sleeps without the config arming it.
        assert plain.power.sleep_totals() == {"sleeps": 0, "wakes": 0}

    def test_mesh_topology_keeps_fabric_links_awake(self):
        _, sleepy = self.run_pair("mesh")
        for pal in sleepy.power.links:
            if pal.link.kind == MESH:
                assert pal.engine.sleeps == 0
            assert pal.can_sleep == (pal.link.kind != MESH)

    def test_torus_fabric_links_may_sleep(self):
        _, sleepy = self.run_pair("torus")
        mesh_sleeps = sum(p.engine.sleeps for p in sleepy.power.links
                          if p.link.kind == MESH)
        assert mesh_sleeps > 0
