"""Integration: alternative routing algorithms and arbiter schemes end to end.

The design-space knobs (YX / west-first routing, matrix arbitration) must
all produce correct, fully-delivered simulations; the default XY is the
reference.
"""

import pytest

from repro.config import NetworkConfig, SimulationConfig
from repro.network.simulator import Simulator
from repro.network.validation import validate_topology
from repro.traffic.uniform import UniformRandomTraffic


def run_network(routing="xy", arbiter="round_robin", seed=6, cycles=4000):
    network = NetworkConfig(mesh_width=3, mesh_height=3,
                            nodes_per_cluster=2, buffer_depth=8,
                            num_vcs=2, routing=routing, arbiter=arbiter)
    config = SimulationConfig(network=network, power=None,
                              sample_interval=500,
                              stall_limit_cycles=3000)
    traffic = UniformRandomTraffic(network.num_nodes, 0.4, seed=seed)
    sim = Simulator(config, traffic)
    sim.run(cycles)
    return sim


@pytest.mark.parametrize("routing", ["xy", "yx", "west_first"])
def test_routing_variants_deliver(routing):
    sim = run_network(routing=routing)
    stats = sim.stats
    assert stats.packets_delivered > 0.9 * stats.packets_created
    assert validate_topology(sim.network) == []


@pytest.mark.parametrize("arbiter", ["round_robin", "matrix"])
def test_arbiter_variants_deliver(arbiter):
    sim = run_network(arbiter=arbiter)
    stats = sim.stats
    assert stats.packets_delivered > 0.9 * stats.packets_created


def test_xy_and_yx_latencies_comparable():
    """Under uniform traffic the two dimension orders are symmetric on a
    square mesh — mean latencies must be close."""
    xy = run_network(routing="xy").stats.mean_latency
    yx = run_network(routing="yx").stats.mean_latency
    assert xy == pytest.approx(yx, rel=0.25)


def test_routing_changes_paths_not_count():
    """Same traffic, different routing: same deliveries, different link
    usage pattern."""
    def mesh_flit_profile(sim):
        return tuple(link.flits_carried
                     for link in sim.network.links_of_kind("mesh"))

    xy = run_network(routing="xy")
    yx = run_network(routing="yx")
    assert xy.stats.packets_created == yx.stats.packets_created
    assert mesh_flit_profile(xy) != mesh_flit_profile(yx)
