"""Integration: the spatial-idleness story behind the Table 3 savings.

The paper's application traces run on 8 racks of the 64-rack system; the
power saving comes largely from the idle racks' links sitting at the
ladder bottom while the active row stays responsive.  This test replays a
trace confined to the first mesh row and asserts the spatial pattern
directly — per-rack levels, per-kind energy, and the heatmap rendering.
"""

import pytest

from repro.config import SimulationConfig
from repro.experiments.configs import get_scale, power_config
from repro.experiments.fig7 import active_nodes_for, splash_factory
from repro.metrics.heatmap import rack_level_heatmap
from repro.network.simulator import Simulator


@pytest.fixture(scope="module")
def sim():
    scale = get_scale("smoke")
    config = SimulationConfig(
        network=scale.network,
        power=power_config(scale, technology="modulator"),
        sample_interval=scale.sample_interval,
    )
    factory = splash_factory("radix", scale)
    simulator = Simulator(config, factory(scale.network.num_nodes, seed=2))
    # Run most of the trace; don't drain, we want mid-activity state.
    simulator.run(int(scale.run_cycles * 0.6))
    return simulator


class TestSpatialPattern:
    def test_idle_rows_cheaper_than_active_row(self, sim):
        network = sim.config.network
        locals_ = network.nodes_per_cluster
        sim.finalize()
        # Energy of node-facing links, grouped by mesh row.
        row_energy = [0.0] * network.mesh_height
        for pal in sim.power.links:
            if pal.link.kind == "mesh":
                continue
            node_id = pal.link.link_id // 2
            row = (node_id // locals_) // network.mesh_width
            row_energy[row] += pal.energy_watt_cycles
        active_row = row_energy[0]
        idle_rows = row_energy[1:]
        assert all(active_row > idle for idle in idle_rows)

    def test_idle_rack_links_sit_at_bottom(self, sim):
        network = sim.config.network
        active_nodes = active_nodes_for(network)
        idle_levels = []
        for pal in sim.power.links:
            if pal.link.kind == "mesh":
                continue
            node_id = pal.link.link_id // 2
            if node_id >= active_nodes:
                idle_levels.append(pal.level)
        assert idle_levels
        assert sum(idle_levels) / len(idle_levels) < 0.5

    def test_heatmap_shows_the_row(self, sim):
        lines = rack_level_heatmap(sim).splitlines()
        grid = lines[:-1]
        # Bottom rows read all-zeros; the top (active) row averages higher.
        top_row_digits = [int(c) for c in grid[0]]
        bottom_row_digits = [int(c) for c in grid[-1]]
        assert sum(top_row_digits) >= sum(bottom_row_digits)
        assert sum(bottom_row_digits) == 0

    def test_total_power_reflects_idleness(self, sim):
        assert sim.relative_power() < 0.45
