"""Integration tests of the control policy inside a live network.

Validates the dynamic behaviours the paper's evaluation depends on: the
policy tracks traffic phases, the stabiliser ablations behave as
documented, and the transition machinery pays its expected costs.
"""

import pytest

from dataclasses import replace

from repro.config import (
    MODULATOR,
    NetworkConfig,
    PolicyConfig,
    PowerAwareConfig,
    SimulationConfig,
    TransitionConfig,
)
from repro.network.simulator import Simulator
from repro.traffic.hotspot import HotspotTraffic, Phase
from repro.traffic.uniform import UniformRandomTraffic

NETWORK = NetworkConfig(mesh_width=3, mesh_height=3, nodes_per_cluster=4)
POLICY = PolicyConfig(window_cycles=150, history_windows=2)
TRANSITIONS = TransitionConfig(
    bit_rate_transition_cycles=3, voltage_transition_cycles=15,
    optical_transition_cycles=600, laser_epoch_cycles=1200,
)


def run_sim(traffic_rate=0.3, policy=POLICY, cycles=8000, seed=2,
            phases=None):
    power = PowerAwareConfig(technology=MODULATOR, policy=policy,
                             transitions=TRANSITIONS)
    config = SimulationConfig(network=NETWORK, power=power,
                              sample_interval=200)
    if phases is not None:
        traffic = HotspotTraffic(NETWORK.num_nodes, phases,
                                 hotspot_node=5, seed=seed)
    else:
        traffic = UniformRandomTraffic(NETWORK.num_nodes, traffic_rate,
                                       seed=seed)
    sim = Simulator(config, traffic)
    sim.run(cycles)
    return sim


class TestTracking:
    def test_levels_descend_then_recover(self):
        # Quiet phase, then a loud phase: sampled power must dip and rise.
        phases = (Phase(0, 0.02), Phase(4000, 1.2))
        sim = run_sim(phases=phases, cycles=8000)
        series = sim.power.power_series
        quiet = [w for t, w in series if 2500 <= t < 4000]
        loud = [w for t, w in series if 6500 <= t < 8000]
        assert max(quiet) < min(loud)

    def test_transitions_happen_on_phase_changes(self):
        phases = (Phase(0, 0.02), Phase(3000, 1.2), Phase(6000, 0.02))
        sim = run_sim(phases=phases, cycles=9000)
        totals = sim.power.transition_totals()
        assert totals["up"] > 0
        assert totals["down"] > totals["up"]  # descent at start + cooldown

    def test_sampled_power_matches_energy_integral(self):
        sim = run_sim(traffic_rate=0.2)
        sim.finalize()
        sampled = [w for _, w in sim.power.power_series]
        mean_sampled = sum(sampled) / len(sampled)
        mean_energy = sim.power.average_power(sim.cycle)
        assert mean_sampled == pytest.approx(mean_energy, rel=0.1)


class TestStabiliserAblations:
    def test_pressure_utilisation_preserves_throughput(self):
        # At a healthy medium load, the pressure-aware policy keeps
        # delivering; the literal busy-time policy loses throughput to
        # the starvation blind spot (the documented failure mode).
        literal = replace(POLICY, pressure_aware_utilisation=False,
                          congestion_inhibits_downscale=False,
                          downscale_headroom_check=False,
                          rescue_threshold=1.0)
        healthy = run_sim(traffic_rate=0.9, policy=POLICY, cycles=10_000)
        degraded = run_sim(traffic_rate=0.9, policy=literal, cycles=10_000)
        healthy_fraction = (healthy.stats.packets_delivered
                            / healthy.stats.packets_created)
        assert healthy_fraction > 0.97
        assert healthy.stats.mean_latency < degraded.stats.mean_latency

    def test_rescue_reduces_latency_under_bursts(self):
        no_rescue = replace(POLICY, rescue_threshold=1.0)
        phases = (Phase(0, 0.02), Phase(2000, 1.4), Phase(5000, 0.02),
                  Phase(6000, 1.4))
        with_rescue = run_sim(phases=phases, cycles=9000, policy=POLICY)
        without = run_sim(phases=phases, cycles=9000, policy=no_rescue)
        assert with_rescue.stats.mean_latency <= without.stats.mean_latency


class TestTransitionCosts:
    def test_ideal_transitions_no_worse(self):
        ideal_transitions = TransitionConfig(
            bit_rate_transition_cycles=0, voltage_transition_cycles=0,
            optical_transition_cycles=600, laser_epoch_cycles=1200,
        )
        phases = (Phase(0, 0.05), Phase(2000, 1.0), Phase(4000, 0.05),
                  Phase(6000, 1.0))

        def run_with(transitions):
            power = PowerAwareConfig(technology=MODULATOR, policy=POLICY,
                                     transitions=transitions)
            config = SimulationConfig(network=NETWORK, power=power,
                                      sample_interval=200)
            traffic = HotspotTraffic(NETWORK.num_nodes, phases,
                                     hotspot_node=5, seed=2)
            sim = Simulator(config, traffic)
            sim.run(8000)
            return sim.stats.mean_latency

        assert run_with(ideal_transitions) <= run_with(TRANSITIONS) * 1.05

    def test_disabled_cycles_accounted(self):
        sim = run_sim(traffic_rate=0.3)
        disabled = sum(pal.engine.disabled_cycles for pal in sim.power.links)
        transitions = sim.power.transition_totals()
        expected = (transitions["up"] + transitions["down"]) \
            * TRANSITIONS.bit_rate_transition_cycles
        assert disabled == pytest.approx(expected)
