"""Chaos-driven integration tests for the resilient sweep executor.

Each test injects a real failure mode — a SIGKILL'd worker, a wedged
point, a supervisor killed mid-sweep — and asserts the executor's core
promise: recovery never changes results.  Every recovered sweep is
compared bit-for-bit against an undisturbed serial baseline.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.executor import ExecutionPlan, execute_sweep
from repro.experiments.journal import SweepJournal

from tests.sweeputil import tiny_point

REPO_ROOT = Path(__file__).resolve().parents[2]


def sweep_points():
    return [tiny_point(label=f"p{i}", seed=i + 1) for i in range(4)]


@pytest.fixture(scope="module")
def baseline():
    """The undisturbed serial ground truth every recovery must match."""
    assert "REPRO_CHAOS" not in os.environ
    return execute_sweep(sweep_points()).results


class TestWorkerCrashRecovery:
    def test_sigkilled_worker_is_respawned_and_point_retried(
            self, baseline, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "crash:p1")
        outcome = execute_sweep(
            sweep_points(), max_workers=2,
            plan=ExecutionPlan(retries=2, backoff=0.05))
        assert outcome.complete
        assert outcome.stats.crashes >= 1
        assert outcome.results == baseline

    def test_crash_also_costs_innocent_inflight_siblings_nothing(
            self, baseline, monkeypatch):
        # A broken pool dooms every in-flight future; siblings consume a
        # crash attempt but their eventual results are untouched.
        monkeypatch.setenv("REPRO_CHAOS", "crash:p0")
        outcome = execute_sweep(
            sweep_points(), max_workers=4,
            plan=ExecutionPlan(retries=3, backoff=0.05))
        assert outcome.complete
        assert outcome.results == baseline


class TestTimeouts:
    def test_soft_timeout_interrupts_a_hung_point(self, baseline,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "hang:p3")
        outcome = execute_sweep(
            sweep_points(), max_workers=2,
            plan=ExecutionPlan(timeout=1.0, retries=1, backoff=0.05))
        assert outcome.complete
        assert outcome.stats.timeouts == 1
        assert outcome.results == baseline

    def test_hard_deadline_kills_an_alarm_proof_worker(self, baseline,
                                                       monkeypatch):
        # hang_hard blocks SIGALRM, so only the supervisor's pool kill
        # can recover; the innocent sibling survives resubmission.
        monkeypatch.setenv("REPRO_CHAOS", "hang_hard:p0")
        outcome = execute_sweep(
            sweep_points(), max_workers=2,
            plan=ExecutionPlan(timeout=0.5, grace=1.0, retries=1,
                               backoff=0.05))
        assert outcome.complete
        assert outcome.stats.timeouts >= 1
        assert outcome.results == baseline


class TestGracefulDegradation:
    def test_exhausted_point_never_discards_finished_siblings(
            self, baseline, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "oom*9:p0")
        outcome = execute_sweep(
            sweep_points(), max_workers=2,
            plan=ExecutionPlan(retries=1, backoff=0.05))
        assert not outcome.complete
        assert outcome.results[0] is None
        assert outcome.results[1:] == baseline[1:]
        [failure] = outcome.report.failures
        assert failure.label == "p0"
        assert failure.attempts == 2
        assert "MemoryError" in failure.error


_CHILD_SCRIPT = """
import sys
from repro.experiments.executor import ExecutionPlan, execute_sweep
from tests.sweeputil import tiny_point

points = [tiny_point(label=f"p{i}", seed=i + 1) for i in range(4)]
execute_sweep(points, plan=ExecutionPlan(journal=sys.argv[1]))
"""


class TestJournalResume:
    def test_supervisor_killed_mid_sweep_resumes_bit_identical(
            self, baseline, tmp_path):
        """The acceptance criterion: SIGKILL the whole sweep process at
        point p2, then resume from the journal and match the
        uninterrupted serial baseline exactly."""
        journal = tmp_path / "sweep.sqlite"
        env = dict(os.environ,
                   PYTHONPATH=f"src{os.pathsep}.",
                   REPRO_CHAOS="crash:p2")
        child = subprocess.run(
            [sys.executable, "-c", _CHILD_SCRIPT, str(journal)],
            cwd=REPO_ROOT, env=env, capture_output=True, timeout=120)
        # chaos 'crash' SIGKILLs the (serial) executing process itself.
        assert child.returncode == -signal.SIGKILL, child.stderr.decode()
        with SweepJournal(journal) as j:
            assert j.counts() == {"done": 2}  # p0, p1 committed pre-kill

        outcome = execute_sweep(
            sweep_points(),
            plan=ExecutionPlan(journal=journal, resume=True))
        assert outcome.complete
        assert outcome.stats.cached == 2
        assert outcome.stats.executed == 2
        assert outcome.results == baseline

    def test_finished_journal_replays_without_executing(self, baseline,
                                                        tmp_path):
        journal = tmp_path / "sweep.sqlite"
        execute_sweep(sweep_points(), plan=ExecutionPlan(journal=journal))
        outcome = execute_sweep(
            sweep_points(),
            plan=ExecutionPlan(journal=journal, resume=True))
        assert outcome.stats.executed == 0
        assert outcome.stats.cached == 4
        assert outcome.results == baseline
