"""Integration: trace archive round-trip through the simulator.

Generating a synthetic trace, archiving it to disk, and replaying the file
must produce the *identical* simulation as replaying the in-memory records
(this is the reproducibility contract behind shipping traces with the
repository).
"""

from repro.config import NetworkConfig, SimulationConfig
from repro.network.simulator import Simulator
from repro.traffic.splash import generate_splash_trace
from repro.traffic.trace import (
    TraceReplaySource,
    read_trace_file,
    write_trace_file,
)


def run_with(records, network):
    config = SimulationConfig(network=network, power=None,
                              sample_interval=500)
    sim = Simulator(config, TraceReplaySource(network.num_nodes, records))
    sim.run_until_drained(100_000)
    return sim.summary()


def test_file_roundtrip_is_simulation_identical(tmp_path):
    network = NetworkConfig(mesh_width=2, mesh_height=2,
                            nodes_per_cluster=4, buffer_depth=8, num_vcs=2)
    records = generate_splash_trace("lu", network.num_nodes, 4000, seed=9,
                                    intensity=0.3)
    assert records, "trace generation produced no records"

    path = tmp_path / "lu.trace"
    write_trace_file(records, path)
    reloaded = read_trace_file(path)
    assert reloaded == records

    direct = run_with(records, network)
    replayed = run_with(reloaded, network)
    assert direct == replayed


def test_trace_can_be_replayed_through_power_aware_network(tmp_path):
    from repro.config import PolicyConfig, PowerAwareConfig, TransitionConfig

    network = NetworkConfig(mesh_width=2, mesh_height=2,
                            nodes_per_cluster=4, buffer_depth=8, num_vcs=2)
    records = generate_splash_trace("radix", network.num_nodes, 4000,
                                    seed=4, intensity=0.3)
    power = PowerAwareConfig(
        policy=PolicyConfig(window_cycles=100),
        transitions=TransitionConfig(
            bit_rate_transition_cycles=2, voltage_transition_cycles=10,
            optical_transition_cycles=300, laser_epoch_cycles=600,
        ),
    )
    config = SimulationConfig(network=network, power=power,
                              sample_interval=500)
    sim = Simulator(config, TraceReplaySource(network.num_nodes, records))
    assert sim.run_until_drained(100_000)
    assert sim.stats.packets_delivered == len(records)
    assert sim.relative_power() < 1.0
