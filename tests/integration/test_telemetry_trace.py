"""Integration: a JSONL trace is self-sufficient for the Fig. 6(d) plot.

Runs the scaled hot-spot workload with telemetry streaming to disk, then
rebuilds the power-over-time series from the trace file *alone* and checks
it is exactly the series the simulator reported in-process.
"""

from repro.config import (
    NetworkConfig,
    PolicyConfig,
    PowerAwareConfig,
    TransitionConfig,
)
from repro.experiments.configs import ExperimentScale, baseline_link_power
from repro.experiments.fig6 import (
    hotspot_factory,
    power_over_time_from_trace,
    relative_power_from_trace,
)
from repro.experiments.runner import run_simulation
from repro.metrics.energy import normalise_power_series
from repro.telemetry.config import KIND_POWER, TelemetryConfig

NETWORK = NetworkConfig(mesh_width=2, mesh_height=2, nodes_per_cluster=2,
                        buffer_depth=8, num_vcs=2)

SCALE = ExperimentScale(
    name="trace-test", network=NETWORK, run_cycles=2000,
    slow_constant_divisor=1, warmup_cycles=0, sample_interval=100,
    policy_window_cycles=60,
)

POWER = PowerAwareConfig(
    policy=PolicyConfig(window_cycles=60, history_windows=1),
    transitions=TransitionConfig(
        bit_rate_transition_cycles=2, voltage_transition_cycles=10,
        optical_transition_cycles=300, laser_epoch_cycles=400,
    ),
)


class TestFig6FromTrace:
    def test_power_series_rebuilt_exactly_from_trace(self, tmp_path):
        trace = tmp_path / "fig6.jsonl"
        telemetry = TelemetryConfig(kinds=(KIND_POWER,), path=str(trace))
        result = run_simulation(
            SCALE, POWER, hotspot_factory(SCALE),
            label="fig6d/traced", seed=3, telemetry=telemetry,
        )
        assert trace.exists()
        rebuilt = power_over_time_from_trace(str(trace))
        assert rebuilt == [tuple(p) for p in result.power_series]
        assert len(rebuilt) > 10

        relative = relative_power_from_trace(str(trace), SCALE, POWER)
        expected = normalise_power_series(
            list(result.power_series), baseline_link_power(SCALE, POWER)
        )
        assert relative == expected
        # The power-aware run must actually modulate power for the plot
        # to be interesting.
        fractions = [fraction for _, fraction in relative]
        assert min(fractions) < max(fractions) <= 1.0

    def test_traced_run_matches_untraced_run(self, tmp_path):
        telemetry = TelemetryConfig(
            path=str(tmp_path / "all.jsonl"),  # every kind enabled
        )
        traced = run_simulation(
            SCALE, POWER, hotspot_factory(SCALE),
            label="fig6d/x", seed=3, telemetry=telemetry,
        )
        plain = run_simulation(
            SCALE, POWER, hotspot_factory(SCALE),
            label="fig6d/x", seed=3,
        )
        assert traced == plain
