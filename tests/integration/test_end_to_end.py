"""Integration tests: whole-system behaviour across modules.

These run real (small) simulations and assert system-level invariants:
conservation of packets, latency ordering between configurations, power
accounting consistency, and the qualitative behaviours the paper's design
rests on.
"""

import pytest

from repro.config import (
    MODULATOR,
    NetworkConfig,
    PolicyConfig,
    PowerAwareConfig,
    SimulationConfig,
    TransitionConfig,
    VCSEL,
)
from repro.network.simulator import Simulator
from repro.traffic.trace import TraceRecord, TraceReplaySource
from repro.traffic.uniform import UniformRandomTraffic


def small_config(power=None, **net_overrides) -> SimulationConfig:
    defaults = {"mesh_width": 3, "mesh_height": 3, "nodes_per_cluster": 4}
    defaults.update(net_overrides)
    return SimulationConfig(network=NetworkConfig(**defaults), power=power,
                            sample_interval=200)


def fast_power(technology=VCSEL, **overrides) -> PowerAwareConfig:
    return PowerAwareConfig(
        technology=technology,
        policy=PolicyConfig(window_cycles=150, history_windows=2),
        transitions=TransitionConfig(
            bit_rate_transition_cycles=3, voltage_transition_cycles=15,
            optical_transition_cycles=600, laser_epoch_cycles=1200,
        ),
        **overrides,
    )


class TestConservation:
    def test_all_packets_delivered_exactly_once(self):
        config = small_config()
        traffic = UniformRandomTraffic(config.network.num_nodes, 0.4, seed=5)
        sim = Simulator(config, traffic)
        sim.run(4000)
        stats = sim.stats
        assert stats.packets_delivered + stats.in_flight == \
            stats.packets_created
        # Flit conservation: every delivered packet contributed its size.
        assert stats.flits_delivered == 5 * stats.packets_delivered

    def test_drained_network_is_empty(self):
        config = small_config()
        nodes = config.network.num_nodes
        records = [TraceRecord(t, t % nodes, (t + 3) % nodes, 4)
                   for t in range(0, 400, 7)
                   if t % nodes != (t + 3) % nodes]
        sim = Simulator(config, TraceReplaySource(nodes, records))
        assert sim.run_until_drained(20_000)
        assert sim.stats.packets_delivered == len(records)
        assert sim.network.total_pending_flits == 0
        occupancy = sum(ip.occupancy for r in sim.network.routers
                        for ip in r.inputs)
        assert occupancy == 0

    def test_power_aware_delivers_everything_too(self):
        config = small_config(power=fast_power())
        traffic = UniformRandomTraffic(config.network.num_nodes, 0.3, seed=5)
        sim = Simulator(config, traffic)
        sim.run(6000)
        stats = sim.stats
        assert stats.packets_delivered + stats.in_flight == \
            stats.packets_created
        assert stats.packets_delivered > 0.9 * stats.packets_created


class TestLatencyOrdering:
    def test_power_aware_latency_at_least_baseline(self):
        baseline = small_config()
        aware = small_config(power=fast_power())
        results = {}
        for name, config in (("base", baseline), ("aware", aware)):
            traffic = UniformRandomTraffic(config.network.num_nodes, 0.2,
                                           seed=9)
            sim = Simulator(config, traffic)
            sim.run(6000)
            results[name] = sim.stats.mean_latency
        assert results["aware"] >= results["base"]
        # ... but bounded: the policy must not melt down at light load.
        assert results["aware"] < 3.0 * results["base"]

    def test_static_slow_network_is_slowest(self):
        fast = small_config()
        slow = small_config(power=PowerAwareConfig(
            min_bit_rate=5e9, max_bit_rate=5e9, num_levels=1))
        latencies = {}
        for name, config in (("fast", fast), ("slow", slow)):
            traffic = UniformRandomTraffic(config.network.num_nodes, 0.2,
                                           seed=9)
            sim = Simulator(config, traffic)
            sim.run(5000)
            latencies[name] = sim.stats.mean_latency
        assert latencies["slow"] > latencies["fast"]


class TestPowerBehaviour:
    def test_idle_network_reaches_floor_power(self):
        config = small_config(power=fast_power())
        traffic = UniformRandomTraffic(config.network.num_nodes, 0.0, seed=1)
        sim = Simulator(config, traffic)
        sim.run(8000)
        floor = sim.power.power_model.power(5e9) / \
            sim.power.power_model.max_power
        assert sim.relative_power() == pytest.approx(floor, abs=0.05)

    def test_power_rises_with_load(self):
        powers = []
        for rate in (0.05, 0.6):
            config = small_config(power=fast_power())
            traffic = UniformRandomTraffic(config.network.num_nodes, rate,
                                           seed=4)
            sim = Simulator(config, traffic)
            sim.run(8000)
            powers.append(sim.relative_power())
        assert powers[0] < powers[1]

    def test_vcsel_saves_at_least_as_much_as_modulator(self):
        results = {}
        for technology in (VCSEL, MODULATOR):
            config = small_config(power=fast_power(technology=technology))
            traffic = UniformRandomTraffic(config.network.num_nodes, 0.25,
                                           seed=4)
            sim = Simulator(config, traffic)
            sim.run(8000)
            results[technology] = sim.relative_power()
        assert results[VCSEL] <= results[MODULATOR] + 0.005

    def test_energy_bounded_by_baseline(self):
        config = small_config(power=fast_power())
        traffic = UniformRandomTraffic(config.network.num_nodes, 0.5, seed=2)
        sim = Simulator(config, traffic)
        sim.run(5000)
        sim.finalize()
        total = sim.power.total_energy_watt_cycles()
        baseline_energy = sim.power.baseline_power() * sim.cycle
        floor_energy = baseline_energy * (
            sim.power.power_model.power(5e9) / sim.power.power_model.max_power
        )
        assert floor_energy <= total <= baseline_energy


class TestOpticalSystem:
    def test_three_level_system_runs_and_tracks(self):
        config = small_config(
            power=fast_power(technology=MODULATOR, optical_levels=3))
        traffic = UniformRandomTraffic(config.network.num_nodes, 0.3, seed=3)
        sim = Simulator(config, traffic)
        sim.run(8000)
        stats = sim.stats
        assert stats.packets_delivered > 0.9 * stats.packets_created
        # Idle links' controllers should have stepped optical bands down.
        decreases = sum(pal.optical.decreases for pal in sim.power.links)
        assert decreases > 0
