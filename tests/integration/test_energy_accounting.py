"""Integration tests: the analytic energy integral versus dense sampling.

The power manager accounts energy in O(state changes); these tests verify
it against a brute-force per-cycle sum of instantaneous power, under real
policy activity and under the on/off bursty workload, plus arbiter and
scale variants.
"""

import pytest

from repro.config import (
    NetworkConfig,
    PolicyConfig,
    PowerAwareConfig,
    SimulationConfig,
    TransitionConfig,
)
from repro.network.simulator import Simulator
from repro.traffic.onoff import OnOffTraffic
from repro.traffic.uniform import UniformRandomTraffic


def make_sim(rate=0.3, arbiter="round_robin", bursty=False, seed=3):
    network = NetworkConfig(mesh_width=2, mesh_height=2, nodes_per_cluster=2,
                            buffer_depth=8, num_vcs=2, arbiter=arbiter)
    power = PowerAwareConfig(
        policy=PolicyConfig(window_cycles=100, history_windows=2),
        transitions=TransitionConfig(
            bit_rate_transition_cycles=2, voltage_transition_cycles=10,
            optical_transition_cycles=300, laser_epoch_cycles=600,
        ),
    )
    config = SimulationConfig(network=network, power=power,
                              sample_interval=100)
    if bursty:
        traffic = OnOffTraffic(network.num_nodes, rate, duty_cycle=0.3,
                               mean_burst_cycles=200, seed=seed)
    else:
        traffic = UniformRandomTraffic(network.num_nodes, rate, seed=seed)
    return Simulator(config, traffic)


def dense_energy(sim: Simulator, cycles: int) -> float:
    """Brute-force watt-cycle integral: sum instantaneous power per cycle."""
    total = 0.0
    for _ in range(cycles):
        total += sum(pal.current_power() for pal in sim.power.links)
        sim.step()
    return total


@pytest.mark.parametrize("bursty", [False, True])
def test_analytic_energy_matches_dense_sampling(bursty):
    cycles = 3000
    sim = make_sim(bursty=bursty)
    sampled = dense_energy(sim, cycles)
    sim.finalize()
    analytic = sim.power.total_energy_watt_cycles()
    # Per-cycle sampling quantises transitions to cycle boundaries; the
    # analytic integral is exact, so allow a sub-percent gap.
    assert analytic == pytest.approx(sampled, rel=0.01)


def test_energy_identical_across_arbiters_at_idle():
    # With no traffic the arbiter never fires; energy must be identical.
    results = []
    for arbiter in ("round_robin", "matrix"):
        sim = make_sim(rate=0.0, arbiter=arbiter)
        sim.run(2000)
        sim.finalize()
        results.append(sim.power.total_energy_watt_cycles())
    assert results[0] == pytest.approx(results[1])


def test_matrix_arbiter_network_behaves():
    sim = make_sim(rate=0.5, arbiter="matrix")
    sim.run(4000)
    stats = sim.stats
    assert stats.packets_delivered > 0.9 * stats.packets_created
    assert sim.relative_power() < 1.0


def test_bursty_traffic_saves_more_than_its_average_suggests():
    """ON/OFF idle periods let links descend: power below steady uniform."""
    uniform = make_sim(rate=0.4, bursty=False)
    uniform.run(8000)
    bursty = make_sim(rate=0.4, bursty=True)
    bursty.run(8000)
    # Same long-run average load; the bursty workload leaves more links
    # idle at any instant (traffic concentrated on the ON nodes).
    assert bursty.relative_power() <= uniform.relative_power() + 0.05
