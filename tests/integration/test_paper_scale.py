"""Integration test at the paper's full system size.

One short run of the actual 8x8x8 (512-node, 1248-link) configuration —
slow relative to the rest of the suite (~15 s) but it guards against
anything that only breaks at scale (port counts, edge routers, the full
link population under the power manager).
"""

import pytest

from repro.config import SimulationConfig
from repro.network.simulator import Simulator
from repro.network.validation import validate_topology
from repro.traffic.uniform import UniformRandomTraffic


@pytest.fixture(scope="module")
def paper_sim():
    config = SimulationConfig(sample_interval=1000)   # all paper defaults
    traffic = UniformRandomTraffic(config.network.num_nodes, 1.25, seed=11)
    sim = Simulator(config, traffic)
    sim.run(6000)
    return sim


class TestPaperScale:
    def test_dimensions(self, paper_sim):
        network = paper_sim.network
        assert len(network.routers) == 64
        assert len(network.nodes) == 512
        assert len(network.links) == 512 + 512 + 224

    def test_topology_validates(self, paper_sim):
        assert validate_topology(paper_sim.network) == []

    def test_traffic_flows(self, paper_sim):
        stats = paper_sim.stats
        assert stats.packets_created > 6000  # ~1.25/cycle
        assert stats.packets_delivered > 0.9 * stats.packets_created

    def test_power_descends_from_full(self, paper_sim):
        assert paper_sim.relative_power() < 0.9

    def test_every_link_has_a_controller(self, paper_sim):
        assert len(paper_sim.power.links) == 1248
        observed = {pal.windows_observed for pal in paper_sim.power.links}
        # All links share window boundaries: identical observation counts.
        assert len(observed) == 1

    def test_latency_reasonable_at_light_load(self, paper_sim):
        # Zero-load is ~30 cycles for 5-flit packets on 8x8; light load
        # with the policy active should stay within a few multiples.
        assert paper_sim.stats.mean_latency < 150.0
