"""Integration tests for the saturation-throughput measurement.

These exercise the Fig. 5(g) claims with real (short) simulations: the
power-aware 5-10 Gb/s network keeps most of the baseline's throughput,
while a statically slow network loses a large share of it.
"""

import pytest

from repro.experiments.configs import (
    get_scale,
    power_config,
    static_rate_config,
    uniform_saturation_packets,
)
from repro.experiments.throughput import latency_probe, measure_throughput


@pytest.fixture(scope="module")
def scale():
    return get_scale("smoke")


@pytest.fixture(scope="module")
def throughputs(scale):
    cycles = 5000
    return {
        "baseline": measure_throughput(scale, None, cycles=cycles,
                                       max_iterations=5),
        "pa_5_10": measure_throughput(scale, power_config(scale),
                                      cycles=cycles, max_iterations=5),
        "static_3.3": measure_throughput(
            scale, static_rate_config(scale, 3.3e9), cycles=cycles,
            max_iterations=5),
    }


class TestThroughput:
    def test_baseline_reaches_most_of_theoretical(self, scale, throughputs):
        ceiling = uniform_saturation_packets(scale.network)
        assert throughputs["baseline"] > 0.5 * ceiling

    def test_power_aware_keeps_most_throughput(self, throughputs):
        assert throughputs["pa_5_10"] > 0.6 * throughputs["baseline"]

    def test_static_slow_network_loses_throughput(self, throughputs):
        # A 3.3 Gb/s network has ~1/3 the link bandwidth; its saturation
        # point must sit well below the baseline's.
        assert throughputs["static_3.3"] < 0.7 * throughputs["baseline"]

    def test_ordering(self, throughputs):
        assert throughputs["static_3.3"] <= throughputs["pa_5_10"] + 0.2
        assert throughputs["pa_5_10"] <= throughputs["baseline"] + 0.2


class TestProbe:
    def test_probe_latency_increases_with_rate(self, scale):
        probe = latency_probe(scale, None, cycles=4000)
        light = probe(0.2)
        heavy = probe(2.2)
        assert light < heavy
