"""Property tests for the reliability subsystem.

* ``ber_from_q`` / ``q_from_ber`` round-trip across the whole valid range;
* fault injection is deterministic: the same seed reproduces the identical
  corruption schedule, and a faulted sweep is point-for-point identical
  whether run serially or across a process pool;
* the observed flit-corruption rate of a fixed-seed run matches the
  analytic per-flit error probability within binomial tolerance.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.configs import get_scale, reference_rates
from repro.experiments.fig5 import uniform_factory
from repro.experiments.runner import SweepPoint, run_simulation, run_sweep
from repro.photonics.ber import ReceiverNoiseModel, ber_from_q, q_from_ber
from repro.photonics.constants import MAX_BIT_RATE
from repro.reliability import FaultConfig

SCALE = get_scale("smoke")


class TestQBerRoundTrip:
    @given(st.floats(min_value=0.01, max_value=30.0,
                     allow_nan=False, allow_infinity=False))
    @settings(max_examples=200)
    def test_q_to_ber_to_q(self, q):
        ber = ber_from_q(q)
        assert 0.0 < ber < 0.5
        assert q_from_ber(ber) == pytest.approx(q, rel=1e-9, abs=1e-9)

    @given(st.floats(min_value=-200.0, max_value=-0.31,
                     allow_nan=False, allow_infinity=False))
    @settings(max_examples=200)
    def test_ber_to_q_to_ber(self, log10_ber):
        ber = 10.0 ** log10_ber
        q = q_from_ber(ber)
        assert ber_from_q(q) == pytest.approx(ber, rel=1e-6)

    @given(st.floats(min_value=0.01, max_value=29.0, allow_nan=False),
           st.floats(min_value=0.01, max_value=1.0, allow_nan=False))
    @settings(max_examples=100)
    def test_ber_monotone_decreasing_in_q(self, q, dq):
        assert ber_from_q(q + dq) < ber_from_q(q)


def _faulted_points(seeds, *, jobs_label):
    rate = reference_rates(SCALE.network)["light"]
    factory = uniform_factory(rate)
    return [
        SweepPoint(
            label=f"{jobs_label}/{seed}",
            scale=SCALE,
            power=None,
            traffic_factory=factory,
            # Past the smoke scale's warmup, so latency statistics are
            # real numbers (NaN breaks the equality the test asserts).
            seed=seed,
            cycles=2500,
            faults=FaultConfig(seed=seed, received_power_w=13e-6),
        )
        for seed in seeds
    ]


class TestDeterminism:
    def test_same_seed_reproduces_identical_run(self):
        rate = reference_rates(SCALE.network)["light"]
        results = [
            run_simulation(
                SCALE, None, uniform_factory(rate), label="det", seed=9,
                cycles=1500,
                faults=FaultConfig(seed=9, received_power_w=13e-6),
            )
            for _ in range(2)
        ]
        assert results[0] == results[1]
        assert results[0].reliability.flits_corrupted > 0

    def test_different_fault_seed_changes_schedule(self):
        rate = reference_rates(SCALE.network)["light"]
        results = [
            run_simulation(
                SCALE, None, uniform_factory(rate), label="det", seed=9,
                cycles=1500,
                faults=FaultConfig(seed=fault_seed, received_power_w=12e-6),
            )
            for fault_seed in (1, 2)
        ]
        assert results[0].reliability != results[1].reliability

    def test_serial_and_parallel_sweeps_identical(self):
        points = _faulted_points([3, 4], jobs_label="sweep")
        serial = run_sweep(points, max_workers=1)
        parallel = run_sweep(points, max_workers=2)
        assert serial == parallel
        assert any(r.reliability.flits_corrupted > 0 for r in serial)


class TestStatisticalAgreement:
    def test_observed_corruption_rate_matches_analytic_ber(self):
        """Fixed-seed corruption rate vs. the channel's analytic p_flit.

        The baseline run pins every link at the maximum rate with full
        light, so every corruption trial uses one constant per-flit error
        probability — the observed rate is a binomial estimate of it.
        """
        rx_w = 13e-6
        rate = reference_rates(SCALE.network)["light"]
        result = run_simulation(
            SCALE, None, uniform_factory(rate), label="stat", seed=1,
            cycles=6000, faults=FaultConfig(seed=1, received_power_w=rx_w),
        )
        report = result.reliability

        # The analytic expectation, straight from the receiver model the
        # channel wraps (the sampling machinery is what's under test).
        ber = ReceiverNoiseModel().ber(rx_w, MAX_BIT_RATE)
        p_flit = 1.0 - (1.0 - ber) ** 16

        trials = report.flits_carried + report.flits_corrupted
        assert trials > 10_000
        sigma = math.sqrt(p_flit * (1.0 - p_flit) / trials)
        observed = report.observed_flit_error_rate
        assert abs(observed - p_flit) < 5.0 * sigma
        assert observed > 0.0
