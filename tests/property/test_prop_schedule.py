"""Property test: the delivery schedule never double-delivers a link.

Random interleavings of the operations the deliver phase and the
out-of-band drain paths actually perform — arm, partial drain + rearm,
drain-elsewhere + discard, immediate re-add at the same or a later due —
must never surface one link twice in a single ``pop_due`` (each
surfacing drains the link's due arrivals, so a duplicate would
double-pop), and the armed-entry protocol must keep at most one *live*
bucket entry per link however the operations interleave.
"""

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.schedule import DeliverySchedule
from repro.network.links import MESH, Link

NUM_LINKS = 4
HORIZON = 12


def make_link(link_id: int) -> Link:
    link = Link(link_id, MESH)
    link._in_flight = deque()
    return link


#: One scripted op: (cycle, link index, kind, arrival offset in cycles).
#: kind 0 = push an arrival (add); 1 = drain elsewhere + discard; 2 =
#: drain elsewhere, discard, then re-add with a fresh arrival.
OPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=HORIZON - 2),
        st.integers(min_value=0, max_value=NUM_LINKS - 1),
        st.integers(min_value=0, max_value=2),
        st.floats(min_value=0.1, max_value=3.0),
    ),
    min_size=1, max_size=30,
)


def live_entry_dues(schedule: DeliverySchedule) -> dict[int, set[int]]:
    dues: dict[int, set[int]] = {}
    for due, bucket in schedule._buckets.items():
        for link_id, _ in bucket:
            if schedule._armed.get(link_id) == due:
                dues.setdefault(link_id, set()).add(due)
    return dues


class TestNoDoubleDelivery:
    @settings(max_examples=60, deadline=None)
    @given(ops=OPS)
    def test_each_cycle_delivers_a_link_at_most_once(self, ops):
        schedule = DeliverySchedule()
        links = [make_link(i) for i in range(NUM_LINKS)]
        by_cycle: dict[int, list] = {}
        for cycle, index, kind, offset in ops:
            by_cycle.setdefault(cycle, []).append((index, kind, offset))

        for cycle in range(HORIZON):
            for index, kind, offset in by_cycle.get(cycle, []):
                link = links[index]
                if kind == 0:
                    link._in_flight.append((cycle + offset, object()))
                    if len(link._in_flight) == 1:
                        schedule.add(link)
                else:
                    link._in_flight.clear()
                    schedule.discard(link)
                    if kind == 2:
                        link._in_flight.append((cycle + offset, object()))
                        schedule.add(link)

            # Every live (armed-matching) entry of a link names the same
            # due cycle — duplicate *identical* tuples within one bucket
            # are permitted (a rearm into a bucket holding a stale twin)
            # and consumed once by pop_due's dedupe; live entries at two
            # different dues would deliver the link in two cycles off one
            # arming and are never allowed.
            for link_id, dues in live_entry_dues(schedule).items():
                assert len(dues) == 1, (link_id, dues)

            popped = schedule.pop_due(cycle)
            seen = [link.link_id for link in popped]
            assert len(seen) == len(set(seen))
            for link in popped:
                # A surfaced link really has a due arrival; drain it and
                # hand the link back, as the deliver phase does.
                assert link._in_flight
                assert link._in_flight[0][0] <= cycle
                while link._in_flight and link._in_flight[0][0] <= cycle:
                    link._in_flight.popleft()
                if link._in_flight:
                    schedule.rearm(link)
                else:
                    schedule.retire(link)
