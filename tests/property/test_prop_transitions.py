"""Property tests: the transition engine under random request schedules.

Drives the state machine with arbitrary (direction, gap) request sequences
and asserts the invariants the energy accounting and the simulator rely
on: levels stay on the ladder, the link's configured service time always
corresponds to the engine's operating level, billing never drops below
both endpoint levels mid-transition, and disabled windows appear only
around frequency hops.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TransitionConfig
from repro.core.levels import BitRateLadder
from repro.core.transitions import LinkTransitionEngine, TransitionState
from repro.network.links import MESH, Link

LADDER = BitRateLadder.paper_default()


def service_time(level: int) -> float:
    return LADDER.max_rate / LADDER.rate(level)


@st.composite
def schedules(draw):
    tv = draw(st.integers(min_value=0, max_value=40))
    tbr = draw(st.integers(min_value=0, max_value=10))
    initial = draw(st.integers(min_value=0, max_value=LADDER.top_level))
    events = draw(st.lists(
        st.tuples(st.sampled_from([-1, 1]),
                  st.integers(min_value=1, max_value=120)),
        min_size=0, max_size=30,
    ))
    return tv, tbr, initial, events


class TestEngineProperties:
    @given(schedules())
    @settings(max_examples=200)
    def test_level_and_service_time_invariants(self, schedule):
        tv, tbr, initial, events = schedule
        link = Link(0, MESH)
        config = TransitionConfig(bit_rate_transition_cycles=tbr,
                                  voltage_transition_cycles=tv)
        engine = LinkTransitionEngine(link, LADDER, config, service_time,
                                      initial)
        now = 0.0
        for direction, gap in events:
            now += gap
            engine.advance(now)
            engine.request_step(direction, now)
            # Invariants after every action:
            assert 0 <= engine.level <= LADDER.top_level
            assert 0 <= engine.target <= LADDER.top_level
            assert abs(engine.target - engine.level) <= 1
            assert link.service_time == service_time(
                LADDER.level_for_rate(engine.operating_rate)
            )
            assert engine.billing_level == max(engine.level, engine.target)
        # Let everything settle; the engine must reach STABLE.
        now += tv + tbr + 1
        engine.advance(now)
        assert engine.state is TransitionState.STABLE
        assert engine.level == engine.target

    @given(schedules())
    @settings(max_examples=200)
    def test_accepted_steps_match_counters(self, schedule):
        tv, tbr, initial, events = schedule
        link = Link(0, MESH)
        config = TransitionConfig(bit_rate_transition_cycles=tbr,
                                  voltage_transition_cycles=tv)
        engine = LinkTransitionEngine(link, LADDER, config, service_time,
                                      initial)
        now = 0.0
        accepted_up = accepted_down = 0
        for direction, gap in events:
            now += gap
            engine.advance(now)
            if engine.request_step(direction, now):
                if direction > 0:
                    accepted_up += 1
                else:
                    accepted_down += 1
        assert engine.steps_up == accepted_up
        assert engine.steps_down == accepted_down
        # Net level change must match accepted steps once settled.
        engine.advance(now + tv + tbr + 1)
        assert engine.level == initial + accepted_up - accepted_down

    @given(schedules())
    @settings(max_examples=100)
    def test_disabled_time_bounded_by_transitions(self, schedule):
        tv, tbr, initial, events = schedule
        link = Link(0, MESH)
        config = TransitionConfig(bit_rate_transition_cycles=tbr,
                                  voltage_transition_cycles=tv)
        engine = LinkTransitionEngine(link, LADDER, config, service_time,
                                      initial)
        now = 0.0
        for direction, gap in events:
            now += gap
            engine.advance(now)
            engine.request_step(direction, now)
        engine.advance(now + tv + tbr + 1)
        total_steps = engine.steps_up + engine.steps_down
        assert engine.disabled_cycles == total_steps * tbr
