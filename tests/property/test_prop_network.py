"""Property tests: whole-network invariants under random small workloads.

Each example builds a random tiny network and random trace, runs it to
drain, and checks the global invariants that must hold for *any* input:
every packet is delivered exactly once, in full, with its flits in order,
and the network ends empty.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    NetworkConfig,
    PolicyConfig,
    PowerAwareConfig,
    SimulationConfig,
    TransitionConfig,
)
from repro.network.simulator import Simulator
from repro.traffic.trace import TraceRecord, TraceReplaySource


@st.composite
def network_and_trace(draw):
    width = draw(st.integers(min_value=1, max_value=3))
    height = draw(st.integers(min_value=1, max_value=3))
    locals_ = draw(st.integers(min_value=1, max_value=3))
    num_nodes = width * height * locals_
    if num_nodes < 2:
        locals_ = 2
        num_nodes = width * height * locals_
    num_vcs = draw(st.sampled_from([1, 2, 4]))
    network = NetworkConfig(
        mesh_width=width, mesh_height=height, nodes_per_cluster=locals_,
        buffer_depth=8, num_vcs=num_vcs,
    )
    n_packets = draw(st.integers(min_value=0, max_value=25))
    cycles = sorted(draw(st.lists(
        st.integers(min_value=0, max_value=300),
        min_size=n_packets, max_size=n_packets)))
    records = []
    for cycle in cycles:
        src = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        dst = draw(st.integers(min_value=0, max_value=num_nodes - 2))
        if dst >= src:
            dst += 1
        size = draw(st.integers(min_value=1, max_value=12))
        records.append(TraceRecord(cycle, src, dst, size))
    power_aware = draw(st.booleans())
    return network, records, power_aware


def build_sim(network, records, power_aware):
    power = None
    if power_aware:
        power = PowerAwareConfig(
            policy=PolicyConfig(window_cycles=60, history_windows=2),
            transitions=TransitionConfig(
                bit_rate_transition_cycles=2, voltage_transition_cycles=6,
                optical_transition_cycles=200, laser_epoch_cycles=400,
            ),
        )
    config = SimulationConfig(network=network, power=power,
                              sample_interval=100)
    traffic = TraceReplaySource(network.num_nodes, records)
    return Simulator(config, traffic)


class TestDeliveryInvariants:
    @given(network_and_trace())
    @settings(max_examples=60, deadline=None)
    def test_every_packet_delivered_and_network_drains(self, example):
        network, records, power_aware = example
        sim = build_sim(network, records, power_aware)
        drained = sim.run_until_drained(60_000, poll_interval=32)
        assert drained
        assert sim.stats.packets_delivered == len(records)
        assert sim.stats.in_flight == 0
        assert sim.network.total_pending_flits == 0
        buffered = sum(ip.occupancy for r in sim.network.routers
                       for ip in r.inputs)
        assert buffered == 0

    @given(network_and_trace())
    @settings(max_examples=40, deadline=None)
    def test_latencies_at_least_zero_load_bound(self, example):
        network, records, power_aware = example
        sim = build_sim(network, records, power_aware)
        sim.run_until_drained(60_000, poll_interval=32)
        # Any packet needs at least: injection link + ejection link
        # (2 * (service + propagation)) plus one router pipeline.
        minimum = 2 * (1.0 + network.link_propagation_cycles) \
            + network.head_pipeline_delay
        for latency in sim.stats.latencies:
            assert latency >= minimum - 1e-9

    @given(network_and_trace())
    @settings(max_examples=30, deadline=None)
    def test_power_accounting_bounded(self, example):
        network, records, power_aware = example
        sim = build_sim(network, records, power_aware)
        sim.run_until_drained(60_000, poll_interval=32)
        relative = sim.relative_power()
        if power_aware:
            assert 0.15 < relative <= 1.0 + 1e-9
        else:
            assert relative == 1.0
