"""Property tests: buffers and credits under random operation sequences."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.buffers import CreditCounter, InputBuffer
from repro.network.packet import Packet


def flit_stream(n: int):
    packet = Packet(1, src=0, dst=1, size=max(1, n), create_time=0)
    return packet.make_flits()


@st.composite
def push_pop_programs(draw):
    """A random feasible sequence of push/pop against a bounded buffer."""
    capacity = draw(st.integers(min_value=1, max_value=8))
    ops = []
    occupancy = 0
    for _ in range(draw(st.integers(min_value=0, max_value=40))):
        can_push = occupancy < capacity
        can_pop = occupancy > 0
        if can_push and (not can_pop or draw(st.booleans())):
            ops.append("push")
            occupancy += 1
        elif can_pop:
            ops.append("pop")
            occupancy -= 1
    return capacity, ops


class TestBufferProperties:
    @given(push_pop_programs())
    @settings(max_examples=200)
    def test_fifo_order_preserved(self, program):
        capacity, ops = program
        buffer = InputBuffer(capacity)
        flits = iter(flit_stream(len(ops) + 1))
        pushed, popped = [], []
        for t, op in enumerate(ops):
            if op == "push":
                flit = next(flits)
                buffer.push(flit, float(t))
                pushed.append(flit)
            else:
                popped.append(buffer.pop(float(t)))
        assert popped == pushed[:len(popped)]

    @given(push_pop_programs())
    @settings(max_examples=200)
    def test_occupancy_never_exceeds_capacity(self, program):
        capacity, ops = program
        buffer = InputBuffer(capacity)
        flits = iter(flit_stream(len(ops) + 1))
        for t, op in enumerate(ops):
            if op == "push":
                buffer.push(next(flits), float(t))
            else:
                buffer.pop(float(t))
            assert 0 <= buffer.occupancy <= capacity
            assert buffer.free_slots == capacity - buffer.occupancy

    @given(push_pop_programs())
    @settings(max_examples=100)
    def test_mean_utilisation_bounded(self, program):
        capacity, ops = program
        buffer = InputBuffer(capacity)
        flits = iter(flit_stream(len(ops) + 1))
        for t, op in enumerate(ops):
            if op == "push":
                buffer.push(next(flits), float(t))
            else:
                buffer.pop(float(t))
        window_end = float(len(ops)) + 1.0
        utilisation = buffer.mean_utilisation(0.0, window_end)
        assert 0.0 <= utilisation <= 1.0


class TestCreditMirror:
    @given(push_pop_programs())
    @settings(max_examples=200)
    def test_credits_mirror_buffer_occupancy(self, program):
        """Drive both ends of the credit protocol and assert agreement.

        The sender consumes a credit per push; the receiver refills one
        per pop.  At every step the credit count must equal the free
        slots — the invariant real hardware must maintain.
        """
        capacity, ops = program
        buffer = InputBuffer(capacity)
        credits = CreditCounter(capacity)
        flits = iter(flit_stream(len(ops) + 1))
        for t, op in enumerate(ops):
            if op == "push":
                assert credits.can_send()
                credits.consume()
                buffer.push(next(flits), float(t))
            else:
                buffer.pop(float(t))
                credits.refill()
            assert credits.available == buffer.free_slots
