"""Property tests: reset-in-place is bit-identical to fresh construction.

The warm-worker machinery's hard contract
(:meth:`~repro.network.simulator.Simulator.reset`): running N sweep
points through ONE reused simulator — resetting between points — must
produce exactly what N freshly constructed simulators produce.  Summary,
power series, level histogram, transition totals and the full telemetry
event stream, over every topology, with and without faults, on both
stepping backends.
"""

import json
import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    NetworkConfig,
    PolicyConfig,
    PowerAwareConfig,
    SimulationConfig,
    TransitionConfig,
)
from repro.network.links import MESH
from repro.network.simulator import Simulator
from repro.network.stats import StatsCollector
from repro.network.topology import NetworkFabric
from repro.reliability import FaultConfig, LinkFailure
from repro.telemetry.config import TelemetryConfig
from repro.traffic.uniform import UniformRandomTraffic

TOPOLOGIES = ("mesh", "torus", "cmesh", "line")


def network_for(topology: str) -> NetworkConfig:
    # cmesh concentration (2) must divide the grid dimensions.
    size = 4 if topology == "cmesh" else 3
    return NetworkConfig(mesh_width=size, mesh_height=size,
                         nodes_per_cluster=2, buffer_depth=8, num_vcs=2,
                         topology=topology)


def make_power(window: int = 60) -> PowerAwareConfig:
    return PowerAwareConfig(
        policy=PolicyConfig(window_cycles=window, history_windows=1),
        transitions=TransitionConfig(
            bit_rate_transition_cycles=2, voltage_transition_cycles=10,
            optical_transition_cycles=300, laser_epoch_cycles=400,
        ),
    )


def make_config(topology: str, seed: int, *, power=None,
                faults: FaultConfig | None = None,
                trace_path: str | None = None,
                backend: str = "python") -> SimulationConfig:
    telemetry = None
    if trace_path is not None:
        telemetry = TelemetryConfig(path=trace_path)
    return SimulationConfig(
        network=network_for(topology),
        power=power,
        seed=seed,
        sample_interval=50,
        stall_limit_cycles=50_000,
        faults=faults,
        telemetry=telemetry,
        backend=backend,
    )


def collect(sim: Simulator, cycles: int = 500):
    sim.run(cycles)
    results = (
        sim.summary(),
        tuple(sim.power.power_series) if sim.power else (),
        tuple(sim.power.level_histogram()) if sim.power else (),
        sim.power.transition_totals() if sim.power else {},
    )
    if sim.telemetry is not None:
        sim.telemetry.close()
    return results


def first_mesh_link_id(topology: str) -> int:
    fabric = NetworkFabric(network_for(topology), StatsCollector())
    return next(l.link_id for l in fabric.links if l.kind == MESH)


def faults_for(topology: str) -> FaultConfig:
    # The line has no detour redundancy, so it gets a noisy channel
    # (retransmissions) instead of a hard kill.
    if topology == "line":
        return FaultConfig(seed=3, received_power_w=13e-6)
    return FaultConfig(
        seed=3,
        failures=(LinkFailure(first_mesh_link_id(topology), at_cycle=200),),
    )


class TestResetEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(
        topology=st.sampled_from(TOPOLOGIES),
        rates=st.lists(st.floats(min_value=0.0, max_value=0.4),
                       min_size=2, max_size=4),
        seed=st.integers(min_value=0, max_value=2**31),
        backend=st.sampled_from(("python", "numpy")),
    )
    def test_reused_fabric_matches_fresh(self, topology, rates, seed,
                                         backend):
        # N points through one reused simulator vs N fresh simulators.
        if backend == "numpy":
            import pytest

            pytest.importorskip("numpy")
        fresh = []
        for index, rate in enumerate(rates):
            config = make_config(topology, seed + index, power=make_power(),
                                 backend=backend)
            traffic = UniformRandomTraffic(config.network.num_nodes, rate,
                                           seed=seed + index)
            fresh.append(collect(Simulator(config, traffic)))
        warm = []
        sim = None
        for index, rate in enumerate(rates):
            config = make_config(topology, seed + index, power=make_power(),
                                 backend=backend)
            traffic = UniformRandomTraffic(config.network.num_nodes, rate,
                                           seed=seed + index)
            if sim is None:
                sim = Simulator(config, traffic)
            else:
                sim.reset(config, traffic)
            warm.append(collect(sim))
        assert warm == fresh

    @settings(max_examples=6, deadline=None)
    @given(
        topology=st.sampled_from(TOPOLOGIES),
        rate=st.floats(min_value=0.05, max_value=0.4),
        seed=st.integers(min_value=0, max_value=2**31),
        fault_order=st.booleans(),
    )
    def test_reset_across_fault_boundary(self, topology, rate, seed,
                                         fault_order):
        # A faulted run mutates the fabric (failed links, invalidated
        # routes, guard hooks); resetting must fully undo it — and the
        # other way around, resetting INTO a faulted run from a clean one
        # must attach the reliability layer exactly as construction does.
        faults = faults_for(topology)
        sequence = [faults, None] if fault_order else [None, faults]
        fresh = []
        for index, fault in enumerate(sequence):
            config = make_config(topology, seed + index, power=make_power(),
                                 faults=fault)
            traffic = UniformRandomTraffic(config.network.num_nodes, rate,
                                           seed=seed + index)
            fresh.append(collect(Simulator(config, traffic)))
        warm = []
        sim = None
        for index, fault in enumerate(sequence):
            config = make_config(topology, seed + index, power=make_power(),
                                 faults=fault)
            traffic = UniformRandomTraffic(config.network.num_nodes, rate,
                                           seed=seed + index)
            if sim is None:
                sim = Simulator(config, traffic)
            else:
                sim.reset(config, traffic)
            warm.append(collect(sim))
        assert warm == fresh

    @settings(max_examples=6, deadline=None)
    @given(
        topology=st.sampled_from(TOPOLOGIES),
        rate=st.floats(min_value=0.05, max_value=0.4),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_reset_swaps_power_policy_scalars(self, topology, rate, seed):
        # Consecutive points differing in policy window (a plain scalar
        # knob) reuse the manager via its in-place reset; a point
        # dropping power entirely and one restoring it exercise the
        # manager detach/rebuild paths.
        powers = [make_power(60), make_power(80), None, make_power(60)]
        fresh = []
        for index, power in enumerate(powers):
            config = make_config(topology, seed + index, power=power)
            traffic = UniformRandomTraffic(config.network.num_nodes, rate,
                                           seed=seed + index)
            fresh.append(collect(Simulator(config, traffic), cycles=300))
        warm = []
        sim = None
        for index, power in enumerate(powers):
            config = make_config(topology, seed + index, power=power)
            traffic = UniformRandomTraffic(config.network.num_nodes, rate,
                                           seed=seed + index)
            if sim is None:
                sim = Simulator(config, traffic)
            else:
                sim.reset(config, traffic)
            warm.append(collect(sim, cycles=300))
        assert warm == fresh

    @settings(max_examples=5, deadline=None)
    @given(
        topology=st.sampled_from(TOPOLOGIES),
        rate=st.floats(min_value=0.05, max_value=0.4),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_telemetry_streams_are_identical(self, topology, rate, seed):
        # Not just the summary: the full recorded event stream — every
        # hook firing, in order — must match between a fresh simulator
        # and a reset one that already ran a different point.
        with tempfile.TemporaryDirectory() as tmp:
            fresh_path = os.path.join(tmp, "fresh.jsonl")
            warm_path = os.path.join(tmp, "warm.jsonl")

            config = make_config(topology, seed, power=make_power(),
                                 trace_path=fresh_path)
            traffic = UniformRandomTraffic(config.network.num_nodes, rate,
                                           seed=seed)
            fresh = collect(Simulator(config, traffic))

            # Dirty a simulator with an unrelated point, then reset it
            # onto the traced point.
            dirty_config = make_config(topology, seed + 99,
                                       power=make_power(80))
            dirty_traffic = UniformRandomTraffic(
                dirty_config.network.num_nodes, 0.3, seed=seed + 99)
            sim = Simulator(dirty_config, dirty_traffic)
            sim.run(250)
            config = make_config(topology, seed, power=make_power(),
                                 trace_path=warm_path)
            traffic = UniformRandomTraffic(config.network.num_nodes, rate,
                                           seed=seed)
            sim.reset(config, traffic)
            warm = collect(sim)

            assert warm == fresh
            with open(fresh_path) as fh:
                fresh_events = [json.loads(line) for line in fh]
            with open(warm_path) as fh:
                warm_events = [json.loads(line) for line in fh]
        assert warm_events == fresh_events
        assert fresh_events  # empty-vs-empty proves nothing
