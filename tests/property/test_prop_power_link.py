"""Property tests: the full power-aware link under random window samples.

Feeds a real :class:`PowerAwareLink` random per-window (busy, pressure,
buffer-occupancy) observations — bypassing the network but exercising the
policy -> transition -> energy pipeline end to end — and asserts the
system-level invariants.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PolicyConfig, TransitionConfig
from repro.core.levels import BitRateLadder
from repro.core.power_link import PowerAwareLink
from repro.network.buffers import InputBuffer
from repro.network.links import MESH, Link
from repro.photonics.power_model import LinkPowerModel

WINDOW = 100.0
LADDER = BitRateLadder.paper_default()


@st.composite
def window_samples(draw):
    """Per-window (busy fraction, pressure fraction) observations."""
    count = draw(st.integers(min_value=1, max_value=40))
    return [
        (
            draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
            draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
        )
        for _ in range(count)
    ]


def make_pal() -> tuple[PowerAwareLink, Link]:
    link = Link(0, MESH)
    pal = PowerAwareLink(
        link=link,
        ladder=LADDER,
        power_model=LinkPowerModel.vcsel_link(),
        policy_config=PolicyConfig(window_cycles=int(WINDOW),
                                   history_windows=2),
        transition_config=TransitionConfig(
            bit_rate_transition_cycles=3, voltage_transition_cycles=12,
        ),
        service_time_fn=lambda level: LADDER.max_rate / LADDER.rate(level),
        downstream_buffer=(InputBuffer(8),),
    )
    return pal, link


def drive(pal: PowerAwareLink, link: Link, samples) -> float:
    """Run the window loop; returns the final simulation time."""
    start = 0.0
    for busy, pressure in samples:
        end = start + WINDOW
        link.busy_accum = busy * WINDOW
        link.pressure_accum = pressure * WINDOW
        pal.on_window(start, end)
        for t in range(int(end), int(end) + 20):
            pal.advance(float(t))
        start = end
    settle = start + 20.0
    pal.advance(settle)
    return settle


class TestPowerLinkProperties:
    @given(window_samples())
    @settings(max_examples=150)
    def test_level_always_on_ladder(self, samples):
        pal, link = make_pal()
        drive(pal, link, samples)
        assert 0 <= pal.level <= LADDER.top_level

    @given(window_samples())
    @settings(max_examples=150)
    def test_energy_bounded_by_power_envelope(self, samples):
        pal, link = make_pal()
        end = drive(pal, link, samples)
        pal.finalize(end)
        energy = pal.energy_watt_cycles
        assert pal.level_powers[0] * end <= energy + 1e-9
        assert energy <= pal.level_powers[-1] * end + 1e-9

    @given(window_samples())
    @settings(max_examples=150)
    def test_sustained_saturation_reaches_top(self, samples):
        pal, link = make_pal()
        drive(pal, link, samples)
        # Append a long saturated run: the link must climb to the top.
        start = (len(samples) + 1) * WINDOW
        for i in range(20):
            end = start + WINDOW
            link.busy_accum = WINDOW
            link.pressure_accum = WINDOW
            pal.on_window(start, end)
            for t in range(int(end), int(end) + 20):
                pal.advance(float(t))
            start = end
        assert pal.level == LADDER.top_level

    @given(window_samples())
    @settings(max_examples=150)
    def test_sustained_idle_reaches_bottom(self, samples):
        pal, link = make_pal()
        drive(pal, link, samples)
        start = (len(samples) + 1) * WINDOW
        for i in range(20):
            end = start + WINDOW
            link.busy_accum = 0.0
            link.pressure_accum = 0.0
            pal.on_window(start, end)
            for t in range(int(end), int(end) + 20):
                pal.advance(float(t))
            start = end
        assert pal.level == 0

    @given(window_samples())
    @settings(max_examples=100)
    def test_transitions_bounded_by_windows(self, samples):
        pal, link = make_pal()
        drive(pal, link, samples)
        counts = pal.transition_counts()
        # At most one step per window observation.
        assert counts["up"] + counts["down"] <= len(samples)
        assert pal.windows_observed == len(samples)

    @given(window_samples())
    @settings(max_examples=100)
    def test_average_power_is_fraction_of_max(self, samples):
        pal, link = make_pal()
        end = drive(pal, link, samples)
        pal.finalize(end)
        relative = pal.average_power(end) / pal.level_powers[-1]
        floor = pal.level_powers[0] / pal.level_powers[-1]
        assert floor - 1e-9 <= relative <= 1.0 + 1e-9
