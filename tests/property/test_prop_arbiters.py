"""Property tests: arbiters grant validly and starve no one."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.arbiters import MatrixArbiter, RoundRobinArbiter

request_sets = st.lists(
    st.lists(st.integers(min_value=0, max_value=7), min_size=0, max_size=8,
             unique=True),
    min_size=1, max_size=60,
)


class TestGrantValidity:
    @given(request_sets)
    @settings(max_examples=200)
    def test_round_robin_grants_a_requester(self, rounds):
        arbiter = RoundRobinArbiter(8)
        for requests in rounds:
            grant = arbiter.grant(requests)
            if requests:
                assert grant in requests
            else:
                assert grant == -1

    @given(request_sets)
    @settings(max_examples=200)
    def test_matrix_grants_a_requester(self, rounds):
        arbiter = MatrixArbiter(8)
        for requests in rounds:
            grant = arbiter.grant(requests)
            if requests:
                assert grant in requests
            else:
                assert grant == -1


class TestNoStarvation:
    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=50)
    def test_round_robin_serves_everyone_within_n_rounds(self, size):
        arbiter = RoundRobinArbiter(size)
        everyone = list(range(size))
        winners = [arbiter.grant(everyone) for _ in range(size)]
        assert sorted(winners) == everyone

    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=50)
    def test_matrix_serves_everyone_within_n_rounds(self, size):
        arbiter = MatrixArbiter(size)
        everyone = list(range(size))
        winners = [arbiter.grant(everyone) for _ in range(size)]
        assert sorted(winners) == everyone

    @given(request_sets)
    @settings(max_examples=100)
    def test_matrix_bounded_wait(self, rounds):
        """A persistent requester wins within `size` grants of appearing."""
        size = 8
        arbiter = MatrixArbiter(size)
        waiting = {}
        for requests in rounds:
            persistent = set(requests) | set(waiting)
            if not persistent:
                continue
            grant = arbiter.grant(sorted(persistent))
            for r in persistent:
                waiting[r] = waiting.get(r, 0) + 1
                assert waiting[r] <= size
            waiting.pop(grant, None)
