"""Property tests: the engine refactor changes wall-clock, never results.

Two equivalences the refactor is contractually bound to:

* a run on the active-component / event-wheel engine is bit-identical to
  the same run with ``step_all=True`` (the legacy step-everything /
  poll-everything reference), across traffic rates, seeds and power
  configurations;
* a sweep dispatched over a process pool is point-for-point identical to
  the same sweep run serially.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    NetworkConfig,
    PolicyConfig,
    PowerAwareConfig,
    SimulationConfig,
    TransitionConfig,
)
from repro.network.simulator import Simulator
from repro.traffic.uniform import UniformRandomTraffic

NETWORK = NetworkConfig(mesh_width=2, mesh_height=2, nodes_per_cluster=2,
                        buffer_depth=8, num_vcs=2)


def make_power() -> PowerAwareConfig:
    return PowerAwareConfig(
        policy=PolicyConfig(window_cycles=60, history_windows=1),
        transitions=TransitionConfig(
            bit_rate_transition_cycles=2, voltage_transition_cycles=10,
            optical_transition_cycles=300, laser_epoch_cycles=400,
        ),
    )


def run_one(rate: float, seed: int, power_aware: bool,
            step_all: bool, cycles: int):
    config = SimulationConfig(
        network=NETWORK,
        power=make_power() if power_aware else None,
        sample_interval=50,
        stall_limit_cycles=50_000,
    )
    traffic = UniformRandomTraffic(NETWORK.num_nodes, rate, seed=seed)
    sim = Simulator(config, traffic, step_all=step_all)
    sim.run(cycles)
    summary = sim.summary()
    series = tuple(sim.power.power_series) if sim.power else ()
    levels = tuple(sim.power.level_histogram()) if sim.power else ()
    return summary, series, levels


class TestEngineEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        rate=st.floats(min_value=0.0, max_value=0.6),
        seed=st.integers(min_value=0, max_value=2**31),
        power_aware=st.booleans(),
    )
    def test_active_scheduling_matches_step_all(self, rate, seed,
                                                power_aware):
        engine = run_one(rate, seed, power_aware, step_all=False, cycles=700)
        legacy = run_one(rate, seed, power_aware, step_all=True, cycles=700)
        assert engine == legacy


def make_slow_transition_power() -> PowerAwareConfig:
    """Transitions longer than the policy window, so they overlap windows."""
    return PowerAwareConfig(
        policy=PolicyConfig(window_cycles=60, history_windows=1),
        transitions=TransitionConfig(
            bit_rate_transition_cycles=20, voltage_transition_cycles=100,
            optical_transition_cycles=300, laser_epoch_cycles=400,
        ),
    )


def run_overlapping(rate: float, seed: int, step_all: bool,
                    cycles: int = 900):
    """Run with slow transitions; also report the peak number of links
    simultaneously mid-transition (observed at window boundaries)."""
    config = SimulationConfig(
        network=NETWORK,
        power=make_slow_transition_power(),
        sample_interval=50,
        stall_limit_cycles=50_000,
    )
    traffic = UniformRandomTraffic(NETWORK.num_nodes, rate, seed=seed)
    sim = Simulator(config, traffic, step_all=step_all)
    peak = 0

    def on_window(start, end):
        nonlocal peak
        in_flight = sum(
            1 for pal in sim.power.links if pal.engine.in_transition
        )
        peak = max(peak, in_flight)

    sim.hooks.add("window", on_window)
    sim.run(cycles)
    results = (
        sim.summary(),
        tuple(sim.power.power_series),
        tuple(sim.power.level_histogram()),
        sim.power.transition_totals(),
    )
    return results, peak


class TestMultiLinkSimultaneousTransitions:
    """Satellite of the set-iteration fix in NetworkPowerManager.on_cycle:
    the equivalence must hold while *many* links are mid-transition in the
    same cycle, which is exactly when unordered-set iteration in the legacy
    poll path could diverge between processes."""

    @settings(max_examples=10, deadline=None)
    @given(
        rate=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_equivalence_under_simultaneous_transitions(self, rate, seed):
        engine, engine_peak = run_overlapping(rate, seed, step_all=False)
        legacy, legacy_peak = run_overlapping(rate, seed, step_all=True)
        assert engine == legacy
        assert engine_peak == legacy_peak
        # The scenario must actually be exercised: window boundaries see
        # several links mid-transition at once (idle links all step down
        # together at the first boundary, so this holds at any rate).
        assert engine_peak >= 2


class TestTableDrivenEquivalence:
    """The shared operating-point table must be a pure cache: a run billed
    through per-link, freshly evaluated analytical rows is bit-identical
    to the same run billed through the one table row every link shares."""

    @settings(max_examples=8, deadline=None)
    @given(
        rate=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_fresh_analytic_rows_match_the_shared_table(self, rate, seed):
        def run(detach_table: bool):
            config = SimulationConfig(
                network=NETWORK, power=make_power(), sample_interval=50,
                stall_limit_cycles=50_000,
            )
            traffic = UniformRandomTraffic(NETWORK.num_nodes, rate,
                                           seed=seed)
            sim = Simulator(config, traffic)
            if detach_table:
                manager = sim.power
                for pal in manager.links:
                    assert pal.level_powers is manager.table.level_powers
                    pal.level_powers = tuple(
                        manager.power_model.power(r)
                        for r in manager.ladder.rates
                    )
            sim.run(700)
            return (sim.summary(), tuple(sim.power.power_series),
                    tuple(sim.power.level_histogram()))

        assert run(detach_table=False) == run(detach_table=True)


class TestSweepEquivalence:
    def test_parallel_sweep_matches_serial(self):
        from repro.experiments.configs import ExperimentScale
        from repro.experiments.fig5 import uniform_factory
        from repro.experiments.runner import SweepPoint, run_sweep

        scale = ExperimentScale(
            name="prop", network=NETWORK, run_cycles=800,
            slow_constant_divisor=1, warmup_cycles=0, sample_interval=50,
            policy_window_cycles=60,
        )
        points = [
            SweepPoint(label=f"p{i}", scale=scale,
                       power=make_power() if i % 2 else None,
                       traffic_factory=uniform_factory(0.05 * (i + 1)),
                       seed=100 + i)
            for i in range(4)
        ]
        serial = run_sweep(points, max_workers=1)
        parallel = run_sweep(points, max_workers=2)
        assert serial == parallel
