"""Property tests: trace format round-trips and replay equivalence."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic.trace import (
    TraceRecord,
    TraceReplaySource,
    read_trace,
    write_trace,
)

NUM_NODES = 16


@st.composite
def traces(draw):
    n = draw(st.integers(min_value=0, max_value=60))
    cycles = sorted(draw(st.lists(
        st.integers(min_value=0, max_value=500), min_size=n, max_size=n)))
    records = []
    for cycle in cycles:
        src = draw(st.integers(min_value=0, max_value=NUM_NODES - 1))
        dst = draw(st.integers(min_value=0, max_value=NUM_NODES - 2))
        if dst >= src:
            dst += 1
        size = draw(st.integers(min_value=1, max_value=72))
        records.append(TraceRecord(cycle, src, dst, size))
    return records


class TestRoundTrip:
    @given(traces())
    @settings(max_examples=200)
    def test_write_read_identity(self, records):
        stream = io.StringIO()
        write_trace(records, stream)
        stream.seek(0)
        assert read_trace(stream) == records

    @given(traces())
    @settings(max_examples=100)
    def test_double_round_trip_stable(self, records):
        stream = io.StringIO()
        write_trace(records, stream)
        stream.seek(0)
        once = read_trace(stream)
        stream2 = io.StringIO()
        write_trace(once, stream2)
        stream2.seek(0)
        assert read_trace(stream2) == once


class TestReplayEquivalence:
    @given(traces())
    @settings(max_examples=100)
    def test_replay_emits_every_record_once(self, records):
        source = TraceReplaySource(NUM_NODES, records)
        emitted = []
        horizon = (records[-1].cycle + 1) if records else 1
        for now in range(horizon):
            emitted += source.generate(now)
        assert len(emitted) == len(records)
        assert source.exhausted(horizon)
        for packet, record in zip(emitted, records):
            assert (packet.src, packet.dst, packet.size) == \
                (record.src, record.dst, record.size)

    @given(traces(), st.integers(min_value=1, max_value=17))
    @settings(max_examples=100)
    def test_replay_robust_to_polling_stride(self, records, stride):
        """Polling every `stride` cycles still emits everything in order."""
        source = TraceReplaySource(NUM_NODES, records)
        emitted = []
        horizon = (records[-1].cycle + stride + 1) if records else 1
        for now in range(0, horizon, stride):
            emitted += source.generate(now)
        assert [p.size for p in emitted] == [r.size for r in records]
