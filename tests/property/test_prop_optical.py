"""Property tests: the optical power controller under random schedules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TransitionConfig
from repro.core.laser_policy import OpticalPowerController
from repro.core.levels import OpticalBands

BANDS = OpticalBands.paper_three_level()
T_OPT = 100

rates = st.floats(min_value=0.5e9, max_value=10e9, allow_nan=False)


@st.composite
def optical_schedules(draw):
    initial = draw(st.integers(min_value=0, max_value=BANDS.top_band))
    ops = draw(st.lists(
        st.tuples(
            st.sampled_from(["note", "request", "epoch"]),
            rates,
            st.integers(min_value=1, max_value=300),
        ),
        min_size=0, max_size=40,
    ))
    return initial, ops


def make_controller(initial):
    config = TransitionConfig(optical_transition_cycles=T_OPT,
                              laser_epoch_cycles=500)
    return OpticalPowerController(BANDS, config, initial_band=initial)


class TestOpticalProperties:
    @given(optical_schedules())
    @settings(max_examples=200)
    def test_band_always_in_range(self, schedule):
        initial, ops = schedule
        controller = make_controller(initial)
        now = 0.0
        for op, rate, gap in ops:
            now += gap
            if op == "note":
                controller.note_rate(rate)
            elif op == "request":
                controller.request_increase(rate, now)
            else:
                controller.on_epoch(now)
            assert 0 <= controller.band <= BANDS.top_band
            assert controller.band <= controller.pending_band <= \
                BANDS.top_band

    @given(optical_schedules())
    @settings(max_examples=200)
    def test_request_eventually_supports_rate(self, schedule):
        initial, ops = schedule
        controller = make_controller(initial)
        now = 0.0
        for op, rate, gap in ops:
            now += gap
            if op == "note":
                controller.note_rate(rate)
            elif op == "request":
                controller.request_increase(rate, now)
                # After the settle time, and absent any Pdec epoch, the
                # rate must be supported.
                assert controller.can_support(rate, now + T_OPT)
            else:
                controller.on_epoch(now)

    @given(optical_schedules())
    @settings(max_examples=200)
    def test_counters_consistent(self, schedule):
        initial, ops = schedule
        controller = make_controller(initial)
        now = 0.0
        for op, rate, gap in ops:
            now += gap
            if op == "note":
                controller.note_rate(rate)
            elif op == "request":
                controller.request_increase(rate, now)
            else:
                controller.on_epoch(now)
        # Decreases step one band each; a single Pinc request can climb
        # several bands at once, so the bound is in band units.
        assert controller.decreases <= \
            initial + controller.increases * BANDS.top_band
        assert controller.band >= 0

    @given(rates, rates)
    @settings(max_examples=100)
    def test_support_monotone_in_band(self, r1, r2):
        low, high = sorted((r1, r2))
        for band in range(BANDS.num_bands):
            controller = make_controller(band)
            if controller.can_support(high, 0.0):
                assert controller.can_support(low, 0.0)
