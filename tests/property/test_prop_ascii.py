"""Property tests: the text renderers never crash and keep their shape."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.ascii import SPARK_CHARS, format_table, sparkline

finite_series = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=0, max_size=300,
)
maybe_nan_series = st.lists(
    st.one_of(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.just(math.nan),
    ),
    min_size=0, max_size=300,
)


class TestSparklineProperties:
    @given(maybe_nan_series, st.integers(min_value=1, max_value=120))
    @settings(max_examples=200)
    def test_never_crashes_and_respects_width(self, values, width):
        line = sparkline(values, width=width)
        assert len(line) <= max(width, len("(no data)"))

    @given(finite_series)
    @settings(max_examples=200)
    def test_only_ramp_characters(self, values):
        line = sparkline(values)
        if line == "(no data)":
            return
        assert set(line) <= set(SPARK_CHARS)

    @given(finite_series)
    @settings(max_examples=100)
    def test_extremes_present(self, values):
        if not values:
            return
        line = sparkline(values, width=len(values))
        if len(set(values)) == 1:
            assert set(line) == {SPARK_CHARS[0]}
        else:
            # When every value is rendered (no resampling), the max maps
            # to the darkest character.
            assert SPARK_CHARS[-1] in line


table_rows = st.lists(
    st.lists(
        st.one_of(st.integers(min_value=-10**6, max_value=10**6),
                  st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
                  st.text(alphabet="abcXYZ -", max_size=12)),
        min_size=2, max_size=2,
    ),
    min_size=0, max_size=30,
)


class TestTableProperties:
    @given(table_rows)
    @settings(max_examples=200)
    def test_all_lines_equal_width(self, rows):
        text = format_table(["first", "second"], rows)
        lines = text.splitlines()
        assert len(lines) == 2 + len(rows)
        assert len({len(line) for line in lines}) == 1
