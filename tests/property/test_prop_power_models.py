"""Property tests: power-model invariants across the operating envelope."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.photonics.cdr import ClockDataRecovery
from repro.photonics.drivers import InverterChainDriver
from repro.photonics.power_model import (
    LinkPowerModel,
    PhysicsLinkModel,
    vdd_for_bit_rate,
)
from repro.photonics.tia import TransimpedanceAmplifier
from repro.photonics.vcsel import Vcsel
from repro.units import mw

bit_rates = st.floats(min_value=1e9, max_value=10e9, allow_nan=False)
vdds = st.floats(min_value=0.3, max_value=1.8, allow_nan=False)


class TestComponentInvariants:
    @given(bit_rates, vdds)
    @settings(max_examples=200)
    def test_all_component_powers_positive(self, bit_rate, vdd):
        driver = InverterChainDriver.calibrated_to(mw(10.0))
        tia = TransimpedanceAmplifier.calibrated_to(mw(100.0))
        cdr = ClockDataRecovery.calibrated_to(mw(150.0))
        for component in (driver, tia, cdr):
            assert component.power(bit_rate, vdd) > 0.0

    @given(bit_rates, bit_rates)
    @settings(max_examples=200)
    def test_driver_power_monotone_in_rate(self, r1, r2):
        driver = InverterChainDriver.calibrated_to(mw(10.0))
        low, high = sorted((r1, r2))
        assert driver.power(low) <= driver.power(high) + 1e-18

    @given(vdds)
    @settings(max_examples=100)
    def test_vcsel_power_never_below_bias_floor(self, vdd):
        vcsel = Vcsel.calibrated_to(mw(30.0))
        floor = vcsel.bias_current * vcsel.bias_voltage
        assert vcsel.average_electrical_power(vdd) >= floor

    @given(vdds)
    @settings(max_examples=100)
    def test_vcsel_contrast_stays_above_one(self, vdd):
        vcsel = Vcsel.calibrated_to(mw(30.0))
        assert vcsel.contrast_ratio(vdd) > 1.0


class TestLinkModelInvariants:
    @given(bit_rates)
    @settings(max_examples=200)
    def test_power_bounded_by_endpoints(self, bit_rate):
        for model in (LinkPowerModel.vcsel_link(),
                      LinkPowerModel.modulator_link()):
            power = model.power(bit_rate)
            assert 0.0 < power <= model.max_power + 1e-12

    @given(bit_rates, bit_rates)
    @settings(max_examples=200)
    def test_power_monotone_in_bit_rate(self, r1, r2):
        low, high = sorted((r1, r2))
        for model in (LinkPowerModel.vcsel_link(),
                      LinkPowerModel.modulator_link()):
            assert model.power(low) <= model.power(high) + 1e-12

    @given(bit_rates)
    @settings(max_examples=200)
    def test_savings_fraction_in_unit_interval(self, bit_rate):
        model = LinkPowerModel.vcsel_link()
        saving = model.savings_fraction(bit_rate)
        assert 0.0 - 1e-12 <= saving < 1.0

    @given(bit_rates)
    @settings(max_examples=200)
    def test_vcsel_never_above_modulator_under_shared_vdd_scaling(
            self, bit_rate):
        # The VCSEL transmitter scales with voltage while the modulator
        # driver cannot — so at any reduced rate VCSEL wins (Fig. 6(d)).
        vcsel = LinkPowerModel.vcsel_link().power(bit_rate)
        modulator = LinkPowerModel.modulator_link().power(bit_rate)
        assert vcsel <= modulator + 1e-12

    @given(bit_rates)
    @settings(max_examples=100)
    def test_physics_and_trend_views_agree_everywhere(self, bit_rate):
        physics = PhysicsLinkModel()
        assert physics.power(bit_rate, technology="vcsel") == pytest.approx(
            LinkPowerModel.vcsel_link().power(bit_rate), rel=1e-9
        )
        assert physics.power(bit_rate, technology="modulator") == \
            pytest.approx(LinkPowerModel.modulator_link().power(bit_rate),
                          rel=1e-9)

    @given(bit_rates)
    @settings(max_examples=100)
    def test_vdd_scaling_linear_and_bounded(self, bit_rate):
        vdd = vdd_for_bit_rate(bit_rate)
        assert 0.0 < vdd <= 1.8
        assert vdd == pytest.approx(1.8 * bit_rate / 10e9)
