"""Property test: an interrupted, resumed sweep equals an unbroken one.

The resilience claim, stated as a property: for *any* interruption point
and either topology, SIGKILL-ing a worker mid-sweep and resuming from
the journal produces results bit-identical to an uninterrupted serial
sweep.  The worker kill is real (chaos ``crash`` → ``SIGKILL`` →
``BrokenProcessPool``), not simulated.
"""

import os
from dataclasses import replace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.configs import scale_with_topology
from repro.experiments.executor import ExecutionPlan, execute_sweep

from tests.sweeputil import TINY, tiny_point

N_POINTS = 4

_BASELINES: dict[str, list] = {}


def points_for(topology: str):
    scale = scale_with_topology(TINY, topology)
    return [replace(tiny_point(label=f"{topology}/p{i}", seed=i + 1),
                    scale=scale)
            for i in range(N_POINTS)]


def baseline_for(topology: str):
    if topology not in _BASELINES:
        _BASELINES[topology] = execute_sweep(points_for(topology)).results
    return _BASELINES[topology]


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kill_index=st.integers(min_value=0, max_value=N_POINTS - 1),
       topology=st.sampled_from(["mesh", "torus"]))
def test_killed_then_resumed_sweep_is_bit_identical(kill_index, topology,
                                                    tmp_path_factory):
    expected = baseline_for(topology)
    journal = tmp_path_factory.mktemp("journal") / "sweep.sqlite"
    points = points_for(topology)

    # Pass 1: the point at kill_index SIGKILLs its worker on every
    # attempt; with retries=0 it fails, siblings land in the journal.
    os.environ["REPRO_CHAOS"] = f"crash*9:{topology}/p{kill_index}"
    try:
        interrupted = execute_sweep(
            points, max_workers=2,
            plan=ExecutionPlan(journal=journal, backoff=0.05))
    finally:
        del os.environ["REPRO_CHAOS"]
    assert interrupted.results[kill_index] is None
    assert interrupted.stats.crashes >= 1

    # Pass 2: resume with chaos off; only the killed point re-runs.
    resumed = execute_sweep(
        points, plan=ExecutionPlan(journal=journal, resume=True))
    assert resumed.complete
    assert resumed.stats.executed >= 1
    assert resumed.results == expected
