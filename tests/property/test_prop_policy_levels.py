"""Property tests: policy controller and ladder/band invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PolicyConfig
from repro.core.levels import BitRateLadder, OpticalBands
from repro.core.policy import HOLD, STEP_DOWN, STEP_UP, LinkPolicyController

samples = st.tuples(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)


class TestPolicyProperties:
    @given(st.lists(samples, min_size=1, max_size=50))
    @settings(max_examples=200)
    def test_decisions_always_valid(self, observations):
        controller = LinkPolicyController(PolicyConfig())
        for lu, bu in observations:
            assert controller.observe(lu, bu) in (STEP_DOWN, HOLD, STEP_UP)

    @given(st.lists(samples, min_size=1, max_size=50))
    @settings(max_examples=200)
    def test_averaged_utilisation_bounded(self, observations):
        controller = LinkPolicyController(PolicyConfig())
        for lu, bu in observations:
            controller.observe(lu, bu)
            assert 0.0 <= controller.averaged_utilisation <= 1.0

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    @settings(max_examples=100)
    def test_saturated_link_never_steps_down(self, bu):
        controller = LinkPolicyController(PolicyConfig(history_windows=1))
        assert controller.observe(1.0, bu) != STEP_DOWN

    @given(st.floats(min_value=0.0, max_value=0.39, allow_nan=False))
    @settings(max_examples=100)
    def test_idle_link_never_steps_up_uncongested(self, lu):
        controller = LinkPolicyController(PolicyConfig(history_windows=1))
        assert controller.observe(lu, 0.0) != STEP_UP

    @given(st.lists(samples, min_size=1, max_size=30))
    @settings(max_examples=100)
    def test_decision_counters_sum(self, observations):
        controller = LinkPolicyController(PolicyConfig())
        for lu, bu in observations:
            controller.observe(lu, bu)
        assert sum(controller.decisions.values()) == len(observations)


ladder_params = st.tuples(
    st.floats(min_value=1e9, max_value=9e9, allow_nan=False),
    st.floats(min_value=9.1e9, max_value=40e9, allow_nan=False),
    st.integers(min_value=2, max_value=12),
)


class TestLadderProperties:
    @given(ladder_params)
    @settings(max_examples=200)
    def test_linear_ladder_invariants(self, params):
        low, high, levels = params
        ladder = BitRateLadder.linear(low, high, levels)
        assert ladder.num_levels == levels
        assert ladder.min_rate == low
        assert ladder.max_rate == high
        rates = list(ladder.rates)
        assert rates == sorted(rates)
        steps = [b - a for a, b in zip(rates, rates[1:])]
        assert max(steps) - min(steps) < 1e-3  # even spacing

    @given(ladder_params, st.integers(min_value=-5, max_value=20))
    @settings(max_examples=200)
    def test_clamp_always_in_range(self, params, level):
        ladder = BitRateLadder.linear(*params)
        assert 0 <= ladder.clamp(level) <= ladder.top_level

    @given(ladder_params,
           st.floats(min_value=0.5e9, max_value=50e9, allow_nan=False))
    @settings(max_examples=200)
    def test_level_for_rate_is_sufficient_or_top(self, params, rate):
        ladder = BitRateLadder.linear(*params)
        level = ladder.level_for_rate(rate)
        if rate <= ladder.max_rate:
            assert ladder.rate(level) >= rate - 1e-6
            if level > 0:
                assert ladder.rate(level - 1) < rate
        else:
            assert level == ladder.top_level

    @given(ladder_params)
    @settings(max_examples=100)
    def test_vdd_monotone_in_level(self, params):
        ladder = BitRateLadder.linear(*params)
        vdds = [ladder.vdd(i) for i in range(ladder.num_levels)]
        assert vdds == sorted(vdds)


class TestBandProperties:
    @given(st.floats(min_value=0.1e9, max_value=10e9, allow_nan=False))
    @settings(max_examples=200)
    def test_band_supports_rate(self, rate):
        bands = OpticalBands.paper_three_level()
        band = bands.band_for_rate(rate)
        assert 0 <= band <= bands.top_band
        # The band's nominal upper rate must cover the requested rate.
        uppers = list(bands.upper_rates) + [10e9]
        assert rate <= uppers[band] + 1e-6

    @given(st.floats(min_value=0.1e9, max_value=10e9, allow_nan=False),
           st.floats(min_value=0.1e9, max_value=10e9, allow_nan=False))
    @settings(max_examples=200)
    def test_band_monotone_in_rate(self, r1, r2):
        bands = OpticalBands.paper_three_level()
        low, high = sorted((r1, r2))
        assert bands.band_for_rate(low) <= bands.band_for_rate(high)
