"""Property tests: the numpy batch backend changes wall-clock, never results.

The batched route-phase gate (:mod:`repro.network.batch`) filters which
(router, VC) slots the scalar allocation code visits; its contract is
bit-identity with the pure-python backend — same summary, same power
series, same telemetry event stream — on every topology, with and
without the reliability machinery attached (fault runs construct the
simulator with the backend requested but fall back to wholesale scalar
stepping, which must itself be invisible).
"""

import json
import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    NetworkConfig,
    PolicyConfig,
    PowerAwareConfig,
    SimulationConfig,
    TransitionConfig,
)
from repro.network.links import MESH
from repro.network.simulator import Simulator
from repro.network.stats import StatsCollector
from repro.network.topology import NetworkFabric
from repro.reliability import FaultConfig, LinkFailure
from repro.telemetry.config import TelemetryConfig
from repro.traffic.uniform import UniformRandomTraffic

pytest.importorskip("numpy")

TOPOLOGIES = ("mesh", "torus", "cmesh", "line")


def network_for(topology: str) -> NetworkConfig:
    # cmesh concentration (2) must divide the grid dimensions.
    size = 4 if topology == "cmesh" else 3
    return NetworkConfig(mesh_width=size, mesh_height=size,
                         nodes_per_cluster=2, buffer_depth=8, num_vcs=2,
                         topology=topology)


def make_power() -> PowerAwareConfig:
    return PowerAwareConfig(
        policy=PolicyConfig(window_cycles=60, history_windows=1),
        transitions=TransitionConfig(
            bit_rate_transition_cycles=2, voltage_transition_cycles=10,
            optical_transition_cycles=300, laser_epoch_cycles=400,
        ),
    )


def run_one(topology: str, rate: float, seed: int, backend: str, *,
            faults: FaultConfig | None = None,
            trace_path: str | None = None, cycles: int = 500):
    telemetry = None
    if trace_path is not None:
        telemetry = TelemetryConfig(path=trace_path)
    config = SimulationConfig(
        network=network_for(topology),
        power=make_power(),
        seed=seed,
        sample_interval=50,
        stall_limit_cycles=50_000,
        faults=faults,
        telemetry=telemetry,
        backend=backend,
    )
    traffic = UniformRandomTraffic(config.network.num_nodes, rate, seed=seed)
    sim = Simulator(config, traffic)
    sim.run(cycles)
    results = (
        sim.summary(),
        tuple(sim.power.power_series),
        tuple(sim.power.level_histogram()),
        sim.power.transition_totals(),
    )
    if sim.telemetry is not None:
        sim.telemetry.close()
    return results


def first_mesh_link_id(topology: str) -> int:
    fabric = NetworkFabric(network_for(topology), StatsCollector())
    return next(l.link_id for l in fabric.links if l.kind == MESH)


class TestBackendEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(
        topology=st.sampled_from(TOPOLOGIES),
        rate=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_numpy_run_is_bit_identical(self, topology, rate, seed):
        python = run_one(topology, rate, seed, "python")
        batched = run_one(topology, rate, seed, "numpy")
        assert batched == python

    @settings(max_examples=6, deadline=None)
    @given(
        topology=st.sampled_from(TOPOLOGIES),
        rate=st.floats(min_value=0.05, max_value=0.4),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_numpy_with_faults_is_bit_identical(self, topology, rate, seed):
        # Fault configs disable the batch gate (arrival reschedules
        # invalidate its mirrors); requesting backend='numpy' must still
        # be legal and still produce the python-backend result.  The line
        # has no detour redundancy, so it gets a noisy channel
        # (retransmissions) instead of a hard kill.
        if topology == "line":
            faults = FaultConfig(seed=3, received_power_w=13e-6)
        else:
            faults = FaultConfig(
                seed=3,
                failures=(LinkFailure(first_mesh_link_id(topology),
                                      at_cycle=200),),
            )
        python = run_one(topology, rate, seed, "python", faults=faults)
        batched = run_one(topology, rate, seed, "numpy", faults=faults)
        assert batched == python

    @settings(max_examples=6, deadline=None)
    @given(
        topology=st.sampled_from(TOPOLOGIES),
        rate=st.floats(min_value=0.05, max_value=0.4),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_telemetry_streams_are_identical(self, topology, rate, seed):
        # Not just the summary: the full recorded event stream — every
        # hook firing, in order — must match, or the gate visibly
        # reordered work even if the totals happened to agree.
        with tempfile.TemporaryDirectory() as tmp:
            py_path = os.path.join(tmp, "python.jsonl")
            np_path = os.path.join(tmp, "numpy.jsonl")
            python = run_one(topology, rate, seed, "python",
                             trace_path=py_path)
            batched = run_one(topology, rate, seed, "numpy",
                              trace_path=np_path)
            assert batched == python
            with open(py_path) as fh:
                py_events = [json.loads(line) for line in fh]
            with open(np_path) as fh:
                np_events = [json.loads(line) for line in fh]
        assert np_events == py_events
        assert py_events  # a silent empty-vs-empty pass proves nothing
