"""Property tests: telemetry is pure observation.

The trace recorder's contract is that attaching it changes *nothing* about
a run: same summary, same power series, same level histogram — whatever
kind subset is enabled, whichever engine mode drives the simulator.  It
only reads simulation state through hooks, never writes it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    NetworkConfig,
    PolicyConfig,
    PowerAwareConfig,
    SimulationConfig,
    TransitionConfig,
)
from repro.network.simulator import Simulator
from repro.telemetry.config import ALL_KINDS, TelemetryConfig
from repro.traffic.uniform import UniformRandomTraffic

NETWORK = NetworkConfig(mesh_width=2, mesh_height=2, nodes_per_cluster=2,
                        buffer_depth=8, num_vcs=2)


def make_power() -> PowerAwareConfig:
    return PowerAwareConfig(
        policy=PolicyConfig(window_cycles=60, history_windows=1),
        transitions=TransitionConfig(
            bit_rate_transition_cycles=2, voltage_transition_cycles=10,
            optical_transition_cycles=300, laser_epoch_cycles=400,
        ),
    )


def run_one(rate: float, seed: int, *, telemetry: TelemetryConfig | None,
            step_all: bool = False, cycles: int = 600):
    config = SimulationConfig(
        network=NETWORK,
        power=make_power(),
        seed=seed,
        sample_interval=50,
        stall_limit_cycles=50_000,
        telemetry=telemetry,
    )
    traffic = UniformRandomTraffic(NETWORK.num_nodes, rate, seed=seed)
    sim = Simulator(config, traffic, step_all=step_all)
    sim.run(cycles)
    results = (
        sim.summary(),
        tuple(sim.power.power_series),
        tuple(sim.power.level_histogram()),
        sim.power.transition_totals(),
    )
    counts = dict(sim.telemetry.counts) if sim.telemetry is not None else None
    if sim.telemetry is not None:
        sim.telemetry.close()
    return results, counts


class TestRecorderIsPureObservation:
    @settings(max_examples=10, deadline=None)
    @given(
        rate=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(min_value=0, max_value=2**31),
        kinds=st.sets(st.sampled_from(ALL_KINDS), min_size=1).map(
            lambda s: tuple(sorted(s))),
        step_all=st.booleans(),
    )
    def test_run_with_recorder_is_bit_identical(self, rate, seed, kinds,
                                                step_all):
        plain, _ = run_one(rate, seed, telemetry=None, step_all=step_all)
        telemetry = TelemetryConfig(kinds=kinds, buffer_events=256)
        traced, counts = run_one(rate, seed, telemetry=telemetry,
                                 step_all=step_all)
        assert traced == plain
        assert counts is not None
        # Only enabled kinds may appear in the recorder's counters.
        assert set(counts) <= set(kinds)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_engine_and_step_all_record_identical_counts(self, seed):
        telemetry = TelemetryConfig(buffer_events=64)
        engine, engine_counts = run_one(0.2, seed, telemetry=telemetry)
        legacy, legacy_counts = run_one(0.2, seed, telemetry=telemetry,
                                        step_all=True)
        assert engine == legacy
        assert engine_counts == legacy_counts


class TestFileSinkEquivalence:
    def test_jsonl_sink_matches_ring_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        ring = TelemetryConfig(buffer_events=100_000)
        jsonl = TelemetryConfig(path=str(path))
        in_memory, ring_counts = run_one(0.15, 11, telemetry=ring)
        on_disk, file_counts = run_one(0.15, 11, telemetry=jsonl)
        assert in_memory == on_disk
        assert ring_counts == file_counts
        from repro.telemetry.export import read_trace

        records = read_trace(str(path))
        assert len(records) == sum(file_counts.values())
