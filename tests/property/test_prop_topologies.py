"""Property tests: routing-relation invariants for every topology.

Two families of invariants, checked over random small shapes:

* **Minimality** — following a topology's routing relation hop by hop
  from any source reaches any destination in exactly ``min_hops`` steps
  (so it terminates, never detours, and the analytic latency model's
  expected-hop figure describes the real paths).
* **Deadlock freedom** — the channel-dependence graph induced by the
  routing relation and the VC-class assignment is acyclic (Dally's
  criterion).  Nodes are ``(channel, vc_class)`` pairs where a channel is
  a directed router-to-router edge; an edge connects each channel a
  packet holds to the next channel it requests.  This is the property
  the torus dateline scheme exists to restore; the mesh/line/cmesh pass
  it on a single class because dimension order is already acyclic.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.routing import EAST, NORTH, SOUTH, WEST
from repro.network.topologies.cmesh import CMeshTopology
from repro.network.topologies.mesh import LineTopology, MeshTopology
from repro.network.topologies.torus import TorusTopology

_DIRECTIONS = (EAST, WEST, NORTH, SOUTH)


@st.composite
def topologies(draw):
    kind = draw(st.sampled_from(["mesh", "torus", "cmesh", "line"]))
    routing = draw(st.sampled_from(["xy", "yx"]))
    if kind == "line":
        return LineTopology(draw(st.integers(1, 9)), 2, routing)
    width = draw(st.integers(1, 5))
    height = draw(st.integers(1, 5))
    if kind == "mesh":
        return MeshTopology(width, height, 2, routing)
    if kind == "torus":
        return TorusTopology(width, height, 2, routing)
    concentration = draw(st.sampled_from([1, 2]))
    return CMeshTopology(width * concentration, height * concentration,
                         2, concentration, routing)


def walk(topology, src, dst):
    """Follow the routing relation; return the channel path taken."""
    path = []
    current = src
    # min_hops is the claimed bound; allow one extra step to catch a
    # relation that fails to terminate at the destination.
    for _ in range(topology.min_hops(src, dst) + 1):
        if current == dst:
            return path
        direction = topology.route_direction(current, dst)
        assert direction >= 0, (
            f"routing stalled at {current} short of {dst}"
        )
        nxt = topology.neighbor(current, direction)
        assert nxt is not None, (
            f"routing at {current} toward {dst} chose direction "
            f"{direction} with no link"
        )
        path.append((current, nxt))
        current = nxt
    raise AssertionError(
        f"path {src} -> {dst} exceeded min_hops="
        f"{topology.min_hops(src, dst)}"
    )


@settings(max_examples=60, deadline=None)
@given(topologies())
def test_route_relation_is_minimal(topology):
    for src in range(topology.num_routers):
        for dst in range(topology.num_routers):
            path = walk(topology, src, dst)
            assert len(path) == topology.min_hops(src, dst)


@settings(max_examples=60, deadline=None)
@given(topologies())
def test_channel_dependence_graph_is_acyclic(topology):
    # Build the dependence edges: for every (src, dst) pair, each channel
    # on the routed path depends on the next, tagged with the VC class
    # the packet occupies while holding it (the class is latched at the
    # upstream router of the channel).
    deps = {}
    for src in range(topology.num_routers):
        for dst in range(topology.num_routers):
            path = walk(topology, src, dst)
            tagged = [
                (edge, topology.vc_class(edge[0], dst)) for edge in path
            ]
            for holding, requesting in zip(tagged, tagged[1:]):
                deps.setdefault(holding, set()).add(requesting)

    # Iterative DFS three-colour cycle check.
    WHITE, GREY, BLACK = 0, 1, 2
    colour = dict.fromkeys(deps, WHITE)
    for root in deps:
        if colour[root] is not WHITE:
            continue
        stack = [(root, iter(deps[root]))]
        colour[root] = GREY
        while stack:
            node, children = stack[-1]
            for child in children:
                state = colour.get(child, WHITE)
                assert state is not GREY, (
                    f"channel-dependence cycle through {child} on "
                    f"{topology.describe()}"
                )
                if state is WHITE and child in deps:
                    colour[child] = GREY
                    stack.append((child, iter(deps[child])))
                    break
                colour[child] = BLACK
            else:
                colour[node] = BLACK
                stack.pop()


@settings(max_examples=40, deadline=None)
@given(topologies())
def test_vc_class_within_declared_band(topology):
    for src in range(topology.num_routers):
        for dst in range(topology.num_routers):
            assert 0 <= topology.vc_class(src, dst) \
                < topology.num_vc_classes


@settings(max_examples=40, deadline=None)
@given(topologies())
def test_mean_min_hops_matches_enumeration(topology):
    n = topology.num_routers
    total = sum(
        topology.min_hops(s, d) for s in range(n) for d in range(n)
    )
    assert abs(topology.mean_min_hops() - total / (n * n)) < 1e-9
