"""Property tests: precomputed operating-point tables mirror the models.

The hot-path contract of :class:`repro.core.tables.OperatingPointTable`:
every table cell is *exactly* the analytical model evaluated at that
operating point — the table is a cache, never an approximation.  These
tests sweep randomly generated ladders and band structures and hold both
technologies to a 1e-12 bound (in practice the values are identical
floats, since the build path calls the very same ``power()``).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MODULATOR, PowerAwareConfig
from repro.core.levels import BitRateLadder, OpticalBands
from repro.core.manager import NetworkPowerManager
from repro.core.tables import OperatingPointTable
from repro.errors import ConfigError
from repro.network.stats import StatsCollector
from repro.network.topology import ClusteredMesh
from repro.photonics.power_model import LinkPowerModel

MODELS = {
    "vcsel": LinkPowerModel.vcsel_link,
    "modulator": LinkPowerModel.modulator_link,
}


@st.composite
def ladders(draw):
    num_levels = draw(st.integers(min_value=2, max_value=8))
    min_rate = draw(st.floats(min_value=1e9, max_value=8e9,
                              allow_nan=False))
    max_rate = draw(st.floats(min_value=min_rate * 1.05, max_value=10e9,
                              allow_nan=False))
    return BitRateLadder.linear(min_rate, max_rate, num_levels)


class TestTableMirrorsModel:
    @settings(max_examples=60, deadline=None)
    @given(ladder=ladders(),
           technology=st.sampled_from(sorted(MODELS)))
    def test_every_cell_matches_the_analytical_model(self, ladder,
                                                     technology):
        model = MODELS[technology]()
        table = OperatingPointTable.build(model, ladder)
        assert table.num_levels == ladder.num_levels
        assert table.max_power == model.max_power
        for level, rate in enumerate(ladder.rates):
            assert abs(table.level_powers[level] - model.power(rate)) \
                <= 1e-12

    @settings(max_examples=40, deadline=None)
    @given(ladder=ladders(),
           technology=st.sampled_from(sorted(MODELS)))
    def test_three_band_grid_rows_match_model_everywhere(self, ladder,
                                                         technology):
        # The analytic models are band-invariant (electrical budget only),
        # so every band row must equal the same analytical evaluation.
        model = MODELS[technology]()
        bands = OpticalBands.paper_three_level()
        table = OperatingPointTable.build(model, ladder, bands)
        assert table.num_bands == bands.num_bands
        assert table.band_fractions == bands.power_fractions
        for band in range(bands.num_bands):
            for level, rate in enumerate(ladder.rates):
                assert abs(table.power(level, band) - model.power(rate)) \
                    <= 1e-12

    @settings(max_examples=40, deadline=None)
    @given(ladder=ladders())
    def test_tabulate_is_the_build_path(self, ladder):
        model = LinkPowerModel.vcsel_link()
        assert model.tabulate(ladder.rates) == tuple(
            model.power(rate) for rate in ladder.rates
        )
        assert OperatingPointTable.build(model, ladder).level_powers == \
            model.tabulate(ladder.rates)

    @settings(max_examples=40, deadline=None)
    @given(ladder=ladders())
    def test_attenuations_follow_band_fractions(self, ladder):
        table = OperatingPointTable.build(
            LinkPowerModel.modulator_link(), ladder,
            OpticalBands.paper_three_level(),
        )
        for fraction, db in zip(table.band_fractions,
                                table.attenuations_db):
            assert 10 ** (-db / 10.0) == pytest.approx(fraction)

    def test_mismatched_row_rejected(self):
        with pytest.raises(ConfigError):
            OperatingPointTable(
                rates=(5e9, 10e9), grid=((0.1,),),
                band_fractions=(1.0,), attenuations_db=(0.0,),
                max_power=0.2,
            )


class TestManagerUsesTheTable:
    def test_every_power_link_indexes_the_shared_table(self):
        network_kwargs = {"mesh_width": 2, "mesh_height": 2,
                          "nodes_per_cluster": 2, "buffer_depth": 8,
                          "num_vcs": 2}
        from repro.config import NetworkConfig

        network = NetworkConfig(**network_kwargs)
        topology = ClusteredMesh(network, StatsCollector())
        manager = NetworkPowerManager(
            topology, PowerAwareConfig(technology=MODULATOR,
                                       optical_levels=3), network)
        expected = manager.power_model.tabulate(manager.ladder.rates)
        assert manager.table.level_powers == expected
        for pal in manager.links:
            assert pal.level_powers is manager.table.level_powers
