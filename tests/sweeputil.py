"""Shared sweep fixtures for the executor/journal/chaos test modules.

A deliberately tiny scale (2x2 mesh, 2 nodes per cluster, short runs) so
fault-tolerance tests — which run whole sweeps many times over — stay
fast.  At 1200 cycles with rate 0.05 the network delivers plenty of
packets, so latency statistics are real numbers and bit-identity
comparisons are meaningful (a NaN latency would compare unequal to
itself and mask genuine divergence).
"""

from repro.config import NetworkConfig
from repro.experiments.configs import ExperimentScale
from repro.experiments.fig5 import uniform_factory
from repro.experiments.runner import SweepPoint

TINY = ExperimentScale(
    name="tiny",
    network=NetworkConfig(mesh_width=2, mesh_height=2, nodes_per_cluster=2,
                          buffer_depth=8, num_vcs=2),
    run_cycles=1_500,
    slow_constant_divisor=25,
    warmup_cycles=100,
    sample_interval=100,
    policy_window_cycles=100,
)


def tiny_point(label="p", seed=1, cycles=1_200, rate=0.05):
    """One fast, deterministic, picklable sweep point."""
    return SweepPoint(label=label, scale=TINY, power=None,
                      traffic_factory=uniform_factory(rate), seed=seed,
                      cycles=cycles)
