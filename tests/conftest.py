"""Shared fixtures for the test suite.

Keep simulation fixtures tiny: most tests need a 2x2 or 3x3 mesh with a
couple of nodes per cluster, which steps in microseconds.
"""

from __future__ import annotations

import pytest

from repro.config import (
    NetworkConfig,
    PolicyConfig,
    PowerAwareConfig,
    SimulationConfig,
    TransitionConfig,
)


@pytest.fixture
def tiny_network() -> NetworkConfig:
    """2x2 mesh, 2 nodes per rack, small buffers — steps very fast."""
    return NetworkConfig(mesh_width=2, mesh_height=2, nodes_per_cluster=2,
                         buffer_depth=8, num_vcs=2)


@pytest.fixture
def small_network_config() -> NetworkConfig:
    """3x3 mesh with paper-like router parameters."""
    return NetworkConfig(mesh_width=3, mesh_height=3, nodes_per_cluster=4)


@pytest.fixture
def fast_policy() -> PolicyConfig:
    """A short window so policy behaviour shows in brief runs."""
    return PolicyConfig(window_cycles=100)


@pytest.fixture
def fast_transitions() -> TransitionConfig:
    """Transition delays scaled to the short test windows."""
    return TransitionConfig(
        bit_rate_transition_cycles=2,
        voltage_transition_cycles=10,
        optical_transition_cycles=500,
        laser_epoch_cycles=1000,
    )


@pytest.fixture
def tiny_power(fast_policy, fast_transitions) -> PowerAwareConfig:
    return PowerAwareConfig(policy=fast_policy, transitions=fast_transitions)


@pytest.fixture
def tiny_sim_config(tiny_network, tiny_power) -> SimulationConfig:
    return SimulationConfig(network=tiny_network, power=tiny_power,
                            sample_interval=100)


@pytest.fixture
def tiny_baseline_config(tiny_network) -> SimulationConfig:
    return SimulationConfig(network=tiny_network, power=None,
                            sample_interval=100)
