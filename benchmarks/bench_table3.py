"""Table 3 benchmark: normalised power-performance of the trace workloads.

Checks the paper's aggregate claims: >70% power saving on average across
FFT/LU/Radix, latency cost bounded, and power-latency product improved for
every trace.  (Paper: power 0.22-0.25, latency 1.08-1.60, PLP 0.24-0.38;
our synthetic traces land in the same region — see EXPERIMENTS.md.)
"""

import pytest

from repro.experiments import fig7, table3

from conftest import run_once


@pytest.fixture(scope="module")
def results(smoke_scale):
    return fig7.run_all_benchmarks(smoke_scale)


def test_table3(benchmark, smoke_scale):
    results = run_once(benchmark, fig7.run_all_benchmarks, smoke_scale)
    rows = fig7.table3_rows(results)
    assert {str(r["trace"]) for r in rows} == {"FFT", "LU", "RADIX"}
    problems = table3.shape_check(rows)
    assert problems == []
    # The paper's headline: >75% savings on average (we accept >70% at
    # smoke scale).
    assert fig7.mean_power_savings(results) > 0.70
    for row in rows:
        assert float(row["power_latency_product"]) < 1.0
