"""Fig 7 benchmark: SPLASH2-like application traces.

Shape claims checked (paper Section 4.3.3): the power-aware network tracks
each benchmark's workload fluctuations — the normalised power curve rises
and falls with the injection envelope, is smoother than the injection
curve, and averages far below the non-power-aware network.
"""

import math

import pytest

from repro.experiments import fig7

from conftest import run_once


@pytest.mark.parametrize("bench_name", ["fft", "lu", "radix"])
def test_fig7_trace(benchmark, smoke_scale, bench_name):
    data = run_once(benchmark, fig7.run_benchmark, bench_name, smoke_scale)
    normalised = data["normalised"]
    assert normalised.power_ratio < 0.45
    assert data["aware"].delivery_fraction == pytest.approx(1.0, abs=1e-6)

    injection = [v for v in data["injection_series"] if not math.isnan(v)]
    power = [v for _, v in data["relative_power_series"]]
    assert len(power) > 5
    # Power tracks the workload: it varies, but stays in (floor, 1).
    assert 0.15 < min(power) and max(power) <= 1.0 + 1e-9
    # The envelope has real variance for the policy to track (FFT's smooth
    # swells have the lowest peak-to-mean contrast of the three).
    assert max(injection) > 1.3 * (sum(injection) / len(injection))
