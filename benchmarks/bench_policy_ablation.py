"""Ablation benchmark: the stabiliser additions to the paper's policy.

DESIGN.md documents three departures from the literal Table 1 policy
(stability guard, congestion rescue, pressure-aware utilisation).  This
benchmark runs the same medium-load workload with the full stabilised
policy and with the literal paper policy, demonstrating the congestion
cascade the stabilisers exist to prevent: the literal policy loses
throughput below saturation and pays far more latency.

Also microbenchmarks the controller decision path (it runs once per link
per window — cheapness matters).
"""

from repro.config import PolicyConfig
from repro.core.policy import LinkPolicyController
from repro.experiments.configs import power_config, reference_rates
from repro.experiments.fig5 import uniform_factory
from repro.experiments.runner import run_simulation

from conftest import run_once


def literal_paper_policy(window: int) -> PolicyConfig:
    return PolicyConfig(
        window_cycles=window,
        congestion_inhibits_downscale=False,
        rescue_threshold=1.0,
        downscale_headroom_check=False,
        pressure_aware_utilisation=False,
    )


def test_stabiliser_ablation(benchmark, smoke_scale):
    rate = reference_rates(smoke_scale.network)["medium"]

    def run_both():
        stabilised = run_simulation(
            smoke_scale, power_config(smoke_scale),
            uniform_factory(rate), label="stabilised",
        )
        literal = run_simulation(
            smoke_scale,
            power_config(
                smoke_scale,
                policy=literal_paper_policy(smoke_scale.policy_window_cycles),
            ),
            uniform_factory(rate), label="literal",
        )
        return stabilised, literal

    stabilised, literal = run_once(benchmark, run_both)
    # The stabilised policy delivers the offered load...
    assert stabilised.delivery_fraction > 0.97
    # ...at lower latency than the literal policy's cascade regime.
    assert stabilised.mean_latency < literal.mean_latency
    # Both still save real power.
    assert stabilised.relative_power < 0.6


def test_policy_decision_throughput(benchmark):
    controller = LinkPolicyController(PolicyConfig())
    samples = [(0.1 * (i % 10), 0.05 * (i % 20)) for i in range(64)]

    def decide():
        for lu, bu in samples:
            controller.observe(lu, bu, down_ratio=1.2)

    benchmark(decide)
    assert sum(controller.decisions.values()) > 0
