"""Table 2 benchmark: link component power budget and scaling trends.

Verifies the exact reproduction of the paper's component budget and times
the power-model evaluation (the per-level cost the simulator pays).
"""

import pytest

from repro.experiments import table2
from repro.photonics.power_model import LinkPowerModel

from conftest import run_once


def test_table2_reproduction(benchmark):
    problems = run_once(benchmark, table2.verify_against_paper)
    assert problems == []


def test_table2_link_totals(benchmark):
    totals = run_once(benchmark, table2.link_totals)
    assert totals["vcsel_at_10g_mw"] == pytest.approx(290.0)
    assert totals["vcsel_savings_at_5g"] == pytest.approx(0.79, abs=0.02)


def test_power_model_evaluation_speed(benchmark):
    """Microbenchmark: one full-link power evaluation."""
    model = LinkPowerModel.vcsel_link()

    def evaluate():
        return model.power(7e9)

    power = benchmark(evaluate)
    assert 0.0 < power < model.max_power
