"""Technology-comparison benchmark: electrical vs VCSEL vs modulator.

A design-space extension beyond the paper's two optical transmitters: the
electrical DVS link the architecture descends from.  Asserts the scaling
ordering (electrical saves the deepest fraction, the modulator the
shallowest — its driver supply is pinned) and the Fig. 6(d) opto ordering
at every ladder level.
"""

from repro.core.levels import BitRateLadder
from repro.photonics.electrical import ElectricalLinkModel, compare_technologies
from repro.photonics.power_model import LinkPowerModel

from conftest import run_once


def test_technology_power_curves(benchmark):
    ladder = BitRateLadder.paper_default()
    rows = run_once(benchmark, compare_technologies, tuple(ladder.rates))
    for row in rows:
        # Fig. 6(d): VCSEL at or below modulator at every level.
        assert row["vcsel"] <= row["modulator"] + 1e-12
    # All three technologies meet at the calibrated 10 Gb/s point.
    top = rows[-1]
    assert abs(top["vcsel"] - top["modulator"]) < 1e-12
    assert abs(top["electrical"] - top["vcsel"]) < 1e-3


def test_savings_fraction_ordering(benchmark):
    def savings():
        electrical = ElectricalLinkModel().as_power_model()
        vcsel = LinkPowerModel.vcsel_link()
        modulator = LinkPowerModel.modulator_link()
        return {
            "electrical": 1 - electrical.power(5e9) / electrical.max_power,
            "vcsel": vcsel.savings_fraction(5e9),
            "modulator": modulator.savings_fraction(5e9),
        }

    result = run_once(benchmark, savings)
    assert result["electrical"] >= result["vcsel"] >= result["modulator"]
    # Everyone saves most of their power at the ladder bottom.
    assert result["modulator"] > 0.7
