"""Fig 5(d)(e)(f) benchmark: latency/power/PLP versus utilisation threshold.

Shape claims checked (paper Section 4.3.1): higher thresholds scale links
more aggressively, so power must not increase with the threshold, while
latency must not decrease, at medium load.
"""

from repro.experiments import fig5

from conftest import run_once

THRESHOLDS = (0.45, 0.55, 0.65)


def test_fig5def_threshold_sweep(benchmark, smoke_scale):
    sweeps = run_once(benchmark, fig5.threshold_sweep, smoke_scale,
                      THRESHOLDS)
    medium = sweeps["medium"]
    powers = [r.power_ratio for r in medium.results]
    latencies = [r.latency_ratio for r in medium.results]
    # Power is (weakly) decreasing in the threshold at medium load ...
    assert powers[-1] <= powers[0] + 0.03
    # ... and the latency cost moves the other way (or stays put).
    assert latencies[-1] >= latencies[0] * 0.9
    # Light load is threshold-insensitive: few transitions either way.
    light = sweeps["light"]
    light_powers = [r.power_ratio for r in light.results]
    assert max(light_powers) - min(light_powers) < 0.1
