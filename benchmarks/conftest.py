"""Shared helpers for the benchmark suite.

Every figure/table benchmark runs its experiment harness once (via
``benchmark.pedantic``) at the ``smoke`` scale and asserts the paper's
*shape* claims on the result, so the suite doubles as an end-to-end
regression check.  EXPERIMENTS.md records the scaling caveats; the same
harnesses run at ``bench``/``paper`` scale via
``python -m repro.experiments.report``.
"""

from __future__ import annotations

import pytest

from repro.experiments.configs import get_scale


@pytest.fixture(scope="session")
def smoke_scale():
    return get_scale("smoke")


def run_once(benchmark, func, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
