"""Fig 5(a)(b)(c) benchmark: latency/power/PLP versus window size.

Shape claims checked (paper Section 4.3.1):

* the shortest window pays more latency than the chosen Tw at medium load
  (frequent transitions disable the link too often);
* power at the shortest window is not lower than at the chosen Tw under
  load (the network compensates for disable time with higher rates).
"""

import pytest

from repro.experiments import fig5
from repro.experiments.configs import reference_rates

from conftest import run_once

WINDOWS = (50, 200, 2000)


@pytest.fixture(scope="module")
def sweep(smoke_scale):
    loads = reference_rates(smoke_scale.network)
    return fig5.window_size_sweep(smoke_scale, windows=WINDOWS), loads


def test_fig5abc_window_sweep(benchmark, smoke_scale):
    sweeps = run_once(benchmark, fig5.window_size_sweep, smoke_scale,
                      WINDOWS)
    assert set(sweeps) == {"light", "medium", "heavy"}
    for series in sweeps.values():
        assert list(series.x_values) == list(WINDOWS)
        for result in series.results:
            assert result.power_ratio < 1.0
            assert result.latency_ratio >= 0.9

    medium = sweeps["medium"]
    shortest = medium.results[0]
    chosen = medium.results[1]
    # Tw too small hurts latency at medium load.
    assert shortest.latency_ratio >= chosen.latency_ratio * 0.95
    # All loads keep large power savings at the chosen window.
    for load in ("light", "medium", "heavy"):
        assert sweeps[load].results[1].power_ratio < 0.6
