"""Fig 6 benchmark: time-varying hot-spot traffic.

Shape claims checked (paper Section 4.3.2):

* (a) the generated injection profile steps through the schedule;
* (b) zeroing the voltage/bit-rate transition delays does not hurt — the
  voltage penalty is hidden by the ramp-before-frequency discipline and
  the relock penalty is small at Tw >> T_br;
* (c) the 3-optical-level modulator system works and pays (at most a
  bounded amount) for optical settles;
* (d) the VCSEL system's power stays at or below the modulator system's.
"""

import math

from repro.experiments import fig6

from conftest import run_once


def test_fig6a_injection_profile(benchmark, smoke_scale):
    series = run_once(benchmark, fig6.injection_profile, smoke_scale)
    values = [v for v in series if not math.isnan(v)]
    assert len(values) > 10
    # The schedule spans a >3x swing between its quietest and loudest
    # phases; the sampled profile must show it.
    assert max(values) > 3.0 * max(min(values), 1e-6)


def test_fig6b_transition_delay_ablation(benchmark, smoke_scale):
    results = run_once(benchmark, fig6.transition_delay_ablation, smoke_scale)
    base = results["non_power_aware"]["result"]
    aware = results["power_aware"]["result"]
    ideal = results["power_aware_ideal"]["result"]
    assert base.relative_power == 1.0
    assert aware.relative_power < 0.6
    # Transition delays cost a little latency, never a lot at Tw >> T_br.
    assert ideal.mean_latency <= aware.mean_latency * 1.1
    assert aware.mean_latency <= 1.5 * ideal.mean_latency
    assert base.mean_latency <= ideal.mean_latency


def test_fig6c_optical_levels(benchmark, smoke_scale):
    results = run_once(benchmark, fig6.optical_level_comparison, smoke_scale)
    single = results["single_optical_level"]["result"]
    triple = results["three_optical_levels"]["result"]
    # Both deliver the workload with big savings.
    for result in (single, triple):
        assert result.relative_power < 0.6
        assert result.delivery_fraction > 0.95
    # The optical settles bound: the 3-level system is within 2x of the
    # single-level system's latency (the paper's spikes are episodic).
    assert triple.mean_latency < 2.0 * single.mean_latency


def test_fig6d_vcsel_vs_modulator_power(benchmark, smoke_scale):
    results = run_once(benchmark, fig6.technology_power_comparison,
                       smoke_scale)
    vcsel = results["vcsel"]["result"].relative_power
    modulator = results["modulator"]["result"].relative_power
    assert vcsel <= modulator + 0.005
    # Both track the workload: well below the non-power-aware network.
    assert vcsel < 0.6 and modulator < 0.6
    # The power-over-time series exists and varies with the schedule.
    series = [v for _, v in results["modulator"]["relative_power_series"]]
    assert max(series) - min(series) > 0.05
