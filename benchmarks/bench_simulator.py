"""Simulator microbenchmarks: raw cycle throughput of the substrate.

Not a paper figure — these guard the performance envelope that makes the
figure benchmarks tractable (the pure-Python simulator must sustain
thousands of cycles per second at the scaled sizes).
"""

from repro.config import NetworkConfig, PowerAwareConfig, SimulationConfig
from repro.network.simulator import Simulator
from repro.traffic.uniform import UniformRandomTraffic


def make_sim(power: bool, rate: float) -> Simulator:
    network = NetworkConfig(mesh_width=4, mesh_height=4, nodes_per_cluster=4)
    config = SimulationConfig(
        network=network,
        power=PowerAwareConfig() if power else None,
        sample_interval=1000,
    )
    traffic = UniformRandomTraffic(network.num_nodes, rate, seed=3)
    return Simulator(config, traffic)


def test_idle_network_cycle_rate(benchmark):
    sim = make_sim(power=False, rate=0.0)

    def run_chunk():
        sim.run(2000)

    benchmark.pedantic(run_chunk, rounds=3, iterations=1, warmup_rounds=1)
    assert sim.stats.packets_created == 0


def test_light_load_baseline_cycle_rate(benchmark):
    # Light injection (0.02 pkt/node/cyc) is where the active-component
    # registries pay off: most links/routers/nodes are idle each cycle.
    sim = make_sim(power=False, rate=0.02)

    def run_chunk():
        sim.run(2000)

    benchmark.pedantic(run_chunk, rounds=3, iterations=1, warmup_rounds=1)
    assert sim.stats.packets_delivered > 0


def test_light_load_power_aware_cycle_rate(benchmark):
    sim = make_sim(power=True, rate=0.02)

    def run_chunk():
        sim.run(2000)

    benchmark.pedantic(run_chunk, rounds=3, iterations=1, warmup_rounds=1)
    assert sim.stats.packets_delivered > 0
    assert sim.relative_power() < 1.0


def test_moderate_load_power_aware_cycle_rate(benchmark):
    # 0.25 pkt/node/cyc is the contended-but-not-saturated regime the
    # router work-list optimisations target: every router has work most
    # cycles, but most (port, VC) pairs are still empty.  A fresh
    # reference run cross-checks that the engine's specialised run() loop
    # and the phase-by-phase step path stay bit-identical.
    sim = make_sim(power=True, rate=0.25)

    def run_chunk():
        sim.run(2000)

    benchmark.pedantic(run_chunk, rounds=3, iterations=1, warmup_rounds=1)
    assert sim.stats.packets_delivered > 0
    assert sim.relative_power() < 1.0
    reference = make_sim(power=True, rate=0.25)
    while reference.cycle < sim.cycle:
        reference.step()
    assert reference.summary() == sim.summary()


def test_loaded_baseline_cycle_rate(benchmark):
    sim = make_sim(power=False, rate=0.8)

    def run_chunk():
        sim.run(2000)

    benchmark.pedantic(run_chunk, rounds=3, iterations=1, warmup_rounds=1)
    assert sim.stats.packets_delivered > 0


def test_loaded_power_aware_cycle_rate(benchmark):
    sim = make_sim(power=True, rate=0.8)

    def run_chunk():
        sim.run(2000)

    benchmark.pedantic(run_chunk, rounds=3, iterations=1, warmup_rounds=1)
    assert sim.stats.packets_delivered > 0
    assert sim.relative_power() < 1.0


def test_light_load_power_aware_traced_cycle_rate(benchmark):
    # Full-kind telemetry into a ring buffer must stay within 10% of the
    # untraced power-aware run (the acceptance envelope for the recorder's
    # hot-path cost); the run itself must stay bit-identical.
    from repro.telemetry.config import TelemetryConfig

    network = NetworkConfig(mesh_width=4, mesh_height=4, nodes_per_cluster=4)
    config = SimulationConfig(
        network=network,
        power=PowerAwareConfig(),
        sample_interval=1000,
        telemetry=TelemetryConfig(buffer_events=4096),
    )
    traffic = UniformRandomTraffic(network.num_nodes, 0.02, seed=3)
    sim = Simulator(config, traffic)

    def run_chunk():
        sim.run(2000)

    benchmark.pedantic(run_chunk, rounds=3, iterations=1, warmup_rounds=1)
    assert sim.stats.packets_delivered > 0
    assert sim.telemetry is not None and sim.telemetry.counts
    reference = make_sim(power=True, rate=0.02)
    reference.run(sim.cycle)
    assert reference.summary() == sim.summary()
