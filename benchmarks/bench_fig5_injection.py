"""Fig 5(g)(h) benchmark: latency and power versus injection rate.

Shape claims checked (paper Section 4.3.1):

* (g) the 5-10 Gb/s power-aware network tracks the non-power-aware
  network's throughput; the static 3.3 Gb/s network saturates much
  earlier;
* (h) relative power rises with injection rate; large savings remain at
  light load; VCSEL stays at or below modulator power.
"""

import pytest

from repro.experiments import fig5
from repro.metrics.latency import zero_load_latency

from conftest import run_once

FRACTIONS = (0.15, 0.4, 0.6)


@pytest.fixture(scope="module")
def curves(smoke_scale):
    return fig5.injection_sweep(smoke_scale, fractions=FRACTIONS)


def test_fig5g_latency_vs_injection(benchmark, smoke_scale):
    curves = run_once(benchmark, fig5.injection_sweep, smoke_scale,
                      None, FRACTIONS)
    zero_load = zero_load_latency(smoke_scale.network, packet_size=5)
    throughput = {
        name: fig5.throughput_of_curve(points, zero_load)
        for name, points in curves.items()
    }
    # The static 3.3 Gb/s network saturates no later than the PA 5-10G one.
    assert throughput["static_3.3"] <= throughput["vcsel_5_10"] + 1e-9
    # The PA network keeps at least the middle operating point.
    rates = [rate for rate, _ in curves["vcsel_5_10"]]
    assert throughput["vcsel_5_10"] >= rates[1] - 1e-9

    # (h): power rises with load and VCSEL <= modulator everywhere.
    for technology in ("vcsel_5_10", "modulator_5_10"):
        powers = [r.relative_power for _, r in curves[technology]]
        assert powers[0] < 0.5            # big savings at light load
        assert powers[0] <= powers[-1] + 0.02
    for (_, vcsel_r), (_, mod_r) in zip(curves["vcsel_5_10"],
                                        curves["modulator_5_10"]):
        assert vcsel_r.relative_power <= mod_r.relative_power + 0.01
    # The wider 3.3-10 ladder saves at least as much at light load.
    assert curves["vcsel_3.3_10"][0][1].relative_power <= \
        curves["vcsel_5_10"][0][1].relative_power + 0.01
