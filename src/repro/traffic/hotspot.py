"""Time-varying hot-spot traffic (paper Section 4.2, workload 2).

"Packets are injected at different injection rates at different phases of
the simulation (temporal variance), and node 4 in rack(3,5) accepts four
times the traffic injected into others (spatial variance)."

The trace is a piecewise-constant injection-rate schedule (Fig. 6(a) shows
step changes of varying magnitude) with destination probabilities skewed so
one node receives ``hotspot_weight`` times its uniform share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.traffic.base import DEFAULT_PACKET_SIZE, PoissonSource


@dataclass(frozen=True)
class Phase:
    """One constant-rate segment of the schedule."""

    start_cycle: int
    injection_rate: float

    def __post_init__(self) -> None:
        if self.start_cycle < 0:
            raise ConfigError("phase start_cycle must be >= 0")
        if self.injection_rate < 0.0:
            raise ConfigError("phase injection_rate must be >= 0")


def paper_like_schedule(scale: int = 1) -> tuple[Phase, ...]:
    """A schedule shaped like Fig. 6(a), compressible by ``scale``.

    Fig. 6(a) shows the injection rate stepping through small moves and one
    large jump (the jump between 1.0e6 and 1.1e6 cycles triggers an optical
    power-level change in the 3-level modulator system).  ``scale`` divides
    every phase length so scaled-down simulations keep the same shape.
    """
    if scale < 1:
        raise ConfigError(f"scale must be >= 1, got {scale!r}")
    base = [
        (0, 1.0),
        (200_000, 1.6),
        (400_000, 1.2),
        (600_000, 2.0),
        (800_000, 1.4),
        (1_000_000, 4.2),   # the big jump that forces an optical transition
        (1_100_000, 4.6),   # small move within the top optical band
        (1_300_000, 4.0),
        (1_500_000, 1.2),
        (1_700_000, 0.6),
    ]
    return tuple(Phase(start // scale, rate) for start, rate in base)


class HotspotTraffic(PoissonSource):
    """Phased injection with a single hot destination.

    Parameters
    ----------
    num_nodes:
        Processing nodes in the system.
    phases:
        The piecewise-constant schedule, sorted by start cycle; the first
        phase must start at cycle 0.
    hotspot_node:
        The node receiving extra traffic (paper: node 4 in rack(3,5)).
    hotspot_weight:
        How many uniform shares the hot node receives (paper: 4).
    """

    def __init__(self, num_nodes: int, phases: tuple[Phase, ...],
                 hotspot_node: int, hotspot_weight: float = 4.0,
                 packet_size: int = DEFAULT_PACKET_SIZE, seed: int = 1):
        super().__init__(num_nodes, injection_rate=phases[0].injection_rate
                         if phases else 0.0,
                         packet_size=packet_size, seed=seed)
        if not phases:
            raise ConfigError("need at least one phase")
        starts = [p.start_cycle for p in phases]
        if starts != sorted(starts):
            raise ConfigError("phases must be sorted by start_cycle")
        if starts[0] != 0:
            raise ConfigError("the first phase must start at cycle 0")
        if len(set(starts)) != len(starts):
            raise ConfigError("phase start cycles must be distinct")
        if not 0 <= hotspot_node < num_nodes:
            raise ConfigError(
                f"hotspot_node must be in [0, {num_nodes}), got {hotspot_node!r}"
            )
        if hotspot_weight < 1.0:
            raise ConfigError(
                f"hotspot_weight must be >= 1, got {hotspot_weight!r}"
            )
        self.phases = phases
        self.hotspot_node = hotspot_node
        self.hotspot_weight = hotspot_weight
        self._phase_index = 0
        # Probability that any one packet targets the hot node: the hot node
        # holds `weight` shares among (num_nodes - 1 + weight) total.
        self._hot_probability = hotspot_weight / (num_nodes - 1.0 + hotspot_weight)

    def _rate_at(self, now: int) -> float:
        phases = self.phases
        index = self._phase_index
        while index + 1 < len(phases) and now >= phases[index + 1].start_cycle:
            index += 1
        self._phase_index = index
        return phases[index].injection_rate

    def _pick_pair(self, now: int) -> tuple[int, int]:
        if self.rng.random() < self._hot_probability:
            dst = self.hotspot_node
        else:
            # Uniform over the cold nodes.
            dst = int(self.rng.integers(self.num_nodes - 1))
            if dst >= self.hotspot_node:
                dst += 1
        src = int(self.rng.integers(self.num_nodes - 1))
        if src >= dst:
            src += 1
        return src, dst

    def current_phase(self, now: int) -> Phase:
        """The schedule segment in force at cycle ``now``."""
        active = self.phases[0]
        for phase in self.phases:
            if phase.start_cycle <= now:
                active = phase
            else:
                break
        return active
