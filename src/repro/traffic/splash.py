"""Synthetic SPLASH2-like traffic traces (paper Section 4.2, workload 3).

The paper replays traces of three SPLASH2 benchmarks — FFT, LU and Radix —
captured with the RSIM multiprocessor simulator on 64 processors (average
packet size 48 flits).  Those traces are not available, so we synthesise
traces whose *injection-rate envelopes* reproduce each benchmark's published
signature (paper Fig. 7(a)(c)(e)):

* **FFT** — long, smooth swells: traffic peaks and troughs over long
  periods (which is why the paper's policy tracks it with the least latency
  penalty).
* **LU** — periodic factorisation bursts whose amplitude decays as the
  active panel shrinks, over a small base of boundary traffic.
* **Radix** — alternating high-rate sort/exchange phases and near-idle
  local-count phases: abrupt square-ish swings.

The policy controller only observes link/buffer utilisation averaged over
>= 1000-cycle windows, so reproducing the rate envelope (burst period,
amplitude, duty cycle) reproduces the power-tracking behaviour the paper
measures; per-packet ordering details are irrelevant at that time scale.

Packet sizes are bimodal (8-flit control, 72-flit data) mixed to hit the
48-flit mean the paper reports.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.traffic.trace import TraceRecord

BENCHMARKS = ("fft", "lu", "radix")

#: Bimodal packet-size mix hitting the paper's 48-flit average:
#: 0.375 * 8 + 0.625 * 72 = 48.
CONTROL_FLITS = 8
DATA_FLITS = 72
DATA_FRACTION = 0.625


def fft_envelope(duration: int, peak_rate: float = 0.28,
                 base_rate: float = 0.05) -> np.ndarray:
    """FFT: three long smooth swells across the trace (sin^2 humps)."""
    _check_envelope_args(duration, peak_rate, base_rate)
    t = np.arange(duration)
    swell = np.sin(np.pi * 3.0 * t / duration) ** 2
    return base_rate + (peak_rate - base_rate) * swell


def lu_envelope(duration: int, peak_rate: float = 0.35,
                base_rate: float = 0.04, bursts: int = 10) -> np.ndarray:
    """LU: periodic bursts with linearly decaying amplitude.

    Each outer factorisation step broadcasts a panel whose size shrinks as
    elimination proceeds, so successive communication bursts weaken.
    """
    _check_envelope_args(duration, peak_rate, base_rate)
    if bursts < 1:
        raise ConfigError(f"bursts must be >= 1, got {bursts!r}")
    t = np.arange(duration)
    period = duration / bursts
    phase = (t % period) / period
    in_burst = phase < 0.4
    burst_index = t // period
    decay = 1.0 - 0.7 * burst_index / max(1, bursts - 1)
    rate = np.full(duration, base_rate)
    rate[in_burst] += (peak_rate - base_rate) * decay[in_burst]
    return rate


def radix_envelope(duration: int, peak_rate: float = 0.32,
                   base_rate: float = 0.02, phases: int = 6) -> np.ndarray:
    """Radix: alternating all-to-all key-exchange and local-count phases."""
    _check_envelope_args(duration, peak_rate, base_rate)
    if phases < 1:
        raise ConfigError(f"phases must be >= 1, got {phases!r}")
    t = np.arange(duration)
    period = duration / phases
    phase = (t % period) / period
    rate = np.where(phase < 0.5, peak_rate, base_rate)
    return rate.astype(float)


_ENVELOPES = {
    "fft": fft_envelope,
    "lu": lu_envelope,
    "radix": radix_envelope,
}


def _check_envelope_args(duration: int, peak_rate: float,
                         base_rate: float) -> None:
    if duration < 1:
        raise ConfigError(f"duration must be >= 1 cycle, got {duration!r}")
    if not 0.0 <= base_rate <= peak_rate:
        raise ConfigError(
            f"need 0 <= base_rate <= peak_rate, got ({base_rate}, {peak_rate})"
        )


def envelope_for(benchmark: str, duration: int,
                 intensity: float = 1.0) -> np.ndarray:
    """The injection-rate envelope (packets/cycle) of a benchmark.

    ``intensity`` scales the whole curve, letting experiments push the same
    shape closer to or further from network saturation.
    """
    if benchmark not in _ENVELOPES:
        raise ConfigError(
            f"unknown benchmark {benchmark!r}; known: {BENCHMARKS}"
        )
    if intensity <= 0.0:
        raise ConfigError(f"intensity must be > 0, got {intensity!r}")
    return _ENVELOPES[benchmark](duration) * intensity


#: Mean packets per message burst.  Parallel applications emit traffic in
#: trains (a panel broadcast, a key-exchange round, a barrier release), not
#: as a smooth per-cycle trickle; the paper itself leans on the
#: self-similar, bursty nature of real traffic [14].  Each burst is a train
#: of packets from one source starting in the same cycle; a 15-packet train
#: of ~48-flit packets keeps a link busy for 1-3 policy windows, which is
#: the regime where the paper's controller can track activity.
DEFAULT_BURST_MEAN = 15.0


def generate_splash_trace(benchmark: str, num_nodes: int, duration: int,
                          seed: int = 1, intensity: float = 1.0,
                          burst_mean: float = DEFAULT_BURST_MEAN
                          ) -> list[TraceRecord]:
    """Synthesise a SPLASH2-like trace as replayable records.

    Burst events are Poisson draws from the benchmark envelope (thinned by
    the mean burst size); each event emits a geometric-sized train of
    packets from one source to uniform destinations over the ``num_nodes``
    processors the benchmark is parallelised onto (the paper uses 64 nodes
    in 8 racks).  ``burst_mean=1`` degenerates to smooth Poisson traffic.
    """
    if num_nodes < 2:
        raise ConfigError(f"need >= 2 nodes, got {num_nodes!r}")
    if burst_mean < 1.0:
        raise ConfigError(f"burst_mean must be >= 1, got {burst_mean!r}")
    rng = np.random.default_rng(seed)
    rates = envelope_for(benchmark, duration, intensity)
    burst_counts = rng.poisson(rates / burst_mean)
    records: list[TraceRecord] = []
    nonzero = np.nonzero(burst_counts)[0]
    geometric_p = 1.0 / burst_mean
    for cycle in nonzero:
        for _ in range(int(burst_counts[cycle])):
            src = int(rng.integers(num_nodes))
            train = int(rng.geometric(geometric_p)) if burst_mean > 1.0 else 1
            for _ in range(train):
                dst = int(rng.integers(num_nodes - 1))
                if dst >= src:
                    dst += 1
                size = (DATA_FLITS if rng.random() < DATA_FRACTION
                        else CONTROL_FLITS)
                records.append(TraceRecord(int(cycle), src, dst, size))
    return records


def mean_packet_size(records: list[TraceRecord]) -> float:
    """Average packet size of a trace, flits (NaN for an empty trace)."""
    if not records:
        return float("nan")
    return sum(r.size for r in records) / len(records)
