"""Workload generators and trace handling (paper Section 4.2).

Three workload families drive the evaluation:

* :class:`~repro.traffic.uniform.UniformRandomTraffic` — constant-rate
  uniform traffic, the policy stress test (Fig. 5);
* :class:`~repro.traffic.hotspot.HotspotTraffic` — the time-varying
  hot-spot trace with spatial skew (Fig. 6);
* :mod:`~repro.traffic.splash` — synthetic SPLASH2-like traces replayed via
  :class:`~repro.traffic.trace.TraceReplaySource` (Fig. 7, Table 3).

:mod:`~repro.traffic.permutation` adds classic permutation patterns as a
design-space extension.
"""

from repro.traffic.base import DEFAULT_PACKET_SIZE, PoissonSource, TrafficSource
from repro.traffic.hotspot import HotspotTraffic, Phase, paper_like_schedule
from repro.traffic.onoff import OnOffTraffic
from repro.traffic.permutation import PERMUTATIONS, PermutationTraffic
from repro.traffic.splash import (
    BENCHMARKS,
    envelope_for,
    generate_splash_trace,
    mean_packet_size,
)
from repro.traffic.trace import (
    TraceRecord,
    TraceReplaySource,
    read_trace,
    read_trace_file,
    trace_from_string,
    write_trace,
    write_trace_file,
)
from repro.traffic.uniform import UniformRandomTraffic

__all__ = [
    "BENCHMARKS",
    "DEFAULT_PACKET_SIZE",
    "HotspotTraffic",
    "OnOffTraffic",
    "PERMUTATIONS",
    "PermutationTraffic",
    "Phase",
    "PoissonSource",
    "TraceRecord",
    "TraceReplaySource",
    "TrafficSource",
    "UniformRandomTraffic",
    "envelope_for",
    "generate_splash_trace",
    "mean_packet_size",
    "paper_like_schedule",
    "read_trace",
    "read_trace_file",
    "trace_from_string",
    "write_trace",
    "write_trace_file",
]
