"""Permutation traffic patterns (design-space extension).

Classic adversarial patterns used throughout the interconnection-network
literature; not part of the paper's evaluation, but useful for exercising
the simulator (they stress specific mesh links, creating the strong spatial
variance that a power-aware network exploits).  Each pattern maps a source
node to a fixed destination node.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ConfigError
from repro.traffic.base import DEFAULT_PACKET_SIZE, PoissonSource

PermutationFunction = Callable[[int, int], int]


def bit_complement(src: int, num_nodes: int) -> int:
    """Destination = bitwise complement of the source id."""
    return (num_nodes - 1) ^ src


def bit_reverse(src: int, num_nodes: int) -> int:
    """Destination = bit-reversed source id (num_nodes must be 2^k)."""
    bits = (num_nodes - 1).bit_length()
    out = 0
    for i in range(bits):
        if src & (1 << i):
            out |= 1 << (bits - 1 - i)
    return out


def transpose(src: int, num_nodes: int) -> int:
    """Destination = source id with its upper/lower bit halves swapped."""
    bits = (num_nodes - 1).bit_length()
    if bits % 2:
        raise ConfigError(
            f"transpose needs an even number of id bits, got {bits}"
        )
    half = bits // 2
    low = src & ((1 << half) - 1)
    high = src >> half
    return (low << half) | high


PERMUTATIONS: dict[str, PermutationFunction] = {
    "bit_complement": bit_complement,
    "bit_reverse": bit_reverse,
    "transpose": transpose,
}


class PermutationTraffic(PoissonSource):
    """Constant-rate traffic under a fixed permutation pattern."""

    def __init__(self, num_nodes: int, injection_rate: float,
                 pattern: str = "bit_complement",
                 packet_size: int = DEFAULT_PACKET_SIZE, seed: int = 1):
        super().__init__(num_nodes, injection_rate, packet_size, seed)
        if num_nodes & (num_nodes - 1):
            raise ConfigError(
                f"permutation patterns need a power-of-two node count, "
                f"got {num_nodes!r}"
            )
        if pattern not in PERMUTATIONS:
            raise ConfigError(
                f"unknown pattern {pattern!r}; known: {sorted(PERMUTATIONS)}"
            )
        self.pattern = pattern
        self._function = PERMUTATIONS[pattern]
        # Nodes whose image is themselves can never send under the pattern.
        self._senders = [
            n for n in range(num_nodes) if self._function(n, num_nodes) != n
        ]
        if not self._senders:
            raise ConfigError(
                f"pattern {pattern!r} is the identity on {num_nodes} nodes"
            )

    def _pick_pair(self, now: int) -> tuple[int, int]:
        src = self._senders[int(self.rng.integers(len(self._senders)))]
        return src, self._function(src, self.num_nodes)
