"""Traffic trace file format, reader, writer and replay source.

The paper's realistic workloads are traces of SPLASH2 applications captured
on the RSIM multiprocessor simulator.  We define a plain-text trace format
(one record per line, comments with ``#``)::

    <cycle> <src_node> <dst_node> <size_flits>

sorted by cycle.  :class:`TraceReplaySource` replays a trace (from file or
memory) into the simulator; :func:`write_trace`/:func:`read_trace` round-trip
the format.  The synthetic SPLASH2-like generators in
:mod:`repro.traffic.splash` emit these records, so generated workloads can
be archived and replayed byte-identically.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, TextIO

from repro.errors import ConfigError, TraceFormatError
from repro.network.packet import Packet
from repro.traffic.base import TrafficSource


@dataclass(frozen=True, order=True)
class TraceRecord:
    """One packet injection event of a trace."""

    cycle: int
    src: int
    dst: int
    size: int

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise TraceFormatError(f"cycle must be >= 0, got {self.cycle!r}")
        if self.src < 0 or self.dst < 0:
            raise TraceFormatError("node ids must be >= 0")
        if self.src == self.dst:
            raise TraceFormatError(f"src == dst == {self.src!r}")
        if self.size < 1:
            raise TraceFormatError(f"size must be >= 1 flit, got {self.size!r}")


def write_trace(records: Iterable[TraceRecord], stream: TextIO) -> int:
    """Write records to ``stream``; returns the number written."""
    count = 0
    stream.write("# repro traffic trace v1: cycle src dst size_flits\n")
    for record in records:
        stream.write(f"{record.cycle} {record.src} {record.dst} {record.size}\n")
        count += 1
    return count


def write_trace_file(records: Iterable[TraceRecord], path: str | Path) -> int:
    """Write records to a file; returns the number written."""
    with open(path, "w", encoding="ascii") as stream:
        return write_trace(records, stream)


def read_trace(stream: TextIO) -> list[TraceRecord]:
    """Parse a trace stream, validating ordering and field syntax."""
    records: list[TraceRecord] = []
    last_cycle = -1
    for line_no, line in enumerate(stream, start=1):
        body = line.split("#", 1)[0].strip()
        if not body:
            continue
        fields = body.split()
        if len(fields) != 4:
            raise TraceFormatError(
                f"line {line_no}: expected 4 fields, got {len(fields)}: {body!r}"
            )
        try:
            cycle, src, dst, size = (int(f) for f in fields)
        except ValueError as exc:
            raise TraceFormatError(
                f"line {line_no}: non-integer field in {body!r}"
            ) from exc
        if cycle < last_cycle:
            raise TraceFormatError(
                f"line {line_no}: cycles must be non-decreasing "
                f"({cycle} after {last_cycle})"
            )
        last_cycle = cycle
        records.append(TraceRecord(cycle, src, dst, size))
    return records


def read_trace_file(path: str | Path) -> list[TraceRecord]:
    """Parse a trace file."""
    with open(path, "r", encoding="ascii") as stream:
        return read_trace(stream)


def trace_from_string(text: str) -> list[TraceRecord]:
    """Parse a trace from an in-memory string (tests and docs)."""
    return read_trace(io.StringIO(text))


class TraceReplaySource(TrafficSource):
    """Replays a sorted list of :class:`TraceRecord` into the simulator."""

    def __init__(self, num_nodes: int, records: list[TraceRecord]):
        super().__init__(num_nodes, seed=0)
        cycles = [r.cycle for r in records]
        if cycles != sorted(cycles):
            raise TraceFormatError("trace records must be sorted by cycle")
        for record in records:
            if record.src >= num_nodes or record.dst >= num_nodes:
                raise ConfigError(
                    f"trace references node >= num_nodes={num_nodes}: {record!r}"
                )
        self.records = records
        self._cursor = 0

    @classmethod
    def from_file(cls, num_nodes: int, path: str | Path) -> "TraceReplaySource":
        return cls(num_nodes, read_trace_file(path))

    def generate(self, now: int) -> list[Packet]:
        packets = []
        records = self.records
        cursor = self._cursor
        while cursor < len(records) and records[cursor].cycle <= now:
            record = records[cursor]
            packets.append(
                self._make_packet(record.src, record.dst, record.size, now)
            )
            cursor += 1
        self._cursor = cursor
        return packets

    def exhausted(self, now: int) -> bool:
        return self._cursor >= len(self.records)

    @property
    def remaining(self) -> int:
        """Records not yet injected."""
        return len(self.records) - self._cursor
