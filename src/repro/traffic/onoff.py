"""On/off (bursty) traffic source — a self-similar-traffic building block.

The paper motivates power-aware networks with the "substantial temporal
and spatial variance" of real traffic and cites the classic self-similar
Ethernet study [14].  This source gives each node an independent two-state
(ON/OFF) modulated Poisson process: geometrically distributed dwell times
in each state, injection only while ON.  Aggregating many such sources
produces the long-range-dependent burstiness that exercises the policy far
harder than plain Poisson traffic — a design-space extension beyond the
paper's three workloads.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.network.packet import Packet
from repro.traffic.base import DEFAULT_PACKET_SIZE, TrafficSource


class OnOffTraffic(TrafficSource):
    """Per-node ON/OFF modulated uniform traffic.

    Parameters
    ----------
    num_nodes:
        Processing nodes in the system.
    injection_rate:
        *Long-run average* packets per cycle, network-wide; the ON-state
        rate is ``injection_rate / duty_cycle`` so the average holds.
    duty_cycle:
        Fraction of time a node spends ON, in (0, 1].
    mean_burst_cycles:
        Mean dwell time in the ON state (geometric); the OFF dwell is
        derived from the duty cycle.
    packet_size:
        Flits per packet.
    """

    def __init__(self, num_nodes: int, injection_rate: float,
                 duty_cycle: float = 0.2, mean_burst_cycles: float = 400.0,
                 packet_size: int = DEFAULT_PACKET_SIZE, seed: int = 1):
        super().__init__(num_nodes, seed)
        if injection_rate < 0.0:
            raise ConfigError("injection_rate must be >= 0")
        if not 0.0 < duty_cycle <= 1.0:
            raise ConfigError(
                f"duty_cycle must lie in (0, 1], got {duty_cycle!r}"
            )
        if mean_burst_cycles < 1.0:
            raise ConfigError("mean_burst_cycles must be >= 1")
        if packet_size < 1:
            raise ConfigError("packet_size must be >= 1")
        self.injection_rate = injection_rate
        self.duty_cycle = duty_cycle
        self.mean_burst_cycles = mean_burst_cycles
        self.packet_size = packet_size
        #: Per-node ON-state packet rate.
        self.on_rate = injection_rate / duty_cycle / num_nodes
        mean_off = mean_burst_cycles * (1.0 - duty_cycle) / duty_cycle
        self._p_on_to_off = 1.0 / mean_burst_cycles
        self._p_off_to_on = 1.0 / max(1.0, mean_off)
        self._on = np.zeros(num_nodes, dtype=bool)
        # Start each node in its stationary state.
        self._on |= self.rng.random(num_nodes) < duty_cycle

    def on_fraction(self) -> float:
        """Fraction of nodes currently in the ON state."""
        return float(self._on.mean())

    def generate(self, now: int) -> list[Packet]:
        rng = self.rng
        # State transitions for every node, vectorised.
        draws = rng.random(self.num_nodes)
        turning_off = self._on & (draws < self._p_on_to_off)
        turning_on = ~self._on & (draws < self._p_off_to_on)
        self._on ^= turning_off | turning_on

        on_nodes = np.nonzero(self._on)[0]
        if on_nodes.size == 0 or self.on_rate <= 0.0:
            return []
        counts = rng.poisson(self.on_rate, size=on_nodes.size)
        packets: list[Packet] = []
        for node, count in zip(on_nodes, counts):
            for _ in range(int(count)):
                dst = self._random_destination(int(node))
                packets.append(
                    self._make_packet(int(node), dst, self.packet_size, now)
                )
        return packets
