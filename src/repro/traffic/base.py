"""Traffic-source interface and shared machinery.

A traffic source is asked once per cycle for the packets created that cycle.
Sources draw all randomness from a seeded :class:`numpy.random.Generator`,
so a (config, seed) pair reproduces a run bit for bit.

Injection rates follow the paper's convention: **packets per cycle summed
over the whole network** (e.g. "1.25 packets/cycle" for the light uniform
load).  Aggregate packet counts per cycle are Poisson-distributed with that
mean, which matches independent thin Bernoulli processes at 512 nodes while
costing O(packets) instead of O(nodes) per cycle.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigError
from repro.network.packet import Packet

#: Default synthetic-traffic packet size, flits.  The paper does not state
#: the synthetic packet length; 5 flits is the conventional short-packet
#: choice in mesh studies (the SPLASH traces use their own 48-flit average).
DEFAULT_PACKET_SIZE = 5


class TrafficSource(abc.ABC):
    """Base class for every workload generator."""

    def __init__(self, num_nodes: int, seed: int = 1):
        if num_nodes < 2:
            raise ConfigError(f"need >= 2 nodes for traffic, got {num_nodes!r}")
        self.num_nodes = num_nodes
        self.rng = np.random.default_rng(seed)
        self._next_packet_id = 0

    def _make_packet(self, src: int, dst: int, size: int, now: int) -> Packet:
        packet = Packet(self._next_packet_id, src, dst, size, now)
        self._next_packet_id += 1
        return packet

    def _random_destination(self, src: int) -> int:
        """A uniformly random destination different from ``src``."""
        dst = int(self.rng.integers(self.num_nodes - 1))
        return dst if dst < src else dst + 1

    @abc.abstractmethod
    def generate(self, now: int) -> list[Packet]:
        """Packets created at cycle ``now`` (possibly empty)."""

    def exhausted(self, now: int) -> bool:
        """Whether the source will never generate again (trace replay).

        Open-loop synthetic sources never exhaust.
        """
        return False


class PoissonSource(TrafficSource):
    """Shared machinery for open-loop sources with a Poisson packet count.

    Subclasses decide the (src, dst) of each packet via :meth:`_pick_pair`
    and may vary the per-cycle mean via :meth:`_rate_at`.
    """

    def __init__(self, num_nodes: int, injection_rate: float,
                 packet_size: int = DEFAULT_PACKET_SIZE, seed: int = 1):
        super().__init__(num_nodes, seed)
        if injection_rate < 0.0:
            raise ConfigError(
                f"injection_rate must be >= 0 packets/cycle, got {injection_rate!r}"
            )
        if packet_size < 1:
            raise ConfigError(f"packet_size must be >= 1, got {packet_size!r}")
        self.injection_rate = injection_rate
        self.packet_size = packet_size

    def _rate_at(self, now: int) -> float:
        """Network-wide mean packets/cycle at cycle ``now``."""
        return self.injection_rate

    @abc.abstractmethod
    def _pick_pair(self, now: int) -> tuple[int, int]:
        """Choose a (src, dst) node pair for one packet."""

    def generate(self, now: int) -> list[Packet]:
        rate = self._rate_at(now)
        if rate <= 0.0:
            return []
        count = int(self.rng.poisson(rate))
        packets = []
        for _ in range(count):
            src, dst = self._pick_pair(now)
            packets.append(self._make_packet(src, dst, self.packet_size, now))
        return packets
