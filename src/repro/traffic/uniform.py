"""Uniform random traffic (paper Section 4.2, workload 1).

"Each node has equal probability of sending to any other node, at a constant
injection rate."  Its lack of temporal variance makes it the worst case for
the power-aware policy — there are no idle phases to exploit — so the paper
uses it to stress the control policy (Fig. 5).
"""

from __future__ import annotations

from repro.traffic.base import DEFAULT_PACKET_SIZE, PoissonSource


class UniformRandomTraffic(PoissonSource):
    """Constant-rate uniform random source-destination traffic.

    Parameters
    ----------
    num_nodes:
        Processing nodes in the system.
    injection_rate:
        Network-wide mean packets per cycle (the paper sweeps 1.25 - 5+).
    packet_size:
        Flits per packet.
    seed:
        RNG seed for reproducible runs.
    """

    def __init__(self, num_nodes: int, injection_rate: float,
                 packet_size: int = DEFAULT_PACKET_SIZE, seed: int = 1):
        super().__init__(num_nodes, injection_rate, packet_size, seed)

    def _pick_pair(self, now: int) -> tuple[int, int]:
        src = int(self.rng.integers(self.num_nodes))
        return src, self._random_destination(src)
