"""Clock and data recovery (CDR) model (paper Section 2.2.3).

The CDR is a PLL-based circuit that re-times an internal clock to the
incoming data and slices out digital bits.  PLL and clock buffers dominate
its power, which is insensitive to the actual bit pattern and follows the
switched-capacitance expression:

* Eq. 9 — ``P = alpha3 * C_CDR * Vdd^2 * BR``.

Dynamic power control: frequency and voltage scale together, so power tracks
``Vdd^2 * BR``.  The catch is lock acquisition — after any bit-rate change
the CDR must re-lock to the new rate, during which the link cannot carry
data.  The paper conservatively disables the link for ``T_br`` (20 network
cycles) on every frequency transition; that delay is surfaced here as
:attr:`ClockDataRecovery.relock_cycles` and enforced by the link layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.photonics.constants import MAX_BIT_RATE, NOMINAL_VDD
from repro.units import require_fraction, require_positive


#: Link-disable time on a bit-rate transition, in network cycles (paper
#: Section 4.1: "the link will be disabled for 20 network cycles after the
#: bit-rate transitions to give the CDR time to relock").
DEFAULT_RELOCK_CYCLES = 20


@dataclass(frozen=True)
class ClockDataRecovery:
    """A PLL-based CDR stage.

    Parameters
    ----------
    capacitance:
        Effective switched capacitance ``C_CDR`` in farads.
    activity:
        ``alpha3`` — probability of charging/discharging that capacitance
        per bit time.
    relock_cycles:
        Network cycles the link stays disabled after a bit-rate change while
        the timing loop recaptures lock.
    """

    capacitance: float = 9.2593e-12
    activity: float = 0.5
    relock_cycles: int = DEFAULT_RELOCK_CYCLES

    def __post_init__(self) -> None:
        require_positive("capacitance", self.capacitance)
        require_fraction("activity", self.activity)
        if self.activity == 0.0:
            raise ConfigError("activity must be > 0")
        if self.relock_cycles < 0:
            raise ConfigError(
                f"relock_cycles must be non-negative, got {self.relock_cycles!r}"
            )

    @classmethod
    def calibrated_to(
        cls,
        power: float,
        *,
        bit_rate: float = MAX_BIT_RATE,
        vdd: float = NOMINAL_VDD,
        activity: float = 0.5,
        relock_cycles: int = DEFAULT_RELOCK_CYCLES,
    ) -> "ClockDataRecovery":
        """Build a CDR dissipating ``power`` watts at an operating point.

        Solves Eq. 9 for the capacitance.  Table 2 calibration: 150 mW at
        10 Gb/s / 1.8 V with alpha3 = 0.5 gives ~9.26 pF.
        """
        require_positive("power", power)
        require_positive("bit_rate", bit_rate)
        require_positive("vdd", vdd)
        capacitance = power / (activity * vdd * vdd * bit_rate)
        return cls(
            capacitance=capacitance, activity=activity, relock_cycles=relock_cycles
        )

    def power(self, bit_rate: float, vdd: float = NOMINAL_VDD) -> float:
        """Eq. 9: ``alpha3 * C_CDR * Vdd^2 * BR`` in watts."""
        require_positive("bit_rate", bit_rate)
        require_positive("vdd", vdd)
        return self.activity * self.capacitance * vdd * vdd * bit_rate
