"""Physical constants and technology parameters for the photonics models.

Technology values follow the paper's assumptions: 0.18 um CMOS link
circuitry, 1.55 um telecom wavelength, 10 Gb/s maximum bit rate with a
1.8 V nominal supply.
"""

from __future__ import annotations

# Fundamental constants (SI).
ELECTRON_CHARGE = 1.602176634e-19
"""Charge of an electron, coulombs (exact, 2019 SI)."""

PLANCK_CONSTANT = 6.62607015e-34
"""Planck constant, joule-seconds (exact, 2019 SI)."""

SPEED_OF_LIGHT = 299792458.0
"""Speed of light in vacuum, metres per second (exact)."""

# Technology assumptions from the paper (Section 4.1).
NOMINAL_VDD = 1.8
"""Nominal supply voltage for 0.18 um CMOS, volts."""

MIN_VDD = 0.9
"""Lowest supply used by the paper's ladder (5 Gb/s point), volts."""

MAX_BIT_RATE = 10e9
"""Maximum link bit rate, bits per second (paper Section 4.1)."""

TELECOM_WAVELENGTH = 1.55e-6
"""Optical carrier wavelength, metres (1.55 um band, paper refs [18])."""

RECEIVER_SENSITIVITY_10G = 25e-6
"""Receiver sensitivity at 10 Gb/s, watts (paper Section 2.1.2: 25 uW)."""

TARGET_BER = 1e-12
"""Bit error rate targeted by inter-chassis links (paper Section 2.2.1)."""
