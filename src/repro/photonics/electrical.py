"""Electrical DVS link model — the prior art the paper builds on.

The paper's power-aware architecture descends from dynamic-voltage-scaled
*electrical* links (Shang, Peh, Jha, HPCA 2003 [24]; Kim & Horowitz's
adaptive-supply serial links [12]).  This module models such a link so the
opto-electronic system can be compared against its electrical ancestor —
the comparison the introduction implies when it notes optical links are
displacing electrical ones at these distances.

An electrical serial link's power splits into:

* a **driver/serialiser** term scaling as ``Vdd^2 * BR`` (switched
  capacitance, like every CMOS stage);
* a **termination/swing** term scaling as ``Vdd * BR`` (current-mode
  signalling into a matched load);
* a **receiver + CDR** term scaling as ``Vdd^2 * BR``.

Unlike the opto link there is no constant laser bias and no externally
powered light source — but the electrical channel's loss forces large
swings at inter-chassis distances, which is what the default calibration
reflects (total power comparable to the 290 mW opto link at 10 Gb/s, with
a higher equalisation share at longer reach).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.photonics.constants import MAX_BIT_RATE, NOMINAL_VDD
from repro.photonics.power_model import (
    ComponentBudget,
    LinkPowerModel,
    ScalingTrend,
)
from repro.units import mw, require_non_negative, require_positive


@dataclass(frozen=True)
class ElectricalLinkModel:
    """A DVS-capable electrical serial link.

    Parameters
    ----------
    driver_power:
        Driver + serialiser power at the maximum operating point, watts.
    termination_power:
        Termination/swing power at the maximum operating point, watts.
    receiver_power:
        Receiver + CDR power at the maximum operating point, watts.
    reach_loss_db:
        Channel attenuation at Nyquist; adds equalisation power
        proportional to the loss (a first-order FFE/DFE cost model).
    equalisation_mw_per_db:
        Equalisation power per dB of channel loss at the maximum rate.
    """

    driver_power: float = mw(70.0)
    termination_power: float = mw(60.0)
    receiver_power: float = mw(120.0)
    reach_loss_db: float = 10.0
    equalisation_mw_per_db: float = 4.0

    def __post_init__(self) -> None:
        require_positive("driver_power", self.driver_power)
        require_positive("termination_power", self.termination_power)
        require_positive("receiver_power", self.receiver_power)
        require_non_negative("reach_loss_db", self.reach_loss_db)
        require_non_negative("equalisation_mw_per_db",
                             self.equalisation_mw_per_db)

    @property
    def equalisation_power(self) -> float:
        """Equalisation power at the maximum operating point, watts."""
        return mw(self.equalisation_mw_per_db) * self.reach_loss_db

    def as_power_model(self) -> LinkPowerModel:
        """Expose the electrical link through the shared model interface.

        The returned :class:`LinkPowerModel` plugs into the same power
        manager as the opto models, enabling apples-to-apples network
        simulations.
        """
        return LinkPowerModel(
            components=(
                ComponentBudget("driver", self.driver_power,
                                ScalingTrend.VDD2_BR),
                ComponentBudget("termination", self.termination_power,
                                ScalingTrend.VDD_BR),
                ComponentBudget("equalisation", max(self.equalisation_power,
                                                    1e-12),
                                ScalingTrend.VDD_BR),
                ComponentBudget("receiver_cdr", self.receiver_power,
                                ScalingTrend.VDD2_BR),
            ),
            technology="electrical",
        )

    def power(self, bit_rate: float, vdd: float | None = None) -> float:
        """Total link power at an operating point, watts."""
        return self.as_power_model().power(bit_rate, vdd)

    @property
    def max_power(self) -> float:
        return self.power(MAX_BIT_RATE, NOMINAL_VDD)


def compare_technologies(bit_rates: tuple[float, ...] = (5e9, 7e9, 10e9)
                         ) -> list[dict[str, float]]:
    """Per-rate power of electrical vs VCSEL vs modulator links, watts.

    The shape the comparison shows: the electrical link scales *better*
    under DVS (every term carries a Vdd factor, no laser bias floor), but
    its maximum-rate power grows with reach (equalisation), which is why
    optics win at inter-chassis distances in the first place.
    """
    if not bit_rates:
        raise ConfigError("need at least one bit rate to compare")
    electrical = ElectricalLinkModel().as_power_model()
    vcsel = LinkPowerModel.vcsel_link()
    modulator = LinkPowerModel.modulator_link()
    rows = []
    for rate in bit_rates:
        rows.append({
            "bit_rate": rate,
            "electrical": electrical.power(rate),
            "vcsel": vcsel.power(rate),
            "modulator": modulator.power(rate),
        })
    return rows
