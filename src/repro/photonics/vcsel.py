"""Vertical-cavity surface-emitting laser (VCSEL) model.

Implements the transmitter option of paper Section 2.1.1: a directly
modulated VCSEL.  The device is biased slightly above its threshold current
``Ith`` so stimulated emission stays stable at high bit rates; the driver
adds a modulation current ``Im`` on top of the bias for 1-bits.

Equations reproduced:

* Eq. 1 — emitted optical power ``Pe = S * (I - Ith)`` above threshold.
* Eq. 2 — average electrical power ``P = (Ibias + Im/2) * Vbias`` assuming
  equiprobable 1s and 0s.

Dynamic power control: the modulation current delivered by the driver scales
almost linearly with the driver supply voltage, so scaling ``Vdd`` with bit
rate scales both the VCSEL's electrical power and its optical output while
preserving the contrast ratio (paper Section 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.photonics.constants import NOMINAL_VDD
from repro.units import require_positive


@dataclass(frozen=True)
class Vcsel:
    """A directly modulated VCSEL and its drive-current operating point.

    Parameters
    ----------
    threshold_current:
        Lasing threshold ``Ith`` in amps.  Oxide-aperture-confined devices
        reach hundreds of micro-amps (paper Section 2.3).
    slope_efficiency:
        Conversion slope ``S`` in watts per amp (Eq. 1).
    bias_current:
        Constant bias ``Ibias`` in amps; must be at or above threshold so the
        device never drops out of stimulated emission.
    modulation_current:
        Modulation swing ``Im`` in amps delivered for a 1-bit when the driver
        runs at :data:`~repro.photonics.constants.NOMINAL_VDD`.
    bias_voltage:
        Supply voltage ``Vbias`` across the VCSEL in volts.
    """

    threshold_current: float = 0.5e-3
    slope_efficiency: float = 0.3
    bias_current: float = 1.0e-3
    modulation_current: float = 31.3e-3
    bias_voltage: float = NOMINAL_VDD

    def __post_init__(self) -> None:
        require_positive("threshold_current", self.threshold_current)
        require_positive("slope_efficiency", self.slope_efficiency)
        require_positive("bias_current", self.bias_current)
        require_positive("modulation_current", self.modulation_current)
        require_positive("bias_voltage", self.bias_voltage)
        if self.bias_current < self.threshold_current:
            raise ConfigError(
                "bias_current must be >= threshold_current so the VCSEL stays "
                f"stimulated: got Ibias={self.bias_current!r} < "
                f"Ith={self.threshold_current!r}"
            )

    @classmethod
    def calibrated_to(
        cls,
        electrical_power: float,
        *,
        threshold_current: float = 0.5e-3,
        slope_efficiency: float = 0.3,
        bias_current: float = 1.0e-3,
        bias_voltage: float = NOMINAL_VDD,
    ) -> "Vcsel":
        """Build a VCSEL whose Eq. 2 average power equals ``electrical_power``.

        Solves Eq. 2 for the modulation current, which is the free parameter
        once the bias point is fixed.  Used to calibrate the physics model to
        Table 2's 30 mW budget entry.
        """
        require_positive("electrical_power", electrical_power)
        modulation = 2.0 * (electrical_power / bias_voltage - bias_current)
        if modulation <= 0.0:
            raise ConfigError(
                f"target power {electrical_power!r} W is below the bias-only "
                f"floor {bias_current * bias_voltage!r} W"
            )
        return cls(
            threshold_current=threshold_current,
            slope_efficiency=slope_efficiency,
            bias_current=bias_current,
            modulation_current=modulation,
            bias_voltage=bias_voltage,
        )

    def modulation_current_at(self, vdd: float) -> float:
        """Modulation current delivered when the driver supply is ``vdd``.

        The driver's output current scales approximately linearly with its
        supply voltage (paper Section 3.2.2), so halving ``Vdd`` halves
        ``Im`` — and, through Eq. 1, roughly halves the optical swing.
        """
        require_positive("vdd", vdd)
        return self.modulation_current * vdd / NOMINAL_VDD

    def emitted_power(self, drive_current: float) -> float:
        """Eq. 1: emitted optical power for a given drive current, watts.

        Below threshold the device emits (approximately) nothing; the linear
        regime applies above threshold.
        """
        if drive_current <= self.threshold_current:
            return 0.0
        return self.slope_efficiency * (drive_current - self.threshold_current)

    def optical_one_level(self, vdd: float = NOMINAL_VDD) -> float:
        """Optical output power for a 1-bit, watts."""
        return self.emitted_power(self.bias_current + self.modulation_current_at(vdd))

    def optical_zero_level(self, vdd: float = NOMINAL_VDD) -> float:
        """Optical output power for a 0-bit, watts (bias-only drive)."""
        return self.emitted_power(self.bias_current)

    def contrast_ratio(self, vdd: float = NOMINAL_VDD) -> float:
        """Optical contrast ratio (1-level over 0-level).

        Returns ``inf`` when the bias point sits exactly at threshold (zero
        0-level emission).
        """
        zero = self.optical_zero_level(vdd)
        one = self.optical_one_level(vdd)
        if zero == 0.0:
            return float("inf")
        return one / zero

    def average_electrical_power(self, vdd: float = NOMINAL_VDD) -> float:
        """Eq. 2: average electrical power for equiprobable bits, watts.

        ``P = (Ibias + Im/2) * Vbias`` with ``Im`` scaled to the driver
        supply ``vdd``.
        """
        average_current = self.bias_current + self.modulation_current_at(vdd) / 2.0
        return average_current * self.bias_voltage
