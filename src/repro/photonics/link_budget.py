"""End-to-end optical link budget analysis.

Ties the transmitter, fiber plant and receiver models together to answer the
feasibility questions behind the paper's design choices:

* does enough light survive the splitter tree + modulator to meet the
  receiver sensitivity at a given bit rate?  (modulator-based links)
* how much laser power does the external source need for N fibers?
* what optical margin does each of the paper's three optical power bands
  leave at the bit rates it must support?

All powers are watts internally; dB helpers are provided for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.photonics.detector import Photodetector
from repro.photonics.laser import ExternalLaserSource, VariableOpticalAttenuator
from repro.photonics.modulator import MqwModulator
from repro.units import (
    db_to_ratio,
    ratio_to_db,
    require_non_negative,
    require_positive,
)


@dataclass(frozen=True)
class LinkBudget:
    """Optical budget of one modulator-based link.

    Parameters
    ----------
    source:
        The external laser and its splitter tree.
    modulator:
        The MQW modulator at the transmitter.
    detector:
        The photodetector at the receiver.
    fiber_loss_db:
        Propagation + connector loss between modulator and detector, dB.
    """

    source: ExternalLaserSource = field(default_factory=ExternalLaserSource)
    modulator: MqwModulator = field(default_factory=MqwModulator)
    detector: Photodetector = field(default_factory=Photodetector)
    fiber_loss_db: float = 1.0

    def __post_init__(self) -> None:
        require_non_negative("fiber_loss_db", self.fiber_loss_db)

    def received_power(self, attenuation_db: float = 0.0) -> float:
        """Optical power reaching the detector for a 1-bit, watts.

        ``attenuation_db`` is the VOA setting on this fiber.
        """
        require_non_negative("attenuation_db", attenuation_db)
        at_modulator = self.source.power_per_fiber() / db_to_ratio(
            attenuation_db
        )
        after_modulator = self.modulator.transmitted_on(at_modulator)
        return after_modulator / db_to_ratio(self.fiber_loss_db)

    def margin_db(self, bit_rate: float, attenuation_db: float = 0.0) -> float:
        """Optical margin over the receiver sensitivity, dB.

        Positive margins mean the link closes at the target BER; negative
        margins mean the light level is insufficient at this bit rate.
        """
        received = self.received_power(attenuation_db)
        needed = self.detector.sensitivity(bit_rate)
        return ratio_to_db(received / needed)

    def closes(self, bit_rate: float, attenuation_db: float = 0.0) -> bool:
        """Whether the link meets sensitivity at ``bit_rate``."""
        return self.margin_db(bit_rate, attenuation_db) >= 0.0

    def max_attenuation_db(self, bit_rate: float) -> float:
        """Largest VOA attenuation that still closes the link, dB.

        This is exactly the headroom the power-aware optical levels exploit:
        at lower bit rates the sensitivity requirement drops, so more
        attenuation (less delivered light, less absorbed power) is allowed.
        Raises :class:`ConfigError` if the link cannot close even with zero
        attenuation.
        """
        margin = self.margin_db(bit_rate, attenuation_db=0.0)
        if margin < 0.0:
            raise ConfigError(
                f"link cannot close at {bit_rate!r} b/s even unattenuated "
                f"(margin {margin:.2f} dB)"
            )
        return margin

    def required_laser_power(self, bit_rate: float, margin_db: float = 3.0) -> float:
        """Laser output power needed to close every fiber with margin, watts."""
        require_non_negative("margin_db", margin_db)
        require_positive("bit_rate", bit_rate)
        needed_received = self.detector.sensitivity(bit_rate) * db_to_ratio(
            margin_db
        )
        path_loss_db = (
            self.source.tree.total_loss_db
            + self.fiber_loss_db
            - ratio_to_db(1.0 - self.modulator.insertion_loss)
        )
        return needed_received * db_to_ratio(path_loss_db)

    def band_report(
        self,
        voa: VariableOpticalAttenuator,
        band_max_rates: tuple[float, ...],
    ) -> list[dict[str, float]]:
        """Margin per optical band at that band's maximum bit rate.

        ``band_max_rates`` lists, per VOA level, the highest bit rate that
        band must support (paper Section 3.2.2: Plow < 4 Gb/s, Pmid 4-6,
        Phigh 6-10).  Returns one row per level with the received power,
        required sensitivity and dB margin.
        """
        if len(band_max_rates) != voa.num_levels:
            raise ConfigError(
                "band_max_rates must have one entry per VOA level: "
                f"{len(band_max_rates)} != {voa.num_levels}"
            )
        rows = []
        for level, max_rate in enumerate(band_max_rates):
            attenuation = voa.attenuations_db[level]
            rows.append(
                {
                    "level": float(level),
                    "attenuation_db": attenuation,
                    "max_bit_rate": max_rate,
                    "received_w": self.received_power(attenuation),
                    "sensitivity_w": self.detector.sensitivity(max_rate),
                    "margin_db": self.margin_db(max_rate, attenuation),
                }
            )
        return rows
