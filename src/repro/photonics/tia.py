"""Transimpedance amplifier (TIA) model (paper Section 2.2.2).

The TIA is a common-source amplifier with a feedback resistance ``Rf`` that
converts the detector's photocurrent ``Ip`` into a voltage swing
``Ip * Rf``.  Its usable bandwidth is set by the bias current of the
internal amplifier:

* Eq. 7 — ``Ibias = c * BRmax`` for an implementation constant ``c``;
* Eq. 8 — ``P = Ibias * Vdd = c * BRmax * Vdd`` (photocurrent and dark
  current contributions are negligible next to the bias current).

Dynamic power control: when the link bit rate scales down, the maximum
bandwidth the TIA must support scales down by the same factor, so the bias
current — and with it the supply voltage — can be reduced.  Power therefore
scales as ``Vdd * BR``.  A side benefit: the output swing needed at a lower
supply is smaller, so less photocurrent (less light) suffices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.photonics.constants import MAX_BIT_RATE, NOMINAL_VDD
from repro.units import require_positive


@dataclass(frozen=True)
class TransimpedanceAmplifier:
    """A TIA receiver stage.

    Parameters
    ----------
    bias_constant:
        ``c`` of Eq. 7 in amp-seconds per bit: bias current per unit of
        supported bit rate.
    feedback_resistance:
        ``Rf`` in ohms; sets the current-to-voltage conversion gain.
    """

    bias_constant: float = 5.5556e-12
    feedback_resistance: float = 5_000.0

    def __post_init__(self) -> None:
        require_positive("bias_constant", self.bias_constant)
        require_positive("feedback_resistance", self.feedback_resistance)

    @classmethod
    def calibrated_to(
        cls,
        power: float,
        *,
        bit_rate: float = MAX_BIT_RATE,
        vdd: float = NOMINAL_VDD,
        feedback_resistance: float = 5_000.0,
    ) -> "TransimpedanceAmplifier":
        """Build a TIA dissipating ``power`` watts at an operating point.

        Solves Eq. 8 for ``c``.  Table 2 calibration: 100 mW at
        10 Gb/s / 1.8 V gives c ~ 5.56 pA*s/bit.
        """
        require_positive("power", power)
        require_positive("bit_rate", bit_rate)
        require_positive("vdd", vdd)
        return cls(
            bias_constant=power / (bit_rate * vdd),
            feedback_resistance=feedback_resistance,
        )

    def bias_current(self, max_bit_rate: float) -> float:
        """Eq. 7: bias current needed to support ``max_bit_rate``, amps."""
        require_positive("max_bit_rate", max_bit_rate)
        return self.bias_constant * max_bit_rate

    def power(self, bit_rate: float, vdd: float = NOMINAL_VDD) -> float:
        """Eq. 8: ``c * BR * Vdd`` in watts.

        In the power-aware link the supported maximum bandwidth is tuned to
        the current bit rate, so ``BRmax == bit_rate`` here.
        """
        require_positive("vdd", vdd)
        return self.bias_current(bit_rate) * vdd

    def output_swing(self, photocurrent: float) -> float:
        """Output voltage swing ``Ip * Rf`` for a given photocurrent, volts."""
        require_positive("photocurrent", photocurrent)
        return photocurrent * self.feedback_resistance

    def required_photocurrent(self, swing: float) -> float:
        """Photocurrent needed to produce ``swing`` volts at the output.

        With ``Rf`` fixed, a lower supply voltage needs a smaller swing and
        therefore less photocurrent — the light-level saving the paper notes
        for voltage-scaled receivers.
        """
        require_positive("swing", swing)
        return swing / self.feedback_resistance
