"""Composed per-link power model — paper Table 2.

The network-level evaluation of the paper does not re-derive circuit physics
every cycle; it uses each component's power at the maximum operating point
(Table 2) and scales it by the component's trend as bit rate and supply
voltage change:

====================  ============  ==============
Component             Power @10G    Scaling trend
====================  ============  ==============
VCSEL                 30 mW         ~ Vdd
VCSEL driver          10 mW         ~ Vdd^2 * BR
Modulator driver      40 mW         ~ BR (Vdd fixed)
TIA                   100 mW        ~ Vdd * BR
CDR                   150 mW        ~ Vdd^2 * BR
====================  ============  ==============

A VCSEL link is {VCSEL, VCSEL driver, TIA, CDR} = 290 mW at 10 Gb/s; a
modulator link is {modulator driver, TIA, CDR} = 290 mW (the external laser
is outside the system power budget).  The supply voltage scales linearly
with bit rate (1.8 V at 10 Gb/s down to 0.9 V at 5 Gb/s), except for the
modulator driver whose voltage is pinned to preserve contrast ratio.

The detailed physics models in the sibling modules are calibrated to the
same budget; :func:`physics_table2` cross-checks the two views.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.photonics.cdr import ClockDataRecovery
from repro.photonics.constants import MAX_BIT_RATE, NOMINAL_VDD
from repro.photonics.detector import Photodetector
from repro.photonics.drivers import InverterChainDriver
from repro.photonics.tia import TransimpedanceAmplifier
from repro.photonics.vcsel import Vcsel
from repro.units import mw, require_positive, to_mw


class ScalingTrend(enum.Enum):
    """How a component's power scales from its maximum operating point."""

    CONSTANT = "constant"
    VDD = "Vdd"
    BR = "BR"
    VDD_BR = "Vdd*BR"
    VDD2_BR = "Vdd^2*BR"

    def factor(self, bit_rate_fraction: float, vdd_fraction: float) -> float:
        """Scaling factor for normalised (bit rate, Vdd) fractions in (0, 1]."""
        if self is ScalingTrend.CONSTANT:
            return 1.0
        if self is ScalingTrend.VDD:
            return vdd_fraction
        if self is ScalingTrend.BR:
            return bit_rate_fraction
        if self is ScalingTrend.VDD_BR:
            return vdd_fraction * bit_rate_fraction
        return vdd_fraction * vdd_fraction * bit_rate_fraction


@dataclass(frozen=True)
class ComponentBudget:
    """One Table 2 row: a component's peak power and scaling behaviour.

    ``vdd_scales`` is False for components whose supply voltage is pinned at
    nominal regardless of bit rate (the modulator driver).
    """

    name: str
    power_at_max: float
    trend: ScalingTrend
    vdd_scales: bool = True

    def __post_init__(self) -> None:
        require_positive(f"{self.name} power_at_max", self.power_at_max)

    def power(self, bit_rate: float, vdd: float) -> float:
        """Power at an operating point, watts."""
        require_positive("bit_rate", bit_rate)
        require_positive("vdd", vdd)
        effective_vdd = vdd if self.vdd_scales else NOMINAL_VDD
        factor = self.trend.factor(bit_rate / MAX_BIT_RATE, effective_vdd / NOMINAL_VDD)
        return self.power_at_max * factor


def vdd_for_bit_rate(bit_rate: float, max_bit_rate: float = MAX_BIT_RATE) -> float:
    """Supply voltage for a bit rate under the paper's linear scaling.

    The paper assumes the required supply to the VCSEL driver, TIA and CDR
    scales linearly with bit rate [12, 28]: 1.8 V at 10 Gb/s, 0.9 V at
    5 Gb/s.
    """
    require_positive("bit_rate", bit_rate)
    require_positive("max_bit_rate", max_bit_rate)
    if bit_rate > max_bit_rate:
        raise ConfigError(
            f"bit_rate {bit_rate!r} exceeds max_bit_rate {max_bit_rate!r}"
        )
    return NOMINAL_VDD * bit_rate / max_bit_rate


@dataclass(frozen=True)
class LinkPowerModel:
    """Power model of one unidirectional opto-electronic link.

    Composes Table 2 component budgets; :meth:`power` evaluates the link's
    total power at a bit rate, deriving the scaled supply voltage unless one
    is given explicitly.
    """

    components: tuple[ComponentBudget, ...]
    technology: str = "unspecified"
    max_bit_rate: float = MAX_BIT_RATE

    def __post_init__(self) -> None:
        if not self.components:
            raise ConfigError("a link power model needs at least one component")
        require_positive("max_bit_rate", self.max_bit_rate)
        names = [c.name for c in self.components]
        if len(names) != len(set(names)):
            raise ConfigError(f"duplicate component names: {names!r}")

    @classmethod
    def vcsel_link(cls, include_detector: bool = False) -> "LinkPowerModel":
        """Table 2 budget for a VCSEL-based link (290 mW at 10 Gb/s).

        ``include_detector`` adds the <1 mW photodetector that the paper
        tracks but leaves out of Table 2's transmitter/receiver totals.
        """
        components = [
            ComponentBudget("vcsel", mw(30.0), ScalingTrend.VDD),
            ComponentBudget("vcsel_driver", mw(10.0), ScalingTrend.VDD2_BR),
            ComponentBudget("tia", mw(100.0), ScalingTrend.VDD_BR),
            ComponentBudget("cdr", mw(150.0), ScalingTrend.VDD2_BR),
        ]
        if include_detector:
            components.append(
                ComponentBudget("detector", mw(1.0), ScalingTrend.BR)
            )
        return cls(components=tuple(components), technology="vcsel")

    @classmethod
    def modulator_link(cls, include_detector: bool = False) -> "LinkPowerModel":
        """Table 2 budget for an MQW-modulator link (290 mW at 10 Gb/s).

        The modulator driver's supply voltage is pinned at nominal (paper
        Section 2.3), so its power scales only with bit rate.  The external
        laser's power is excluded from the system budget; the modulator's
        own absorption (<1 mW) can be folded into the detector flag.
        """
        components = [
            ComponentBudget(
                "modulator_driver", mw(40.0), ScalingTrend.VDD2_BR, vdd_scales=False
            ),
            ComponentBudget("tia", mw(100.0), ScalingTrend.VDD_BR),
            ComponentBudget("cdr", mw(150.0), ScalingTrend.VDD2_BR),
        ]
        if include_detector:
            components.append(
                ComponentBudget("detector", mw(1.0), ScalingTrend.BR)
            )
        return cls(components=tuple(components), technology="modulator")

    @property
    def max_power(self) -> float:
        """Total link power at the maximum bit rate, watts."""
        return self.power(self.max_bit_rate)

    def power(self, bit_rate: float, vdd: float | None = None) -> float:
        """Total link power at ``bit_rate``, watts.

        When ``vdd`` is omitted, the paper's linear voltage/bit-rate scaling
        is applied (components with pinned supplies ignore it either way).
        """
        supply = vdd_for_bit_rate(bit_rate, self.max_bit_rate) if vdd is None else vdd
        return sum(c.power(bit_rate, supply) for c in self.components)

    def tabulate(self, rates: Sequence[float]) -> tuple[float, ...]:
        """Evaluate :meth:`power` over a rate ladder, for table builders.

        The build-time entry point of the precomputed operating-point
        tables (:class:`~repro.core.tables.OperatingPointTable`): hot paths
        index the result instead of re-running the component scaling math.
        """
        return tuple(self.power(rate) for rate in rates)

    def component_powers(
        self, bit_rate: float, vdd: float | None = None
    ) -> dict[str, float]:
        """Per-component power breakdown at an operating point, watts."""
        supply = vdd_for_bit_rate(bit_rate, self.max_bit_rate) if vdd is None else vdd
        return {c.name: c.power(bit_rate, supply) for c in self.components}

    def savings_fraction(self, bit_rate: float) -> float:
        """Fractional power saving versus running at the maximum bit rate."""
        return 1.0 - self.power(bit_rate) / self.max_power

    def table_rows(self) -> list[dict[str, str]]:
        """Human-readable Table 2 rows (name, power in mW, trend)."""
        return [
            {
                "component": c.name,
                "power_mw": f"{to_mw(c.power_at_max):.1f}",
                "trend": c.trend.value if c.vdd_scales else ScalingTrend.BR.value,
            }
            for c in self.components
        ]


@dataclass(frozen=True)
class PhysicsLinkModel:
    """Physics-equation view of the same link, for cross-checking Table 2.

    Each component is the calibrated physics model from its own module;
    :meth:`power` sums their equation-level power at an operating point.
    The trend-based :class:`LinkPowerModel` and this model agree at every
    (BR, Vdd) point by construction, because Eqs. 2, 3, 5, 8, 9 *are* the
    scaling trends (a property test asserts this).
    """

    vcsel: Vcsel = field(
        default_factory=lambda: Vcsel.calibrated_to(mw(30.0))
    )
    vcsel_driver: InverterChainDriver = field(
        default_factory=lambda: InverterChainDriver.calibrated_to(mw(10.0))
    )
    modulator_driver: InverterChainDriver = field(
        default_factory=lambda: InverterChainDriver.calibrated_to(mw(40.0))
    )
    tia: TransimpedanceAmplifier = field(
        default_factory=lambda: TransimpedanceAmplifier.calibrated_to(mw(100.0))
    )
    cdr: ClockDataRecovery = field(
        default_factory=lambda: ClockDataRecovery.calibrated_to(mw(150.0))
    )
    detector: Photodetector = field(default_factory=Photodetector)

    def power(self, bit_rate: float, vdd: float | None = None, *,
              technology: str = "vcsel") -> float:
        """Equation-level link power at an operating point, watts."""
        supply = vdd_for_bit_rate(bit_rate) if vdd is None else vdd
        receiver = self.tia.power(bit_rate, supply) + self.cdr.power(bit_rate, supply)
        if technology == "vcsel":
            # Eq. 2 is affine in Vdd through Im; Table 2's "~Vdd" trend treats
            # the whole VCSEL as proportional.  We report the proportional view
            # here and keep the affine equation on the Vcsel class itself.
            transmitter = (
                self.vcsel.average_electrical_power(NOMINAL_VDD) * supply / NOMINAL_VDD
                + self.vcsel_driver.power(bit_rate, supply)
            )
        elif technology == "modulator":
            transmitter = self.modulator_driver.power(bit_rate, NOMINAL_VDD)
        else:
            raise ConfigError(
                f"technology must be 'vcsel' or 'modulator', got {technology!r}"
            )
        return transmitter + receiver


def physics_table2(technology: str = "vcsel") -> dict[str, float]:
    """Per-component physics-model power at 10 Gb/s / 1.8 V, in mW.

    Used by tests and the Table 2 benchmark to confirm the calibrated
    physics equations land exactly on the paper's budget.
    """
    model = PhysicsLinkModel()
    rows = {
        "vcsel": to_mw(model.vcsel.average_electrical_power(NOMINAL_VDD)),
        "vcsel_driver": to_mw(model.vcsel_driver.power(MAX_BIT_RATE, NOMINAL_VDD)),
        "modulator_driver": to_mw(
            model.modulator_driver.power(MAX_BIT_RATE, NOMINAL_VDD)
        ),
        "tia": to_mw(model.tia.power(MAX_BIT_RATE, NOMINAL_VDD)),
        "cdr": to_mw(model.cdr.power(MAX_BIT_RATE, NOMINAL_VDD)),
    }
    if technology not in ("vcsel", "modulator"):
        raise ConfigError(
            f"technology must be 'vcsel' or 'modulator', got {technology!r}"
        )
    return rows
