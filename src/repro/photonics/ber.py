"""Bit-error-rate model for the optical receiver.

Paper Section 2.2.1 anchors the link design to a target BER of 1e-12 at
the receiver sensitivity, and Section 2.3 requires the power-control
mechanisms to "maintain acceptable BER performance by carefully balancing
the impact of lower light intensity".  This module supplies the standard
Gaussian-noise receiver model that makes those statements quantitative:

* the Q factor of an on-off-keyed receiver,
  ``Q = (I1 - I0) / (sigma1 + sigma0)``;
* ``BER = 0.5 * erfc(Q / sqrt(2))``;
* the definition of sensitivity used by
  :class:`~repro.photonics.detector.Photodetector`: the received power at
  which the link exactly meets the target BER.  ``Q ~ 7.03`` corresponds
  to the paper's 1e-12 target.

The noise is modelled as thermal-dominated with a variance proportional to
the receiver bandwidth (i.e. the bit rate), which is what makes the
sensitivity requirement linear in bit rate — the assumption the
power-aware optical levels rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.photonics.constants import MAX_BIT_RATE, TARGET_BER
from repro.photonics.detector import Photodetector
from repro.units import require_positive

#: Q factor achieving the paper's 1e-12 BER target under Gaussian noise.
Q_FOR_TARGET_BER = 7.0345


def ber_from_q(q: float) -> float:
    """Gaussian-noise BER for a Q factor: ``0.5 * erfc(Q / sqrt 2)``."""
    if q < 0.0:
        raise ConfigError(f"Q factor must be >= 0, got {q!r}")
    return 0.5 * math.erfc(q / math.sqrt(2.0))


def q_from_ber(ber: float) -> float:
    """Invert :func:`ber_from_q` by bisection (monotone decreasing)."""
    if not 0.0 < ber < 0.5:
        raise ConfigError(f"BER must lie in (0, 0.5), got {ber!r}")
    lo, hi = 0.0, 40.0
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if ber_from_q(mid) > ber:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


@dataclass(frozen=True)
class ReceiverNoiseModel:
    """Thermal-noise-dominated OOK receiver.

    Parameters
    ----------
    detector:
        The photodetector converting light to current.
    noise_current_density:
        Input-referred thermal noise current density, A/sqrt(Hz).  The
        default is calibrated so the paper's 25 uW sensitivity at 10 Gb/s
        lands exactly on the 1e-12 BER target.
    contrast_ratio:
        Optical contrast ratio between 1s and 0s at the receiver.
    """

    detector: Photodetector = Photodetector()
    noise_current_density: float = 0.0
    contrast_ratio: float = 10.0

    def __post_init__(self) -> None:
        if self.contrast_ratio <= 1.0:
            raise ConfigError(
                f"contrast_ratio must exceed 1, got {self.contrast_ratio!r}"
            )
        if self.noise_current_density == 0.0:
            # Calibrate to the paper's sensitivity point: Q hits the
            # 1e-12 target exactly at (25 uW, 10 Gb/s).
            object.__setattr__(
                self, "noise_current_density",
                self._calibrated_density(),
            )
        require_positive("noise_current_density",
                         self.noise_current_density)

    def _calibrated_density(self) -> float:
        received = self.detector.sensitivity_at_max
        swing = self._current_swing(received)
        sigma_total = swing / Q_FOR_TARGET_BER
        # Two equal noise contributions (1 and 0 rails) over the max-rate
        # bandwidth: sigma_each = density * sqrt(BR).
        sigma_each = sigma_total / 2.0
        return sigma_each / math.sqrt(MAX_BIT_RATE)

    def _current_swing(self, received_power: float) -> float:
        """Photocurrent difference between 1s and 0s."""
        one = self.detector.responsivity * received_power
        zero = one / self.contrast_ratio
        return one - zero

    def noise_sigma(self, bit_rate: float) -> float:
        """Per-rail RMS noise current over the bit-rate bandwidth, amps."""
        require_positive("bit_rate", bit_rate)
        return self.noise_current_density * math.sqrt(bit_rate)

    def q_factor(self, received_power: float, bit_rate: float) -> float:
        """Q of the receiver at an operating point."""
        require_positive("received_power", received_power)
        swing = self._current_swing(received_power)
        return swing / (2.0 * self.noise_sigma(bit_rate))

    def ber(self, received_power: float, bit_rate: float) -> float:
        """Bit error rate at an operating point."""
        return ber_from_q(self.q_factor(received_power, bit_rate))

    def meets_target(self, received_power: float, bit_rate: float,
                     target: float = TARGET_BER) -> bool:
        """Whether the link closes at the target BER."""
        return self.ber(received_power, bit_rate) <= target

    def required_power(self, bit_rate: float,
                       target: float = TARGET_BER) -> float:
        """Received power achieving the target BER at ``bit_rate``, watts.

        This *is* the receiver sensitivity: with thermal noise ~ sqrt(BR)
        and swing ~ power, required power scales as sqrt(BR)... under the
        calibrated model; the detector's linear-sensitivity assumption is
        conservative above the calibration point and is kept for the
        simulator (see Photodetector.sensitivity).
        """
        q_needed = q_from_ber(target)
        sigma = self.noise_sigma(bit_rate)
        swing_needed = q_needed * 2.0 * sigma
        unit_swing = self._current_swing(1.0)  # swing per watt
        return swing_needed / unit_swing
