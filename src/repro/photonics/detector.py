"""Photodetector model (paper Section 2.2.1).

The photodetector converts the received optical bit stream into photocurrent.
Correct operation at a target bit error rate requires a minimum received
optical power — the *receiver sensitivity* ``Prec`` — which grows with bit
rate (more bandwidth admits more noise).

Eq. 6 gives the average dissipated power::

    P = Prec * (q / h*nu) * Vbias * (CR + 1) / (CR - 1)

where ``q/h*nu`` converts watts of light to amps of photocurrent (ideal
responsivity), ``Vbias`` is the detector bias, and the contrast-ratio factor
accounts for the uneven power carried by 1s and 0s.

The paper applies **no dynamic power control** here: detector power is
< 1 mW, negligible next to the TIA and CDR.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.photonics.constants import (
    ELECTRON_CHARGE,
    MAX_BIT_RATE,
    PLANCK_CONSTANT,
    RECEIVER_SENSITIVITY_10G,
    TELECOM_WAVELENGTH,
)
from repro.units import require_positive, wavelength_to_frequency


@dataclass(frozen=True)
class Photodetector:
    """A PIN/photodiode receiver front-end.

    Parameters
    ----------
    wavelength:
        Optical carrier wavelength in metres (sets ``nu`` in Eq. 6).
    bias_voltage:
        Reverse bias across the detector, volts.
    sensitivity_at_max:
        Receiver sensitivity ``Prec`` at :data:`MAX_BIT_RATE`, watts.
    quantum_efficiency:
        Fraction of incident photons converted to carriers.
    dark_current:
        Leakage current with no light, amps (negligible in the power model
        but reported for link-budget analysis).
    """

    wavelength: float = TELECOM_WAVELENGTH
    bias_voltage: float = 3.0
    sensitivity_at_max: float = RECEIVER_SENSITIVITY_10G
    quantum_efficiency: float = 0.8
    dark_current: float = 5e-9

    def __post_init__(self) -> None:
        require_positive("wavelength", self.wavelength)
        require_positive("bias_voltage", self.bias_voltage)
        require_positive("sensitivity_at_max", self.sensitivity_at_max)
        require_positive("quantum_efficiency", self.quantum_efficiency)
        require_positive("dark_current", self.dark_current)

    @property
    def optical_frequency(self) -> float:
        """Carrier frequency ``nu`` in hertz."""
        return wavelength_to_frequency(self.wavelength)

    @property
    def ideal_responsivity(self) -> float:
        """``q / (h * nu)`` — amps of photocurrent per watt of light."""
        return ELECTRON_CHARGE / (PLANCK_CONSTANT * self.optical_frequency)

    @property
    def responsivity(self) -> float:
        """Actual responsivity including quantum efficiency, A/W."""
        return self.ideal_responsivity * self.quantum_efficiency

    def sensitivity(self, bit_rate: float) -> float:
        """Receiver sensitivity ``Prec`` at a given bit rate, watts.

        Sensitivity requirements grow with bit rate (paper Section 2.2.1:
        "higher bit rates require higher receiver sensitivity to achieve the
        same BER").  We model the requirement as proportional to bit rate —
        the thermal-noise-limited behaviour of a TIA-based receiver whose
        bandwidth tracks the data rate.
        """
        require_positive("bit_rate", bit_rate)
        return self.sensitivity_at_max * bit_rate / MAX_BIT_RATE

    def photocurrent(self, optical_power: float) -> float:
        """Photocurrent generated for a given received power, amps."""
        require_positive("optical_power", optical_power)
        return self.responsivity * optical_power + self.dark_current

    def dissipated_power(
        self, bit_rate: float = MAX_BIT_RATE, contrast_ratio: float = 10.0
    ) -> float:
        """Eq. 6: average detector power dissipation, watts.

        ``Prec * q/(h nu) * Vbias * (CR + 1)/(CR - 1)`` evaluated at the
        sensitivity point for the operating bit rate.
        """
        require_positive("contrast_ratio", contrast_ratio)
        if contrast_ratio <= 1.0:
            raise ValueError(
                f"contrast_ratio must exceed 1, got {contrast_ratio!r}"
            )
        received = self.sensitivity(bit_rate)
        cr_factor = (contrast_ratio + 1.0) / (contrast_ratio - 1.0)
        return received * self.ideal_responsivity * self.bias_voltage * cr_factor
