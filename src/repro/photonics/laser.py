"""External laser source, splitter tree and variable optical attenuators.

Models the "light provider" of paper Fig. 3(b): a continuous-wave /
mode-locked laser housed in its own chassis whose output is statically split
— first 1:64 across racks, then 1:20 across the fibers within each rack —
with a variable optical attenuator (VOA) per outgoing fiber so the router's
power controller can set per-link optical power levels.

Because the laser lives outside the system, its electrical power is excluded
from the system power budget (paper Section 2.1.2); what matters here is the
*optical* budget: how much light reaches each modulator after splitting
losses, and how the VOAs quantise it into the paper's three power bands.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.units import db_to_ratio, ratio_to_db, require_positive

#: VOA response time in microseconds (paper Section 3.2.2: "the long delay
#: (around 100 us) required to switch between levels").
VOA_RESPONSE_US = 100.0


@dataclass(frozen=True)
class OpticalSplitter:
    """A static 1:N fused-fiber optical power splitter.

    An ideal 1:N split divides power N ways (``10*log10(N)`` dB); real
    couplers add excess insertion loss on top.  The paper quotes a maximum
    total insertion loss of 13.6 dB for a 1:16 split — 12.04 dB ideal plus
    ~1.55 dB excess — which we take as the default excess-loss budget.
    """

    ports: int
    excess_loss_db: float = 1.55

    def __post_init__(self) -> None:
        if self.ports < 2:
            raise ConfigError(f"a splitter needs >= 2 ports, got {self.ports!r}")
        if self.excess_loss_db < 0.0:
            raise ConfigError(
                f"excess_loss_db must be non-negative, got {self.excess_loss_db!r}"
            )

    @property
    def ideal_loss_db(self) -> float:
        """Unavoidable splitting loss ``10*log10(N)`` in dB."""
        return ratio_to_db(self.ports)

    @property
    def total_loss_db(self) -> float:
        """Per-output insertion loss including excess, in dB."""
        return self.ideal_loss_db + self.excess_loss_db

    def output_power(self, input_power: float) -> float:
        """Optical power on each output port, watts."""
        require_positive("input_power", input_power)
        return input_power / db_to_ratio(self.total_loss_db)


@dataclass(frozen=True)
class SplitterTree:
    """A chain of splitters fanning one laser out to many fibers.

    The paper's light provider splits 1:64 (to racks) then 1:20 (to the
    fibers within a rack), so one laser feeds 1280 fibers.
    """

    stages: tuple[OpticalSplitter, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ConfigError("a splitter tree needs at least one stage")

    @classmethod
    def paper_default(cls) -> "SplitterTree":
        """The paper's 1:64 then 1:20 tree (Fig. 3(b))."""
        return cls(stages=(OpticalSplitter(64), OpticalSplitter(20)))

    @property
    def fan_out(self) -> int:
        """Total number of output fibers."""
        return math.prod(stage.ports for stage in self.stages)

    @property
    def total_loss_db(self) -> float:
        """End-to-end insertion loss from laser to any one fiber, dB."""
        return sum(stage.total_loss_db for stage in self.stages)

    def output_power(self, input_power: float) -> float:
        """Optical power delivered on each leaf fiber, watts."""
        require_positive("input_power", input_power)
        power = input_power
        for stage in self.stages:
            power = stage.output_power(power)
        return power


@dataclass
class VariableOpticalAttenuator:
    """A VOA quantising a fiber's optical power into discrete levels.

    The router-side laser controller commands a level index; the VOA takes
    :data:`VOA_RESPONSE_US` to settle, during which the *old* level is still
    in effect.  Settling is modelled by the caller supplying timestamps —
    the VOA itself just tracks commanded/effective levels.

    Parameters
    ----------
    attenuations_db:
        Attenuation per level, most-attenuated first.  The paper's 3-level
        scheme is Plow = 0.5 * Pmid = 0.25 * Phigh, i.e. (6.02, 3.01, 0) dB.
    """

    attenuations_db: tuple[float, ...] = (6.0206, 3.0103, 0.0)
    level: int = field(init=False)

    def __post_init__(self) -> None:
        if not self.attenuations_db:
            raise ConfigError("a VOA needs at least one attenuation level")
        if any(a < 0.0 for a in self.attenuations_db):
            raise ConfigError("attenuations must be non-negative dB")
        if list(self.attenuations_db) != sorted(self.attenuations_db, reverse=True):
            raise ConfigError(
                "attenuations_db must be sorted most-attenuated (lowest power) first"
            )
        self.level = len(self.attenuations_db) - 1

    @property
    def num_levels(self) -> int:
        return len(self.attenuations_db)

    def set_level(self, level: int) -> None:
        """Command an attenuation level (0 = lowest optical power)."""
        if not 0 <= level < self.num_levels:
            raise ConfigError(
                f"level must be in [0, {self.num_levels}), got {level!r}"
            )
        self.level = level

    def output_power(self, input_power: float, level: int | None = None) -> float:
        """Optical power after attenuation at ``level`` (default: current)."""
        require_positive("input_power", input_power)
        index = self.level if level is None else level
        if not 0 <= index < self.num_levels:
            raise ConfigError(f"level must be in [0, {self.num_levels}), got {index!r}")
        return input_power / db_to_ratio(self.attenuations_db[index])


@dataclass(frozen=True)
class ExternalLaserSource:
    """The central mode-locked laser feeding the whole system.

    Parameters
    ----------
    output_power:
        Total emitted optical power, watts.  A typical mode-locked fiber
        laser supports hundreds to thousands of links (paper refs [20, 21]).
    tree:
        The static splitter tree distributing the light.
    """

    output_power: float = 0.5
    tree: SplitterTree = field(default_factory=SplitterTree.paper_default)

    def __post_init__(self) -> None:
        require_positive("output_power", self.output_power)

    @property
    def fibers(self) -> int:
        """Number of leaf fibers fed by this laser."""
        return self.tree.fan_out

    def power_per_fiber(self) -> float:
        """Unattenuated optical power on each leaf fiber, watts."""
        return self.tree.output_power(self.output_power)

    def power_at_level(self, voa: VariableOpticalAttenuator, level: int) -> float:
        """Optical power delivered through ``voa`` set to ``level``, watts."""
        return voa.output_power(self.power_per_fiber(), level)
