"""Measured link power models (paper Section 5's next step).

The paper closes by planning a 0.18 um test chip whose measured power
curves would be "fed into our network system simulator, in place of
current models".  :class:`MeasuredLinkPowerModel` is that plug-in point: a
piecewise-linear power/bit-rate curve built from measurement samples that
exposes the same interface as the analytic
:class:`~repro.photonics.power_model.LinkPowerModel`, so the power manager
accepts either.

Measurements are (bit_rate, power) pairs at the operating points a
prototype would be characterised at; queries between samples interpolate
linearly, which is conservative for the convex Vdd^2*BR-dominated curves
of the analytic models (chords lie above the curve).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import require_positive


@dataclass(frozen=True)
class MeasuredLinkPowerModel:
    """A link power model backed by measurement samples.

    Parameters
    ----------
    samples:
        ``(bit_rate, power_watts)`` pairs, strictly ascending in bit rate,
        at least two.  The highest sampled rate is the link's maximum.
    technology:
        Free-form label carried through to reports.
    """

    samples: tuple[tuple[float, float], ...]
    technology: str = "measured"

    def __post_init__(self) -> None:
        if len(self.samples) < 2:
            raise ConfigError(
                f"need >= 2 measurement samples, got {len(self.samples)}"
            )
        rates = [rate for rate, _ in self.samples]
        if rates != sorted(rates) or len(set(rates)) != len(rates):
            raise ConfigError("sample bit rates must be strictly ascending")
        for rate, power in self.samples:
            require_positive("sample bit rate", rate)
            require_positive("sample power", power)

    @classmethod
    def from_analytic(cls, model, rates: tuple[float, ...]) -> \
            "MeasuredLinkPowerModel":
        """Sample an analytic model (testing / sensitivity studies)."""
        samples = tuple((rate, model.power(rate)) for rate in sorted(rates))
        return cls(samples=samples, technology=f"{model.technology}-sampled")

    @property
    def max_bit_rate(self) -> float:
        return self.samples[-1][0]

    @property
    def min_bit_rate(self) -> float:
        return self.samples[0][0]

    @property
    def max_power(self) -> float:
        """Power at the maximum sampled bit rate, watts."""
        return self.power(self.max_bit_rate)

    def power(self, bit_rate: float, vdd: float | None = None) -> float:
        """Interpolated link power at ``bit_rate``, watts.

        ``vdd`` is accepted for interface compatibility and ignored — a
        measured curve already bakes in whatever supply the prototype used
        at each rate.  Queries outside the sampled range are refused
        rather than extrapolated.
        """
        if not self.min_bit_rate <= bit_rate <= self.max_bit_rate:
            raise ConfigError(
                f"bit rate {bit_rate!r} outside the measured range "
                f"[{self.min_bit_rate!r}, {self.max_bit_rate!r}]"
            )
        rates = [rate for rate, _ in self.samples]
        index = bisect.bisect_left(rates, bit_rate)
        rate_hi, power_hi = self.samples[index]
        if rate_hi == bit_rate:
            return power_hi
        rate_lo, power_lo = self.samples[index - 1]
        fraction = (bit_rate - rate_lo) / (rate_hi - rate_lo)
        return power_lo + fraction * (power_hi - power_lo)

    def savings_fraction(self, bit_rate: float) -> float:
        """Fractional power saving versus the maximum sampled rate."""
        return 1.0 - self.power(bit_rate) / self.max_power

    def component_powers(self, bit_rate: float,
                         vdd: float | None = None) -> dict[str, float]:
        """Single-entry breakdown (measurements are whole-link)."""
        return {"link": self.power(bit_rate)}
