"""Cascaded-inverter driver model shared by VCSEL and modulator transmitters.

Both electrical drivers in the paper (Fig. 2) are strings of cascaded
inverters, each ``beta`` (3-4) times the size of the previous one, sized to
drive a large output load (the VCSEL gate or the modulator capacitance).
Their dynamic power is the usual switched-capacitance expression:

* Eq. 3 (VCSEL driver)     ``P = alpha1 * C_LD * Vdd^2 * BR``
* Eq. 5 (modulator driver) ``P = alpha2 * C_md * Vdd^2 * BR``

Dynamic power control differs between the two uses (paper Section 2.3):

* the VCSEL driver scales **both** bit rate and supply voltage
  (``P ~ Vdd^2 * BR``);
* the modulator driver keeps ``Vdd`` fixed to preserve the modulator's
  contrast ratio, so only the bit rate scales (``P ~ BR``).

That policy distinction lives in :mod:`repro.photonics.power_model`; this
module is the raw circuit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.photonics.constants import MAX_BIT_RATE, NOMINAL_VDD
from repro.units import require_fraction, require_positive


@dataclass(frozen=True)
class InverterChainDriver:
    """A cascaded-inverter output driver.

    Parameters
    ----------
    switched_capacitance:
        Total switched capacitance in farads — the sum of the inverter-chain
        internal capacitance and the load (VCSEL gate or modulator).
    activity:
        Switching activity ``alpha`` — the probability of a bit transition in
        the serialised data stream (0.5 for random data).
    taper:
        Stage-size ratio ``beta`` of the chain, typically 3-4.
    """

    switched_capacitance: float
    activity: float = 0.5
    taper: float = 3.5

    def __post_init__(self) -> None:
        require_positive("switched_capacitance", self.switched_capacitance)
        require_fraction("activity", self.activity)
        if self.activity == 0.0:
            raise ConfigError("activity must be > 0; a silent link has no driver")
        if self.taper <= 1.0:
            raise ConfigError(f"taper must exceed 1, got {self.taper!r}")

    @classmethod
    def calibrated_to(
        cls,
        power: float,
        *,
        bit_rate: float = MAX_BIT_RATE,
        vdd: float = NOMINAL_VDD,
        activity: float = 0.5,
        taper: float = 3.5,
    ) -> "InverterChainDriver":
        """Build a driver dissipating ``power`` watts at an operating point.

        Solves Eqs. 3/5 for the switched capacitance.  Table 2 calibration:
        10 mW at 10 Gb/s / 1.8 V gives ~617 fF for the VCSEL driver and
        40 mW gives ~2.47 pF for the modulator driver.
        """
        require_positive("power", power)
        require_positive("bit_rate", bit_rate)
        require_positive("vdd", vdd)
        capacitance = power / (activity * vdd * vdd * bit_rate)
        return cls(switched_capacitance=capacitance, activity=activity, taper=taper)

    def power(self, bit_rate: float, vdd: float = NOMINAL_VDD) -> float:
        """Eqs. 3/5: dynamic power ``alpha * C * Vdd^2 * BR`` in watts."""
        require_positive("bit_rate", bit_rate)
        require_positive("vdd", vdd)
        return self.activity * self.switched_capacitance * vdd * vdd * bit_rate

    def stage_count(self, input_capacitance: float) -> int:
        """Number of inverter stages needed to drive the load.

        The chain is sized geometrically: each stage is ``taper`` times the
        previous one, so ``n = ceil(log_taper(C_load / C_in))`` stages bridge
        from a minimum-size input gate to the full load.  At least one stage
        is always present.
        """
        require_positive("input_capacitance", input_capacitance)
        if input_capacitance >= self.switched_capacitance:
            return 1
        ratio = self.switched_capacitance / input_capacitance
        return max(1, math.ceil(math.log(ratio, self.taper)))
