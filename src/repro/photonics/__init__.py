"""Opto-electronic link component models (paper Section 2).

Every component of the link of Fig. 1 is modelled here with its operating
equations and power characteristics:

* transmitters — :mod:`~repro.photonics.vcsel` (directly modulated VCSEL),
  :mod:`~repro.photonics.modulator` (MQW modulator fed by an external
  laser), and their cascaded-inverter :mod:`~repro.photonics.drivers`;
* fiber plant — :mod:`~repro.photonics.laser` (external source, splitter
  tree, VOAs) and :mod:`~repro.photonics.link_budget`;
* receivers — :mod:`~repro.photonics.detector`,
  :mod:`~repro.photonics.tia`, :mod:`~repro.photonics.cdr`;
* the composed :mod:`~repro.photonics.power_model` reproducing Table 2.
"""

from repro.photonics.ber import (
    Q_FOR_TARGET_BER,
    ReceiverNoiseModel,
    ber_from_q,
    q_from_ber,
)
from repro.photonics.cdr import ClockDataRecovery, DEFAULT_RELOCK_CYCLES
from repro.photonics.detector import Photodetector
from repro.photonics.drivers import InverterChainDriver
from repro.photonics.electrical import ElectricalLinkModel, compare_technologies
from repro.photonics.laser import (
    ExternalLaserSource,
    OpticalSplitter,
    SplitterTree,
    VariableOpticalAttenuator,
    VOA_RESPONSE_US,
)
from repro.photonics.link_budget import LinkBudget
from repro.photonics.measured import MeasuredLinkPowerModel
from repro.photonics.modulator import MqwModulator
from repro.photonics.power_model import (
    ComponentBudget,
    LinkPowerModel,
    PhysicsLinkModel,
    ScalingTrend,
    physics_table2,
    vdd_for_bit_rate,
)
from repro.photonics.tia import TransimpedanceAmplifier
from repro.photonics.vcsel import Vcsel

__all__ = [
    "ClockDataRecovery",
    "ComponentBudget",
    "DEFAULT_RELOCK_CYCLES",
    "ElectricalLinkModel",
    "ExternalLaserSource",
    "InverterChainDriver",
    "Q_FOR_TARGET_BER",
    "ReceiverNoiseModel",
    "ber_from_q",
    "compare_technologies",
    "q_from_ber",
    "LinkBudget",
    "LinkPowerModel",
    "MeasuredLinkPowerModel",
    "MqwModulator",
    "OpticalSplitter",
    "Photodetector",
    "PhysicsLinkModel",
    "ScalingTrend",
    "SplitterTree",
    "TransimpedanceAmplifier",
    "VariableOpticalAttenuator",
    "Vcsel",
    "VOA_RESPONSE_US",
    "physics_table2",
    "vdd_for_bit_rate",
]
