"""The trace recorder: hooks in, typed events out.

:class:`TraceRecorder` is a pure observer.  It attaches to a simulator
exclusively through :attr:`Simulator.hooks <repro.network.simulator.
Simulator.hooks>` — nothing is hard-wired into the step loop — and it
registers a callback *only* for the event kinds its
:class:`~repro.telemetry.config.TelemetryConfig` enables, so a disabled
kind costs literally nothing (the hook list stays empty and the hot path's
truthiness check short-circuits).  Runs with a recorder attached are
bit-identical to runs without one (property-tested): the recorder reads,
never writes, simulation state.

Filters are applied before an event object is even built: per-kind (via
hook registration), per-link-subset (``link_ids``, for the link-scoped
kinds) and per-packet sampling stride (``packet_sample_every``).  Packet
lifecycle records ride the per-packet ``packet_delivered`` hook rather
than the per-flit ``delivery`` hook, so the packet kind costs O(packets),
not O(flit hops).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import ConfigError
from repro.telemetry.config import (
    KIND_EXEC_CRASH,
    KIND_EXEC_POINT,
    KIND_EXEC_RETRY,
    KIND_FAULT,
    KIND_LINK_FAILURE,
    KIND_PACKET,
    KIND_POLICY,
    KIND_POWER,
    KIND_RETRANSMIT,
    KIND_TRANSITION,
    TelemetryConfig,
)
from repro.telemetry.events import (
    DECISION_NAMES,
    ExecCrashEvent,
    ExecPointEvent,
    ExecRetryEvent,
    FaultEvent,
    LinkFailureEvent,
    PacketEvent,
    PolicyEvent,
    PowerEvent,
    RetransmitEvent,
    TransitionEvent,
)
from repro.telemetry.sinks import JsonlFileSink, RingBufferSink

if TYPE_CHECKING:  # pragma: no cover - typing-only imports (cycle guard)
    from repro.engine.hooks import HookRegistry
    from repro.network.simulator import Simulator


class TraceRecorder:
    """Records one simulator's run as a stream of typed events."""

    def __init__(self, config: TelemetryConfig | None = None,
                 sink: Any | None = None):
        self.config = config or TelemetryConfig()
        if sink is not None:
            self.sink = sink
        elif self.config.path is not None:
            self.sink = JsonlFileSink(
                self.config.path,
                rotate_bytes=self.config.rotate_bytes,
                max_files=self.config.max_rotated_files,
            )
        else:
            self.sink = RingBufferSink(self.config.buffer_events)
        #: Events emitted per kind (post-filter), for summaries and tests.
        self.counts: dict[str, int] = {}
        self._links = (set(self.config.link_ids)
                       if self.config.link_ids is not None else None)
        self._packet_seen = 0
        self._sim: "Simulator | None" = None
        self._window = 0
        self._registered: list[tuple[str, Any]] = []

    # -- lifecycle -------------------------------------------------------------

    def attach(self, sim: "Simulator") -> "TraceRecorder":
        """Register hooks on ``sim`` for every enabled event kind."""
        if self._sim is not None:
            raise ConfigError("recorder is already attached to a simulator")
        self._sim = sim
        power = sim.config.power
        self._window = power.policy.window_cycles if power is not None else 0
        kinds = set(self.config.kinds)
        hooks = sim.hooks
        wiring = (
            (KIND_TRANSITION, "transition", self._on_transition),
            (KIND_POLICY, "policy", self._on_policy),
            (KIND_POWER, "power_sample", self._on_power),
            (KIND_PACKET, "packet_delivered", self._on_packet),
            (KIND_FAULT, "fault", self._on_fault),
            (KIND_RETRANSMIT, "retransmit", self._on_retransmit),
            (KIND_LINK_FAILURE, "link_failure", self._on_link_failure),
        )
        for kind, event, callback in wiring:
            if kind in kinds:
                hooks.add(event, callback)
                self._registered.append((event, callback))
        return self

    def detach(self) -> None:
        """Deregister every hook this recorder added (keeps the sink)."""
        if self._sim is None:
            return
        hooks = self._sim.hooks
        for event, callback in self._registered:
            hooks.remove(event, callback)
        self._registered.clear()
        self._sim = None

    def flush(self) -> None:
        self.sink.flush()

    def close(self) -> None:
        """Detach from the simulator and close the sink."""
        self.detach()
        self.sink.close()

    # -- helpers ---------------------------------------------------------------

    def _emit(self, event: Any) -> None:
        kind = event.kind
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.sink.emit(event)

    def _wants_link(self, link_id: int) -> bool:
        return self._links is None or link_id in self._links

    # -- hook callbacks --------------------------------------------------------

    def _on_transition(self, pal, decision: int, now: int) -> None:
        engine = pal.engine
        accepted = pal.last_step_accepted
        deferred = decision > 0 and pal.pending_up
        if not accepted and not deferred:
            # Nothing happened: the step was a no-op at a ladder end or
            # was swallowed while another transition was still in flight.
            # The policy record already carries the decision, so emitting
            # a transition event here would only bloat the trace (idle
            # links decide "down" at the bottom level every single window).
            return
        link = pal.link
        if not self._wants_link(link.link_id):
            return
        if accepted and engine.in_transition:
            from_level, to_level = engine.level, engine.target
            timing = engine.config
            duration = float(timing.voltage_transition_cycles
                             + timing.bit_rate_transition_cycles)
        elif accepted:
            # Zero-delay transition config: the step committed instantly,
            # so the engine already sits at the new level.
            from_level = to_level = engine.level
            duration = 0.0
        else:
            # Deferred up-step: held until the external laser source can
            # support the target rate (accepted=False, pending).
            from_level, to_level = engine.level, engine.level + 1
            duration = 0.0
        self._emit(TransitionEvent(
            cycle=now,
            link_id=link.link_id,
            link_kind=link.kind,
            direction=DECISION_NAMES.get(decision, str(decision)),
            from_level=from_level,
            to_level=to_level,
            duration=duration,
            accepted=accepted,
        ))

    def _on_policy(self, pal, lu: float, bu: float, decision: int,
                   now: int) -> None:
        # Hottest callback (fires per link per window): the link filter is
        # inlined and the level read skips the PowerAwareLink property.
        link = pal.link
        links = self._links
        if links is not None and link.link_id not in links:
            return
        optical = pal.optical
        self._emit(PolicyEvent(
            cycle=now,
            window_start=now - self._window,
            link_id=link.link_id,
            link_kind=link.kind,
            lu=lu,
            bu=bu,
            decision=DECISION_NAMES.get(decision, str(decision)),
            level=pal.engine.level,
            band=optical.band if optical is not None else None,
        ))

    def _on_power(self, now: int, watts: float) -> None:
        self._emit(PowerEvent(cycle=now, watts=watts))

    def _on_packet(self, packet, now: int) -> None:
        self._packet_seen += 1
        if self._packet_seen % self.config.packet_sample_every:
            return
        self._emit(PacketEvent(
            cycle=now,
            packet_id=packet.packet_id,
            src=packet.src,
            dst=packet.dst,
            size=packet.size,
            latency=now - packet.create_time,
        ))

    def _on_fault(self, link, flit, now: int) -> None:
        if not self._wants_link(link.link_id):
            return
        self._emit(FaultEvent(cycle=now, link_id=link.link_id,
                              packet_id=flit.packet.packet_id))

    def _on_retransmit(self, link, flit, attempt: int, now: int) -> None:
        if not self._wants_link(link.link_id):
            return
        self._emit(RetransmitEvent(cycle=now, link_id=link.link_id,
                                   packet_id=flit.packet.packet_id,
                                   attempt=attempt))

    def _on_link_failure(self, link, now: int) -> None:
        if not self._wants_link(link.link_id):
            return
        self._emit(LinkFailureEvent(cycle=now, link_id=link.link_id))


class ExecutorRecorder:
    """Records a sweep executor's lifecycle as a stream of typed events.

    The executor analogue of :class:`TraceRecorder`: it attaches to the
    executor's :class:`~repro.engine.hooks.HookRegistry` (the same
    registry type the simulator fronts), turns the ``exec_*`` hook
    firings into :class:`~repro.telemetry.events.ExecPointEvent` /
    ``ExecRetryEvent`` / ``ExecCrashEvent`` records, and streams them to
    a JSONL sink.  Events carry a monotonically increasing ``seq``
    rather than a cycle — there is no simulator clock out here.
    """

    def __init__(self, path: str | None = None, sink: Any | None = None):
        if sink is not None:
            self.sink = sink
        elif path is not None:
            self.sink = JsonlFileSink(path)
        else:
            self.sink = RingBufferSink(65_536)
        #: Events emitted per kind, for summaries and tests.
        self.counts: dict[str, int] = {}
        self._seq = 0
        self._hooks: "HookRegistry | None" = None
        self._registered: list[tuple[str, Any]] = []

    # -- lifecycle -------------------------------------------------------------

    def attach(self, hooks: "HookRegistry") -> "ExecutorRecorder":
        """Register callbacks for every executor lifecycle event."""
        if self._hooks is not None:
            raise ConfigError("recorder is already attached to an executor")
        self._hooks = hooks
        wiring = (
            (KIND_EXEC_POINT, "exec_point", self._on_exec_point),
            (KIND_EXEC_RETRY, "exec_retry", self._on_exec_retry),
            (KIND_EXEC_CRASH, "exec_crash", self._on_exec_crash),
        )
        for _kind, event, callback in wiring:
            hooks.add(event, callback)
            self._registered.append((event, callback))
        return self

    def detach(self) -> None:
        """Deregister every hook this recorder added (keeps the sink)."""
        if self._hooks is None:
            return
        for event, callback in self._registered:
            self._hooks.remove(event, callback)
        self._registered.clear()
        self._hooks = None

    def flush(self) -> None:
        self.sink.flush()

    def close(self) -> None:
        """Detach from the executor and close the sink."""
        self.detach()
        self.sink.close()

    # -- helpers ---------------------------------------------------------------

    def _emit(self, event: Any) -> None:
        kind = event.kind
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.sink.emit(event)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- hook callbacks --------------------------------------------------------

    def _on_exec_point(self, label: str, key: str, status: str,
                       attempt: int, elapsed: float) -> None:
        self._emit(ExecPointEvent(seq=self._next_seq(), label=label,
                                  key=key, status=status, attempt=attempt,
                                  elapsed=elapsed))

    def _on_exec_retry(self, label: str, key: str, attempt: int,
                       cause: str, delay: float) -> None:
        self._emit(ExecRetryEvent(seq=self._next_seq(), label=label,
                                  key=key, attempt=attempt, cause=cause,
                                  delay=delay))

    def _on_exec_crash(self, label: str, key: str, attempt: int,
                       cause: str) -> None:
        self._emit(ExecCrashEvent(seq=self._next_seq(), label=label,
                                  key=key, attempt=attempt, cause=cause))
