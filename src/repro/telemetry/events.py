"""Typed, timestamped trace events.

Every event is a frozen slotted dataclass with a class-level ``kind`` tag.
:func:`event_to_dict` flattens one into a plain JSON-ready dict (``kind``
first, then the fields in declaration order) and :func:`event_from_dict`
round-trips it back, so sinks and exporters can work on either
representation.  All timestamps are router cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar

from repro.errors import ConfigError
from repro.telemetry.config import (
    KIND_EXEC_CRASH,
    KIND_EXEC_POINT,
    KIND_EXEC_RETRY,
    KIND_FAULT,
    KIND_LINK_FAILURE,
    KIND_PACKET,
    KIND_POLICY,
    KIND_POWER,
    KIND_RETRANSMIT,
    KIND_TRANSITION,
)

#: Decision integers (:mod:`repro.core.policy`) to trace spelling.
DECISION_NAMES = {1: "up", 0: "hold", -1: "down"}


@dataclass(frozen=True, slots=True)
class TransitionEvent:
    """A ladder step that started, committed instantly, or was deferred.

    No-op step requests (at a ladder end, or swallowed while another
    transition was in flight) produce no event — the per-window policy
    record carries every decision including those.
    """

    kind: ClassVar[str] = KIND_TRANSITION

    cycle: int
    link_id: int
    link_kind: str
    direction: str
    from_level: int
    to_level: int
    #: Expected cycles until the step commits (voltage ramp + CDR relock);
    #: 0.0 when the step completed instantly or is still deferred.
    duration: float
    #: Whether the transition engine actually started (or instantly
    #: completed) the step; False when it was deferred pending external
    #: optical light (``to_level`` is then the level it is waiting for).
    accepted: bool


@dataclass(frozen=True, slots=True)
class PolicyEvent:
    """One link's window-boundary policy evaluation record."""

    kind: ClassVar[str] = KIND_POLICY

    cycle: int
    window_start: int
    link_id: int
    link_kind: str
    lu: float
    bu: float
    decision: str
    level: int
    #: Optical band (multi-optical modulator systems), else ``None``.
    band: int | None


@dataclass(frozen=True, slots=True)
class PowerEvent:
    """An instantaneous network link power sample."""

    kind: ClassVar[str] = KIND_POWER

    cycle: int
    watts: float


@dataclass(frozen=True, slots=True)
class PacketEvent:
    """A delivered packet's lifecycle sample (creation through ejection)."""

    kind: ClassVar[str] = KIND_PACKET

    cycle: int
    packet_id: int
    src: int
    dst: int
    size: int
    latency: float


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """A flit failing its CRC check at a link's receiving end."""

    kind: ClassVar[str] = KIND_FAULT

    cycle: int
    link_id: int
    packet_id: int


@dataclass(frozen=True, slots=True)
class RetransmitEvent:
    """A corrupted flit's scheduled link-level retransmission."""

    kind: ClassVar[str] = KIND_RETRANSMIT

    cycle: int
    link_id: int
    packet_id: int
    attempt: int


@dataclass(frozen=True, slots=True)
class LinkFailureEvent:
    """A scheduled hard link failure taking effect."""

    kind: ClassVar[str] = KIND_LINK_FAILURE

    cycle: int
    link_id: int


@dataclass(frozen=True, slots=True)
class ExecPointEvent:
    """A sweep point reaching a terminal state in the executor.

    Executor events are stamped with a monotonically increasing ``seq``
    instead of a simulator cycle: the executor sits *outside* any run,
    and wall-clock timestamps would break trace determinism.  ``elapsed``
    (wall seconds across every attempt) is the only wall quantity, and it
    is data, not ordering.
    """

    kind: ClassVar[str] = KIND_EXEC_POINT

    seq: int
    label: str
    key: str
    #: ``done`` (executed), ``cached`` (journal hit) or ``failed``.
    status: str
    attempt: int
    elapsed: float


@dataclass(frozen=True, slots=True)
class ExecRetryEvent:
    """A failed sweep attempt scheduled for retry after backoff."""

    kind: ClassVar[str] = KIND_EXEC_RETRY

    seq: int
    label: str
    key: str
    attempt: int
    #: ``error``, ``timeout`` or ``crash``.
    cause: str
    delay: float


@dataclass(frozen=True, slots=True)
class ExecCrashEvent:
    """A worker-process death detected under a sweep point."""

    kind: ClassVar[str] = KIND_EXEC_CRASH

    seq: int
    label: str
    key: str
    attempt: int
    cause: str


#: kind tag -> event class, for deserialisation.
EVENT_TYPES = {
    cls.kind: cls
    for cls in (TransitionEvent, PolicyEvent, PowerEvent, PacketEvent,
                FaultEvent, RetransmitEvent, LinkFailureEvent,
                ExecPointEvent, ExecRetryEvent, ExecCrashEvent)
}


def event_to_dict(event: Any) -> dict[str, Any]:
    """Flatten an event into a JSON-ready dict (``kind`` key first)."""
    out: dict[str, Any] = {"kind": event.kind}
    for field in fields(event):
        out[field.name] = getattr(event, field.name)
    return out


def event_from_dict(data: dict[str, Any]) -> Any:
    """Rebuild a typed event from :func:`event_to_dict` output."""
    try:
        kind = data["kind"]
    except KeyError:
        raise ConfigError(f"trace record without a 'kind' field: {data!r}") \
            from None
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ConfigError(
            f"unknown trace event kind {kind!r}; known: "
            f"{tuple(EVENT_TYPES)}"
        )
    payload = {k: v for k, v in data.items() if k != "kind"}
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ConfigError(f"malformed {kind!r} trace record: {exc}") from None
