"""Run telemetry: typed trace events, bounded sinks, Perfetto/CSV export.

The subsystem is default-off and attaches purely through
:attr:`Simulator.hooks <repro.network.simulator.Simulator.hooks>`: set
``SimulationConfig.telemetry`` to a :class:`TelemetryConfig` (or attach a
:class:`TraceRecorder` by hand) and the run streams typed, timestamped
events — ladder transitions, per-window policy records, power samples,
reliability events and packet lifecycle samples — to a bounded sink.  See
``docs/telemetry.md`` for the event schema and the Perfetto workflow.
"""

from repro.telemetry.config import ALL_KINDS, TelemetryConfig, parse_kinds
from repro.telemetry.events import (
    EVENT_TYPES,
    FaultEvent,
    LinkFailureEvent,
    PacketEvent,
    PolicyEvent,
    PowerEvent,
    RetransmitEvent,
    TransitionEvent,
    event_from_dict,
    event_to_dict,
)
from repro.telemetry.export import (
    iter_trace,
    power_series_from_trace,
    read_trace,
    summarize_trace,
    to_chrome_trace,
    to_csv,
    write_chrome_trace,
)
from repro.telemetry.recorder import TraceRecorder
from repro.telemetry.sinks import JsonlFileSink, RingBufferSink

__all__ = [
    "ALL_KINDS",
    "TelemetryConfig",
    "parse_kinds",
    "EVENT_TYPES",
    "TransitionEvent",
    "PolicyEvent",
    "PowerEvent",
    "PacketEvent",
    "FaultEvent",
    "RetransmitEvent",
    "LinkFailureEvent",
    "event_to_dict",
    "event_from_dict",
    "iter_trace",
    "read_trace",
    "power_series_from_trace",
    "summarize_trace",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_csv",
    "TraceRecorder",
    "RingBufferSink",
    "JsonlFileSink",
]
