"""Bounded event sinks.

Both sinks accept the typed events of :mod:`repro.telemetry.events` via
``emit`` and guarantee O(config) memory however long the run:

* :class:`RingBufferSink` keeps the newest ``capacity`` events in memory
  and counts what it dropped;
* :class:`JsonlFileSink` streams events as one JSON object per line and
  rotates the file when it would exceed ``rotate_bytes`` (keeping at most
  ``max_files`` rotated segments: ``trace.jsonl.1`` is the newest).
"""

from __future__ import annotations

import contextlib
import json
import os
from collections import deque
from typing import Any

from repro.errors import ConfigError
from repro.telemetry.events import event_to_dict


class RingBufferSink:
    """Keep the newest ``capacity`` events in memory."""

    def __init__(self, capacity: int = 65_536):
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self._events: deque[Any] = deque(maxlen=capacity)
        #: Events evicted because the buffer was full.
        self.dropped = 0
        self.emitted = 0

    def emit(self, event: Any) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        self.emitted += 1

    def events(self) -> list[Any]:
        """The retained events, oldest first."""
        return list(self._events)

    def flush(self) -> None:
        """No-op (memory sink); present for sink interface symmetry."""

    def close(self) -> None:
        """No-op (memory sink); present for sink interface symmetry."""


class JsonlFileSink:
    """Stream events to a JSONL file, rotating past a byte budget."""

    def __init__(self, path: str, *, rotate_bytes: int | None = None,
                 max_files: int = 4):
        if rotate_bytes is not None and rotate_bytes < 1:
            raise ConfigError(
                f"rotate_bytes must be >= 1 or None, got {rotate_bytes!r}"
            )
        if max_files < 1:
            raise ConfigError(f"max_files must be >= 1, got {max_files!r}")
        self.path = path
        self.rotate_bytes = rotate_bytes
        self.max_files = max_files
        self.emitted = 0
        self.rotations = 0
        self._bytes = 0
        # Long-lived handle owned by the sink; closed in close().
        self._file = open(path, "w", encoding="utf-8")  # noqa: SIM115

    def emit(self, event: Any) -> None:
        line = json.dumps(event_to_dict(event), separators=(",", ":"))
        size = len(line) + 1
        if self.rotate_bytes is not None and self._bytes > 0 \
                and self._bytes + size > self.rotate_bytes:
            self._rotate()
        self._file.write(line)
        self._file.write("\n")
        self._bytes += size
        self.emitted += 1

    def _rotate(self) -> None:
        """Shift ``path`` -> ``path.1`` -> ... -> ``path.max_files``."""
        self._file.close()
        oldest = f"{self.path}.{self.max_files}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for index in range(self.max_files - 1, 0, -1):
            src = f"{self.path}.{index}"
            if os.path.exists(src):
                os.replace(src, f"{self.path}.{index + 1}")
        os.replace(self.path, f"{self.path}.1")
        self._file = open(self.path, "w", encoding="utf-8")  # noqa: SIM115
        self._bytes = 0
        self.rotations += 1

    def flush(self) -> None:
        if not self._file.closed:
            self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "JsonlFileSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        with contextlib.suppress(Exception):
            self.close()
