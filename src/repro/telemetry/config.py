"""Telemetry configuration.

A :class:`TelemetryConfig` describes *what* a run records (event kinds, an
optional link subset, a packet sampling stride) and *where* the events go
(a bounded in-memory ring buffer by default, a JSONL file with optional
size-based rotation when ``path`` is set).  ``SimulationConfig.telemetry``
is ``None`` by default — no recorder is built, no hooks are registered,
and the run is bit-identical to a build without the telemetry subsystem.

Bounding is a design requirement, not an option: every sink is O(config)
memory however long the run is — the ring buffer drops the oldest events
past ``buffer_events``, the file sink rotates past ``rotate_bytes`` and
keeps at most ``max_rotated_files`` old segments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Per-link ladder transition requests (direction, levels, duration).
KIND_TRANSITION = "transition"
#: Per-link per-window policy records: (Lu, Bu, decision, level, band).
KIND_POLICY = "policy"
#: Instantaneous network power samples (the Fig. 6(d) series).
KIND_POWER = "power"
#: Packet lifecycle samples (delivery with latency), every Nth packet.
KIND_PACKET = "packet"
#: CRC-corruption fault trials (fault-injected runs only).
KIND_FAULT = "fault"
#: Scheduled link-level retransmissions (fault-injected runs only).
KIND_RETRANSMIT = "retransmit"
#: Hard link failures taking effect (fault-injected runs only).
KIND_LINK_FAILURE = "link_failure"
#: Sweep points reaching a terminal state (executor traces only).
KIND_EXEC_POINT = "exec_point"
#: Failed sweep attempts scheduled for retry (executor traces only).
KIND_EXEC_RETRY = "exec_retry"
#: Worker-process deaths detected under a point (executor traces only).
KIND_EXEC_CRASH = "exec_crash"

#: Every *simulation* event kind, in a stable presentation order.  This
#: is what :class:`TelemetryConfig.kinds` selects from; the executor
#: kinds live in their own namespace because they describe the sweep
#: harness around runs, not any single run, and are recorded by
#: :class:`~repro.telemetry.recorder.ExecutorRecorder` unconditionally.
ALL_KINDS = (
    KIND_TRANSITION, KIND_POLICY, KIND_POWER, KIND_PACKET,
    KIND_FAULT, KIND_RETRANSMIT, KIND_LINK_FAILURE,
)

#: The sweep-executor lifecycle kinds (see docs/execution.md).
EXECUTOR_KINDS = (KIND_EXEC_POINT, KIND_EXEC_RETRY, KIND_EXEC_CRASH)


@dataclass(frozen=True)
class TelemetryConfig:
    """What one run's trace records and where it streams to."""

    #: Event kinds to record (subset of :data:`ALL_KINDS`).
    kinds: tuple[str, ...] = ALL_KINDS
    #: Record only these link ids (``None`` = every link).  Applies to the
    #: link-scoped kinds (transition, policy, fault, retransmit,
    #: link_failure); power samples are network-wide and packet lifecycle
    #: records are node-scoped, so both are unaffected.
    link_ids: tuple[int, ...] | None = None
    #: Record every Nth delivered packet (1 = all packets).
    packet_sample_every: int = 1
    #: Ring-buffer capacity, events (memory sink only).
    buffer_events: int = 65_536
    #: JSONL output path; ``None`` keeps events in the ring buffer.
    path: str | None = None
    #: Rotate the JSONL file when it would exceed this many bytes
    #: (``None`` = never rotate).
    rotate_bytes: int | None = None
    #: Rotated segments kept (``trace.jsonl.1`` ... ``.N``); older ones
    #: are deleted.
    max_rotated_files: int = 4

    def __post_init__(self) -> None:
        object.__setattr__(self, "kinds", tuple(self.kinds))
        if self.link_ids is not None:
            object.__setattr__(self, "link_ids", tuple(self.link_ids))
        if not self.kinds:
            raise ConfigError("telemetry needs at least one event kind")
        for kind in self.kinds:
            if kind not in ALL_KINDS:
                raise ConfigError(
                    f"unknown telemetry kind {kind!r}; known: {ALL_KINDS}"
                )
        if self.link_ids is not None:
            for link_id in self.link_ids:
                if link_id < 0:
                    raise ConfigError(
                        f"link ids must be >= 0, got {link_id!r}"
                    )
        if self.packet_sample_every < 1:
            raise ConfigError("packet_sample_every must be >= 1")
        if self.buffer_events < 1:
            raise ConfigError("buffer_events must be >= 1")
        if self.rotate_bytes is not None and self.rotate_bytes < 1:
            raise ConfigError("rotate_bytes must be >= 1 or None")
        if self.max_rotated_files < 1:
            raise ConfigError("max_rotated_files must be >= 1")


def parse_kinds(spec: str) -> tuple[str, ...]:
    """Parse a CLI ``kind,kind,...`` list (``all`` = every kind)."""
    spec = spec.strip()
    if spec == "all":
        return ALL_KINDS
    kinds = tuple(part.strip() for part in spec.split(",") if part.strip())
    if not kinds:
        raise ConfigError(f"empty telemetry kind list {spec!r}")
    return kinds
