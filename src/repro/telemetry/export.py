"""Trace export: JSONL in, Perfetto/CSV/series out.

A recorded JSONL trace is self-sufficient: every exporter here works from
the file alone, with no simulator state.  Three consumers are supported:

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event JSON format, loadable in Perfetto (https://ui.perfetto.dev):
  power samples become a counter track, transitions become duration slices
  on one track per link, policy/fault records become instant events, and
  packet samples become slices spanning creation to ejection.  Timestamps
  are router cycles, mapped 1:1 onto the format's microsecond field —
  durations read in "cycles" directly.
* :func:`to_csv` — flat per-kind CSV time series for pandas/gnuplot.
* :func:`power_series_from_trace` — rebuilds the ``(cycle, watts)`` power
  series, which is all a Fig. 6(d)-style power-over-time plot needs (see
  :func:`repro.experiments.fig6.relative_power_from_trace`).
"""

from __future__ import annotations

import csv
import json
import math
from collections.abc import Iterable, Iterator
from typing import Any

from repro.errors import ConfigError
from repro.telemetry.config import (
    KIND_EXEC_CRASH,
    KIND_EXEC_POINT,
    KIND_EXEC_RETRY,
    KIND_FAULT,
    KIND_LINK_FAILURE,
    KIND_PACKET,
    KIND_POLICY,
    KIND_POWER,
    KIND_RETRANSMIT,
    KIND_TRANSITION,
)

#: CSV column order per event kind (matches the event dataclasses).
#: Simulation kinds lead with ``cycle``; the executor kinds lead with
#: ``seq`` (the executor has no simulator clock).
CSV_COLUMNS = {
    KIND_TRANSITION: ("cycle", "link_id", "link_kind", "direction",
                      "from_level", "to_level", "duration", "accepted"),
    KIND_POLICY: ("cycle", "window_start", "link_id", "link_kind", "lu",
                  "bu", "decision", "level", "band"),
    KIND_POWER: ("cycle", "watts"),
    KIND_PACKET: ("cycle", "packet_id", "src", "dst", "size", "latency"),
    KIND_FAULT: ("cycle", "link_id", "packet_id"),
    KIND_RETRANSMIT: ("cycle", "link_id", "packet_id", "attempt"),
    KIND_LINK_FAILURE: ("cycle", "link_id"),
    KIND_EXEC_POINT: ("seq", "label", "key", "status", "attempt",
                      "elapsed"),
    KIND_EXEC_RETRY: ("seq", "label", "key", "attempt", "cause", "delay"),
    KIND_EXEC_CRASH: ("seq", "label", "key", "attempt", "cause"),
}


def iter_trace(path: str) -> Iterator[dict[str, Any]]:
    """Yield every record of a JSONL trace file, in file order."""
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigError(
                    f"{path}:{number}: not valid JSON ({exc.msg})"
                ) from None
            if not isinstance(record, dict) or "kind" not in record:
                raise ConfigError(
                    f"{path}:{number}: trace records must be JSON objects "
                    f"with a 'kind' field"
                )
            yield record


def read_trace(path: str) -> list[dict[str, Any]]:
    """Read a whole JSONL trace file into memory."""
    return list(iter_trace(path))


def power_series_from_trace(records: Iterable[dict[str, Any]]
                            ) -> list[tuple[int, float]]:
    """Rebuild the ``(cycle, watts)`` power series from trace records.

    This is exactly ``NetworkPowerManager.power_series`` when the trace
    recorded the ``power`` kind — the Fig. 6(d) power-over-time series
    falls out of the trace file alone.
    """
    return [
        (int(record["cycle"]), float(record["watts"]))
        for record in records
        if record.get("kind") == KIND_POWER
    ]


def summarize_trace(records: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate counts and spans for ``repro trace summarize``."""
    counts: dict[str, int] = {}
    first_cycle: int | None = None
    last_cycle: int | None = None
    links: set[int] = set()
    watts_min = math.inf
    watts_max = -math.inf
    watts_sum = 0.0
    watts_n = 0
    latency_sum = 0.0
    latency_n = 0
    for record in records:
        kind = record.get("kind", "?")
        counts[kind] = counts.get(kind, 0) + 1
        cycle = record.get("cycle")
        if cycle is not None:
            if first_cycle is None or cycle < first_cycle:
                first_cycle = cycle
            if last_cycle is None or cycle > last_cycle:
                last_cycle = cycle
        link_id = record.get("link_id")
        if link_id is not None:
            links.add(link_id)
        if kind == KIND_POWER:
            watts = float(record["watts"])
            watts_min = min(watts_min, watts)
            watts_max = max(watts_max, watts)
            watts_sum += watts
            watts_n += 1
        elif kind == KIND_PACKET:
            latency_sum += float(record["latency"])
            latency_n += 1
    summary: dict[str, Any] = {
        "events": sum(counts.values()),
        "counts": counts,
        "first_cycle": first_cycle,
        "last_cycle": last_cycle,
        "links_seen": len(links),
    }
    if watts_n:
        summary["power_min_w"] = watts_min
        summary["power_mean_w"] = watts_sum / watts_n
        summary["power_max_w"] = watts_max
    if latency_n:
        summary["packet_mean_latency"] = latency_sum / latency_n
    return summary


# -- Chrome trace-event JSON (Perfetto) ---------------------------------------

#: Synthetic process ids grouping the Perfetto tracks.
_PID_POWER = 1
_PID_LINKS = 2
_PID_PACKETS = 3
_PID_RELIABILITY = 4
_PID_EXECUTOR = 5

_PROCESS_NAMES = {
    _PID_POWER: "network power",
    _PID_LINKS: "links",
    _PID_PACKETS: "packets",
    _PID_RELIABILITY: "reliability",
    _PID_EXECUTOR: "sweep executor",
}


def to_chrome_trace(records: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Convert trace records to a Chrome trace-event JSON object."""
    events: list[dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": pid,
         "args": {"name": name}}
        for pid, name in _PROCESS_NAMES.items()
    ]
    for record in records:
        kind = record.get("kind")
        cycle = record.get("cycle", 0)
        if kind == KIND_POWER:
            events.append({
                "name": "link power (W)", "ph": "C", "ts": cycle,
                "pid": _PID_POWER, "tid": 0,
                "args": {"watts": record["watts"]},
            })
        elif kind == KIND_TRANSITION:
            events.append({
                "name": (f"level {record['from_level']}->"
                         f"{record['to_level']}"),
                "cat": "transition", "ph": "X", "ts": cycle,
                "dur": max(float(record.get("duration", 0.0)), 1.0),
                "pid": _PID_LINKS, "tid": record["link_id"],
                "args": {
                    "direction": record.get("direction"),
                    "accepted": record.get("accepted"),
                    "link_kind": record.get("link_kind"),
                },
            })
        elif kind == KIND_POLICY:
            events.append({
                "name": f"window:{record.get('decision', '?')}",
                "cat": "policy", "ph": "i", "ts": cycle, "s": "t",
                "pid": _PID_LINKS, "tid": record["link_id"],
                "args": {
                    "lu": record.get("lu"),
                    "bu": record.get("bu"),
                    "level": record.get("level"),
                    "band": record.get("band"),
                },
            })
        elif kind == KIND_PACKET:
            latency = float(record.get("latency", 0.0))
            events.append({
                "name": f"pkt {record.get('packet_id', '?')}",
                "cat": "packet", "ph": "X",
                "ts": cycle - latency, "dur": max(latency, 1.0),
                "pid": _PID_PACKETS, "tid": record.get("src", 0),
                "args": {
                    "dst": record.get("dst"),
                    "size": record.get("size"),
                    "latency": latency,
                },
            })
        elif kind in (KIND_FAULT, KIND_RETRANSMIT, KIND_LINK_FAILURE):
            events.append({
                "name": kind, "cat": "reliability", "ph": "i",
                "ts": cycle, "s": "t",
                "pid": _PID_RELIABILITY, "tid": record.get("link_id", 0),
                "args": {k: v for k, v in record.items()
                         if k not in ("kind", "cycle")},
            })
        elif kind in (KIND_EXEC_POINT, KIND_EXEC_RETRY, KIND_EXEC_CRASH):
            # Executor events carry no cycle; order by their sequence
            # number so the timeline reads as sweep progress.
            name = kind
            if kind == KIND_EXEC_POINT:
                name = f"{record.get('status', '?')}:{record.get('label')}"
            events.append({
                "name": name, "cat": "executor", "ph": "i",
                "ts": record.get("seq", 0), "s": "t",
                "pid": _PID_EXECUTOR, "tid": 0,
                "args": {k: v for k, v in record.items()
                         if k not in ("kind", "seq")},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"time_unit": "router cycles"}}


def write_chrome_trace(records: Iterable[dict[str, Any]],
                       path: str) -> int:
    """Write Chrome trace-event JSON; returns the event count."""
    trace = to_chrome_trace(records)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)
    return len(trace["traceEvents"])


def to_csv(records: Iterable[dict[str, Any]], kind: str, path: str) -> int:
    """Write one kind's records as a CSV time series; returns row count."""
    columns = CSV_COLUMNS.get(kind)
    if columns is None:
        raise ConfigError(
            f"unknown trace kind {kind!r}; known: {tuple(CSV_COLUMNS)}"
        )
    rows = 0
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns)
        for record in records:
            if record.get("kind") != kind:
                continue
            writer.writerow([record.get(column) for column in columns])
            rows += 1
    return rows
