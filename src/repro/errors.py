"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Configuration problems raise :class:`ConfigError` at construction
time rather than producing silently-wrong simulations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigError(ReproError, ValueError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError, RuntimeError):
    """The simulator reached an inconsistent internal state.

    This always indicates a bug (e.g. a credit-accounting violation), never
    a user mistake, so it is raised eagerly instead of being papered over.
    """


class TraceFormatError(ReproError, ValueError):
    """A traffic trace file is malformed."""


class LinkStateError(ReproError, RuntimeError):
    """An operation was attempted on a link in an incompatible state.

    For example: pushing a flit onto a link that is disabled for a bit-rate
    transition, or commanding a transition while another is in flight.
    """
