"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Configuration problems raise :class:`ConfigError` at construction
time rather than producing silently-wrong simulations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigError(ReproError, ValueError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError, RuntimeError):
    """The simulator reached an inconsistent internal state.

    This always indicates a bug (e.g. a credit-accounting violation), never
    a user mistake, so it is raised eagerly instead of being papered over.
    """


class TraceFormatError(ReproError, ValueError):
    """A traffic trace file is malformed."""


class LinkStateError(ReproError, RuntimeError):
    """An operation was attempted on a link in an incompatible state.

    For example: pushing a flit onto a link that is disabled for a bit-rate
    transition, or commanding a transition while another is in flight.
    """


class ExecutionError(ReproError, RuntimeError):
    """A failure of the sweep-execution harness (not of a simulation).

    Raised for harness-level conditions: a point exceeding its wall-clock
    budget, a worker process dying, or a sweep aborting in strict mode.
    Simulation-internal inconsistencies stay :class:`SimulationError`.
    """


class PointTimeoutError(ExecutionError):
    """A sweep point exceeded its per-attempt wall-clock timeout.

    Raised *inside* the worker by the executor's alarm guard, so it
    pickles across the process boundary like any ordinary exception and
    the supervisor can tell a timeout from a crash or a simulation bug.
    """


class SweepExecutionError(ExecutionError):
    """A strict-mode sweep aborted with unrecoverable point failures.

    Carries the structured :class:`~repro.experiments.executor.
    SweepFailureReport` built up to the abort, so callers still see
    per-point attempts, causes and exception text.
    """

    def __init__(self, message: str, report: object | None = None) -> None:
        super().__init__(message)
        #: The partial failure report at abort time (``None`` when the
        #: error predates any bookkeeping).
        self.report = report
