"""repro — power-aware opto-electronic networked systems.

A complete reproduction of "Exploring the Design Space of Power-Aware
Opto-Electronic Networked Systems" (Chen, Peh, Wei, Huang, Prucnal,
HPCA-11 2005): the opto-electronic link power models of Section 2, the
power-aware control architecture of Section 3, the flit-level network
simulator of Section 4, and harnesses regenerating every table and figure
of the evaluation.

Quickstart::

    from repro import SimulationConfig, Simulator, UniformRandomTraffic

    config = SimulationConfig()          # 8x8 racks, VCSEL links, Tw=1000
    traffic = UniformRandomTraffic(config.network.num_nodes,
                                   injection_rate=1.25, seed=7)
    sim = Simulator(config, traffic)
    sim.run(50_000)
    print(sim.summary())                 # latency, relative power, ...

See ``examples/`` for runnable scenarios and ``DESIGN.md`` for the system
inventory.
"""

from repro.config import (
    MODULATOR,
    VCSEL,
    NetworkConfig,
    PolicyConfig,
    PowerAwareConfig,
    SimulationConfig,
    TransitionConfig,
    small_network,
)
from repro.core import (
    BitRateLadder,
    LinkPolicyController,
    NetworkPowerManager,
    OpticalBands,
    OpticalPowerController,
    PowerAwareLink,
)
from repro.errors import (
    ConfigError,
    LinkStateError,
    ReproError,
    SimulationError,
    TraceFormatError,
)
from repro.network import Simulator
from repro.photonics import LinkPowerModel, PhysicsLinkModel
from repro.traffic import (
    HotspotTraffic,
    TraceReplaySource,
    UniformRandomTraffic,
    generate_splash_trace,
)

__version__ = "1.0.0"

__all__ = [
    "BitRateLadder",
    "ConfigError",
    "HotspotTraffic",
    "LinkPolicyController",
    "LinkPowerModel",
    "LinkStateError",
    "MODULATOR",
    "NetworkConfig",
    "NetworkPowerManager",
    "OpticalBands",
    "OpticalPowerController",
    "PhysicsLinkModel",
    "PolicyConfig",
    "PowerAwareConfig",
    "PowerAwareLink",
    "ReproError",
    "SimulationConfig",
    "SimulationError",
    "Simulator",
    "TraceFormatError",
    "TraceReplaySource",
    "TransitionConfig",
    "UniformRandomTraffic",
    "VCSEL",
    "generate_splash_trace",
    "small_network",
    "__version__",
]
