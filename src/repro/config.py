"""Configuration dataclasses for the whole system.

Every experiment is described by a :class:`SimulationConfig`, which nests the
network substrate parameters (:class:`NetworkConfig`), the power-aware
machinery parameters (:class:`PowerAwareConfig` with its
:class:`PolicyConfig` and :class:`TransitionConfig`), or ``power=None`` for
the non-power-aware baseline.

Defaults follow the paper's Section 4.1 setup: an 8x8 mesh of 64 racks with
8 nodes each, 625 MHz routers, 16-flit buffers, 16-bit flits, 10 Gb/s
maximum links, six bit-rate levels from 5 to 10 Gb/s, Tw = 1000 cycles,
Table 1 thresholds, T_br = 20 cycles, T_v = 100 cycles, and 100 us optical
attenuator transitions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.photonics.constants import MAX_BIT_RATE
from repro.units import MICRO

if TYPE_CHECKING:  # pragma: no cover - typing-only imports (cycle guard)
    from repro.reliability.config import FaultConfig
    from repro.telemetry.config import TelemetryConfig

VCSEL = "vcsel"
MODULATOR = "modulator"

#: Router clock of the paper's evaluation, hertz.
ROUTER_FREQUENCY_HZ = 625e6


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of the clustered network substrate.

    ``mesh_width x mesh_height x nodes_per_cluster`` describes the node
    population; ``topology`` selects how those nodes are wired (see
    ``docs/topologies.md``).  The node count is topology-invariant: a
    ``cmesh`` collapses ``concentration^2`` racks per router and a
    ``line`` unrolls the grid into one row, but every topology hosts
    exactly ``mesh_width * mesh_height * nodes_per_cluster`` nodes so
    traffic patterns stay comparable across the topology axis.
    """

    mesh_width: int = 8
    mesh_height: int = 8
    nodes_per_cluster: int = 8
    buffer_depth: int = 16
    num_vcs: int = 4
    flit_width_bits: int = 16
    router_frequency_hz: float = ROUTER_FREQUENCY_HZ
    head_pipeline_delay: int = 3
    link_propagation_cycles: float = 1.0
    routing: str = "xy"
    #: Switch-allocation arbiter: "round_robin" (default, PopNet-style) or
    #: "matrix" (least-recently-served) — a design-space knob.
    arbiter: str = "round_robin"
    #: Network shape: "mesh" (paper default), "torus", "cmesh" or "line"
    #: (see :mod:`repro.network.topologies`).
    topology: str = "mesh"
    #: Racks-per-router side length for the "cmesh" topology (ignored by
    #: the others): a c x c block of racks shares one router.
    concentration: int = 2

    def __post_init__(self) -> None:
        for name in ("mesh_width", "mesh_height", "nodes_per_cluster",
                     "buffer_depth", "flit_width_bits", "num_vcs",
                     "concentration"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1, got {getattr(self, name)!r}")
        if self.buffer_depth < self.num_vcs:
            raise ConfigError(
                f"buffer_depth {self.buffer_depth} cannot be split across "
                f"{self.num_vcs} virtual channels"
            )
        if self.router_frequency_hz <= 0:
            raise ConfigError("router_frequency_hz must be positive")
        if self.head_pipeline_delay < 0:
            raise ConfigError("head_pipeline_delay must be >= 0")
        if self.link_propagation_cycles < 0:
            raise ConfigError("link_propagation_cycles must be >= 0")
        if self.arbiter not in ("round_robin", "matrix"):
            raise ConfigError(
                f"arbiter must be 'round_robin' or 'matrix', "
                f"got {self.arbiter!r}"
            )
        # Resolve the named topology once: rejects unknown names (listing
        # the known ones) and shape/VC combinations the topology cannot
        # host, at configuration time rather than mid-build.  Imported
        # lazily — the topology registry sits below this module.
        from repro.network.topologies import get_topology

        get_topology(self)

    @property
    def num_routers(self) -> int:
        """Router count under the configured topology."""
        if self.topology == "cmesh":
            return ((self.mesh_width // self.concentration)
                    * (self.mesh_height // self.concentration))
        return self.mesh_width * self.mesh_height

    @property
    def num_nodes(self) -> int:
        return self.mesh_width * self.mesh_height * self.nodes_per_cluster

    @property
    def nodes_per_router(self) -> int:
        """Locals per router (== nodes_per_cluster except under cmesh)."""
        return self.num_nodes // self.num_routers

    @property
    def cycle_time_s(self) -> float:
        """Duration of one router cycle, seconds."""
        return 1.0 / self.router_frequency_hz

    def flit_service_time(self, bit_rate: float, max_bit_rate: float) -> float:
        """Router cycles one flit occupies a link at ``bit_rate``.

        At the paper's operating point (16 bits x 625 MHz = 10 Gb/s) a flit
        takes exactly one cycle at the maximum rate; lower rates stretch the
        service time proportionally.
        """
        if bit_rate <= 0 or bit_rate > max_bit_rate:
            raise ConfigError(
                f"bit_rate must be in (0, {max_bit_rate}], got {bit_rate!r}"
            )
        return self.flit_width_bits * self.router_frequency_hz / bit_rate

    def microseconds_to_cycles(self, microseconds: float) -> int:
        """Convert wall time to router cycles (rounded up)."""
        return math.ceil(microseconds * MICRO * self.router_frequency_hz)


@dataclass(frozen=True)
class PolicyConfig:
    """Link policy controller parameters (paper Section 3.3, Table 1)."""

    window_cycles: int = 1000
    history_windows: int = 3
    threshold_low_uncongested: float = 0.4
    threshold_high_uncongested: float = 0.6
    threshold_low_congested: float = 0.6
    threshold_high_congested: float = 0.7
    congestion_threshold: float = 0.5
    #: Stability guard (our addition, see DESIGN.md): while the downstream
    #: buffer signals congestion (Bu >= congestion_threshold), down-steps
    #: are inhibited.  A link upstream of a bottleneck idles because it is
    #: credit-starved, so its measured Lu collapses even though demand is
    #: high; stepping it down on that reading cascades the congestion
    #: upstream and the network loses throughput below saturation.  Set to
    #: False to reproduce the paper's literal Table 1 behaviour (the
    #: ablation benchmark shows the cascade).
    congestion_inhibits_downscale: bool = True
    #: Congestion rescue (our addition, see DESIGN.md): when the downstream
    #: buffer is nearly full (Bu >= rescue_threshold), step up regardless of
    #: Lu.  In a congestion tree only the root link measures high
    #: utilisation — everything behind it idles on empty credit counters —
    #: so a pure-Lu policy upgrades one tree frontier per window and takes
    #: tens of thousands of cycles to recover from an overshoot.  Bu is the
    #: paper's own congestion signal; this rule lets all congested links
    #: recover in parallel.  Set >= 1.0 to disable.
    rescue_threshold: float = 0.75
    #: Headroom check (our addition, see DESIGN.md): before stepping down,
    #: project the utilisation at the lower rate (Lu * rate_now/rate_lower)
    #: and hold if it would exceed TH.  The sliding average lags the load,
    #: so an unchecked descent overshoots into oversubscription and the
    #: queues built during the lag take thousands of cycles to drain.
    downscale_headroom_check: bool = True
    #: Starvation-aware utilisation (our addition, see DESIGN.md): measure
    #: Lu as the fraction of cycles the link was busy *or blocked with
    #: queued work* (a work-conserving utilisation counter at the output
    #: port).  A bottleneck link inside a congestion tree can idle on empty
    #: credit counters while demand piles up behind it; pure busy-time Lu
    #: under-reads it and the policy never raises its rate.  Set to False
    #: for the paper's literal busy-time statistic.
    pressure_aware_utilisation: bool = True

    def __post_init__(self) -> None:
        if self.window_cycles < 1:
            raise ConfigError("window_cycles must be >= 1")
        if self.history_windows < 1:
            raise ConfigError("history_windows must be >= 1")
        pairs = (
            (self.threshold_low_uncongested, self.threshold_high_uncongested),
            (self.threshold_low_congested, self.threshold_high_congested),
        )
        for low, high in pairs:
            if not 0.0 <= low < high <= 1.0:
                raise ConfigError(
                    f"thresholds must satisfy 0 <= TL < TH <= 1, got ({low}, {high})"
                )
        if not 0.0 <= self.congestion_threshold <= 1.0:
            raise ConfigError("congestion_threshold must lie in [0, 1]")
        if self.rescue_threshold < self.congestion_threshold:
            raise ConfigError(
                "rescue_threshold must be >= congestion_threshold "
                f"({self.rescue_threshold} < {self.congestion_threshold})"
            )

    def with_average_threshold(self, average: float,
                               separation: float = 0.1) -> "PolicyConfig":
        """Derive a config with the *uncongested* band centred on ``average``.

        The Fig. 5(d-f) sweep fixes TH - TL = 0.1 and moves the band's
        centre; the congested band shifts by the same offset, clamped to
        [0, 1].
        """
        low = average - separation / 2.0
        high = average + separation / 2.0
        if not 0.0 <= low < high <= 1.0:
            raise ConfigError(
                f"average threshold {average!r} with separation {separation!r} "
                "leaves the [0, 1] range"
            )
        shift = average - (self.threshold_low_uncongested
                           + self.threshold_high_uncongested) / 2.0
        congested_low = min(max(self.threshold_low_congested + shift, 0.0), 0.98)
        congested_high = min(max(self.threshold_high_congested + shift,
                                 congested_low + 0.01), 1.0)
        return replace(
            self,
            threshold_low_uncongested=low,
            threshold_high_uncongested=high,
            threshold_low_congested=congested_low,
            threshold_high_congested=congested_high,
        )


@dataclass(frozen=True)
class TransitionConfig:
    """Transition delays of the power-control mechanisms (paper Section 4.1).

    All values are router cycles.  ``optical_transition_cycles`` is the VOA
    response (~100 us = 62 500 cycles at 625 MHz) and ``laser_epoch_cycles``
    is the external-laser controller's decision period (~200 us).
    """

    bit_rate_transition_cycles: int = 20
    voltage_transition_cycles: int = 100
    optical_transition_cycles: int = 62_500
    laser_epoch_cycles: int = 125_000
    #: Wake penalty of the LINK_OFF sleep rung, cycles: a fully powered-off
    #: transceiver must re-bias and re-lock, which we model at the optical
    #: (VOA-class, ~100 us) timescale.  Billed as real transition time —
    #: the link is disabled for this long after a wake is requested.
    link_off_wake_cycles: int = 62_500

    def __post_init__(self) -> None:
        for name in ("bit_rate_transition_cycles", "voltage_transition_cycles",
                     "optical_transition_cycles", "link_off_wake_cycles"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")
        if self.laser_epoch_cycles < 1:
            raise ConfigError("laser_epoch_cycles must be >= 1")

    @classmethod
    def ideal(cls) -> "TransitionConfig":
        """Zero electrical transition delays (Fig. 6(b)'s 'w/o delays')."""
        return cls(bit_rate_transition_cycles=0, voltage_transition_cycles=0)


@dataclass(frozen=True)
class PowerAwareConfig:
    """Power-aware machinery: ladder, technology, policy, transitions."""

    technology: str = VCSEL
    min_bit_rate: float = 5e9
    max_bit_rate: float = MAX_BIT_RATE
    num_levels: int = 6
    optical_levels: int = 1
    policy: PolicyConfig = field(default_factory=PolicyConfig)
    transitions: TransitionConfig = field(default_factory=TransitionConfig)
    #: Arm the LINK_OFF sleep rung below ladder level 0: a link whose
    #: policy keeps voting down while fully idle powers off (zero watts)
    #: and pays ``transitions.link_off_wake_cycles`` of disabled time on
    #: wake.  Which link kinds may sleep is gated per-topology
    #: (:meth:`repro.network.topologies.base.Topology.link_off_allowed`).
    #: Off by default — the paper's ladder stops at level 0.
    link_off: bool = False

    def __post_init__(self) -> None:
        if self.technology not in (VCSEL, MODULATOR):
            raise ConfigError(
                f"technology must be {VCSEL!r} or {MODULATOR!r}, "
                f"got {self.technology!r}"
            )
        if not 0 < self.min_bit_rate <= self.max_bit_rate:
            raise ConfigError(
                "need 0 < min_bit_rate <= max_bit_rate, got "
                f"({self.min_bit_rate!r}, {self.max_bit_rate!r})"
            )
        if self.num_levels < 1:
            raise ConfigError("num_levels must be >= 1")
        if self.num_levels == 1 and self.min_bit_rate != self.max_bit_rate:
            raise ConfigError("a one-level ladder needs min == max bit rate")
        if self.optical_levels < 1:
            raise ConfigError("optical_levels must be >= 1")
        if self.optical_levels > 1 and self.technology != MODULATOR:
            raise ConfigError(
                "multiple optical power levels require the modulator "
                "technology (VCSELs tune light through their own drive)"
            )


@dataclass(frozen=True)
class SimulationConfig:
    """A complete simulation: substrate + (optional) power-awareness."""

    network: NetworkConfig = field(default_factory=NetworkConfig)
    power: PowerAwareConfig | None = field(default_factory=PowerAwareConfig)
    seed: int = 1
    warmup_cycles: int = 0
    sample_interval: int = 1000
    #: Stall watchdog: raise SimulationError if packets are in flight but
    #: none is delivered for this many cycles (0 = disabled).  A true
    #: deadlock is always a simulator bug (XY routing + credits is
    #: deadlock-free); the watchdog turns a silent hang into a diagnosis.
    stall_limit_cycles: int = 0
    #: Optional link-reliability fault model (see :mod:`repro.reliability`).
    #: ``None`` (the default) disables every fault code path — the run is
    #: bit-identical to a build without the reliability subsystem.
    faults: FaultConfig | None = None
    #: Run :func:`repro.network.validation.validate_topology` on the wired
    #: mesh at simulator construction and refuse to start on any finding.
    validate_topology: bool = False
    #: Optional run-trace recording (see :mod:`repro.telemetry`).  ``None``
    #: (the default) builds no recorder and registers no hooks — the run
    #: is bit-identical to a build without the telemetry subsystem.
    telemetry: TelemetryConfig | None = None
    #: Route-phase stepping backend: ``"python"`` (the scalar reference)
    #: or ``"numpy"`` (:class:`repro.network.batch.BatchRouteBackend`,
    #: bit-identical, faster at load).  Fault-injected or ``step_all``
    #: runs silently keep the scalar path regardless.
    backend: str = "python"

    def __post_init__(self) -> None:
        if self.warmup_cycles < 0:
            raise ConfigError("warmup_cycles must be >= 0")
        if self.sample_interval < 1:
            raise ConfigError("sample_interval must be >= 1")
        if self.stall_limit_cycles < 0:
            raise ConfigError("stall_limit_cycles must be >= 0")
        if self.backend not in ("python", "numpy"):
            raise ConfigError(
                f"backend must be 'python' or 'numpy', got {self.backend!r}"
            )

    @classmethod
    def baseline(cls, network: NetworkConfig | None = None,
                 seed: int = 1) -> "SimulationConfig":
        """The non-power-aware reference network (all links at max rate)."""
        return cls(network=network or NetworkConfig(), power=None, seed=seed)


def small_network(width: int = 4, height: int = 4,
                  nodes_per_cluster: int = 2,
                  topology: str = "mesh") -> NetworkConfig:
    """A scaled-down network for tests and fast benchmarks.

    The pure-Python simulator runs the paper's full 8x8x8 system, but at
    ~10^4 cycles/s; tests and the shape-checking benchmarks use this smaller
    instance and EXPERIMENTS.md records the scaling.  ``topology`` selects
    the substrate shape (mesh/torus/cmesh/line) on the same node count.
    """
    return NetworkConfig(mesh_width=width, mesh_height=height,
                         nodes_per_cluster=nodes_per_cluster,
                         topology=topology)
