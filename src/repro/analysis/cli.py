"""Argument parsing and exit codes for the ``repro check`` pass.

Shared by ``repro check`` (the simulator CLI subcommand) and
``python -m repro.analysis``.  Exit codes: 0 clean, 1 findings,
2 usage error (argparse's own convention).
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from collections.abc import Sequence
from dataclasses import replace
from pathlib import Path

from repro.analysis.framework import CheckResult, default_root, run_check


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description=("project-specific static analysis: determinism, "
                     "unit-consistency, hook-contract, hot-path and "
                     "stateful-invariant (mirror/reset/cache-key/"
                     "serialization) rules (see docs/static-analysis.md)"),
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to check (default: the repro package)")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--rules", metavar="ID[,ID...]", default=None,
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--root", type=Path, default=None,
        help="directory findings are reported relative to")
    parser.add_argument(
        "--output", type=Path, default=None,
        help="also write the report to this file")
    parser.add_argument(
        "--changed", nargs="?", const="HEAD", default=None,
        metavar="BASE",
        help=("report only findings in files changed vs. the git ref "
              "BASE (default HEAD), for pre-commit use; cross-file "
              "rules still see the whole tree"))
    return parser


def changed_files(base: str, root: Path) -> set[str] | None:
    """Repo-relative paths changed vs. ``base`` (plus untracked files).

    Returns ``None`` when git cannot answer (not a repository, unknown
    ref) — the caller reports the error and exits with a usage error
    rather than silently checking nothing.
    """
    changed: set[str] = set()
    for args in (["diff", "--name-only", base, "--"],
                 ["ls-files", "--others", "--exclude-standard"]):
        proc = subprocess.run(
            ["git", "-C", str(root), *args],
            capture_output=True, text=True,
        )
        if proc.returncode != 0:
            return None
        changed.update(
            line.strip() for line in proc.stdout.splitlines()
            if line.strip()
        )
    return changed


def _filter_changed(result: CheckResult, base: str,
                    root: Path) -> CheckResult | None:
    changed = changed_files(base, root)
    if changed is None:
        return None
    return replace(
        result,
        findings=[f for f in result.findings if f.path in changed],
    )


def run(args: argparse.Namespace) -> int:
    rule_ids = None
    if args.rules:
        rule_ids = [part.strip() for part in args.rules.split(",") if part.strip()]
    try:
        result = run_check(
            paths=args.paths or None,
            root=args.root,
            rule_ids=rule_ids,
        )
    except ValueError as exc:  # unknown rule id
        print(f"repro check: {exc}", file=sys.stderr)
        return 2
    if args.changed is not None:
        filtered = _filter_changed(
            result, args.changed, args.root or default_root())
        if filtered is None:
            print(f"repro check: cannot diff against {args.changed!r} "
                  f"(not a git checkout, or unknown ref)", file=sys.stderr)
            return 2
        result = filtered
    if args.format == "json":
        report = result.to_json()
    elif args.format == "sarif":
        from repro.analysis.rules import all_rules
        from repro.analysis.sarif import to_sarif_json

        rules = all_rules()
        if rule_ids is not None:
            wanted = set(rule_ids)
            rules = [rule for rule in rules if rule.rule_id in wanted]
        report = to_sarif_json(result, rules)
    else:
        report = result.format_text()
    print(report)
    if args.output is not None:
        args.output.write_text(report + "\n", encoding="utf-8")
    return 0 if result.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    return run(parser.parse_args(argv))
