"""Argument parsing and exit codes for the ``repro check`` pass.

Shared by ``repro check`` (the simulator CLI subcommand) and
``python -m repro.analysis``.  Exit codes: 0 clean, 1 findings,
2 usage error (argparse's own convention).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.framework import run_check


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description=("project-specific static analysis: determinism, "
                     "unit-consistency, hook-contract and hot-path rules "
                     "(see docs/static-analysis.md)"),
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to check (default: the repro package)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--rules", metavar="ID[,ID...]", default=None,
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--root", type=Path, default=None,
        help="directory findings are reported relative to")
    parser.add_argument(
        "--output", type=Path, default=None,
        help="also write the report to this file")
    return parser


def run(args: argparse.Namespace) -> int:
    rule_ids = None
    if args.rules:
        rule_ids = [part.strip() for part in args.rules.split(",") if part.strip()]
    try:
        result = run_check(
            paths=args.paths or None,
            root=args.root,
            rule_ids=rule_ids,
        )
    except ValueError as exc:  # unknown rule id
        print(f"repro check: {exc}", file=sys.stderr)
        return 2
    report = result.to_json() if args.format == "json" else result.format_text()
    print(report)
    if args.output is not None:
        args.output.write_text(report + "\n", encoding="utf-8")
    return 0 if result.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    return run(parser.parse_args(argv))
