"""``python -m repro.analysis`` — standalone entry for the checker.

Same engine as ``repro check``; exists so the analysis pass can run
without importing the simulator CLI (and so CI can call it even if the
CLI ever grows heavier imports).
"""

from __future__ import annotations

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
