"""Determinism rules (DT).

The reproduction's equivalence claims — serial == parallel, engine ==
step-everything, table == model — require bit-identical runs from
identical seeds.  These rules keep the classic nondeterminism sources out
of the decision paths:

* ``DT001`` — unseeded global RNG calls (``random.random()``,
  ``np.random.rand()``): state is shared process-wide, so any consumer
  ordering change silently changes every stream.
* ``DT002`` — iteration over a ``set``/``frozenset`` without ``sorted``:
  set order follows hash seeds and object addresses, which vary between
  processes (this is why ``ActiveSet.snapshot`` sorts).
* ``DT003`` — ``id()`` as an ordering key: addresses differ run to run.
* ``DT004`` — wall-clock reads outside the CLI/bench/report layer: time
  must never leak into simulated state.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.framework import Finding, Project, Rule, SourceFile

#: ``random`` module functions that draw from the shared global state.
GLOBAL_RANDOM_FNS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
})

#: Legacy ``numpy.random`` module-level functions (global RandomState).
GLOBAL_NP_RANDOM_FNS = frozenset({
    "choice", "normal", "permutation", "poisson", "rand", "randint",
    "randn", "random", "random_sample", "seed", "shuffle", "uniform",
})

#: ``time`` module wall/CPU-clock reads.
CLOCK_FNS = frozenset({
    "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns",
    "process_time", "process_time_ns", "time", "time_ns",
})

#: ``datetime``/``date`` constructors that read the clock.
DATETIME_FNS = frozenset({"now", "today", "utcnow"})

#: Layers allowed to read the clock: user-facing entry points and the
#: benchmark/report tooling, which measure wall time on purpose.  The
#: phase profiler measures wall time too but takes its clock as an
#: injected callable, so only its *callers* (CLI/bench) touch ``time``.
WALL_CLOCK_ALLOWED = (
    "repro/cli.py",
    "repro/__main__.py",
    "repro/perfbench.py",
    "repro/experiments/report.py",
)

#: Packages whose iteration order feeds simulated decisions.
DETERMINISTIC_LAYERS = (
    "repro/network/",
    "repro/engine/",
    "repro/core/",
    "repro/reliability/",
    "repro/traffic/",
)


def _is_module_attr_call(node: ast.Call, module: str,
                         names: frozenset[str]) -> bool:
    func = node.func
    return (isinstance(func, ast.Attribute)
            and func.attr in names
            and isinstance(func.value, ast.Name)
            and func.value.id == module)


class UnseededRandomRule(Rule):
    """DT001: a call to the process-global RNG."""

    rule_id = "DT001"
    name = "unseeded-global-random"
    description = ("calls to ``random.*``/legacy ``numpy.random.*`` "
                   "module functions share unseeded process-global state")
    hint = ("draw from a seeded instance: random.Random(seed) or "
            "numpy.random.default_rng(seed)")

    def check_file(self, src: SourceFile,
                   project: Project) -> Iterable[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_module_attr_call(node, "random", GLOBAL_RANDOM_FNS):
                yield self.finding(
                    src.rel, node,
                    f"global random.{node.func.attr}() call "  # type: ignore[union-attr]
                    "(shared unseeded RNG state)",
                )
                continue
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in GLOBAL_NP_RANDOM_FNS
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr == "random"
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id in ("np", "numpy")):
                yield self.finding(
                    src.rel, node,
                    f"legacy numpy.random.{func.attr}() call "
                    "(global RandomState)",
                )


class _SetTypeIndex:
    """Names/attributes statically known to hold a ``set``.

    Three sources: annotations (``x: set[...]``), direct construction
    (``x = set(...)`` / ``{a, b}`` / set comprehensions), and dataclass
    or class-level attribute annotations.  Tracking is per enclosing
    function for locals and project-file-wide for ``self.<attr>``.
    """

    def __init__(self, tree: ast.AST):
        self.set_attrs: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign) and \
                    self._is_set_annotation(node.annotation):
                target = node.target
                if isinstance(target, ast.Attribute):
                    self.set_attrs.add(target.attr)
                elif isinstance(target, ast.Name):
                    self.set_attrs.add(target.id)
            elif isinstance(node, ast.Assign) and _is_set_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        self.set_attrs.add(target.attr)

    @staticmethod
    def _is_set_annotation(annotation: ast.expr) -> bool:
        if isinstance(annotation, ast.Subscript):
            annotation = annotation.value
        if isinstance(annotation, ast.Constant) and \
                isinstance(annotation.value, str):
            text = annotation.value
            return text.startswith(("set[", "frozenset[")) or \
                text in ("set", "frozenset")
        return isinstance(annotation, ast.Name) and \
            annotation.id in ("set", "frozenset")


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


class UnsortedSetIterationRule(Rule):
    """DT002: iterating a set without an ordering wrapper."""

    rule_id = "DT002"
    name = "unsorted-set-iteration"
    description = ("iteration order of a set depends on hashes and object "
                   "addresses; decision paths must iterate sorted views")
    hint = "iterate sorted(the_set) or sorted(..., key=<stable key>)"

    def scope(self, rel: str) -> bool:
        return rel.removeprefix("src/").startswith(DETERMINISTIC_LAYERS)

    def check_file(self, src: SourceFile,
                   project: Project) -> Iterable[Finding]:
        index = _SetTypeIndex(src.tree)
        for scope_node in ast.walk(src.tree):
            if not isinstance(scope_node, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                continue
            local_sets = self._local_sets(scope_node)
            for node in ast.walk(scope_node):
                iters: list[ast.expr] = []
                if isinstance(node, ast.For):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.DictComp, ast.GeneratorExp)):
                    iters.extend(gen.iter for gen in node.generators)
                for candidate in iters:
                    if self._is_raw_set(candidate, local_sets, index):
                        yield self.finding(
                            src.rel, candidate,
                            "iteration over a set without sorted() — order "
                            "is not deterministic across processes",
                        )

    @staticmethod
    def _local_sets(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and _is_set_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name) and \
                    _SetTypeIndex._is_set_annotation(node.annotation):
                names.add(node.target.id)
        return names

    @staticmethod
    def _is_raw_set(node: ast.expr, local_sets: set[str],
                    index: _SetTypeIndex) -> bool:
        if _is_set_expr(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in local_sets
        if isinstance(node, ast.Attribute):
            return node.attr in index.set_attrs
        return False


class IdOrderingRule(Rule):
    """DT003: ``id()`` used as an ordering key."""

    rule_id = "DT003"
    name = "id-based-ordering"
    description = ("object addresses differ between runs; ordering by "
                   "``id()`` is nondeterministic even with equal seeds")
    hint = "sort by a stable domain key (link_id, router_id, packet_id, ...)"

    _ORDERING_FNS = ("sorted", "min", "max")

    def check_file(self, src: SourceFile,
                   project: Project) -> Iterable[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_ordering = (
                (isinstance(func, ast.Name)
                 and func.id in self._ORDERING_FNS)
                or (isinstance(func, ast.Attribute) and func.attr == "sort")
            )
            if not is_ordering:
                continue
            for keyword in node.keywords:
                if keyword.arg == "key" and self._is_id_key(keyword.value):
                    yield self.finding(
                        src.rel, keyword.value,
                        "ordering keyed on id() (object addresses)",
                    )

    @staticmethod
    def _is_id_key(node: ast.expr) -> bool:
        if isinstance(node, ast.Name) and node.id == "id":
            return True
        if isinstance(node, ast.Lambda):
            body = node.body
            return (isinstance(body, ast.Call)
                    and isinstance(body.func, ast.Name)
                    and body.func.id == "id")
        return False


class WallClockRule(Rule):
    """DT004: clock reads outside the CLI/bench/report layer."""

    rule_id = "DT004"
    name = "wall-clock-read"
    description = ("time.*/datetime.now reads outside the CLI and "
                   "bench/report layers leak wall time into runs")
    hint = ("move the read to the CLI/bench layer, inject a clock "
            "callable, or suppress with a justification")

    def scope(self, rel: str) -> bool:
        normalised = rel.removeprefix("src/")
        return not normalised.startswith(WALL_CLOCK_ALLOWED)

    def check_file(self, src: SourceFile,
                   project: Project) -> Iterable[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_module_attr_call(node, "time", CLOCK_FNS):
                yield self.finding(
                    src.rel, node,
                    f"wall-clock read time.{node.func.attr}() outside the "  # type: ignore[union-attr]
                    "CLI/bench layer",
                )
                continue
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in DATETIME_FNS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in ("date", "datetime")):
                yield self.finding(
                    src.rel, node,
                    f"wall-clock read {func.value.id}.{func.attr}() outside "
                    "the CLI/bench layer",
                )

    # Clock *references* (e.g. an injectable default argument) are fine:
    # only calls are flagged, so ``clock=time.perf_counter`` passes while
    # ``t0 = time.perf_counter()`` inside the engine does not.
