"""Hot-path purity rules (HP).

The hot loop (``Simulator.run``'s inlined fast path, the router
work-list scan, the delivery schedule and event wheel) runs hundreds of
millions of iterations per benchmark.  The perf pass that built it (see
``docs/performance.md``) relies on a handful of disciplines that decay
silently under maintenance; these rules pin them:

* ``HP001`` — no function-local imports: import-lock and module-dict
  lookups per iteration.
* ``HP002`` — no logging/print/warnings calls: even a disabled logger
  call costs an attribute lookup, an arg tuple and a level check per
  event; telemetry belongs in hooks on the *instrumented* path.
* ``HP003`` — no lambdas or nested ``def``: building a closure object
  per call defeats the method-alias prebinding the fast path uses.
* ``HP004`` — no comprehensions/generator expressions: each one
  allocates a list/iterator per iteration; the hot loop indexes into
  preallocated work lists instead.

The hot set is named explicitly (``HOT_FUNCTIONS``) rather than guessed
from profiles, so a reviewer can see exactly which bodies are under the
stricter contract.  Code outside the set is untouched.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.framework import Finding, Project, Rule, SourceFile

#: repo-relative module path (without the ``src/`` prefix) -> set of
#: ``Class.method`` / function names whose bodies are hot.
HOT_FUNCTIONS: dict[str, frozenset[str]] = {
    "repro/network/simulator.py": frozenset({
        "Simulator.run",
        "Simulator.step",
        "Simulator._phase_deliver",
        "Simulator._phase_route",
        "Simulator._phase_inject",
    }),
    "repro/network/router.py": frozenset({
        "Router.step",
        "Router.step_candidates",
        "Router._forward",
        "Router._route",
        "Router.receive_flit",
        "Router.reset",
    }),
    # The warm-worker reset path (Simulator.reset -> fabric/link/stats
    # resets) runs once per sweep point; at bench sweep rates that is
    # thousands of invocations per second, and the whole point of
    # reset-in-place is to stay cheaper than reconstruction — keep the
    # bodies allocation-light and import-free.
    "repro/network/links.py": frozenset({
        "Link.reset",
    }),
    # The batched numpy gate runs once per simulated cycle; its inner
    # loops iterate the vectorised candidate set.
    "repro/network/batch.py": frozenset({
        "BatchRouteBackend.step",
        "BatchRouteBackend._step_vector",
    }),
    # Topology route/class relations run once per (router, destination)
    # when route tables build, but they are also the `_route_slow`
    # fallback after link failures — keep them allocation-free.
    "repro/network/topologies/mesh.py": frozenset({
        "MeshTopology.route_direction",
    }),
    "repro/network/topologies/torus.py": frozenset({
        "TorusTopology.route_direction",
        "TorusTopology.vc_class",
    }),
    "repro/engine/schedule.py": frozenset({
        "DeliverySchedule.add",
        "DeliverySchedule.discard",
        "DeliverySchedule.pop_due",
        "DeliverySchedule.rearm",
        "DeliverySchedule.retire",
    }),
    "repro/engine/wheel.py": frozenset({
        "EventWheel.schedule",
        "EventWheel.service",
    }),
    "repro/engine/active.py": frozenset({
        "ActiveSet.add",
        "ActiveSet.discard",
        "ActiveSet.snapshot",
    }),
    "repro/network/stats.py": frozenset({
        "StatsCollector.packet_created",
        "StatsCollector.packet_delivered",
        "StatsCollector.reset",
    }),
    "repro/network/topology.py": frozenset({
        "NetworkFabric.reset",
        "Node.reset",
    }),
}

#: Call names that mean "this line produces log/console output".
_LOGGING_CALLS = frozenset({
    "print", "debug", "info", "warning", "warn", "error", "exception",
    "critical", "log",
})
_LOGGING_BASES = frozenset({"logging", "logger", "log", "warnings"})


def _hot_bodies(src: SourceFile) -> Iterable[tuple[str, ast.FunctionDef]]:
    """Yield ``(qualified_name, node)`` for this file's hot functions."""
    wanted = HOT_FUNCTIONS.get(src.rel.removeprefix("src/"))
    if not wanted:
        return
    for node in ast.walk(src.tree):
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    qualified = f"{node.name}.{item.name}"
                    if qualified in wanted:
                        yield qualified, item
        elif isinstance(node, ast.FunctionDef) and node.name in wanted:
            yield node.name, node


class _HotPathRule(Rule):
    """Per-file rule that only looks inside ``HOT_FUNCTIONS`` bodies."""

    def scope(self, rel: str) -> bool:
        return rel.removeprefix("src/") in HOT_FUNCTIONS

    def check_file(self, src: SourceFile,
                   project: Project) -> Iterable[Finding]:
        for qualified, fn in _hot_bodies(src):
            yield from self.check_hot_function(src, qualified, fn)

    def check_hot_function(self, src: SourceFile, qualified: str,
                           fn: ast.FunctionDef) -> Iterable[Finding]:
        raise NotImplementedError


class LocalImportRule(_HotPathRule):
    """HP001: an import statement inside a hot function body."""

    rule_id = "HP001"
    name = "hot-path-local-import"
    description = ("imports inside the hot loop pay the import lock and "
                   "sys.modules lookup on every call")
    hint = "move the import to module scope"

    def check_hot_function(self, src: SourceFile, qualified: str,
                           fn: ast.FunctionDef) -> Iterable[Finding]:
        for node in ast.walk(fn):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield self.finding(
                    src.rel, node,
                    f"function-local import inside hot path {qualified}",
                )


class LoggingInHotPathRule(_HotPathRule):
    """HP002: logging/print/warnings calls inside a hot function body."""

    rule_id = "HP002"
    name = "hot-path-logging"
    description = ("print/logging/warnings calls in the hot loop cost an "
                   "allocation and a level check per event even when "
                   "disabled; use hooks on the instrumented path")
    hint = "emit through a hook, or log outside the loop"

    def check_hot_function(self, src: SourceFile, qualified: str,
                           fn: ast.FunctionDef) -> Iterable[Finding]:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "print":
                yield self.finding(
                    src.rel, node,
                    f"print() inside hot path {qualified}",
                )
            elif (isinstance(func, ast.Attribute)
                    and func.attr in _LOGGING_CALLS
                    and isinstance(func.value, ast.Name)
                    and func.value.id.lower() in _LOGGING_BASES):
                yield self.finding(
                    src.rel, node,
                    f"{func.value.id}.{func.attr}() inside hot path "
                    f"{qualified}",
                )


class ClosureInHotPathRule(_HotPathRule):
    """HP003: lambda or nested def inside a hot function body."""

    rule_id = "HP003"
    name = "hot-path-closure"
    description = ("lambdas and nested defs in the hot loop build a "
                   "closure object per call; prebind a method alias "
                   "outside the loop instead")
    hint = "hoist to a module-level function or a prebound method"

    def check_hot_function(self, src: SourceFile, qualified: str,
                           fn: ast.FunctionDef) -> Iterable[Finding]:
        for node in ast.walk(fn):
            if isinstance(node, ast.Lambda):
                yield self.finding(
                    src.rel, node,
                    f"lambda inside hot path {qualified}",
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not fn:
                yield self.finding(
                    src.rel, node,
                    f"nested function {node.name!r} inside hot path "
                    f"{qualified}",
                )


class ComprehensionInHotPathRule(_HotPathRule):
    """HP004: comprehension or generator expression in a hot body."""

    rule_id = "HP004"
    name = "hot-path-comprehension"
    severity = "warning"
    description = ("each comprehension in the hot loop allocates a fresh "
                   "container per call; the fast path reuses preallocated "
                   "work lists")
    hint = ("reuse a preallocated list, or suppress with a justification "
            "if the branch is demonstrably cold")

    def check_hot_function(self, src: SourceFile, qualified: str,
                           fn: ast.FunctionDef) -> Iterable[Finding]:
        for node in ast.walk(fn):
            if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                 ast.GeneratorExp)):
                kind = type(node).__name__
                yield self.finding(
                    src.rel, node,
                    f"{kind} inside hot path {qualified}",
                )
