"""CK: cache/hash-key coverage rules for memoised construction.

The warm/batched execution stack leans on three content keys:

* the per-process operating-point-table memo
  (``core/manager.py::_table_for_config``), keyed by a tuple of
  ``PowerAwareConfig`` fields;
* the ``structurally_compatible`` guard deciding whether a warm
  ``NetworkPowerManager.reset`` may absorb a new config — it must
  compare exactly the fields the memo key is built from, or a warm
  rerun reuses a table built for a different config;
* the ``SweepPoint`` dataclass consumed by both the cold
  (``runner.run_point``) and warm (``warm.run_point_warm``) executors —
  a field one path reads and the other ignores silently forks results
  between execution modes (the journal's content hash itself iterates
  ``dataclasses.fields`` and needs no rule).

* **CK001** — a ``SweepPoint`` field is not read by every declared
  consumer (cold/warm divergence).
* **CK002** — a memoised builder reads a config field its memo key
  does not cover (stale-table aliasing).
* **CK003** — the structural-compatibility guard and the memo key
  disagree on the field set.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.framework import Finding, Project, Rule, SourceFile

#: The dataclass whose fields must reach both executors.
SWEEP_MODULE = "repro/experiments/runner.py"
SWEEP_CLASS = "SweepPoint"

#: module (without ``src/``) -> {consumer function -> dataclass param}.
SWEEP_CONSUMERS: dict[str, dict[str, str]] = {
    "repro/experiments/runner.py": {"run_point": "point"},
    "repro/experiments/warm.py": {"run_point_warm": "point"},
}

#: module -> {memo function -> (key variable, config param)}: every
#: ``<param>.<field>`` the function reads must appear in the key tuple.
MEMO_KEYS: dict[str, dict[str, tuple[str, str]]] = {
    "repro/core/manager.py": {"_table_for_config": ("key", "config")},
}

#: (guard module, guard function, compared params) vs.
#: (memo module, memo function, key variable, key param).
GUARD_PAIRS: tuple[tuple[str, str, tuple[str, ...], str, str, str, str], ...] = (
    ("repro/core/manager.py", "structurally_compatible",
     ("config", "current"),
     "repro/core/manager.py", "_table_for_config", "key", "config"),
)


def _plain(rel: str) -> str:
    return rel.removeprefix("src/")


def _functions(src: SourceFile) -> Iterator[ast.FunctionDef]:
    """Top-level functions and methods, flattened."""
    for node in src.tree.body:  # type: ignore[attr-defined]
        if isinstance(node, ast.FunctionDef):
            yield node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    yield item


def _find_function(project: Project, module: str,
                   name: str) -> tuple[SourceFile, ast.FunctionDef] | None:
    for src in project:
        if _plain(src.rel) != module:
            continue
        for fn in _functions(src):
            if fn.name == name:
                return src, fn
    return None


def _attr_reads(body: ast.AST, base: str) -> set[str]:
    """Attribute names loaded off the name ``base`` anywhere in ``body``."""
    reads: set[str] = set()
    for node in ast.walk(body):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == base):
            reads.add(node.attr)
    return reads


def _key_fields(fn: ast.FunctionDef, key_var: str,
                param: str) -> tuple[set[str], int] | None:
    """Config attrs inside the ``key = (...)`` assignment, with its line."""
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        if any(isinstance(t, ast.Name) and t.id == key_var
               for t in node.targets):
            return _attr_reads(node.value, param), node.lineno
    return None


def _sweep_fields(project: Project) -> tuple[str, set[str], int] | None:
    """(rel, declared field names, class line) of the SweepPoint dataclass."""
    for src in project:
        if _plain(src.rel) != SWEEP_MODULE:
            continue
        for node in src.tree.body:  # type: ignore[attr-defined]
            if isinstance(node, ast.ClassDef) and node.name == SWEEP_CLASS:
                fields = {
                    item.target.id
                    for item in node.body
                    if isinstance(item, ast.AnnAssign)
                    and isinstance(item.target, ast.Name)
                }
                return src.rel, fields, node.lineno
    return None


class SweepPointCoverageRule(Rule):
    rule_id = "CK001"
    name = "sweep-point-fields-reach-every-executor"
    description = ("a SweepPoint field is not read by every declared "
                   "executor (cold/warm results would diverge)")
    hint = ("thread the new field through run_point AND run_point_warm "
            "(or drop it from the dataclass); the journal hash covers "
            "fields automatically, the executors do not")

    def check_project(self, project: Project) -> Iterable[Finding]:
        sweep = _sweep_fields(project)
        if sweep is None:
            return  # dataclass not part of this run's tree
        _, fields, _ = sweep
        for module, consumers in SWEEP_CONSUMERS.items():
            for fn_name, param in consumers.items():
                found = _find_function(project, module, fn_name)
                if found is None:
                    continue  # consumer module absent: CK rules stay quiet
                src, fn = found
                missing = fields - _attr_reads(fn, param)
                for attr in sorted(missing):
                    yield self.finding(
                        src.rel, fn,
                        f"{fn_name}() never reads {SWEEP_CLASS}.{attr} — "
                        f"the field does not reach this executor",
                    )


class MemoKeyCoverageRule(Rule):
    rule_id = "CK002"
    name = "memo-keys-cover-config-reads"
    description = ("a memoised builder reads a config field its memo key "
                   "does not cover (two configs could alias one entry)")
    hint = "add the field to the memo key tuple (and to the reset guard)"

    def check_project(self, project: Project) -> Iterable[Finding]:
        for module, memos in MEMO_KEYS.items():
            for fn_name, (key_var, param) in memos.items():
                found = _find_function(project, module, fn_name)
                if found is None:
                    continue
                src, fn = found
                key = _key_fields(fn, key_var, param)
                if key is None:
                    yield self.finding(
                        src.rel, fn,
                        f"{fn_name}() has no `{key_var} = (...)` "
                        f"assignment to check the memo key against",
                    )
                    continue
                covered, _ = key
                for attr in sorted(_attr_reads(fn, param) - covered):
                    yield self.finding(
                        src.rel, fn,
                        f"{fn_name}() reads {param}.{attr}, which the "
                        f"memo key does not cover",
                    )


class GuardKeyAgreementRule(Rule):
    rule_id = "CK003"
    name = "reset-guard-matches-memo-key"
    description = ("the structural-compatibility guard and the memo key "
                   "disagree on which config fields are structural")
    hint = ("compare exactly the memo-key fields in the guard: a field "
            "in one set but not the other lets a warm reset reuse "
            "structures built for a different config")

    def check_project(self, project: Project) -> Iterable[Finding]:
        for (guard_mod, guard_fn, params,
             memo_mod, memo_fn, key_var, key_param) in GUARD_PAIRS:
            guard = _find_function(project, guard_mod, guard_fn)
            memo = _find_function(project, memo_mod, memo_fn)
            if guard is None or memo is None:
                continue
            guard_src, guard_body = guard
            _, memo_body = memo
            key = _key_fields(memo_body, key_var, key_param)
            if key is None:
                continue  # CK002 reports the missing key assignment
            key_set, _ = key
            compared: set[str] = set()
            for param in params:
                compared |= _attr_reads(guard_body, param)
            for attr in sorted(compared ^ key_set):
                where = ("guard but not the memo key"
                         if attr in compared else "memo key but not the "
                         "guard")
                yield self.finding(
                    guard_src.rel, guard_body,
                    f"{guard_fn}() and {memo_fn}()'s key disagree: "
                    f"field {attr!r} is in the {where}",
                )
