"""SP: serialization-purity rules for the process-pool boundary.

Sweep points cross a :class:`~concurrent.futures.ProcessPoolExecutor`
boundary by pickling, and their identity enters the resume journal as a
canonical-JSON content hash.  Both break silently:

* a lambda or nested function handed to ``submit``/``map`` (or stored
  in a ``SweepPoint`` field) pickles on some platforms never and on
  none portably — the figure harnesses use frozen-dataclass callables
  instead;
* a hashing path serialising through an unsorted ``json.dumps`` or a
  ``set`` iteration produces hashes that vary between runs, so a
  resumed sweep re-runs (or worse, wrongly skips) completed points.

* **SP001** — a lambda/nested function is submitted to an executor.
* **SP002** — a declared hashing function serialises non-canonically
  (``json.dumps`` without ``sort_keys=True``, or iteration over a
  ``set``).
* **SP003** — a ``SweepPoint`` is constructed with a lambda/nested
  function field (it would cross the pool boundary unpicklable, and
  the journal rejects it only at run time).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.framework import Finding, Project, Rule, SourceFile

#: module (without ``src/``) -> functions whose output feeds a content
#: hash and must therefore serialise canonically.
HASHING_FUNCTIONS: dict[str, frozenset[str]] = {
    "repro/experiments/journal.py": frozenset({"point_key", "_canonical"}),
    "repro/experiments/runner.py": frozenset({"derive_seed"}),
}

#: Executor methods whose first argument crosses the pickle boundary.
_POOL_METHODS = frozenset({"submit", "map"})

#: Callables treated as pool-crossing dataclass constructors.
_BOUNDARY_CLASSES = frozenset({"SweepPoint"})


def _plain(rel: str) -> str:
    return rel.removeprefix("src/")


def _scoped(rel: str) -> bool:
    plain = _plain(rel)
    return plain.startswith("repro/") and \
        not plain.startswith("repro/analysis/")


def _enclosing_scopes(src: SourceFile) -> Iterator[ast.AST]:
    """Module, then every function/method body (for nested-def maps)."""
    yield src.tree
    for node in ast.walk(src.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _scoped_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Nodes belonging to ``scope``, pruned at nested function bodies.

    Each nested function is its own entry in :func:`_enclosing_scopes`
    (with its own nested-name set), so descending into it here would
    report every violation twice.
    """
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(node))


def _nested_defs(scope: ast.AST) -> set[str]:
    """Names of functions defined strictly inside a function body."""
    if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return set()
    names: set[str] = set()
    for node in ast.walk(scope):
        if node is scope:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
    return names


def _unpicklable_reason(arg: ast.expr, nested: set[str]) -> str | None:
    if isinstance(arg, ast.Lambda):
        return "a lambda"
    if isinstance(arg, ast.Name) and arg.id in nested:
        return f"nested function {arg.id}()"
    return None


class PoolSubmissionRule(Rule):
    rule_id = "SP001"
    name = "pool-submissions-are-picklable"
    description = ("a lambda or nested function is submitted to an "
                   "executor (it cannot cross the pickle boundary)")
    hint = ("submit a module-level function; thread per-call state "
            "through its arguments (see executor._guarded_attempt)")

    def scope(self, rel: str) -> bool:
        return _scoped(rel)

    def check_file(self, src: SourceFile,
                   project: Project) -> Iterable[Finding]:
        for scope in _enclosing_scopes(src):
            nested = _nested_defs(scope)
            for node in _scoped_walk(scope):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _POOL_METHODS
                        and node.args):
                    continue
                reason = _unpicklable_reason(node.args[0], nested)
                if reason is not None:
                    yield self.finding(
                        src.rel, node,
                        f".{node.func.attr}() is given {reason}, which "
                        f"cannot be pickled to a worker process",
                    )


class CanonicalHashingRule(Rule):
    rule_id = "SP002"
    name = "hashing-paths-serialise-canonically"
    description = ("a declared hashing function serialises "
                   "non-canonically (unsorted json.dumps or set "
                   "iteration)")
    hint = ("pass sort_keys=True / iterate sorted(...): journal hashes "
            "must be identical across runs and platforms")

    def scope(self, rel: str) -> bool:
        return _plain(rel) in HASHING_FUNCTIONS

    def check_file(self, src: SourceFile,
                   project: Project) -> Iterable[Finding]:
        wanted = HASHING_FUNCTIONS[_plain(src.rel)]
        for node in ast.walk(src.tree):
            if not (isinstance(node, ast.FunctionDef)
                    and node.name in wanted):
                continue
            for inner in ast.walk(node):
                if isinstance(inner, ast.Call):
                    func = inner.func
                    if (isinstance(func, ast.Attribute)
                            and func.attr == "dumps"
                            and not any(
                                kw.arg == "sort_keys"
                                and isinstance(kw.value, ast.Constant)
                                and kw.value.value is True
                                for kw in inner.keywords)):
                        yield self.finding(
                            src.rel, inner,
                            f"{node.name}() calls json.dumps without "
                            f"sort_keys=True",
                        )
                elif isinstance(inner, (ast.For, ast.comprehension)):
                    iterable = inner.iter
                    if isinstance(iterable, ast.Set) or (
                            isinstance(iterable, ast.Call)
                            and isinstance(iterable.func, ast.Name)
                            and iterable.func.id in ("set", "frozenset")):
                        line: int = getattr(inner, "lineno",
                                            iterable.lineno)
                        yield self.finding(
                            src.rel, iterable,
                            f"{node.name}() iterates over a set — "
                            f"ordering is not stable across runs",
                            line=line,
                        )


class BoundaryFieldRule(Rule):
    rule_id = "SP003"
    name = "boundary-dataclasses-carry-picklable-fields"
    description = ("a SweepPoint is built with a lambda/nested-function "
                   "field, which cannot cross the pool boundary")
    hint = ("use a frozen-dataclass callable (see the figure harnesses) "
            "or a module-level factory function")

    def scope(self, rel: str) -> bool:
        return _scoped(rel)

    def check_file(self, src: SourceFile,
                   project: Project) -> Iterable[Finding]:
        for scope in _enclosing_scopes(src):
            nested = _nested_defs(scope)
            for node in _scoped_walk(scope):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, (ast.Name, ast.Attribute))):
                    continue
                callee = node.func.id if isinstance(node.func, ast.Name) \
                    else node.func.attr
                if callee not in _BOUNDARY_CLASSES:
                    continue
                args = list(node.args) + [kw.value for kw in node.keywords]
                for arg in args:
                    reason = _unpicklable_reason(arg, nested)
                    if reason is not None:
                        yield self.finding(
                            src.rel, arg,
                            f"{callee}(...) is built with {reason} as a "
                            f"field value; it cannot cross the process-"
                            f"pool boundary",
                        )
