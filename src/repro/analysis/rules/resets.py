"""RC: reset-completeness rules for the warm-worker contract.

The warm-worker cache (:mod:`repro.experiments.warm`) reruns sweep
points on reused object graphs; correctness rests on ``reset()``
restoring *every* attribute ``__init__`` creates — a missed attribute
silently leaks one run's state into the next and breaks the
warm == cold bit-identity contract (hypothesis-tested, but only over
the states the property test happens to dirty).

These rules check the contract structurally, over the
:mod:`~repro.analysis.project` class models: for every class defining
both ``__init__`` and ``reset``, each ``__init__``-assigned attribute
must be rebound in ``reset()``, restored in place
(``self.attr.clear()`` / ``self.attr.reset(...)``), covered by a
delegated helper (``self._init_run_state(...)``,
``super().__init__`` chains), or declared *structural* in
:data:`RESET_EXEMPT` with a justification.

* **RC001** — ``__init__``-assigned attribute not restored by
  ``reset()`` and not exempted.
* **RC002** — ``reset()`` rebinds an attribute ``__init__`` never
  creates (drift: the attribute was renamed or removed on one side).
* **RC003** — a stale :data:`RESET_EXEMPT` entry (unknown class,
  unknown attribute, or an attribute ``reset()`` meanwhile restores),
  so the exemption table cannot rot silently.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.framework import Finding, Project, Rule
from repro.analysis.project import ClassModel, ClassModelIndex, class_models

#: Structural attributes ``reset()`` deliberately leaves alone, keyed by
#: repo-relative module (without the ``src/`` prefix) then class name.
#: Every entry needs a justification comment; RC003 flags entries that
#: stop matching the code.
RESET_EXEMPT: dict[str, dict[str, frozenset[str]]] = {
    "repro/network/simulator.py": {
        # reset() raises for step_all simulators: the flag selects the
        # legacy polled engine at construction, it is not run state.
        "Simulator": frozenset({"step_all"}),
    },
    "repro/network/stats.py": {
        # packet_hooks is an alias the simulator re-points at its own
        # registry list immediately after every reset (see
        # Simulator._init_run_state); clearing it here would sever the
        # alias instead of restoring it.
        "StatsCollector": frozenset({"packet_hooks"}),
    },
    "repro/network/router.py": {
        # Geometry and port wiring survive a warm reset by design: the
        # whole point of the cache is reusing the constructed fabric.
        "Router": frozenset({
            "router_id", "topology", "x", "y", "num_local", "num_ports",
            "num_vcs", "inputs", "outputs", "head_delay",
        }),
    },
    "repro/network/links.py": {
        # Identity and timing constants baked in by the topology builder.
        "Link": frozenset({"link_id", "kind", "propagation_cycles",
                           "deliver"}),
    },
    "repro/network/topology.py": {
        # Node wiring (its injection link, credit pool and stats sink)
        # is structural; the stats object itself is reset by the
        # simulator, not per node.
        "Node": frozenset({"node_id", "link", "credits", "stats"}),
        # The fabric owns only structure; reset() is pure delegation to
        # the routers/links/nodes it wired at construction.
        "NetworkFabric": frozenset({
            "config", "stats", "topology", "routers", "nodes", "links",
            "downstream_buffers",
        }),
    },
    "repro/network/arbiters.py": {
        # Arbiter width is geometry.
        "RoundRobinArbiter": frozenset({"size"}),
        "MatrixArbiter": frozenset({"size"}),
    },
    "repro/network/buffers.py": {
        # Buffer capacity is geometry.
        "InputBuffer": frozenset({"capacity"}),
        "CreditCounter": frozenset({"capacity"}),
    },
    "repro/core/manager.py": {
        # The manager's reset(config) swaps policy scalars on the warm
        # fabric; the fabric binding, ladder, billing table and the
        # service-time plumbing are the structural pieces whose
        # compatibility the structurally_compatible() guard checks
        # before reset is allowed at all.
        "NetworkPowerManager": frozenset({
            "network", "ladder", "power_model", "multi_optical", "bands",
            "table", "_service_time_fn", "links", "_fabric_topology",
            "_baseline_power",
        }),
    },
    "repro/core/power_link.py": {
        # Transport link, ladder and the shared per-level billing row
        # survive; policy/engine/optical are rebuilt fresh by reset().
        "PowerAwareLink": frozenset({
            "link", "ladder", "level_powers", "downstream_buffer",
        }),
    },
    "repro/core/policy.py": {
        # The threshold configuration is what the controller *is*;
        # PowerAwareLink.reset rebuilds controllers to change it.
        "LinkPolicyController": frozenset({"config"}),
    },
}


def _exempt_for(rel: str, name: str) -> frozenset[str]:
    return RESET_EXEMPT.get(rel.removeprefix("src/"), {}).get(
        name, frozenset())


def _reset_classes(project: Project
                   ) -> Iterable[tuple[ClassModelIndex, ClassModel]]:
    """Every modelled class defining both ``__init__`` and ``reset``."""
    index = class_models(project)
    for model in index.by_key.values():
        if model.rel.removeprefix("src/").startswith("repro/analysis/"):
            continue
        if "reset" in model.methods and \
                index.has_method(model, "__init__"):
            yield index, model


class ResetCompletenessRule(Rule):
    rule_id = "RC001"
    name = "reset-restores-every-attribute"
    description = ("an attribute assigned in __init__ is not restored by "
                   "reset() and not exempted as structural")
    hint = ("restore the attribute in reset() (assignment, .clear(), or a "
            "delegated init helper), or add it to RESET_EXEMPT in "
            "analysis/rules/resets.py with a justification")

    def check_project(self, project: Project) -> Iterable[Finding]:
        for index, model in _reset_classes(project):
            rebound, restored = index.reset_coverage(model)
            covered = rebound | restored | _exempt_for(model.rel, model.name)
            for attr in sorted(index.init_attrs(model) - covered):
                yield self.finding(
                    model.rel, None,
                    f"{model.name}.{attr} is assigned in __init__ but "
                    f"never restored by reset()",
                    line=index.init_write_line(model, attr),
                )


class ResetDriftRule(Rule):
    rule_id = "RC002"
    name = "reset-writes-known-attributes"
    description = ("reset() rebinds an attribute that __init__ never "
                   "creates (rename/removal drift)")
    hint = ("rename the reset() assignment to match __init__, or create "
            "the attribute in __init__ so cold and warm graphs agree")

    def check_project(self, project: Project) -> Iterable[Finding]:
        for index, model in _reset_classes(project):
            rebound, _ = index.reset_coverage(model)
            init_attrs = index.init_attrs(model)
            owner = index._method_owner(model, "reset")
            line = owner.methods["reset"] if owner is not None \
                else model.line
            for attr in sorted(rebound - init_attrs):
                yield self.finding(
                    model.rel, None,
                    f"{model.name}.reset() assigns self.{attr}, which "
                    f"__init__ never creates",
                    line=line,
                )


class ResetExemptionStalenessRule(Rule):
    rule_id = "RC003"
    name = "reset-exemptions-stay-live"
    description = ("a RESET_EXEMPT entry no longer matches the code "
                   "(unknown class/attribute, or the attribute is now "
                   "restored by reset())")
    hint = "delete or update the stale entry in analysis/rules/resets.py"

    def check_project(self, project: Project) -> Iterable[Finding]:
        index = class_models(project)
        for spec_rel, classes in RESET_EXEMPT.items():
            rels = [rel for rel in (spec_rel, f"src/{spec_rel}")
                    if rel in {m.rel for m in index.by_key.values()}]
            if not rels:
                continue  # module not part of this run's tree
            rel = rels[0]
            for cls_name, attrs in classes.items():
                model = index.get(rel, cls_name)
                if model is None or "reset" not in model.methods:
                    yield self.finding(
                        rel, None,
                        f"RESET_EXEMPT names {cls_name} in {spec_rel}, "
                        f"but no such class with a reset() exists",
                    )
                    continue
                init_attrs = index.init_attrs(model)
                rebound, restored = index.reset_coverage(model)
                for attr in sorted(attrs):
                    if attr not in init_attrs:
                        yield self.finding(
                            rel, None,
                            f"RESET_EXEMPT lists {cls_name}.{attr}, but "
                            f"__init__ assigns no such attribute",
                            line=model.line,
                        )
                    elif attr in rebound or attr in restored:
                        yield self.finding(
                            rel, None,
                            f"RESET_EXEMPT lists {cls_name}.{attr}, but "
                            f"reset() now restores it — the exemption is "
                            f"stale",
                            line=model.line,
                        )
