"""Hook-contract rules (HC).

Cross-checks the three legs of the engine's observer contract (see
:mod:`repro.analysis.project`): the ``EVENTS`` vocabulary in
:mod:`repro.engine.hooks`, the registrations made by subscribers, and
the fire sites in the engine/simulator/manager.

* ``HC001`` — a registration (``hooks.add``/``remove``) naming an event
  the registry does not define.  The registry raises at runtime too, but
  only when that code path executes; the rule catches it at lint time.
* ``HC002`` — a read of ``hooks.<attr>`` for an attribute that is
  neither an event list nor registry API: a fire site nothing can
  subscribe to.
* ``HC003`` — an event the registry defines but nothing ever fires:
  subscribers can register and will silently never be called.
* ``HC004`` — a call-signature mismatch: a fire site passing a different
  number of arguments than the event's other fire sites, or a registered
  callback that cannot accept what the fire sites pass.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.framework import Finding, Project, Rule
from repro.analysis.project import (
    HOOKS_MODULE_SUFFIX,
    REGISTRY_API,
    HookModel,
    build_hook_model,
    is_hooks_base,
)


class _HookRuleBase(Rule):
    """Shared lazily-built :class:`HookModel` per project run."""

    def _model(self, project: Project) -> HookModel:
        cached: HookModel | None = getattr(project, "_hook_model", None)
        if cached is None:
            cached = build_hook_model(project)
            project._hook_model = cached  # type: ignore[attr-defined]
        return cached


class UnknownRegistrationRule(_HookRuleBase):
    """HC001: registration for an event the registry does not define."""

    rule_id = "HC001"
    name = "unknown-hook-registration"
    description = ("hooks.add()/remove() with an event name missing from "
                   "repro.engine.hooks.EVENTS")
    hint = "fix the name or add the event to EVENTS (and document it)"

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = self._model(project)
        if not model.events:
            return
        known = set(model.events)
        for registration in model.registrations:
            if registration.kind == "wiring":
                continue  # structurally matched, name already validated
            if registration.event not in known:
                yield Finding(
                    path=registration.rel, line=registration.line,
                    col=registration.col, rule_id=self.rule_id,
                    message=(f"hooks.{registration.kind}() for unknown "
                             f"event {registration.event!r}"),
                    severity=self.severity, hint=self.hint,
                )


class UnknownFireRule(_HookRuleBase):
    """HC002: reading an event list the registry does not define."""

    rule_id = "HC002"
    name = "unknown-hook-fire"
    description = ("a read of hooks.<name> where <name> is not in EVENTS "
                   "fires callbacks nothing can ever register")
    hint = "add the event to EVENTS or fix the attribute name"

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = self._model(project)
        if not model.events:
            return
        allowed = set(model.events) | REGISTRY_API
        for src in project:
            if src.rel.endswith(HOOKS_MODULE_SUFFIX):
                continue
            for node in ast.walk(src.tree):
                if (isinstance(node, ast.Attribute)
                        and isinstance(node.ctx, ast.Load)
                        and is_hooks_base(node.value)
                        and node.attr not in allowed
                        and not node.attr.startswith("__")):
                    yield Finding(
                        path=src.rel, line=node.lineno,
                        col=node.col_offset, rule_id=self.rule_id,
                        message=(f"read of undefined hook event "
                                 f"{node.attr!r}"),
                        severity=self.severity, hint=self.hint,
                    )


class UnfiredEventRule(_HookRuleBase):
    """HC003: an event the registry defines but nothing fires."""

    rule_id = "HC003"
    name = "unfired-hook-event"
    description = ("an EVENTS entry with no fire/forward site anywhere: "
                   "registrations for it are silently dead")
    hint = "fire the event from the engine or retire it from EVENTS"

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = self._model(project)
        if not model.events:
            return
        hooks_rel = next(
            (src.rel for src in project
             if src.rel.endswith(HOOKS_MODULE_SUFFIX)), None)
        if hooks_rel is None:
            return
        live = {load.event for load in model.loads}
        live |= {fire.event for fire in model.fires}
        for event in model.events:
            if event not in live:
                yield Finding(
                    path=hooks_rel, line=model.events_line, col=0,
                    rule_id=self.rule_id,
                    message=(f"event {event!r} is defined but never "
                             "fired by any scanned module"),
                    severity=self.severity, hint=self.hint,
                )


class SignatureMismatchRule(_HookRuleBase):
    """HC004: fire sites and registered callbacks disagree on arity."""

    rule_id = "HC004"
    name = "hook-signature-mismatch"
    description = ("every fire site of an event must pass the same "
                   "arguments, and registered callbacks must accept them")
    hint = "align the callback/fire signature with docs/simulator.md"

    def check_project(self, project: Project) -> Iterable[Finding]:
        from repro.analysis.project import resolve_callback_arity

        model = self._model(project)
        if not model.events:
            return
        canonical: dict[str, int] = {}
        by_event: dict[str, list] = {}
        for fire in model.fires:
            by_event.setdefault(fire.event, []).append(fire)
        for event, fires in by_event.items():
            counts: dict[int, int] = {}
            for fire in fires:
                counts[fire.arity] = counts.get(fire.arity, 0) + 1
            # Modal arity wins; ties break toward the smaller arity so the
            # report is deterministic.
            modal = sorted(counts.items(),
                           key=lambda item: (-item[1], item[0]))[0][0]
            canonical[event] = modal
            if len(counts) > 1:
                for fire in fires:
                    if fire.arity != modal:
                        yield Finding(
                            path=fire.rel, line=fire.line, col=fire.col,
                            rule_id=self.rule_id,
                            message=(f"{event!r} fired with {fire.arity} "
                                     f"argument(s); other sites pass "
                                     f"{modal}"),
                            severity=self.severity, hint=self.hint,
                        )
        for registration in model.registrations:
            if registration.kind == "remove":
                continue
            expected = canonical.get(registration.event)
            if expected is None:
                continue
            arity = resolve_callback_arity(model, registration)
            if arity is None:
                continue
            minimum, maximum, has_varargs = arity
            if has_varargs:
                continue
            if not minimum <= expected <= maximum:
                accepts = str(maximum) if minimum == maximum else \
                    f"{minimum}..{maximum}"
                yield Finding(
                    path=registration.rel, line=registration.line,
                    col=registration.col, rule_id=self.rule_id,
                    message=(f"callback registered for "
                             f"{registration.event!r} accepts {accepts} "
                             f"positional argument(s) but fire sites "
                             f"pass {expected}"),
                    severity=self.severity, hint=self.hint,
                )
