"""Unit-consistency rules (UN).

The photonics layer keeps a strict internal convention (watts, bits per
second, seconds — see :mod:`repro.units`), with unit-suffixed names
(``fiber_loss_db``, ``received_power_w``) marking everything that is
*not* in base units.  These rules lint that convention:

* ``UN001`` — additive arithmetic or comparison between operands whose
  inferred units disagree (``margin_db + power_w``).
* ``UN002`` — a raw scale-factor literal (``* 1e9``, ``* 1e-6``) doing a
  conversion that :mod:`repro.units` owns.
* ``UN003`` — an assignment whose target suffix contradicts the value's
  inferred unit (``power_w = watts_to_dbm(...)``).
* ``UN004`` — inline dB/linear math (``10.0 ** (x / 10.0)``) instead of
  the :func:`repro.units.db_to_ratio` family.

Unit inference is deliberately shallow — suffixes, :mod:`repro.units`
helper calls, and propagation through names/ternaries — so every finding
is explainable by looking at the flagged line alone.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.framework import Finding, Project, Rule, SourceFile

#: identifier suffix -> unit tag.
SUFFIX_UNITS = {
    "_w": "W",
    "_mw": "mW",
    "_uw": "uW",
    "_dbm": "dBm",
    "_db": "dB",
    "_gbps": "Gb/s",
    "_bps": "b/s",
    "_hz": "Hz",
    "_ghz": "GHz",
    "_s": "s",
    "_ns": "ns",
    "_ps": "ps",
    "_cycles": "cycles",
    "_j": "J",
    "_fj": "fJ",
}

#: :mod:`repro.units` helper -> unit tag of its return value.
HELPER_RETURNS = {
    "gbps": "b/s",
    "to_gbps": "Gb/s",
    "mw": "W",
    "to_mw": "mW",
    "uw": "W",
    "dbm_to_watts": "W",
    "watts_to_dbm": "dBm",
    "db_to_ratio": "ratio",
    "ratio_to_db": "dB",
    "wavelength_to_frequency": "Hz",
}

#: Unit pairs that may legitimately mix under + / - / comparison
#: (a dB offset applied to an absolute dBm level yields dBm).
ALLOWED_MIXES = frozenset({("dB", "dBm"), ("dBm", "dB")})

#: Scale factors that are conversions in disguise.  Maps the literal to
#: the :mod:`repro.units` spelling reviewers should reach for.
SCALE_LITERALS = {
    1e3: "units.GIGA/units.MILLI scaling or an explicit helper",
    1e6: "a repro.units helper (e.g. wavelength/frequency helpers)",
    1e9: "units.gbps()/units.GIGA",
    1e12: "units.PICO's inverse — add a helper instead",
    1e-3: "units.mw()/units.MILLI",
    1e-6: "units.uw()/units.MICRO",
    1e-9: "units.NANO",
    1e-12: "units.PICO",
    1e-15: "units.FEMTO",
}

#: Files that define the conversions and constants themselves.
CONVERSION_OWNERS = (
    "repro/units.py",
    "repro/photonics/constants.py",
)

#: The package the inference rules (UN001/UN003) run on.
PHOTONICS_PACKAGE = "repro/photonics/"


def _suffix_unit(identifier: str) -> str | None:
    lowered = identifier.lower()
    for suffix, unit in SUFFIX_UNITS.items():
        if lowered.endswith(suffix):
            return unit
    return None


class _UnitInference:
    """Per-function shallow unit inference."""

    def __init__(self) -> None:
        self.locals: dict[str, str] = {}

    def unit_of(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            from_suffix = _suffix_unit(node.id)
            if from_suffix is not None:
                return from_suffix
            return self.locals.get(node.id)
        if isinstance(node, ast.Attribute):
            return _suffix_unit(node.attr)
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            if name is None:
                return None
            if name in HELPER_RETURNS:
                return HELPER_RETURNS[name]
            return _suffix_unit(name)
        if isinstance(node, ast.UnaryOp):
            return self.unit_of(node.operand)
        if isinstance(node, ast.IfExp):
            return self.unit_of(node.body) or self.unit_of(node.orelse)
        if isinstance(node, ast.BinOp) and \
                isinstance(node.op, (ast.Add, ast.Sub)):
            left = self.unit_of(node.left)
            right = self.unit_of(node.right)
            if left is not None and right is not None:
                if left == right:
                    return left
                if (left, right) in ALLOWED_MIXES:
                    return "dBm"
                return None
            return left or right
        return None


class MixedUnitArithmeticRule(Rule):
    """UN001: additive arithmetic between different inferred units."""

    rule_id = "UN001"
    name = "mixed-unit-arithmetic"
    description = ("+, - and comparisons require operands in the same "
                   "unit; convert through repro.units first")
    hint = "convert one operand with a repro.units helper"

    def scope(self, rel: str) -> bool:
        return rel.removeprefix("src/").startswith(PHOTONICS_PACKAGE)

    def check_file(self, src: SourceFile,
                   project: Project) -> Iterable[Finding]:
        for fn in ast.walk(src.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            inference = _UnitInference()
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign):
                    unit = inference.unit_of(node.value)
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            if unit is not None:
                                inference.locals[target.id] = unit
                            else:
                                inference.locals.pop(target.id, None)
                elif isinstance(node, ast.BinOp) and \
                        isinstance(node.op, (ast.Add, ast.Sub)):
                    yield from self._check_pair(
                        src, node, inference.unit_of(node.left),
                        inference.unit_of(node.right), "arithmetic")
                elif isinstance(node, ast.Compare):
                    operands = [node.left, *node.comparators]
                    for left, right in zip(operands, operands[1:]):
                        yield from self._check_pair(
                            src, right, inference.unit_of(left),
                            inference.unit_of(right), "comparison")

    def _check_pair(self, src: SourceFile, node: ast.expr,
                    left: str | None, right: str | None,
                    what: str) -> Iterable[Finding]:
        if left is None or right is None or left == right:
            return
        if (left, right) in ALLOWED_MIXES:
            return
        yield self.finding(
            src.rel, node,
            f"mixed-unit {what}: {left} combined with {right}",
        )


class MagicScaleConstantRule(Rule):
    """UN002: a raw scale-factor literal doing a unit conversion."""

    rule_id = "UN002"
    name = "magic-scale-constant"
    description = ("unit conversions belong in repro.units; raw 1e9/1e-6 "
                   "factors hide which unit a value is in")
    hint = "use the matching repro.units helper or named constant"

    def scope(self, rel: str) -> bool:
        return not rel.removeprefix("src/").startswith(CONVERSION_OWNERS)

    def check_file(self, src: SourceFile,
                   project: Project) -> Iterable[Finding]:
        for node in ast.walk(src.tree):
            if not (isinstance(node, ast.BinOp)
                    and isinstance(node.op, (ast.Mult, ast.Div))):
                continue
            for operand in (node.left, node.right):
                if (isinstance(operand, ast.Constant)
                        and isinstance(operand.value, float)
                        and operand.value in SCALE_LITERALS):
                    yield self.finding(
                        src.rel, operand,
                        f"raw scale factor {operand.value!r} in arithmetic",
                        hint=f"use {SCALE_LITERALS[operand.value]}",
                    )


class SuffixContradictionRule(Rule):
    """UN003: assignment target suffix contradicts the value's unit."""

    rule_id = "UN003"
    name = "unit-suffix-contradiction"
    description = ("a ``*_w`` name must hold watts; assigning it a value "
                   "inferred to be in another unit is a latent bug")
    hint = "rename the variable or convert the value"

    def scope(self, rel: str) -> bool:
        return rel.removeprefix("src/").startswith(PHOTONICS_PACKAGE)

    def check_file(self, src: SourceFile,
                   project: Project) -> Iterable[Finding]:
        for fn in ast.walk(src.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            inference = _UnitInference()
            for node in ast.walk(fn):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                value = node.value
                if value is None:
                    continue
                value_unit = inference.unit_of(value)
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    name = None
                    if isinstance(target, ast.Name):
                        name = target.id
                    elif isinstance(target, ast.Attribute):
                        name = target.attr
                    if name is None:
                        continue
                    target_unit = _suffix_unit(name)
                    if target_unit is None or value_unit is None:
                        if isinstance(target, ast.Name) and \
                                value_unit is not None:
                            inference.locals[target.id] = value_unit
                        continue
                    if target_unit != value_unit and \
                            (target_unit, value_unit) not in ALLOWED_MIXES:
                        yield self.finding(
                            src.rel, node,
                            f"{name} ({target_unit}) assigned a value "
                            f"inferred to be {value_unit}",
                        )


class InlineDbMathRule(Rule):
    """UN004: open-coded dB/linear conversion."""

    rule_id = "UN004"
    name = "inline-db-math"
    description = ("``10 ** (x / 10)`` re-implements db_to_ratio; "
                   "scattered copies drift and hide the unit change")
    hint = "use repro.units.db_to_ratio / ratio_to_db / dbm_to_watts"

    def scope(self, rel: str) -> bool:
        return rel.removeprefix("src/") != "repro/units.py"

    def check_file(self, src: SourceFile,
                   project: Project) -> Iterable[Finding]:
        for node in ast.walk(src.tree):
            if not (isinstance(node, ast.BinOp)
                    and isinstance(node.op, ast.Pow)):
                continue
            base = node.left
            if not (isinstance(base, ast.Constant)
                    and base.value in (10, 10.0)):
                continue
            exponent = node.right
            if (isinstance(exponent, ast.BinOp)
                    and isinstance(exponent.op, ast.Div)
                    and isinstance(exponent.right, ast.Constant)
                    and exponent.right.value in (10, 10.0)):
                yield self.finding(
                    src.rel, node,
                    "inline dB-to-linear conversion (10 ** (x / 10))",
                )
