"""MC: mirror-coherence rules for the batched route-phase backend.

:class:`~repro.network.batch.BatchRouteBackend` keeps struct-of-arrays
mirrors of scalar gating state (latched routes, eligibility stamps,
claimed output VCs, link serialiser horizons, output-VC ownership).
The mirrors are only correct if **every** mutation of a mirrored field
either writes the mirror through in the same method or sits in a method
the backend re-syncs around — a single unmirrored store silently
desynchronises the python and numpy engines.

* **MC001** — a mirrored field is mutated outside the declared
  mirror-maintaining methods (:data:`MIRROR_MAINTAINERS`) and outside
  the justified exemptions (:data:`MIRROR_EXEMPT` /
  :data:`MIRROR_EXEMPT_PREFIXES`).
* **MC002** — a mirror array allocated in ``BatchRouteBackend.__init__``
  is not rebuilt by ``resync()`` (a new mirror was added without
  extending the rebuild).
* **MC003** — the spec tables themselves are stale: a maintainer or
  exemption names a method that no longer exists, or a structural
  exemption names an attribute ``__init__`` no longer allocates.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.framework import Finding, Project, Rule, SourceFile
from repro.analysis.project import class_models

#: Scalar fields the backend mirrors (field -> mirror array), per
#: docs in network/batch.py.  A store to any of these anywhere in the
#: engine must be mirror-coherent.
MIRRORED_FIELDS: dict[str, str] = {
    "route_out": "routed/out_link",
    "eligible_at": "elig",
    "out_vc": "hasoutvc",
    "vc_class": "klass",
    "free_at": "linkfree",
    "vc_owner": "vcfree",
}

#: Repo-relative module of the backend (without the ``src/`` prefix).
BATCH_MODULE = "repro/network/batch.py"
BATCH_CLASS = "BatchRouteBackend"

#: Mirror arrays that are structural wiring, rebuilt only at
#: construction: resync() restores run state on a fixed geometry.
BATCH_STRUCTURAL = frozenset({
    "routers", "links", "registry", "num_vcs", "_pv",
    "_link_owner", "_link_out",
})

#: Methods allowed to mutate mirrored fields: each one either performs
#: the matching mirror write-through (Router.step/step_candidates/
#: _forward/receive_flit via _mirror_* helpers and inline array stores),
#: runs while no backend is attached (constructors, Router.reset — the
#: simulator rebuilds the backend, whose __init__ resyncs, after every
#: fabric reset), or *is* the rebuild (BatchRouteBackend.resync).
MIRROR_MAINTAINERS: dict[str, frozenset[str]] = {
    "repro/network/router.py": frozenset({
        "VirtualChannel.__init__", "OutputPort.__init__",
        "Router.reset", "Router.receive_flit",
        "Router.step", "Router.step_candidates", "Router._forward",
        "Router._mirror_route", "Router._mirror_grant",
    }),
    "repro/network/links.py": frozenset({"Link.__init__", "Link.reset"}),
    "repro/network/batch.py": frozenset({f"{BATCH_CLASS}.resync"}),
}

#: Justified out-of-band mutation sites.  Each entry must explain why
#: the store cannot desynchronise a live backend.
MIRROR_EXEMPT: dict[str, frozenset[str]] = {
    # Link.push serialises on injection (node -> router) links; the
    # backend mirrors free_at only for router *output* links, which are
    # fed exclusively by Router._forward's inlined, mirrored store.
    "repro/network/links.py": frozenset({"Link.push"}),
    # Node.step inlines Link.push on the node's own injection link —
    # never a router output, so linkfree does not track it.
    "repro/network/topology.py": frozenset({"Node.step"}),
}

#: Module prefixes exempt wholesale: fault-injected runs never
#: construct the backend (Simulator._init_run_state gates it on
#: ``faults is None``), so the reliability layer cannot race a mirror.
MIRROR_EXEMPT_PREFIXES: tuple[str, ...] = ("repro/reliability/",)


def _iter_bodies(src: SourceFile) -> Iterator[tuple[str, ast.AST]]:
    """(qualified name, body node) for each top-level function/method."""
    for node in src.tree.body:  # type: ignore[attr-defined]
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{node.name}.{item.name}", item


def _mirror_stores(body: ast.AST) -> Iterator[tuple[str, ast.expr]]:
    """(field, target node) for each store to a mirrored field."""
    for node in ast.walk(body):
        targets: list[ast.expr]
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Subscript):
                target = target.value
            if isinstance(target, ast.Attribute) and \
                    target.attr in MIRRORED_FIELDS:
                yield target.attr, target


class _MirrorRuleBase(Rule):
    def _rel(self, rel: str) -> str:
        return rel.removeprefix("src/")


class MirrorCoherenceRule(_MirrorRuleBase):
    rule_id = "MC001"
    name = "mirrored-fields-mutate-in-maintainers"
    description = ("a field mirrored by BatchRouteBackend is mutated "
                   "outside the declared mirror-maintaining methods")
    hint = ("mirror the store through (see Router._mirror_* / the inline "
            "batch writes in Router._forward), or add the method to "
            "MIRROR_MAINTAINERS/MIRROR_EXEMPT in analysis/rules/"
            "mirrors.py with a justification")

    def scope(self, rel: str) -> bool:
        plain = rel.removeprefix("src/")
        return (plain.startswith("repro/")
                and not plain.startswith("repro/analysis/")
                and not plain.startswith(MIRROR_EXEMPT_PREFIXES))

    def check_file(self, src: SourceFile,
                   project: Project) -> Iterable[Finding]:
        plain = self._rel(src.rel)
        allowed = MIRROR_MAINTAINERS.get(plain, frozenset()) | \
            MIRROR_EXEMPT.get(plain, frozenset())
        for qualified, body in _iter_bodies(src):
            if qualified in allowed:
                continue
            for fld, target in _mirror_stores(body):
                yield self.finding(
                    src.rel, target,
                    f"{qualified} mutates mirrored field .{fld} "
                    f"(backend array: {MIRRORED_FIELDS[fld]}) without a "
                    f"mirror write-through",
                )


class MirrorRebuildRule(_MirrorRuleBase):
    rule_id = "MC002"
    name = "resync-rebuilds-every-mirror"
    description = ("a mirror array allocated in BatchRouteBackend."
                   "__init__ is not rebuilt by resync()")
    hint = ("rebuild the new mirror in resync() (warm resets rely on it), "
            "or add it to BATCH_STRUCTURAL if it is fixed wiring")

    def check_project(self, project: Project) -> Iterable[Finding]:
        index = class_models(project)
        for rel in (BATCH_MODULE, f"src/{BATCH_MODULE}"):
            model = index.get(rel, BATCH_CLASS)
            if model is None:
                continue
            resynced = model.touched_attrs("resync")
            for attr in sorted(model.bound_attrs("__init__")
                               - BATCH_STRUCTURAL - resynced):
                write = model.first_write("__init__", attr)
                yield self.finding(
                    model.rel, None,
                    f"{BATCH_CLASS}.{attr} is allocated in __init__ but "
                    f"never rebuilt by resync()",
                    line=write.line if write is not None else model.line,
                )


class MirrorSpecStalenessRule(_MirrorRuleBase):
    rule_id = "MC003"
    name = "mirror-spec-stays-live"
    description = ("a MIRROR_MAINTAINERS/MIRROR_EXEMPT/BATCH_STRUCTURAL "
                   "entry no longer matches the code")
    hint = "delete or update the stale entry in analysis/rules/mirrors.py"

    def check_project(self, project: Project) -> Iterable[Finding]:
        rels = {self._rel(src.rel): src.rel for src in project}
        if BATCH_MODULE not in rels:
            return  # backend not part of this run's tree
        index = class_models(project)
        for table_name, table in (("MIRROR_MAINTAINERS", MIRROR_MAINTAINERS),
                                  ("MIRROR_EXEMPT", MIRROR_EXEMPT)):
            for spec_rel, methods in table.items():
                rel = rels.get(spec_rel)
                if rel is None:
                    yield self.finding(
                        rels[BATCH_MODULE], None,
                        f"{table_name} names module {spec_rel}, which is "
                        f"not in the tree",
                    )
                    continue
                defined = {
                    qualified
                    for qualified, _ in _iter_bodies(project.by_rel[rel])
                }
                for method in sorted(methods - defined):
                    yield self.finding(
                        rel, None,
                        f"{table_name} names {method} in {spec_rel}, "
                        f"which no longer exists",
                    )
        model = index.get(rels[BATCH_MODULE], BATCH_CLASS)
        if model is None:
            yield self.finding(
                rels[BATCH_MODULE], None,
                f"class {BATCH_CLASS} not found in {BATCH_MODULE}",
            )
            return
        allocated = model.bound_attrs("__init__")
        for attr in sorted(BATCH_STRUCTURAL - allocated):
            yield self.finding(
                model.rel, None,
                f"BATCH_STRUCTURAL lists {BATCH_CLASS}.{attr}, which "
                f"__init__ no longer allocates",
                line=model.line,
            )
