"""The rule catalogue for ``repro check``.

Nine families, twenty-nine rules (see ``docs/static-analysis.md``):

=========  ==================================================
family     invariant
=========  ==================================================
``DT0xx``  determinism: identical seeds give identical runs
``UN0xx``  unit consistency across the photonics layer
``HC0xx``  hook contract between engine and subscribers
``HP0xx``  purity of the inlined hot loop
``MC0xx``  batch-backend mirrors track every scalar mutation
``RC0xx``  reset() restores everything __init__ creates
``CK0xx``  memo/hash keys cover every behavioral input
``SP0xx``  pool-boundary picklability and canonical hashing
``SU0xx``  suppression hygiene (no stale noqa comments)
=========  ==================================================

To add a rule: subclass :class:`repro.analysis.framework.Rule` in the
matching family module, give it the next free id, and list it here.
``all_rules`` is the single registration point — tests assert id
uniqueness against it.
"""

from __future__ import annotations

from repro.analysis.framework import Rule
from repro.analysis.rules.cachekeys import (
    GuardKeyAgreementRule,
    MemoKeyCoverageRule,
    SweepPointCoverageRule,
)
from repro.analysis.rules.determinism import (
    IdOrderingRule,
    UnseededRandomRule,
    UnsortedSetIterationRule,
    WallClockRule,
)
from repro.analysis.rules.hookcontract import (
    SignatureMismatchRule,
    UnfiredEventRule,
    UnknownFireRule,
    UnknownRegistrationRule,
)
from repro.analysis.rules.hotpath import (
    ClosureInHotPathRule,
    ComprehensionInHotPathRule,
    LocalImportRule,
    LoggingInHotPathRule,
)
from repro.analysis.rules.mirrors import (
    MirrorCoherenceRule,
    MirrorRebuildRule,
    MirrorSpecStalenessRule,
)
from repro.analysis.rules.resets import (
    ResetCompletenessRule,
    ResetDriftRule,
    ResetExemptionStalenessRule,
)
from repro.analysis.rules.serialization import (
    BoundaryFieldRule,
    CanonicalHashingRule,
    PoolSubmissionRule,
)
from repro.analysis.rules.suppressions import StaleSuppressionRule
from repro.analysis.rules.units import (
    InlineDbMathRule,
    MagicScaleConstantRule,
    MixedUnitArithmeticRule,
    SuffixContradictionRule,
)

_RULE_CLASSES: tuple[type[Rule], ...] = (
    UnseededRandomRule,
    UnsortedSetIterationRule,
    IdOrderingRule,
    WallClockRule,
    MixedUnitArithmeticRule,
    MagicScaleConstantRule,
    SuffixContradictionRule,
    InlineDbMathRule,
    UnknownRegistrationRule,
    UnknownFireRule,
    UnfiredEventRule,
    SignatureMismatchRule,
    LocalImportRule,
    LoggingInHotPathRule,
    ClosureInHotPathRule,
    ComprehensionInHotPathRule,
    MirrorCoherenceRule,
    MirrorRebuildRule,
    MirrorSpecStalenessRule,
    ResetCompletenessRule,
    ResetDriftRule,
    ResetExemptionStalenessRule,
    SweepPointCoverageRule,
    MemoKeyCoverageRule,
    GuardKeyAgreementRule,
    PoolSubmissionRule,
    CanonicalHashingRule,
    BoundaryFieldRule,
    StaleSuppressionRule,
)


def all_rules() -> list[Rule]:
    """One fresh instance of every registered rule, in report order."""
    return [cls() for cls in _RULE_CLASSES]


__all__ = ["all_rules"]
