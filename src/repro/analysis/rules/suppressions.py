"""SU: suppression-hygiene meta-rule.

The suppression cap meta-test (``test_repository_suppressions_stay_few``)
only stays honest if every ``# repro: noqa[ID]`` in the tree actually
suppresses something: a noqa left behind after the flagged code was
fixed or moved both pads the cap and — worse — silently swallows the
*next* genuine finding that lands on its line.

* **SU001** — a ``noqa[ID]`` / ``noqa-file[ID]`` comment that
  suppressed zero findings in this run.

The detection itself lives in
:func:`repro.analysis.framework.run_check`, because staleness is only
knowable *after* every other rule has run and the suppression filter
has matched findings to sites; this class contributes the id, severity
and hint, and makes the rule selectable via ``--rules``.  Two
deliberate asymmetries: a suppression for a rule excluded from the run
(``--rules`` subset) is never reported (the rule might have matched),
and ``noqa[SU001]`` itself is never treated as stale (suppressing a
stale-suppression report is a reviewed decision that must not
oscillate).
"""

from __future__ import annotations

from repro.analysis.framework import STALE_SUPPRESSION_ID, Rule


class StaleSuppressionRule(Rule):
    rule_id = STALE_SUPPRESSION_ID
    name = "suppressions-suppress-something"
    description = ("a noqa[ID] / noqa-file[ID] comment suppresses zero "
                   "findings (stale after the flagged code changed)")
    hint = ("delete the noqa comment; if the finding is expected to "
            "return, re-add it together with the code that triggers it")
