"""The rule framework behind ``repro check``.

A :class:`Rule` inspects parsed source and yields :class:`Finding`\\ s; the
runner (:func:`run_check`) collects the project's files, parses each one
once, applies every rule, filters suppressed findings and renders the
result as human-readable text or JSON.

Suppression
-----------
A finding is suppressed by a ``# repro: noqa[<rule id>]`` comment on
the flagged line (e.g. ``noqa`` + ``[UN001]``), or for a whole file by
a ``# repro: noqa-file[<rule id>]`` comment anywhere in it
(conventionally at the top).  The examples spell the bracket out
because the parser scans *raw lines* — a literal example here would
register as a real (and stale, see SU001) suppression for this file.

Several ids may share one comment (``[DT001,DT004]``).  Every
suppression should carry a short justification after the bracket; the
text is free-form but reviewers treat an unexplained suppression as a
finding of its own.
"""

from __future__ import annotations

import ast
import json
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

#: Severity levels, mild to fatal.  Any non-suppressed finding fails the
#: check regardless of severity; the level exists so reports can rank.
WARNING = "warning"
ERROR = "error"
Severity = str

#: ``# repro: noqa[ID,...]`` (line) / ``# repro: noqa-file[ID,...]`` (file).
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*noqa(?P<file>-file)?\[(?P<ids>[A-Z]{2}\d{3}"
    r"(?:\s*,\s*[A-Z]{2}\d{3})*)\]"
)

#: Output-schema version stamped into every JSON report.
JSON_SCHEMA_VERSION = 1

#: Rule id of the stale-suppression meta-rule.  Its detection lives in
#: :func:`run_check` (suppressions are only matched after every other
#: rule has produced findings); the rule class in ``rules/suppressions``
#: carries the id, severity and documentation.
STALE_SUPPRESSION_ID = "SU001"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: Severity = ERROR
    hint: str = ""

    def format(self) -> str:
        """``path:line:col: RULE message (hint: ...)`` — one line."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Finding":
        """Inverse of :meth:`as_dict` (JSON report round-trip)."""
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            rule_id=str(data["rule"]),
            message=str(data["message"]),
            severity=str(data.get("severity", ERROR)),
            hint=str(data.get("hint", "")),
        )


@dataclass(frozen=True)
class SuppressionSite:
    """One ``noqa[ID]`` comment, for stale-suppression accounting."""

    rel: str
    #: Line of the comment itself (the suppressed line for line-level
    #: sites; wherever the ``noqa-file`` comment sits for file-level).
    line: int
    rule_id: str
    file_wide: bool


@dataclass
class SourceFile:
    """One parsed file: AST, raw lines and its suppression comments."""

    path: Path
    rel: str
    text: str
    tree: ast.AST
    #: line number -> rule ids suppressed on that line.
    line_suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: rule ids suppressed for the whole file.
    file_suppressions: set[str] = field(default_factory=set)
    #: every suppression comment, one site per (location, rule id).
    suppression_sites: list[SuppressionSite] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, rel: str) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=rel)
        src = cls(path=path, rel=rel, text=text, tree=tree)
        for lineno, line in enumerate(text.splitlines(), start=1):
            if "repro:" not in line:
                continue
            for match in _SUPPRESS_RE.finditer(line):
                ids = {part.strip() for part in match.group("ids").split(",")}
                file_wide = bool(match.group("file"))
                if file_wide:
                    src.file_suppressions |= ids
                else:
                    src.line_suppressions.setdefault(lineno, set()).update(ids)
                for rule_id in ids:
                    src.suppression_sites.append(SuppressionSite(
                        rel=rel, line=lineno, rule_id=rule_id,
                        file_wide=file_wide,
                    ))
        return src

    def suppresses(self, finding: Finding) -> bool:
        return self.matching_site(finding) is not None

    def matching_site(self, finding: Finding) -> SuppressionSite | None:
        """The suppression site covering ``finding``, if any.

        File-wide sites win (they are what makes the finding disappear
        however the flagged line moves); the returned site is what the
        stale-suppression pass marks as *used*.
        """
        line_match = None
        for site in self.suppression_sites:
            if site.rule_id != finding.rule_id:
                continue
            if site.file_wide:
                return site
            if site.line == finding.line and line_match is None:
                line_match = site
        return line_match


class Project:
    """Every parsed file of one check run, keyed by repo-relative path."""

    def __init__(self, files: Sequence[SourceFile], root: Path):
        self.files = list(files)
        self.root = root
        self.by_rel = {src.rel: src for src in self.files}

    def __iter__(self) -> Iterator[SourceFile]:
        return iter(self.files)


class Rule:
    """Base class: one invariant, one stable id, one severity.

    Subclasses override :meth:`check_file` (per-file rules) and/or
    :meth:`check_project` (cross-file rules that need the whole
    :class:`Project`, e.g. the hook-contract family).  ``scope`` decides
    which files a per-file rule sees; project rules receive everything
    and scope themselves.
    """

    rule_id: str = "XX000"
    name: str = "unnamed"
    severity: Severity = ERROR
    description: str = ""

    def scope(self, rel: str) -> bool:
        """Whether this rule applies to the file at repo-relative ``rel``."""
        return True

    def check_file(self, src: SourceFile, project: Project) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()

    def finding(self, src_rel: str, node: ast.AST | None, message: str,
                *, hint: str | None = None, line: int | None = None,
                col: int | None = None) -> Finding:
        """Build a :class:`Finding` for ``node`` (or an explicit line)."""
        return Finding(
            path=src_rel,
            line=line if line is not None else getattr(node, "lineno", 1),
            col=col if col is not None else getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
            severity=self.severity,
            hint=self.hint if hint is None else hint,
        )

    #: Default fix hint attached to findings (subclasses set it).
    hint: str = ""


@dataclass
class CheckResult:
    """Outcome of one ``repro check`` run."""

    findings: list[Finding]
    suppressed: int
    files_checked: int
    root: str

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts

    def as_dict(self) -> dict[str, object]:
        return {
            "version": JSON_SCHEMA_VERSION,
            "root": self.root,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "counts": self.counts_by_rule(),
            "findings": [finding.as_dict() for finding in self.findings],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def format_text(self) -> str:
        """The human report: one line per finding plus a summary."""
        lines = [finding.format() for finding in self.findings]
        counts = self.counts_by_rule()
        if counts:
            breakdown = ", ".join(
                f"{rule} x{count}" for rule, count in sorted(counts.items())
            )
            lines.append(
                f"\n{len(self.findings)} finding(s) in {self.files_checked} "
                f"file(s) [{breakdown}] ({self.suppressed} suppressed)"
            )
        else:
            lines.append(
                f"clean: 0 findings in {self.files_checked} file(s) "
                f"({self.suppressed} suppressed)"
            )
        return "\n".join(lines)


def collect_files(paths: Sequence[Path], root: Path) -> list[SourceFile]:
    """Parse every ``*.py`` under ``paths`` (files or directories)."""
    seen: dict[str, Path] = {}
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            try:
                rel = str(candidate.resolve().relative_to(root.resolve()))
            except ValueError:
                rel = str(candidate)
            seen[rel] = candidate
    return [SourceFile.parse(path, rel) for rel, path in sorted(seen.items())]


def run_check(paths: Sequence[Path | str] | None = None,
              rules: Sequence[Rule] | None = None,
              root: Path | str | None = None,
              rule_ids: Sequence[str] | None = None) -> CheckResult:
    """Run ``rules`` over ``paths`` and return the filtered result.

    ``paths`` defaults to the package's own source tree (``src/repro``
    resolved relative to this installation), so the CI invocation and the
    meta-test need no arguments.  ``rule_ids`` restricts the run to a
    subset of rule ids (for bisecting a report).
    """
    from repro.analysis.rules import all_rules

    if root is None:
        root = default_root()
    root = Path(root)
    if paths is None:
        paths = [default_source_tree()]
    resolved = [Path(p) for p in paths]
    if rules is None:
        rules = all_rules()
    if rule_ids is not None:
        wanted = set(rule_ids)
        unknown = wanted - {rule.rule_id for rule in rules}
        if unknown:
            raise ValueError(f"unknown rule ids: {sorted(unknown)}")
        rules = [rule for rule in rules if rule.rule_id in wanted]
    files = collect_files(resolved, root)
    project = Project(files, root)

    raw: list[Finding] = []
    for rule in rules:
        for src in project:
            if rule.scope(src.rel):
                raw.extend(rule.check_file(src, project))
        raw.extend(rule.check_project(project))

    findings: list[Finding] = []
    suppressed = 0
    used_sites: set[SuppressionSite] = set()
    for finding in raw:
        src = project.by_rel.get(finding.path)
        site = src.matching_site(finding) if src is not None else None
        if site is not None:
            suppressed += 1
            used_sites.add(site)
        else:
            findings.append(finding)

    # Stale-suppression pass (SU001): a noqa that matched nothing is a
    # finding of its own, but only when the suppressed rule actually ran
    # (a --rules subset must not flag every other family's noqa), and
    # never for noqa[SU001] itself (suppressing a stale-suppression
    # report is a reviewed decision, not a staleness signal).
    active_ids = {rule.rule_id for rule in rules}
    stale_rule = next(
        (rule for rule in rules if rule.rule_id == STALE_SUPPRESSION_ID),
        None)
    if stale_rule is not None:
        for src in project:
            for site in src.suppression_sites:
                if (site.rule_id == STALE_SUPPRESSION_ID
                        or site.rule_id not in active_ids
                        or site in used_sites):
                    continue
                stale = stale_rule.finding(
                    src.rel, None,
                    f"noqa{'-file' if site.file_wide else ''}"
                    f"[{site.rule_id}] suppresses no finding",
                    line=site.line,
                )
                if src.matching_site(stale) is not None:
                    suppressed += 1
                else:
                    findings.append(stale)
    findings.sort()
    return CheckResult(
        findings=findings,
        suppressed=suppressed,
        files_checked=len(files),
        root=str(root),
    )


def default_source_tree() -> Path:
    """The installed package's own source directory (``src/repro``)."""
    return Path(__file__).resolve().parent.parent


def default_root() -> Path:
    """The directory repo-relative paths are reported against.

    ``src``'s parent when running from a checkout (reports read
    ``src/repro/...``); the package parent otherwise.
    """
    src_dir = default_source_tree().parent
    return src_dir.parent if src_dir.name == "src" else src_dir
