"""Cross-file project model for the hook-contract rules.

The hook contract has three legs spread over the whole package:

* the **vocabulary** — the ``EVENTS`` tuple in
  :mod:`repro.engine.hooks` is the single source of truth for hook
  names;
* **registrations** — ``hooks.add("event", callback)`` calls (and the
  telemetry recorder's wiring tuples) subscribe callbacks;
* **fires** — the engine reads ``hooks.<event>`` and calls each entry:
  either directly (``for cb in hooks.window``) or through a local alias
  (``delivery_hooks = self.hooks.delivery``) or a cross-object alias
  (``self.stats.packet_hooks = self.hooks.packet_delivered``).

:class:`HookModel` extracts all three legs from the parsed ASTs so the
``HC`` rules can cross-check them without executing anything.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.framework import Project, SourceFile

#: Repo-relative path of the registry definition (the vocabulary source).
HOOKS_MODULE_SUFFIX = "repro/engine/hooks.py"

#: Attribute names on a ``HookRegistry`` that are not event lists.
REGISTRY_API = {"add", "remove", "instrumented"}

#: Base-name spellings treated as "a HookRegistry lives here".
_HOOKS_BASES = {"hooks", "_registry"}


def _last_name(node: ast.expr) -> str | None:
    """The trailing identifier of a ``Name``/``Attribute`` chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def is_hooks_base(node: ast.expr) -> bool:
    """Whether ``node`` plausibly evaluates to a ``HookRegistry``."""
    name = _last_name(node)
    return name is not None and name in _HOOKS_BASES


@dataclass(frozen=True)
class Registration:
    """One ``hooks.add``/``remove`` (or wiring-tuple) subscription."""

    rel: str
    line: int
    col: int
    event: str
    #: The callback expression (for arity resolution); may be None when
    #: the registration was found structurally (wiring tuple).
    callback: ast.expr | None
    #: "add", "remove" or "wiring".
    kind: str


@dataclass(frozen=True)
class FireSite:
    """One ``callback(...)`` call inside an iteration over an event list."""

    rel: str
    line: int
    col: int
    event: str
    arity: int


@dataclass(frozen=True)
class EventLoad:
    """Any load of ``hooks.<event>`` (fire, alias, or truthiness check)."""

    rel: str
    line: int
    col: int
    event: str


@dataclass
class HookModel:
    """The project's extracted hook contract."""

    #: The registry vocabulary, in definition order; empty if the hooks
    #: module was not part of the scanned tree.
    events: tuple[str, ...] = ()
    #: Line of the ``EVENTS`` assignment (for placing project findings).
    events_line: int = 1
    registrations: list[Registration] = field(default_factory=list)
    fires: list[FireSite] = field(default_factory=list)
    loads: list[EventLoad] = field(default_factory=list)
    #: attribute name -> event, from ``obj.attr = hooks.<event>`` aliases.
    attr_aliases: dict[str, str] = field(default_factory=dict)
    #: (rel, class name) -> {method name -> (min positional, max positional,
    #: has *args)} with ``self`` excluded.
    methods: dict[tuple[str, str], dict[str, tuple[int, int, bool]]] = \
        field(default_factory=dict)
    #: rel -> {function name -> arity triple} for module-level functions.
    functions: dict[str, dict[str, tuple[int, int, bool]]] = \
        field(default_factory=dict)


def build_hook_model(project: Project) -> HookModel:
    model = HookModel()
    for src in project:
        if src.rel.endswith(HOOKS_MODULE_SUFFIX):
            model.events, model.events_line = _extract_events(src)
            break
    known = set(model.events)
    # Pass 1: signatures and cross-object aliases (needed before fires).
    for src in project:
        _collect_signatures(src, model)
        _collect_attr_aliases(src, model, known)
    # Pass 2: registrations, loads and fire sites.
    for src in project:
        _collect_registrations(src, model, known)
        if not src.rel.endswith(HOOKS_MODULE_SUFFIX):
            _collect_loads(src, model, known)
        _collect_fires(src, model, known)
    return model


def _extract_events(src: SourceFile) -> tuple[tuple[str, ...], int]:
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "EVENTS" not in targets:
            continue
        if isinstance(node.value, (ast.Tuple, ast.List)):
            names = []
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and \
                        isinstance(element.value, str):
                    names.append(element.value)
            return tuple(names), node.lineno
    return (), 1


def _arity_of(args: ast.arguments, *, method: bool) -> tuple[int, int, bool]:
    positional = [*args.posonlyargs, *args.args]
    if method and positional and positional[0].arg in ("self", "cls"):
        positional = positional[1:]
    maximum = len(positional)
    minimum = maximum - len(args.defaults)
    return minimum, maximum, args.vararg is not None


def _collect_signatures(src: SourceFile, model: HookModel) -> None:
    module_fns: dict[str, tuple[int, int, bool]] = {}
    for node in src.tree.body:  # type: ignore[attr-defined]
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module_fns[node.name] = _arity_of(node.args, method=False)
        elif isinstance(node, ast.ClassDef):
            methods: dict[str, tuple[int, int, bool]] = {}
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods[item.name] = _arity_of(item.args, method=True)
            model.methods[(src.rel, node.name)] = methods
    model.functions[src.rel] = module_fns


def _collect_attr_aliases(src: SourceFile, model: HookModel,
                          known: set[str]) -> None:
    """``obj.attr = hooks.<event>`` makes ``attr`` an event alias."""
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not (isinstance(value, ast.Attribute)
                and is_hooks_base(value.value)
                and value.attr in known):
            continue
        for target in node.targets:
            if isinstance(target, ast.Attribute):
                model.attr_aliases[target.attr] = value.attr


def _collect_registrations(src: SourceFile, model: HookModel,
                           known: set[str]) -> None:
    for node in ast.walk(src.tree):
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in ("add", "remove")
                    and is_hooks_base(func.value)
                    and len(node.args) == 2
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                model.registrations.append(Registration(
                    rel=src.rel, line=node.lineno, col=node.col_offset,
                    event=node.args[0].value, callback=node.args[1],
                    kind=func.attr,
                ))
        elif isinstance(node, ast.Tuple):
            # Wiring tuples, e.g. the telemetry recorder's
            # ``(KIND_X, "event", self._on_x)`` rows: a string event name
            # next to an ``_on_*`` callback attribute is a registration
            # for contract purposes even though ``hooks.add`` is called
            # with variables.
            event = None
            callback = None
            for element in node.elts:
                if isinstance(element, ast.Constant) and \
                        isinstance(element.value, str) and \
                        element.value in known:
                    event = element.value
                elif isinstance(element, ast.Attribute) and \
                        element.attr.startswith("_on"):
                    callback = element
            if event is not None and callback is not None:
                model.registrations.append(Registration(
                    rel=src.rel, line=node.lineno, col=node.col_offset,
                    event=event, callback=callback, kind="wiring",
                ))


def _collect_loads(src: SourceFile, model: HookModel,
                   known: set[str]) -> None:
    for node in ast.walk(src.tree):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and is_hooks_base(node.value)
                and node.attr in known):
            model.loads.append(EventLoad(
                rel=src.rel, line=node.lineno, col=node.col_offset,
                event=node.attr,
            ))


class _FireVisitor(ast.NodeVisitor):
    """Finds ``callback(...)`` calls inside loops over event lists.

    Local aliasing is resolved per function: plain assignments from
    ``hooks.<event>``, conditional guards (``hooks.x if hooks else ()``),
    tuple unpacking, and loads of project-wide attribute aliases.
    """

    def __init__(self, src: SourceFile, model: HookModel, known: set[str]):
        self.src = src
        self.model = model
        self.known = known
        self._locals: dict[str, str] = {}

    # -- alias resolution ------------------------------------------------------

    def _event_of(self, node: ast.expr) -> str | None:
        """The event an expression evaluates to, if statically known."""
        if isinstance(node, ast.Attribute):
            if is_hooks_base(node.value) and node.attr in self.known:
                return node.attr
            alias = self.model.attr_aliases.get(node.attr)
            if alias is not None:
                return alias
            return None
        if isinstance(node, ast.Name):
            return self._locals.get(node.id)
        if isinstance(node, ast.IfExp):
            return self._event_of(node.body) or self._event_of(node.orelse)
        return None

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        saved = self._locals
        self._locals = {}
        self.generic_visit(node)
        self._locals = saved

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        targets = node.targets
        if len(targets) == 1 and isinstance(targets[0], ast.Tuple) and \
                isinstance(value, ast.Tuple) and \
                len(targets[0].elts) == len(value.elts):
            pairs = list(zip(targets[0].elts, value.elts))
        else:
            pairs = [(target, value) for target in targets]
        for target, rhs in pairs:
            if isinstance(target, ast.Name):
                event = self._event_of(rhs)
                if event is not None:
                    self._locals[target.id] = event
                else:
                    self._locals.pop(target.id, None)
        self.generic_visit(node)

    # -- fire-site collection --------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        event = self._event_of(node.iter)
        if event is not None and isinstance(node.target, ast.Name):
            callback_name = node.target.id
            for inner in ast.walk(node):
                if (isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Name)
                        and inner.func.id == callback_name):
                    self.model.fires.append(FireSite(
                        rel=self.src.rel, line=inner.lineno,
                        col=inner.col_offset, event=event,
                        arity=len(inner.args),
                    ))
        self.generic_visit(node)


def _collect_fires(src: SourceFile, model: HookModel,
                   known: set[str]) -> None:
    _FireVisitor(src, model, known).visit(src.tree)


def resolve_callback_arity(model: HookModel, registration: Registration
                           ) -> tuple[int, int, bool] | None:
    """Positional-arity bounds of a registration's callback, if resolvable.

    Handles ``self._on_x`` / ``obj._on_x`` (method of a class in the same
    file), bare function names, and lambdas.  Returns ``None`` when the
    callback cannot be resolved statically.
    """
    callback = registration.callback
    if callback is None:
        return None
    if isinstance(callback, ast.Lambda):
        return _arity_of(callback.args, method=False)
    name = None
    if isinstance(callback, ast.Attribute):
        name = callback.attr
    elif isinstance(callback, ast.Name):
        in_module = model.functions.get(registration.rel, {})
        if callback.id in in_module:
            return in_module[callback.id]
        name = callback.id
    if name is None:
        return None
    # Search classes in the registration's own file first, then anywhere.
    candidates = []
    for (rel, _cls), methods in model.methods.items():
        if name in methods:
            candidates.append((0 if rel == registration.rel else 1,
                               methods[name]))
    if not candidates:
        return None
    candidates.sort(key=lambda pair: pair[0])
    same_file = [arity for distance, arity in candidates if distance == 0]
    pool = same_file or [arity for _, arity in candidates]
    # Ambiguous across files with differing arities: give up rather than
    # guess wrong.
    if len({arity for arity in pool}) > 1:
        return None
    return pool[0]
