"""Cross-file project models for the hook-contract and stateful rules.

Two extracted models live here:

* :class:`HookModel` — the hook contract (vocabulary, registrations,
  fire sites) backing the ``HC`` family;
* :class:`ClassModelIndex` — per-class attribute dataflow (attributes
  assigned in ``__init__``, reassigned or restored in ``reset()``,
  mutated elsewhere) backing the ``MC``/``RC`` families.

The hook contract has three legs spread over the whole package:

* the **vocabulary** — the ``EVENTS`` tuple in
  :mod:`repro.engine.hooks` is the single source of truth for hook
  names;
* **registrations** — ``hooks.add("event", callback)`` calls (and the
  telemetry recorder's wiring tuples) subscribe callbacks;
* **fires** — the engine reads ``hooks.<event>`` and calls each entry:
  either directly (``for cb in hooks.window``) or through a local alias
  (``delivery_hooks = self.hooks.delivery``) or a cross-object alias
  (``self.stats.packet_hooks = self.hooks.packet_delivered``).

:class:`HookModel` extracts all three legs from the parsed ASTs so the
``HC`` rules can cross-check them without executing anything.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.framework import Project, SourceFile

#: Repo-relative path of the registry definition (the vocabulary source).
HOOKS_MODULE_SUFFIX = "repro/engine/hooks.py"

#: Attribute names on a ``HookRegistry`` that are not event lists.
REGISTRY_API = {"add", "remove", "instrumented"}

#: Base-name spellings treated as "a HookRegistry lives here".
_HOOKS_BASES = {"hooks", "_registry"}


def _last_name(node: ast.expr) -> str | None:
    """The trailing identifier of a ``Name``/``Attribute`` chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def is_hooks_base(node: ast.expr) -> bool:
    """Whether ``node`` plausibly evaluates to a ``HookRegistry``."""
    name = _last_name(node)
    return name is not None and name in _HOOKS_BASES


@dataclass(frozen=True)
class Registration:
    """One ``hooks.add``/``remove`` (or wiring-tuple) subscription."""

    rel: str
    line: int
    col: int
    event: str
    #: The callback expression (for arity resolution); may be None when
    #: the registration was found structurally (wiring tuple).
    callback: ast.expr | None
    #: "add", "remove" or "wiring".
    kind: str


@dataclass(frozen=True)
class FireSite:
    """One ``callback(...)`` call inside an iteration over an event list."""

    rel: str
    line: int
    col: int
    event: str
    arity: int


@dataclass(frozen=True)
class EventLoad:
    """Any load of ``hooks.<event>`` (fire, alias, or truthiness check)."""

    rel: str
    line: int
    col: int
    event: str


@dataclass
class HookModel:
    """The project's extracted hook contract."""

    #: The registry vocabulary, in definition order; empty if the hooks
    #: module was not part of the scanned tree.
    events: tuple[str, ...] = ()
    #: Line of the ``EVENTS`` assignment (for placing project findings).
    events_line: int = 1
    registrations: list[Registration] = field(default_factory=list)
    fires: list[FireSite] = field(default_factory=list)
    loads: list[EventLoad] = field(default_factory=list)
    #: attribute name -> event, from ``obj.attr = hooks.<event>`` aliases.
    attr_aliases: dict[str, str] = field(default_factory=dict)
    #: (rel, class name) -> {method name -> (min positional, max positional,
    #: has *args)} with ``self`` excluded.
    methods: dict[tuple[str, str], dict[str, tuple[int, int, bool]]] = \
        field(default_factory=dict)
    #: rel -> {function name -> arity triple} for module-level functions.
    functions: dict[str, dict[str, tuple[int, int, bool]]] = \
        field(default_factory=dict)


def build_hook_model(project: Project) -> HookModel:
    model = HookModel()
    for src in project:
        if src.rel.endswith(HOOKS_MODULE_SUFFIX):
            model.events, model.events_line = _extract_events(src)
            break
    known = set(model.events)
    # Pass 1: signatures and cross-object aliases (needed before fires).
    for src in project:
        _collect_signatures(src, model)
        _collect_attr_aliases(src, model, known)
    # Pass 2: registrations, loads and fire sites.
    for src in project:
        _collect_registrations(src, model, known)
        if not src.rel.endswith(HOOKS_MODULE_SUFFIX):
            _collect_loads(src, model, known)
        _collect_fires(src, model, known)
    return model


def _extract_events(src: SourceFile) -> tuple[tuple[str, ...], int]:
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "EVENTS" not in targets:
            continue
        if isinstance(node.value, (ast.Tuple, ast.List)):
            names = []
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and \
                        isinstance(element.value, str):
                    names.append(element.value)
            return tuple(names), node.lineno
    return (), 1


def _arity_of(args: ast.arguments, *, method: bool) -> tuple[int, int, bool]:
    positional = [*args.posonlyargs, *args.args]
    if method and positional and positional[0].arg in ("self", "cls"):
        positional = positional[1:]
    maximum = len(positional)
    minimum = maximum - len(args.defaults)
    return minimum, maximum, args.vararg is not None


def _collect_signatures(src: SourceFile, model: HookModel) -> None:
    module_fns: dict[str, tuple[int, int, bool]] = {}
    for node in src.tree.body:  # type: ignore[attr-defined]
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module_fns[node.name] = _arity_of(node.args, method=False)
        elif isinstance(node, ast.ClassDef):
            methods: dict[str, tuple[int, int, bool]] = {}
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods[item.name] = _arity_of(item.args, method=True)
            model.methods[(src.rel, node.name)] = methods
    model.functions[src.rel] = module_fns


def _collect_attr_aliases(src: SourceFile, model: HookModel,
                          known: set[str]) -> None:
    """``obj.attr = hooks.<event>`` makes ``attr`` an event alias."""
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not (isinstance(value, ast.Attribute)
                and is_hooks_base(value.value)
                and value.attr in known):
            continue
        for target in node.targets:
            if isinstance(target, ast.Attribute):
                model.attr_aliases[target.attr] = value.attr


def _collect_registrations(src: SourceFile, model: HookModel,
                           known: set[str]) -> None:
    for node in ast.walk(src.tree):
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in ("add", "remove")
                    and is_hooks_base(func.value)
                    and len(node.args) == 2
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                model.registrations.append(Registration(
                    rel=src.rel, line=node.lineno, col=node.col_offset,
                    event=node.args[0].value, callback=node.args[1],
                    kind=func.attr,
                ))
        elif isinstance(node, ast.Tuple):
            # Wiring tuples, e.g. the telemetry recorder's
            # ``(KIND_X, "event", self._on_x)`` rows: a string event name
            # next to an ``_on_*`` callback attribute is a registration
            # for contract purposes even though ``hooks.add`` is called
            # with variables.
            event = None
            callback = None
            for element in node.elts:
                if isinstance(element, ast.Constant) and \
                        isinstance(element.value, str) and \
                        element.value in known:
                    event = element.value
                elif isinstance(element, ast.Attribute) and \
                        element.attr.startswith("_on"):
                    callback = element
            if event is not None and callback is not None:
                model.registrations.append(Registration(
                    rel=src.rel, line=node.lineno, col=node.col_offset,
                    event=event, callback=callback, kind="wiring",
                ))


def _collect_loads(src: SourceFile, model: HookModel,
                   known: set[str]) -> None:
    for node in ast.walk(src.tree):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and is_hooks_base(node.value)
                and node.attr in known):
            model.loads.append(EventLoad(
                rel=src.rel, line=node.lineno, col=node.col_offset,
                event=node.attr,
            ))


class _FireVisitor(ast.NodeVisitor):
    """Finds ``callback(...)`` calls inside loops over event lists.

    Local aliasing is resolved per function: plain assignments from
    ``hooks.<event>``, conditional guards (``hooks.x if hooks else ()``),
    tuple unpacking, and loads of project-wide attribute aliases.
    """

    def __init__(self, src: SourceFile, model: HookModel, known: set[str]):
        self.src = src
        self.model = model
        self.known = known
        self._locals: dict[str, str] = {}

    # -- alias resolution ------------------------------------------------------

    def _event_of(self, node: ast.expr) -> str | None:
        """The event an expression evaluates to, if statically known."""
        if isinstance(node, ast.Attribute):
            if is_hooks_base(node.value) and node.attr in self.known:
                return node.attr
            alias = self.model.attr_aliases.get(node.attr)
            if alias is not None:
                return alias
            return None
        if isinstance(node, ast.Name):
            return self._locals.get(node.id)
        if isinstance(node, ast.IfExp):
            return self._event_of(node.body) or self._event_of(node.orelse)
        return None

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        saved = self._locals
        self._locals = {}
        self.generic_visit(node)
        self._locals = saved

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        targets = node.targets
        if len(targets) == 1 and isinstance(targets[0], ast.Tuple) and \
                isinstance(value, ast.Tuple) and \
                len(targets[0].elts) == len(value.elts):
            pairs = list(zip(targets[0].elts, value.elts))
        else:
            pairs = [(target, value) for target in targets]
        for target, rhs in pairs:
            if isinstance(target, ast.Name):
                event = self._event_of(rhs)
                if event is not None:
                    self._locals[target.id] = event
                else:
                    self._locals.pop(target.id, None)
        self.generic_visit(node)

    # -- fire-site collection --------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        event = self._event_of(node.iter)
        if event is not None and isinstance(node.target, ast.Name):
            callback_name = node.target.id
            for inner in ast.walk(node):
                if (isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Name)
                        and inner.func.id == callback_name):
                    self.model.fires.append(FireSite(
                        rel=self.src.rel, line=inner.lineno,
                        col=inner.col_offset, event=event,
                        arity=len(inner.args),
                    ))
        self.generic_visit(node)


def _collect_fires(src: SourceFile, model: HookModel,
                   known: set[str]) -> None:
    _FireVisitor(src, model, known).visit(src.tree)


def resolve_callback_arity(model: HookModel, registration: Registration
                           ) -> tuple[int, int, bool] | None:
    """Positional-arity bounds of a registration's callback, if resolvable.

    Handles ``self._on_x`` / ``obj._on_x`` (method of a class in the same
    file), bare function names, and lambdas.  Returns ``None`` when the
    callback cannot be resolved statically.
    """
    callback = registration.callback
    if callback is None:
        return None
    if isinstance(callback, ast.Lambda):
        return _arity_of(callback.args, method=False)
    name = None
    if isinstance(callback, ast.Attribute):
        name = callback.attr
    elif isinstance(callback, ast.Name):
        in_module = model.functions.get(registration.rel, {})
        if callback.id in in_module:
            return in_module[callback.id]
        name = callback.id
    if name is None:
        return None
    # Search classes in the registration's own file first, then anywhere.
    candidates = []
    for (rel, _cls), methods in model.methods.items():
        if name in methods:
            candidates.append((0 if rel == registration.rel else 1,
                               methods[name]))
    if not candidates:
        return None
    candidates.sort(key=lambda pair: pair[0])
    same_file = [arity for distance, arity in candidates if distance == 0]
    pool = same_file or [arity for _, arity in candidates]
    # Ambiguous across files with differing arities: give up rather than
    # guess wrong.
    if len({arity for arity in pool}) > 1:
        return None
    return pool[0]


# -- class models (stateful-invariant rules: MC/RC) ---------------------------

#: ``self.<attr>.<call>()`` spellings that count as *restoring* the
#: attribute's state rather than rebinding the name (``reset()`` contract).
RESTORING_CALLS = frozenset({"clear", "reset"})


@dataclass(frozen=True)
class AttrWrite:
    """One store to ``self.<attr>`` inside a method body."""

    rel: str
    line: int
    col: int
    attr: str
    #: Method the store sits in (``__init__``, ``reset``, ...).
    method: str
    #: "assign" (plain / annotated), "augassign", "setattr"
    #: (``object.__setattr__(self, "attr", ...)``) or "subscript"
    #: (``self.attr[...] = ...`` — mutates, does not bind).
    kind: str

    @property
    def binds(self) -> bool:
        """Whether this write (re)binds the attribute name."""
        return self.kind in ("assign", "setattr")


@dataclass
class ClassModel:
    """Attribute dataflow of one class definition."""

    rel: str
    name: str
    line: int
    #: Base-class names (trailing identifiers), in declaration order.
    bases: tuple[str, ...]
    #: method name -> definition line.
    methods: dict[str, int] = field(default_factory=dict)
    #: method name -> every ``self.<attr>`` store, in source order.
    writes: dict[str, list[AttrWrite]] = field(default_factory=dict)
    #: method name -> attrs restored via ``self.<attr>.clear()/.reset()``.
    restores: dict[str, set[str]] = field(default_factory=dict)
    #: method name -> ``self.<method>()`` delegation targets.
    delegates: dict[str, set[str]] = field(default_factory=dict)
    #: methods containing a ``super().__init__(...)`` call.
    super_init_calls: set[str] = field(default_factory=set)

    def bound_attrs(self, method: str) -> set[str]:
        """Attrs (re)bound by plain/annotated/``__setattr__`` stores."""
        return {w.attr for w in self.writes.get(method, ()) if w.binds}

    def touched_attrs(self, method: str) -> set[str]:
        """Attrs written by any store kind (including subscripts)."""
        return {w.attr for w in self.writes.get(method, ())}

    def first_write(self, method: str, attr: str) -> AttrWrite | None:
        for write in self.writes.get(method, ()):
            if write.attr == attr:
                return write
        return None


class _ClassModelBuilder(ast.NodeVisitor):
    """Extracts :class:`ClassModel`\\ s from one parsed file.

    Only top-level classes are modelled (the package defines no nested
    ones); functions nested inside a method are attributed to the method.
    """

    def __init__(self, src: SourceFile):
        self.src = src
        self.models: list[ClassModel] = []

    def build(self) -> list[ClassModel]:
        for node in self.src.tree.body:  # type: ignore[attr-defined]
            if isinstance(node, ast.ClassDef):
                self.models.append(self._model_class(node))
        return self.models

    def _model_class(self, node: ast.ClassDef) -> ClassModel:
        bases = tuple(
            name for name in (_last_name(base) for base in node.bases)
            if name is not None
        )
        model = ClassModel(rel=self.src.rel, name=node.name,
                          line=node.lineno, bases=bases)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                model.methods[item.name] = item.lineno
                self._scan_method(model, item)
        return model

    def _scan_method(self, model: ClassModel,
                     fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        writes = model.writes.setdefault(fn.name, [])
        restores = model.restores.setdefault(fn.name, set())
        delegates = model.delegates.setdefault(fn.name, set())
        aliases = self._local_aliases(fn)
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._scan_target(model, fn.name, writes, target,
                                      "assign", aliases)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._scan_target(model, fn.name, writes, node.target,
                                  "assign", aliases)
            elif isinstance(node, ast.AugAssign):
                self._scan_target(model, fn.name, writes, node.target,
                                  "augassign", aliases)
            elif isinstance(node, ast.Call):
                self._scan_call(model, fn.name, writes, restores,
                                delegates, node)

    def _local_aliases(self, fn: ast.AST) -> dict[str, str]:
        """Local names aliasing ``self.<attr>`` (or elements of it).

        ``beats = self._beats`` followed by ``row = beats[i]`` makes
        both ``beats`` and ``row`` aliases of ``_beats``, so in-place
        restoration loops (the MatrixArbiter idiom) are attributed to
        the attribute they mutate.  Resolution is iterated to a fixed
        point; shadowing a name with an unrelated value afterwards is
        not modelled (the package's reset bodies never do).
        """
        aliases: dict[str, str] = {}
        for _ in range(4):  # alias chains in practice are depth <= 2
            changed = False
            for node in ast.walk(fn):
                if not isinstance(node, ast.Assign):
                    continue
                attr = _root_self_attr(node.value, aliases)
                if attr is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name) and \
                            aliases.get(target.id) != attr:
                        aliases[target.id] = attr
                        changed = True
            if not changed:
                break
        return aliases

    def _scan_target(self, model: ClassModel, method: str,
                     writes: list[AttrWrite], target: ast.expr,
                     kind: str, aliases: dict[str, str]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._scan_target(model, method, writes, element, kind,
                                  aliases)
            return
        if isinstance(target, ast.Starred):
            self._scan_target(model, method, writes, target.value, kind,
                              aliases)
            return
        if isinstance(target, ast.Attribute) and _is_self(target.value):
            writes.append(AttrWrite(
                rel=model.rel, line=target.lineno, col=target.col_offset,
                attr=target.attr, method=method, kind=kind,
            ))
        elif isinstance(target, ast.Subscript):
            attr = _root_self_attr(target.value, aliases)
            if attr is not None:
                writes.append(AttrWrite(
                    rel=model.rel, line=target.lineno,
                    col=target.col_offset, attr=attr, method=method,
                    kind="subscript",
                ))

    def _scan_call(self, model: ClassModel, method: str,
                   writes: list[AttrWrite], restores: set[str],
                   delegates: set[str], node: ast.Call) -> None:
        func = node.func
        # object.__setattr__(self, "attr", value) — the frozen-dataclass
        # hash-cache idiom.
        if (isinstance(func, ast.Attribute)
                and func.attr == "__setattr__"
                and isinstance(func.value, ast.Name)
                and func.value.id == "object"
                and len(node.args) >= 2
                and _is_self(node.args[0])
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)):
            writes.append(AttrWrite(
                rel=model.rel, line=node.lineno, col=node.col_offset,
                attr=node.args[1].value, method=method, kind="setattr",
            ))
            return
        if not isinstance(func, ast.Attribute):
            return
        # self.attr.clear() / self.attr.reset(...): restores attr state.
        if (func.attr in RESTORING_CALLS
                and isinstance(func.value, ast.Attribute)
                and _is_self(func.value.value)):
            restores.add(func.value.attr)
        # self.method(...): delegation (resolved lazily by the index).
        elif _is_self(func.value):
            delegates.add(func.attr)
        # super().__init__(...): inherited initialisation.
        elif (func.attr == "__init__"
              and isinstance(func.value, ast.Call)
              and isinstance(func.value.func, ast.Name)
              and func.value.func.id == "super"):
            model.super_init_calls.add(method)


def _is_self(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


def _root_self_attr(node: ast.expr,
                    aliases: dict[str, str]) -> str | None:
    """The ``self`` attribute an expression drills into, if any.

    ``self._beats`` -> ``_beats``; ``beats[i]`` -> whatever ``beats``
    aliases; ``self._beats[i]`` -> ``_beats``.  Deeper attribute chains
    (``self.stats.in_flight``) resolve to ``None``: state owned by a
    sub-object is that object's own reset obligation.
    """
    if isinstance(node, ast.Attribute) and _is_self(node.value):
        return node.attr
    if isinstance(node, ast.Name):
        return aliases.get(node.id)
    if isinstance(node, ast.Subscript):
        return _root_self_attr(node.value, aliases)
    return None


@dataclass
class ClassModelIndex:
    """Every modelled class of one check run, with resolution helpers."""

    #: (rel, class name) -> model.
    by_key: dict[tuple[str, str], ClassModel] = field(default_factory=dict)
    #: class name -> models (for base resolution across files).
    by_name: dict[str, list[ClassModel]] = field(default_factory=dict)

    def get(self, rel: str, name: str) -> ClassModel | None:
        return self.by_key.get((rel, name))

    def find(self, name: str, *, near: str | None = None
             ) -> ClassModel | None:
        """Resolve a class by bare name; same-file candidates win.

        Returns ``None`` when the name is unknown or ambiguous across
        files (guessing a base wrong would poison the whole chain).
        """
        candidates = self.by_name.get(name, [])
        if near is not None:
            same_file = [m for m in candidates if m.rel == near]
            if same_file:
                candidates = same_file
        if len(candidates) != 1:
            return None
        return candidates[0]

    def _mro(self, model: ClassModel) -> list[ClassModel]:
        """The resolvable base chain, nearest first (cycle-safe)."""
        chain: list[ClassModel] = []
        seen = {(model.rel, model.name)}
        frontier = [model]
        while frontier:
            current = frontier.pop(0)
            for base_name in current.bases:
                base = self.find(base_name, near=current.rel)
                if base is not None and (base.rel, base.name) not in seen:
                    seen.add((base.rel, base.name))
                    chain.append(base)
                    frontier.append(base)
        return chain

    def _expand(self, model: ClassModel, method: str,
                seen: set[tuple[str, str, str]]
                ) -> tuple[set[str], set[str]]:
        """(bound, restored) attrs of ``method``, delegation-expanded.

        Follows ``self.<m>()`` calls into methods of the same class (or
        its resolvable bases) and ``super().__init__`` into the base
        ``__init__`` — so ``reset()`` delegating to a shared
        ``_init_run_state`` helper gets credit for everything the helper
        assigns.
        """
        key = (model.rel, model.name, method)
        if key in seen:
            return set(), set()
        seen.add(key)
        owner = self._method_owner(model, method)
        if owner is None:
            return set(), set()
        bound = set(owner.bound_attrs(method))
        restored = set(owner.restores.get(method, ()))
        # In-place element stores (self.attr[i] = ..., possibly through a
        # local alias) restore state without rebinding the name.
        restored |= {w.attr for w in owner.writes.get(method, ())
                     if w.kind == "subscript"}
        for target in owner.delegates.get(method, ()):
            sub_bound, sub_restored = self._expand(model, target, seen)
            bound |= sub_bound
            restored |= sub_restored
        if method in owner.super_init_calls:
            for base in self._mro(owner):
                if "__init__" in base.methods:
                    sub_bound, sub_restored = self._expand(
                        base, "__init__", seen)
                    bound |= sub_bound
                    restored |= sub_restored
                    break
        return bound, restored

    def _method_owner(self, model: ClassModel, method: str
                      ) -> ClassModel | None:
        """The model (self or nearest base) that defines ``method``."""
        if method in model.methods:
            return model
        for base in self._mro(model):
            if method in base.methods:
                return base
        return None

    def has_method(self, model: ClassModel, method: str) -> bool:
        return self._method_owner(model, method) is not None

    def init_attrs(self, model: ClassModel) -> set[str]:
        """Attrs bound by ``__init__``, inherited and delegation-expanded.

        A class without its own ``__init__`` inherits the nearest base's
        (implicit ``super().__init__``); one *with* an ``__init__``
        inherits base attrs only through an explicit ``super().__init__``
        call, which :meth:`_expand` follows.
        """
        owner = self._method_owner(model, "__init__")
        if owner is None:
            return set()
        bound, _ = self._expand(owner, "__init__", set())
        return bound

    def init_write_line(self, model: ClassModel, attr: str) -> int:
        """Line of the first ``__init__`` store of ``attr`` (best effort)."""
        owner = self._method_owner(model, "__init__")
        if owner is not None:
            write = owner.first_write("__init__", attr)
            if write is not None:
                return write.line
        return model.line

    def reset_coverage(self, model: ClassModel) -> tuple[set[str], set[str]]:
        """(rebound, restored) attrs of ``reset()``, delegation-expanded."""
        owner = self._method_owner(model, "reset")
        if owner is None:
            return set(), set()
        return self._expand(owner, "reset", set())


def build_class_models(project: Project) -> ClassModelIndex:
    """Model every top-level class in the project's files."""
    index = ClassModelIndex()
    for src in project:
        for model in _ClassModelBuilder(src).build():
            index.by_key[(model.rel, model.name)] = model
            index.by_name.setdefault(model.name, []).append(model)
    return index


def class_models(project: Project) -> ClassModelIndex:
    """The project's class-model index, built once per check run."""
    cached: ClassModelIndex | None = getattr(project, "_class_models", None)
    if cached is None:
        cached = build_class_models(project)
        project._class_models = cached  # type: ignore[attr-defined]
    return cached
