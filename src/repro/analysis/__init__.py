"""Project-specific static analysis: ``repro check``.

The headline claims of this reproduction rest on invariants that no
general-purpose linter knows about:

* **determinism** — runs must be bit-identical across the serial,
  parallel, engine and table paths, so no unseeded global randomness,
  unsorted set iteration, ``id()`` ordering or wall-clock reads may enter
  a decision path;
* **unit consistency** — the photonics layer keeps watts / seconds /
  bits-per-second internally (:mod:`repro.units`), so mixed-unit
  arithmetic and raw scale constants are latent correctness bugs;
* **hook contracts** — every event fired by the engine must be a name the
  :class:`~repro.engine.hooks.HookRegistry` defines, with the call
  signature its subscribers expect;
* **hot-path purity** — the inlined uninstrumented run loop and the
  work-list scan paths must stay free of local imports, logging and
  avoidable allocation.

:mod:`repro.analysis` enforces those invariants mechanically at lint
time.  Run it as ``repro check`` or ``python -m repro.analysis``; see
``docs/static-analysis.md`` for the rule catalogue and suppression
syntax (``# repro: noqa[RULE-ID]``).
"""

from __future__ import annotations

from repro.analysis.framework import (
    Finding,
    Rule,
    Severity,
    run_check,
)
from repro.analysis.rules import all_rules

__all__ = ["Finding", "Rule", "Severity", "all_rules", "run_check"]
