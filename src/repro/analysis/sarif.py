"""SARIF 2.1.0 rendering for ``repro check`` reports.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format GitHub code scanning ingests: the CI ``check``
job uploads ``repro check --format sarif`` output so findings render as
PR annotations on the flagged lines.

Only the schema's required skeleton plus the properties GitHub reads
are emitted: one run, one tool driver carrying every registered rule as
a ``reportingDescriptor``, and one ``result`` per finding with a
repo-relative ``artifactLocation`` and a 1-based ``region``
(:class:`~repro.analysis.framework.Finding` columns are 0-based).
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.analysis.framework import ERROR, CheckResult, Finding, Rule

#: The schema the output declares (and tests validate against).
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

#: Tool identity reported in the driver block.
TOOL_NAME = "repro-check"
TOOL_INFO_URI = "https://example.invalid/repro/docs/static-analysis.md"

#: Finding severities -> SARIF result levels.
_LEVELS = {ERROR: "error", "warning": "warning"}


def _descriptor(rule: Rule) -> dict[str, object]:
    return {
        "id": rule.rule_id,
        "name": rule.name,
        "shortDescription": {"text": rule.description or rule.name},
        "help": {"text": rule.hint or rule.description or rule.name},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.severity, "warning"),
        },
    }


def _result(finding: Finding, rule_index: dict[str, int]) -> dict[str, object]:
    message = finding.message
    if finding.hint:
        message = f"{message} (hint: {finding.hint})"
    result: dict[str, object] = {
        "ruleId": finding.rule_id,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path.replace("\\", "/"),
                },
                "region": {
                    "startLine": max(1, finding.line),
                    "startColumn": finding.col + 1,
                },
            },
        }],
    }
    index = rule_index.get(finding.rule_id)
    if index is not None:
        result["ruleIndex"] = index
    return result


def to_sarif(result: CheckResult,
             rules: Sequence[Rule]) -> dict[str, object]:
    """The report as a SARIF 2.1.0 log object (JSON-serialisable)."""
    ordered = sorted(rules, key=lambda rule: rule.rule_id)
    rule_index = {rule.rule_id: i for i, rule in enumerate(ordered)}
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri": TOOL_INFO_URI,
                    "rules": [_descriptor(rule) for rule in ordered],
                },
            },
            "results": [
                _result(finding, rule_index)
                for finding in result.findings
            ],
            "columnKind": "unicodeCodePoints",
        }],
    }


def to_sarif_json(result: CheckResult, rules: Sequence[Rule],
                  indent: int | None = 2) -> str:
    return json.dumps(to_sarif(result, rules), indent=indent,
                      sort_keys=True)
