"""Optical channel model: operating point -> per-flit error probability.

The bridge between the photonics layer and the fault injector.  The
existing :class:`~repro.photonics.ber.ReceiverNoiseModel` answers "what is
the BER of this receiver at (received power, bit rate)?"; this module
answers the question the network layer actually asks: "the link currently
sits at this ladder level and optical band — with what probability does a
16-bit flit arrive corrupted?"

Two technology behaviours (paper Section 3.2):

* **VCSEL links** tune light through their own drive current, so the
  received power scales with the bit rate: descending the ladder dims the
  transmitter *and* narrows the receiver bandwidth.  Because the thermal
  noise falls only as ``sqrt(bit_rate)`` while the signal falls linearly,
  Q degrades as ``sqrt(bit_rate)`` — descending the ladder measurably
  raises BER, which is exactly the margin the guard polices.
* **Modulator links** receive externally generated light, quantised into
  optical power bands by the per-fiber attenuator; the received power is
  the top-band power times the band's power fraction, independent of the
  electrical bit rate.  Dropping a band halves the light; lowering only
  the bit rate *improves* BER (less noise bandwidth, same light).

Per-flit probability: a flit of ``b`` bits survives iff all bits do, so
``p_flit = 1 - (1 - BER)^b``.  Operating points recur for the whole run
(ladders and bands are small discrete sets), so evaluations are memoised.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.photonics.ber import ReceiverNoiseModel


class LinkChannelModel:
    """Maps a link operating point to BER / per-flit error probability."""

    __slots__ = (
        "noise_model", "received_power_w", "flit_bits", "max_bit_rate",
        "ber_scale", "drive_proportional", "_cache",
    )

    def __init__(self, noise_model: ReceiverNoiseModel, *,
                 received_power_w: float, flit_bits: int,
                 max_bit_rate: float, ber_scale: float = 1.0,
                 drive_proportional: bool = True):
        if received_power_w <= 0.0:
            raise ConfigError(
                f"received_power_w must be > 0, got {received_power_w!r}"
            )
        if flit_bits < 1:
            raise ConfigError(f"flit_bits must be >= 1, got {flit_bits!r}")
        if max_bit_rate <= 0.0:
            raise ConfigError(
                f"max_bit_rate must be > 0, got {max_bit_rate!r}"
            )
        if ber_scale <= 0.0:
            raise ConfigError(f"ber_scale must be > 0, got {ber_scale!r}")
        self.noise_model = noise_model
        #: Received optical power with every knob at maximum, watts.
        self.received_power_w = received_power_w
        self.flit_bits = flit_bits
        self.max_bit_rate = max_bit_rate
        self.ber_scale = ber_scale
        #: True for VCSEL links (light tracks the drive / bit rate); False
        #: for modulator links (light tracks the optical band only).
        self.drive_proportional = drive_proportional
        self._cache: dict[tuple[float, float, float], float] = {}

    def received_power(self, bit_rate: float,
                       band_fraction: float = 1.0) -> float:
        """Light reaching the receiver at an operating point, watts."""
        if self.drive_proportional:
            return self.received_power_w * bit_rate / self.max_bit_rate
        return self.received_power_w * band_fraction

    def ber(self, bit_rate: float, band_fraction: float = 1.0,
            multiplier: float = 1.0) -> float:
        """Bit error rate at an operating point (stress knobs applied)."""
        raw = self.noise_model.ber(
            self.received_power(bit_rate, band_fraction), bit_rate
        )
        return min(0.5, raw * self.ber_scale * multiplier)

    def flit_error_probability(self, bit_rate: float,
                               band_fraction: float = 1.0,
                               multiplier: float = 1.0) -> float:
        """Probability one flit arrives with at least one bit error."""
        key = (bit_rate, band_fraction, multiplier)
        p = self._cache.get(key)
        if p is None:
            ber = self.ber(bit_rate, band_fraction, multiplier)
            p = 1.0 - (1.0 - ber) ** self.flit_bits
            self._cache[key] = p
        return p
