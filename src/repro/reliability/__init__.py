"""Link-reliability subsystem: faults, recovery, graceful degradation.

Three cooperating layers:

* **Fault model** — :mod:`repro.reliability.channel` turns the link's
  *current* optical operating point (bit rate, optical band) into a
  per-flit error probability through the Gaussian receiver noise model;
  :mod:`repro.reliability.faults` runs the seeded Bernoulli corruption
  trials and scheduled fault scenarios.
* **Recovery** — the link-level CRC + ACK/NACK retransmission protocol in
  :class:`~repro.reliability.faults.LinkFaultState`, with a bounded retry
  budget, ACK timeout and exponential backoff; retries consume real link
  busy-time and energy.
* **Graceful degradation** — fault-aware routing around dead mesh links
  (:func:`~repro.network.routing.fault_aware_route`), BER margin guards
  vetoing power descents past the reliability target, and the
  :class:`~repro.metrics.reliability.ReliabilityReport` making the cost
  visible.

Everything is **default-off**: a run with ``faults=None`` takes none of
these code paths and is bit-identical to a build without this package.
"""

from repro.reliability.channel import LinkChannelModel
from repro.reliability.config import (
    DEFAULT_GUARD_MAX_BER,
    DEFAULT_RECEIVED_POWER_W,
    FaultConfig,
    LinkDegradation,
    LinkFailure,
    StuckTransition,
    neutral_fault_config,
    parse_fault_spec,
)
from repro.reliability.faults import LinkFaultState, fault_stream_seed
from repro.reliability.manager import ReliabilityManager, RouteFaultCounters

__all__ = [
    "DEFAULT_GUARD_MAX_BER",
    "DEFAULT_RECEIVED_POWER_W",
    "FaultConfig",
    "LinkChannelModel",
    "LinkDegradation",
    "LinkFailure",
    "LinkFaultState",
    "ReliabilityManager",
    "RouteFaultCounters",
    "StuckTransition",
    "fault_stream_seed",
    "neutral_fault_config",
    "parse_fault_spec",
]
