"""Fault-injection configuration.

The paper's power-control mechanisms must "maintain acceptable BER
performance by carefully balancing the impact of lower light intensity"
(Section 2.3).  :class:`FaultConfig` describes how hard the simulator
pushes on that promise: what optical margin the receivers actually get,
whether in-flight flits are corrupted with the analytic error probability,
which scheduled fault scenarios run, and how the link-level retransmission
protocol and the policy's BER margin guard are parameterised.

Everything here is a frozen dataclass, so fault configurations are
hashable, picklable (process-parallel sweeps) and comparable.  A
``SimulationConfig`` with ``faults=None`` — the default — builds a
simulator whose behaviour and outputs are bit-identical to a tree without
this module at all.

The compact spec grammar accepted by ``repro run --faults`` is parsed by
:func:`parse_fault_spec`; see its docstring for the syntax.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.units import uw

#: Default received optical power at the receiver when every knob is at its
#: maximum (top optical band, full VCSEL drive), watts.  25 uW is the
#: paper's quoted sensitivity at 10 Gb/s — i.e. the link *exactly* meets
#: the 1e-12 target with zero margin; configure lower to operate below the
#: sensitivity floor and watch the reliability machinery earn its keep.
DEFAULT_RECEIVED_POWER_W = 25e-6

#: Default ceiling the margin guard enforces on the *projected* BER of a
#: level the policy wants to descend to.  Three decades above the 1e-12
#: design target: the guard blocks descents that would genuinely degrade
#: the channel, without pinning the ladder for harmless excursions.
DEFAULT_GUARD_MAX_BER = 1e-9


@dataclass(frozen=True)
class LinkFailure:
    """Hard failure of one mesh link at a scheduled cycle.

    Failure is *worm-atomic*: packets whose head flit already claimed the
    link finish their traversal (the detection/drain window), but no new
    packet may route onto it — routing detours around the dead fiber.
    """

    link_id: int
    at_cycle: int

    def __post_init__(self) -> None:
        if self.link_id < 0:
            raise ConfigError(f"link_id must be >= 0, got {self.link_id!r}")
        if self.at_cycle < 0:
            raise ConfigError(f"at_cycle must be >= 0, got {self.at_cycle!r}")


@dataclass(frozen=True)
class LinkDegradation:
    """Transient channel degradation: BER multiplied for a time window.

    Models a dirty connector, a drifting bias point or crosstalk burst —
    the channel keeps carrying flits but the per-flit error probability is
    scaled by ``ber_multiplier`` from ``at_cycle`` for ``duration_cycles``.
    """

    link_id: int
    at_cycle: int
    duration_cycles: int
    ber_multiplier: float = 10.0

    def __post_init__(self) -> None:
        if self.link_id < 0:
            raise ConfigError(f"link_id must be >= 0, got {self.link_id!r}")
        if self.at_cycle < 0:
            raise ConfigError(f"at_cycle must be >= 0, got {self.at_cycle!r}")
        if self.duration_cycles < 1:
            raise ConfigError(
                f"duration_cycles must be >= 1, got {self.duration_cycles!r}"
            )
        if self.ber_multiplier <= 0.0:
            raise ConfigError(
                f"ber_multiplier must be > 0, got {self.ber_multiplier!r}"
            )


@dataclass(frozen=True)
class StuckTransition:
    """A bit-rate transition whose CDR fails to relock on schedule.

    The link is disabled (no new serialisations) for ``duration_cycles``
    starting at ``at_cycle`` — the T_br = 20-cycle relock stretching to
    thousands of cycles, exactly the hazard the retry timeouts must ride
    out.
    """

    link_id: int
    at_cycle: int
    duration_cycles: int

    def __post_init__(self) -> None:
        if self.link_id < 0:
            raise ConfigError(f"link_id must be >= 0, got {self.link_id!r}")
        if self.at_cycle < 0:
            raise ConfigError(f"at_cycle must be >= 0, got {self.at_cycle!r}")
        if self.duration_cycles < 1:
            raise ConfigError(
                f"duration_cycles must be >= 1, got {self.duration_cycles!r}"
            )


@dataclass(frozen=True)
class FaultConfig:
    """Complete description of one run's reliability environment."""

    #: Seed for the fault RNG streams.  Each link derives its own stream
    #: from (seed, link_id), so the corruption schedule of one link never
    #: depends on what any other link transmitted.
    seed: int = 1
    #: Whether flits are corrupted with the analytic per-flit error
    #: probability.  Off, only scheduled scenarios (and the margin guard,
    #: if enabled) are active.
    ber_injection: bool = True
    #: Received optical power at the receiver with every knob at maximum
    #: (top optical band / full VCSEL drive), watts.  Lower levels derate
    #: this: VCSEL drive scales it with bit rate, modulator systems with
    #: the optical band's power fraction.
    received_power_w: float = DEFAULT_RECEIVED_POWER_W
    #: Extra multiplier on the analytic BER — a stress knob for making
    #: rare-event statistics observable in short runs (1.0 = physical).
    ber_scale: float = 1.0
    #: Cycles the receiver waits before NACKing a corrupted flit back to
    #: the sender (detection + reverse-channel latency).
    ack_timeout_cycles: int = 4
    #: Retransmission attempts per flit before the error is declared
    #: uncorrectable.  The flit is then delivered anyway (dropping it would
    #: truncate the worm) and counted in ``flits_dropped``.
    retry_limit: int = 8
    #: Base of the exponential backoff between retries: retry ``k`` waits
    #: ``backoff_base_cycles * 2**(k-1)`` cycles on top of the timeout.
    backoff_base_cycles: int = 2
    #: Whether the policy refuses to descend the optical/bit-rate ladder to
    #: a level whose projected BER exceeds ``guard_max_ber``.
    margin_guard: bool = True
    #: BER ceiling the margin guard enforces on descent targets.
    guard_max_ber: float = DEFAULT_GUARD_MAX_BER
    failures: tuple[LinkFailure, ...] = field(default_factory=tuple)
    degradations: tuple[LinkDegradation, ...] = field(default_factory=tuple)
    stuck_transitions: tuple[StuckTransition, ...] = field(
        default_factory=tuple)

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ConfigError(f"seed must be >= 0, got {self.seed!r}")
        if self.received_power_w <= 0.0:
            raise ConfigError(
                f"received_power_w must be > 0, got {self.received_power_w!r}"
            )
        if self.ber_scale <= 0.0:
            raise ConfigError(
                f"ber_scale must be > 0, got {self.ber_scale!r}")
        if self.ack_timeout_cycles < 0:
            raise ConfigError(
                f"ack_timeout_cycles must be >= 0, "
                f"got {self.ack_timeout_cycles!r}"
            )
        if self.retry_limit < 0:
            raise ConfigError(
                f"retry_limit must be >= 0, got {self.retry_limit!r}")
        if self.backoff_base_cycles < 0:
            raise ConfigError(
                f"backoff_base_cycles must be >= 0, "
                f"got {self.backoff_base_cycles!r}"
            )
        if not 0.0 < self.guard_max_ber < 0.5:
            raise ConfigError(
                f"guard_max_ber must lie in (0, 0.5), "
                f"got {self.guard_max_ber!r}"
            )
        # Duplicate hard failures of the same link are almost certainly a
        # spec typo; degradations/stuck windows may legitimately repeat.
        failed_ids = [f.link_id for f in self.failures]
        if len(set(failed_ids)) != len(failed_ids):
            raise ConfigError(
                f"duplicate link ids in failures: {sorted(failed_ids)}"
            )

    @property
    def has_scenarios(self) -> bool:
        return bool(self.failures or self.degradations
                    or self.stuck_transitions)


def parse_fault_spec(spec: str) -> FaultConfig:
    """Parse the compact ``--faults`` spec into a :class:`FaultConfig`.

    The spec is a comma-separated list of entries:

    ``seed=N``
        Fault RNG seed.
    ``rx_uw=F``
        Received optical power at maximum drive, microwatts.
    ``scale=F``
        BER stress multiplier.
    ``retries=N`` / ``timeout=N`` / ``backoff=N``
        Retransmission protocol parameters (cycles for the latter two).
    ``ber=on|off`` / ``guard=on|off``
        Toggle BER-driven corruption / the margin guard.
    ``max_ber=F``
        BER ceiling enforced by the margin guard.
    ``fail=ID@CYC``
        Hard-fail mesh link ``ID`` at cycle ``CYC`` (repeatable).
    ``degrade=ID@CYC+DUR`` or ``degrade=ID@CYC+DURxMULT``
        Degrade link ``ID`` at ``CYC`` for ``DUR`` cycles, BER scaled by
        ``MULT`` (default 10).
    ``stuck=ID@CYC+DUR``
        Disable link ``ID`` at ``CYC`` for ``DUR`` cycles (stuck bit-rate
        transition).

    Example: ``"rx_uw=14,seed=7,fail=12@4000,degrade=3@2000+1000x20"``.
    An empty spec yields the default :class:`FaultConfig`.
    """
    kwargs: dict[str, object] = {}
    failures: list[LinkFailure] = []
    degradations: list[LinkDegradation] = []
    stuck: list[StuckTransition] = []
    for raw in spec.split(","):
        entry = raw.strip()
        if not entry:
            continue
        if "=" not in entry:
            raise ConfigError(
                f"fault spec entry {entry!r} is not KEY=VALUE")
        key, _, value = entry.partition("=")
        key, value = key.strip(), value.strip()
        try:
            if key == "seed":
                kwargs["seed"] = int(value)
            elif key == "rx_uw":
                kwargs["received_power_w"] = uw(float(value))
            elif key == "scale":
                kwargs["ber_scale"] = float(value)
            elif key == "retries":
                kwargs["retry_limit"] = int(value)
            elif key == "timeout":
                kwargs["ack_timeout_cycles"] = int(value)
            elif key == "backoff":
                kwargs["backoff_base_cycles"] = int(value)
            elif key == "max_ber":
                kwargs["guard_max_ber"] = float(value)
            elif key == "ber":
                kwargs["ber_injection"] = _parse_toggle(key, value)
            elif key == "guard":
                kwargs["margin_guard"] = _parse_toggle(key, value)
            elif key == "fail":
                link_id, at = _parse_at(value)
                failures.append(LinkFailure(link_id=link_id, at_cycle=at))
            elif key == "degrade":
                link_id, at, duration, mult = _parse_window(value)
                degradations.append(LinkDegradation(
                    link_id=link_id, at_cycle=at,
                    duration_cycles=duration,
                    ber_multiplier=mult if mult is not None else 10.0,
                ))
            elif key == "stuck":
                link_id, at, duration, mult = _parse_window(value)
                if mult is not None:
                    raise ConfigError(
                        "stuck= does not take a multiplier")
                stuck.append(StuckTransition(
                    link_id=link_id, at_cycle=at,
                    duration_cycles=duration,
                ))
            else:
                raise ConfigError(f"unknown fault spec key {key!r}")
        except ValueError as exc:
            raise ConfigError(
                f"bad fault spec entry {entry!r}: {exc}") from None
    return FaultConfig(
        failures=tuple(failures),
        degradations=tuple(degradations),
        stuck_transitions=tuple(stuck),
        **kwargs,
    )


def neutral_fault_config() -> FaultConfig:
    """A fault config that perturbs nothing.

    BER injection and the margin guard are off and no scenarios are
    scheduled: the reliability machinery is constructed and reported but a
    run is bit-identical to ``faults=None`` (regression-tested).
    """
    return replace(FaultConfig(), ber_injection=False, margin_guard=False)


def _parse_toggle(key: str, value: str) -> bool:
    if value not in ("on", "off"):
        raise ConfigError(f"{key}= takes 'on' or 'off', got {value!r}")
    return value == "on"


def _parse_at(value: str) -> tuple[int, int]:
    """Parse ``ID@CYC``."""
    link_str, sep, at_str = value.partition("@")
    if not sep:
        raise ConfigError(f"expected ID@CYCLE, got {value!r}")
    return int(link_str), int(at_str)


def _parse_window(value: str) -> tuple[int, int, int, float | None]:
    """Parse ``ID@CYC+DUR`` with an optional ``xMULT`` suffix."""
    head, sep, tail = value.partition("+")
    if not sep:
        raise ConfigError(f"expected ID@CYCLE+DURATION, got {value!r}")
    link_id, at = _parse_at(head)
    dur_str, sep, mult_str = tail.partition("x")
    multiplier = float(mult_str) if sep else None
    return link_id, at, int(dur_str), multiplier
