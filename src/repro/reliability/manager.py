"""Run-level reliability orchestration.

One :class:`ReliabilityManager` per fault-injected simulation.  At
construction it

* builds the :class:`~repro.reliability.channel.LinkChannelModel` for the
  run's technology (VCSEL light tracks the drive; modulator light tracks
  the optical band),
* hangs a :class:`~repro.reliability.faults.LinkFaultState` off every
  transport link (when BER injection is on) so arrivals run the
  corruption/retransmission protocol,
* installs the BER margin guards on the power-aware links and their
  optical controllers (when enabled and the run is power-aware),
* schedules the configured fault scenarios — hard mesh-link failures,
  transient degradations, stuck bit-rate transitions — on the engine's
  :class:`~repro.engine.wheel.EventWheel` at :data:`~repro.engine.wheel.PRI_FAULT`,
* and points every router's ``fault_stats`` at a shared counter so
  fault-aware detours are tallied.

Hard failures are *worm-atomic*: flits of packets already committed to
the link drain normally (the detection window of a real failure), while
head flits route around it from the failure cycle on.  Virtual channels
that had latched a route over the dead link but not yet forwarded their
head are swept back to the route stage so they re-route instead of
waiting forever on a link no new flit may enter.

:meth:`report` freezes the accumulated counters into a
:class:`~repro.metrics.reliability.ReliabilityReport`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import MODULATOR, NetworkConfig
from repro.engine.hooks import HookRegistry
from repro.engine.wheel import PRI_FAULT, EventWheel
from repro.errors import ConfigError
from repro.metrics.reliability import ReliabilityReport
from repro.network.links import MESH, Link
from repro.network.router import Router
from repro.network.topology import NetworkFabric
from repro.photonics.ber import ReceiverNoiseModel
from repro.reliability.channel import LinkChannelModel
from repro.reliability.config import FaultConfig
from repro.reliability.faults import LinkFaultState

if TYPE_CHECKING:  # pragma: no cover - typing-only imports (cycle guard)
    from repro.core.manager import NetworkPowerManager
    from repro.core.power_link import PowerAwareLink


class RouteFaultCounters:
    """Shared mutable counter routers bump when they detour."""

    __slots__ = ("reroutes",)

    def __init__(self) -> None:
        self.reroutes = 0


class ReliabilityManager:
    """Fault model + recovery + degradation for one simulation."""

    def __init__(self, topology: NetworkFabric,
                 power: "NetworkPowerManager | None",
                 network: NetworkConfig, config: FaultConfig,
                 hooks: HookRegistry, wheel: EventWheel):
        self.topology = topology
        self.power = power
        self.config = config
        self.hooks = hooks
        self.wheel = wheel
        self.channel = self._build_channel(network)
        self.route_counters = RouteFaultCounters()
        self.failed_links = 0
        self.degradations_applied = 0
        self.stuck_applied = 0

        self._pal_by_link: dict[int, "PowerAwareLink"] = {}
        if power is not None:
            for pal in power.links:
                self._pal_by_link[pal.link.link_id] = pal

        self._validate_scenarios()

        for router in topology.routers:
            router.fault_stats = self.route_counters

        self._states: dict[int, LinkFaultState] = {}
        if config.ber_injection:
            for link in topology.links:
                self._ensure_state(link)
        else:
            # Degradation windows still need per-link injection state to
            # multiply the (physical) BER within their window.
            for degradation in config.degradations:
                self._ensure_state(topology.links[degradation.link_id])

        if config.margin_guard and power is not None:
            self._install_guards()

        self._schedule_scenarios()

    # -- construction ----------------------------------------------------------

    def _build_channel(self, network: NetworkConfig) -> LinkChannelModel:
        power = self.power
        if power is not None:
            max_rate = power.ladder.max_rate
            drive_proportional = power.config.technology != MODULATOR
        else:
            # Baseline links are pinned at the rate their unit service
            # time implies (one flit per router cycle).
            max_rate = network.flit_width_bits * network.router_frequency_hz
            drive_proportional = True
        return LinkChannelModel(
            ReceiverNoiseModel(),
            received_power_w=self.config.received_power_w,
            flit_bits=network.flit_width_bits,
            max_bit_rate=max_rate,
            ber_scale=self.config.ber_scale,
            drive_proportional=drive_proportional,
        )

    def _validate_scenarios(self) -> None:
        links = self.topology.links
        for failure in self.config.failures:
            if failure.link_id >= len(links):
                raise ConfigError(
                    f"failure names link {failure.link_id}, but the "
                    f"topology has only {len(links)} links"
                )
            kind = links[failure.link_id].kind
            if kind != MESH:
                raise ConfigError(
                    f"only mesh links may hard-fail (routing can detour "
                    f"around them); link {failure.link_id} is {kind}"
                )
        for scenario in (*self.config.degradations,
                         *self.config.stuck_transitions):
            if scenario.link_id >= len(links):
                raise ConfigError(
                    f"fault scenario names link {scenario.link_id}, but "
                    f"the topology has only {len(links)} links"
                )

    def _ensure_state(self, link: Link) -> LinkFaultState:
        state = self._states.get(link.link_id)
        if state is None:
            pal = self._pal_by_link.get(link.link_id)
            band_fractions = None
            if pal is not None and pal.optical is not None:
                band_fractions = pal.optical.bands.power_fractions
            state = LinkFaultState(
                link, self.channel, self.config,
                pal=pal, band_fractions=band_fractions, hooks=self.hooks,
            )
            link.faults = state
            self._states[link.link_id] = state
        return state

    def _install_guards(self) -> None:
        """Point every power-aware link's guards at the channel model."""
        guard_max_ber = self.config.guard_max_ber
        channel = self.channel
        for pal in self.power.links:
            pal.step_down_guard = _make_level_guard(
                pal, channel, guard_max_ber
            )
            if pal.optical is not None:
                pal.optical.band_guard = _make_band_guard(
                    pal, channel, guard_max_ber
                )

    def _schedule_scenarios(self) -> None:
        wheel = self.wheel
        links = self.topology.links
        for failure in self.config.failures:
            wheel.schedule(
                failure.at_cycle,
                _bind(self._apply_failure, links[failure.link_id]),
                PRI_FAULT,
            )
        for degradation in self.config.degradations:
            wheel.schedule(
                degradation.at_cycle,
                _bind(self._apply_degradation, degradation),
                PRI_FAULT,
            )
        for stuck in self.config.stuck_transitions:
            wheel.schedule(
                stuck.at_cycle,
                _bind(self._apply_stuck, stuck),
                PRI_FAULT,
            )

    # -- scenario handlers -----------------------------------------------------

    def _apply_failure(self, link: Link, now: int) -> None:
        if link.failed:
            return
        link.failed = True
        self.failed_links += 1
        router, dead_port = self._owner_of(link)
        router.invalidate_routes_via(dead_port)
        self._sweep_stale_routes(router, dead_port)
        if self.hooks.link_failure:
            for callback in self.hooks.link_failure:
                callback(link, now)

    def _sweep_stale_routes(self, router: Router, dead_port: int) -> None:
        """Un-latch routes over a dead link whose worm has not started.

        A virtual channel whose head flit is still at the buffer front has
        sent nothing over the link: release its claimed downstream VC and
        clear the latched route so the head re-routes (now detouring).  A
        VC whose front is a body flit — or that is mid-worm with flits in
        flight — committed before the failure and drains over the link.
        """
        op = router.outputs[dead_port]
        for in_port in router.inputs:
            for vc in in_port.vcs:
                if vc.route_out != dead_port:
                    continue
                if not vc.buffer.is_empty and vc.buffer.head().is_head:
                    if vc.out_vc >= 0:
                        op.vc_owner[vc.out_vc] = None
                        vc.out_vc = -1
                    vc.route_out = -1

    def _owner_of(self, link: Link) -> tuple[Router, int]:
        """The (router, output port) that feeds a mesh link."""
        for router in self.topology.routers:
            for port, output in enumerate(router.outputs):
                if output is not None and output.link is link:
                    return router, port
        raise ConfigError(
            f"link {link.link_id} is not fed by any router output"
        )

    def _apply_degradation(self, degradation, now: int) -> None:
        state = self._ensure_state(
            self.topology.links[degradation.link_id]
        )
        state.degrade(degradation.ber_multiplier,
                      now + degradation.duration_cycles)
        self.degradations_applied += 1

    def _apply_stuck(self, stuck, now: int) -> None:
        self.topology.links[stuck.link_id].disable_for(
            now, stuck.duration_cycles
        )
        self.stuck_applied += 1

    # -- results ---------------------------------------------------------------

    def report(self) -> ReliabilityReport:
        """Freeze the run's reliability counters."""
        corrupted = retransmitted = dropped = 0
        retry_busy = retry_energy = 0.0
        for state in self._states.values():
            corrupted += state.flits_corrupted
            retransmitted += state.flits_retransmitted
            dropped += state.flits_dropped
            retry_busy += state.retry_busy_cycles
            retry_energy += state.retry_energy_watt_cycles
        guard_holds = 0
        if self.power is not None:
            for pal in self.power.links:
                guard_holds += pal.guard_holds
                if pal.optical is not None:
                    guard_holds += pal.optical.guard_holds
        carried = sum(link.flits_carried for link in self.topology.links)
        return ReliabilityReport(
            flits_corrupted=corrupted,
            flits_retransmitted=retransmitted,
            flits_dropped=dropped,
            flits_carried=carried,
            retry_busy_cycles=retry_busy,
            retry_energy_watt_cycles=retry_energy,
            reroutes=self.route_counters.reroutes,
            guard_holds=guard_holds,
            failed_links=self.failed_links,
            degradations=self.degradations_applied,
            stuck_transitions=self.stuck_applied,
        )


def _make_level_guard(pal: "PowerAwareLink", channel: LinkChannelModel,
                      guard_max_ber: float):
    """Guard for electrical down-steps: project the lower level's BER."""

    def guard(target_level: int, now: float) -> bool:
        if target_level < 0:
            # LINK_OFF sentinel: a sleeping link transmits nothing, so no
            # BER applies; waking returns to level 0, whose BER was already
            # judged acceptable when the link stepped down to it.
            return True
        rate = pal.ladder.rate(target_level)
        if pal.optical is not None:
            fraction = pal.optical.bands.power_fractions[
                pal.optical.band_at(now)
            ]
        else:
            fraction = 1.0
        return channel.ber(rate, fraction) <= guard_max_ber

    return guard


def _make_band_guard(pal: "PowerAwareLink", channel: LinkChannelModel,
                     guard_max_ber: float):
    """Guard for laser Pdec: project BER with one band less light."""

    def guard(target_band: int, now: float) -> bool:
        fraction = pal.optical.bands.power_fractions[target_band]
        return channel.ber(pal.engine.operating_rate,
                           fraction) <= guard_max_ber

    return guard


def _bind(handler, payload):
    """An event-wheel callback carrying its scenario payload."""

    def fire(now: int) -> None:
        handler(payload, now)

    return fire
