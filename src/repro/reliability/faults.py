"""Per-link fault injection and link-level retransmission.

One :class:`LinkFaultState` hangs off each transport link under fault
injection (``link.faults``); :meth:`LinkFaultState.filter_arrivals`
replaces the link's plain arrival pop.  The model is a CRC-protected link
with receiver-side detection and a stop-and-wait NACK protocol, preserving
wormhole flit order:

* As each in-flight flit reaches the receiver, a Bernoulli trial with the
  *current* operating point's per-flit error probability (see
  :class:`~repro.reliability.channel.LinkChannelModel`) decides whether
  its CRC check fails.
* A corrupted flit is NACKed and retransmitted: its arrival is pushed out
  by the ACK timeout plus exponential backoff plus a fresh serialisation
  and propagation, and it stays at the *front* of the in-flight queue,
  blocking everything behind it — a link delivers flits in order or
  wormhole reassembly breaks.  Every retransmission burns real serialiser
  busy-time (it lands in the ``Lu`` statistic the policy sees) and real
  energy (billed at the link's instantaneous power).
* Each retransmission re-samples corruption.  After ``retry_limit``
  failed attempts the flit is delivered anyway and counted in
  ``flits_dropped`` — a residual uncorrectable error.  Withholding it
  would truncate the wormhole worm and wedge the downstream VC, so the
  protocol degrades to detection-without-correction at budget exhaustion.

Determinism: every link draws from its own :class:`random.Random` stream
seeded from ``(config seed, link id)`` via sha256, so one link's
corruption schedule never depends on other links' traffic, on sweep
ordering, or on process parallelism.
"""

from __future__ import annotations

import hashlib
import random
from typing import TYPE_CHECKING

from repro.network.flit import Flit
from repro.network.links import Link
from repro.reliability.channel import LinkChannelModel
from repro.reliability.config import FaultConfig

if TYPE_CHECKING:  # pragma: no cover - typing-only imports (cycle guard)
    from repro.core.power_link import PowerAwareLink
    from repro.engine.hooks import HookRegistry


def fault_stream_seed(base: int, link_id: int) -> int:
    """Stable per-link RNG seed, independent of everything but identity."""
    payload = f"{base}:fault:{link_id}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


class LinkFaultState:
    """Fault injection + retransmission protocol state for one link."""

    __slots__ = (
        "link", "channel", "pal", "band_fractions", "rng",
        "ack_timeout", "retry_limit", "backoff_base",
        "degrade_multiplier", "degrade_until", "hooks", "_attempts",
        "flits_corrupted", "flits_retransmitted", "flits_dropped",
        "retry_busy_cycles", "retry_energy_watt_cycles",
    )

    def __init__(self, link: Link, channel: LinkChannelModel,
                 config: FaultConfig, *,
                 pal: "PowerAwareLink | None" = None,
                 band_fractions: tuple[float, ...] | None = None,
                 hooks: "HookRegistry | None" = None):
        self.link = link
        self.channel = channel
        #: The power-aware wrapper, when the run has one: source of the
        #: link's current bit rate and optical band.  ``None`` means the
        #: non-power-aware baseline — pinned at the maximum rate, full
        #: light.
        self.pal = pal
        #: Optical band power fractions for modulator multi-level systems
        #: (indexable by the controller's band), else ``None``.
        self.band_fractions = band_fractions
        self.rng = random.Random(fault_stream_seed(config.seed, link.link_id))
        self.ack_timeout = config.ack_timeout_cycles
        self.retry_limit = config.retry_limit
        self.backoff_base = config.backoff_base_cycles
        #: Transient degradation window: BER is multiplied by
        #: ``degrade_multiplier`` while ``now < degrade_until``.
        self.degrade_multiplier = 1.0
        self.degrade_until = 0.0
        self.hooks = hooks
        #: Retry attempts per in-flight flit, keyed by ``id(flit)`` (safe:
        #: the flit stays alive at the deque front until resolved).
        self._attempts: dict[int, int] = {}
        self.flits_corrupted = 0
        self.flits_retransmitted = 0
        self.flits_dropped = 0
        self.retry_busy_cycles = 0.0
        self.retry_energy_watt_cycles = 0.0

    def degrade(self, multiplier: float, until: float) -> None:
        """Open (or extend) a transient BER-degradation window."""
        self.degrade_multiplier = multiplier
        self.degrade_until = max(self.degrade_until, until)

    def flit_error_probability(self, now: float) -> float:
        """Per-flit corruption probability at the link's current state."""
        if now < self.degrade_until:
            multiplier = self.degrade_multiplier
        else:
            multiplier = 1.0
        pal = self.pal
        if pal is not None:
            rate = pal.engine.operating_rate
            optical = pal.optical
            if optical is not None:
                fraction = self.band_fractions[optical.band_at(now)]
            else:
                fraction = 1.0
        else:
            rate = self.channel.max_bit_rate
            fraction = 1.0
        return self.channel.flit_error_probability(rate, fraction, multiplier)

    def filter_arrivals(self, now: float) -> list[Flit]:
        """The fault-injecting replacement for ``Link.pop_arrivals``.

        Pops due arrivals from the front, subjecting each to a corruption
        trial.  A corrupted flit is rescheduled in place (still at the
        front, in-order) and blocks everything behind it until it gets
        through or exhausts its retry budget.
        """
        link = self.link
        arrivals: list[Flit] = []
        in_flight = link._in_flight
        while in_flight and in_flight[0][0] <= now:
            flit = in_flight[0][1]
            p = self.flit_error_probability(now)
            if p > 0.0 and self.rng.random() < p:
                self.flits_corrupted += 1
                hooks = self.hooks
                if hooks is not None and hooks.fault:
                    for callback in hooks.fault:
                        callback(link, flit, now)
                key = id(flit)
                attempts = self._attempts.get(key, 0) + 1
                if attempts > self.retry_limit:
                    # Retry budget exhausted: deliver the corrupt flit
                    # (residual uncorrectable error) rather than truncate
                    # the worm.
                    self._attempts.pop(key, None)
                    self.flits_dropped += 1
                    in_flight.popleft()
                    arrivals.append(flit)
                    continue
                self._attempts[key] = attempts
                self._schedule_retry(flit, attempts, now)
                break
            if self._attempts:
                self._attempts.pop(id(flit), None)
            in_flight.popleft()
            arrivals.append(flit)
        return arrivals

    def _schedule_retry(self, flit: Flit, attempt: int, now: float) -> None:
        """Reschedule the front flit after a NACK round trip + backoff."""
        link = self.link
        delay = self.ack_timeout + self.backoff_base * (1 << (attempt - 1))
        service = link.service_time
        restart = now + delay
        # The retransmission occupies the serialiser again: it shows up in
        # the busy-time (Lu) statistic and blocks new pushes while the old
        # flit is re-sent.
        link._in_flight[0] = (restart + service + link.propagation_cycles,
                              flit)
        link.busy_accum += service
        if link.free_at < restart + service:
            link.free_at = restart + service
        self.flits_retransmitted += 1
        self.retry_busy_cycles += service
        pal = self.pal
        if pal is not None:
            self.retry_energy_watt_cycles += service * pal.current_power()
        hooks = self.hooks
        if hooks is not None and hooks.retransmit:
            for callback in hooks.retransmit:
                callback(link, flit, attempt, now)
