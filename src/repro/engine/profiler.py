"""Per-phase wall-time profiler.

Answers "where does a run actually spend its time?" — delivery, routing,
injection, traffic generation or power control — by attaching to the
engine's ``phase_start``/``phase_end`` hooks.  Attaching switches the step
loop to its instrumented form (two clock reads per phase), so profile
dedicated runs rather than leaving a profiler attached in benchmarks.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.engine.hooks import HookRegistry
from repro.errors import ConfigError


class PhaseProfiler:
    """Accumulates wall-clock seconds per simulator phase."""

    __slots__ = ("seconds", "calls", "_clock", "_entered_at", "_registry")

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        #: phase name -> accumulated wall seconds.
        self.seconds: dict[str, float] = {}
        #: phase name -> number of timed executions.
        self.calls: dict[str, int] = {}
        self._clock = clock
        self._entered_at = 0.0
        self._registry: HookRegistry | None = None

    def attach(self, hooks: HookRegistry) -> "PhaseProfiler":
        """Start timing phases announced by ``hooks``; returns self."""
        if self._registry is not None:
            raise ConfigError("profiler is already attached")
        hooks.add("phase_start", self._on_phase_start)
        hooks.add("phase_end", self._on_phase_end)
        self._registry = hooks
        return self

    def detach(self) -> None:
        """Stop timing and restore the uninstrumented step loop."""
        if self._registry is None:
            raise ConfigError("profiler is not attached")
        self._registry.remove("phase_start", self._on_phase_start)
        self._registry.remove("phase_end", self._on_phase_end)
        self._registry = None

    # Phases never nest, so one entry timestamp suffices.
    def _on_phase_start(self, phase: str, cycle: int) -> None:
        self._entered_at = self._clock()

    def _on_phase_end(self, phase: str, cycle: int) -> None:
        elapsed = self._clock() - self._entered_at
        self.seconds[phase] = self.seconds.get(phase, 0.0) + elapsed
        self.calls[phase] = self.calls.get(phase, 0) + 1

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def report(self) -> str:
        """An aligned per-phase timing table, slowest phase first."""
        if not self.seconds:
            return "no phases timed (profiler attached but nothing ran)"
        total = self.total_seconds or 1e-12
        rows = sorted(self.seconds.items(), key=lambda kv: -kv[1])
        width = max(len(name) for name, _ in rows)
        lines = [f"{'phase'.ljust(width)}  {'seconds':>9}  {'share':>6}  {'calls':>9}"]
        for name, seconds in rows:
            lines.append(
                f"{name.ljust(width)}  {seconds:9.4f}  "
                f"{100.0 * seconds / total:5.1f}%  {self.calls[name]:9d}"
            )
        lines.append(f"{'total'.ljust(width)}  {self.total_seconds:9.4f}")
        return "\n".join(lines)
