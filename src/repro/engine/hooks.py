"""Typed observer hooks for the simulation engine.

Anything that wants to watch a run — the per-phase wall-time profiler, the
stall watchdog, level-over-time samplers in :mod:`repro.metrics.inspect`,
tests — attaches here instead of being hard-wired into ``Simulator.step``.
The registry is intentionally dumb: plain callback lists per event, fired
synchronously in registration order.  Empty lists cost one truthiness
check on the hot path.

Events
------
``phase_start`` / ``phase_end``
    ``cb(phase_name, cycle)`` around each simulator phase (``deliver``,
    ``route``, ``inject``, ``generate``, ``control``).  Registering either
    switches the step loop to its instrumented form.
``window``
    ``cb(start_cycle, end_cycle)`` after the power manager has evaluated
    every link's policy at a window boundary.
``transition``
    ``cb(power_link, decision, now)`` for every non-hold policy decision
    (the :data:`~repro.core.policy.STEP_UP`/``STEP_DOWN`` constants).
``policy``
    ``cb(power_link, lu, bu, decision, now)`` for *every* link's
    window-boundary policy evaluation (including holds), carrying the
    utilisation readings the decision was made from.  Fired per link per
    window, so it is cheap in aggregate but hotter than ``window``.
``power_sample``
    ``cb(now, watts)`` after each instantaneous network power sample is
    recorded to the power series.
``delivery``
    ``cb(link, flit, now)`` for every flit delivered off a link into a
    downstream buffer or node sink.  This is the hottest hook; it is only
    evaluated while at least one callback is registered.
``packet_delivered``
    ``cb(packet, now)`` when a packet's tail flit reaches its destination
    node (fired through the stats collector).  Use this for packet-level
    observation: it fires once per packet, not once per flit per link
    like ``delivery``, so it is orders of magnitude cheaper.
``fault``
    ``cb(link, flit, now)`` when a flit fails its CRC check at the
    receiving end of a link (fault-injected runs only).
``retransmit``
    ``cb(link, flit, attempt, now)`` when a corrupted flit's
    retransmission is scheduled (``attempt`` counts from 1).
``link_failure``
    ``cb(link, now)`` when a scheduled hard link failure takes effect.

The three ``exec_*`` events are fired by the sweep executor
(:mod:`repro.experiments.executor`), not by the simulator: a registry
also fronts the execution harness so sweep-lifecycle observers (the
executor trace recorder, tests) attach exactly like run observers do.

``exec_point``
    ``cb(label, key, status, attempt, elapsed)`` when a sweep point
    reaches a terminal state: ``status`` is ``"done"`` (executed),
    ``"cached"`` (served from the journal, ``attempt`` 0) or
    ``"failed"`` (retries exhausted).  ``elapsed`` is wall seconds
    across every attempt.
``exec_retry``
    ``cb(label, key, attempt, cause, delay)`` when a failed attempt is
    scheduled for retry after ``delay`` seconds of backoff; ``cause``
    is ``"error"``, ``"timeout"`` or ``"crash"``.
``exec_crash``
    ``cb(label, key, attempt, cause)`` when a worker-process death is
    detected under a point (pool breakage, or a hard-timeout kill).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ConfigError

#: The hook points a :class:`HookRegistry` exposes.
EVENTS = ("phase_start", "phase_end", "window", "transition", "policy",
          "power_sample", "delivery", "packet_delivered", "fault",
          "retransmit", "link_failure", "exec_point", "exec_retry",
          "exec_crash")

#: A hook callback.  Signatures are per-event (see the module docstring);
#: return values are ignored.
Hook = Callable[..., object]


class HookRegistry:
    """Callback lists for each engine event."""

    __slots__ = EVENTS

    # One list per EVENTS entry.  The explicit annotations mirror EVENTS
    # so attribute access type-checks; test_hooks asserts they stay in
    # sync with the tuple.
    phase_start: list[Hook]
    phase_end: list[Hook]
    window: list[Hook]
    transition: list[Hook]
    policy: list[Hook]
    power_sample: list[Hook]
    delivery: list[Hook]
    packet_delivered: list[Hook]
    fault: list[Hook]
    retransmit: list[Hook]
    link_failure: list[Hook]
    exec_point: list[Hook]
    exec_retry: list[Hook]
    exec_crash: list[Hook]

    def __init__(self) -> None:
        for event in EVENTS:
            setattr(self, event, [])

    @property
    def instrumented(self) -> bool:
        """Whether any phase-boundary hook is registered."""
        return bool(self.phase_start or self.phase_end)

    def add(self, event: str, callback: Hook) -> Hook:
        """Register ``callback`` for ``event``; returns the callback."""
        if event not in EVENTS:
            raise ConfigError(
                f"unknown hook event {event!r}; known: {EVENTS}"
            )
        if not callable(callback):
            raise ConfigError(f"hook callback must be callable, got {callback!r}")
        hooks: list[Hook] = getattr(self, event)
        hooks.append(callback)
        return callback

    def remove(self, event: str, callback: Hook) -> None:
        """Deregister a previously added callback."""
        if event not in EVENTS:
            raise ConfigError(
                f"unknown hook event {event!r}; known: {EVENTS}"
            )
        hooks: list[Hook] = getattr(self, event)
        try:
            hooks.remove(callback)
        except ValueError:
            raise ConfigError(
                f"callback {callback!r} is not registered for {event!r}"
            ) from None
