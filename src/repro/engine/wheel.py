"""A small integer-cycle event wheel.

The simulator used to poll for control work every cycle — ``now % window``,
``now % epoch``, ``now % sample_interval`` and a per-cycle sweep over every
link in transition.  All of those are *scheduled* events: their next firing
time is known exactly when the previous one completes.  The
:class:`EventWheel` turns the polling into wake-ups, so an idle cycle costs
one integer comparison (``wheel.next_cycle <= now``) instead of a handful
of modulo checks and set scans.

Ordering is fully deterministic: events firing on the same cycle run in
``(priority, insertion order)`` — the priorities below reproduce the
simulator's historical within-cycle phase-5 order (transition completions,
then window policy, then laser epochs, then power sampling, then the stall
watchdog), so an event-driven run is bit-identical to a polled one.

Callbacks receive the current cycle: ``callback(now)``.  Recurring timers
reschedule themselves from inside their callback; an event scheduled at or
before the cycle being serviced fires within the same :meth:`service` call.
"""

from __future__ import annotations

import math
from collections.abc import Callable

from repro.errors import ConfigError

#: Within-cycle firing order (see module docstring).
PRI_TRANSITION = 0
PRI_WINDOW = 1
PRI_EPOCH = 2
PRI_SAMPLE = 3
PRI_WATCHDOG = 4
#: Scheduled fault-scenario onsets (link failures, degradations) — after
#: all regular control work so a fault lands on a consistent cycle state.
PRI_FAULT = 5

#: ``next_cycle`` when nothing is scheduled: compares greater than any cycle.
NEVER = math.inf


class EventWheel:
    """Deterministic integer-cycle event scheduler."""

    __slots__ = ("_buckets", "_seq", "next_cycle")

    def __init__(self) -> None:
        #: cycle -> list of (priority, insertion seq, callback).
        self._buckets: dict[int, list[tuple[int, int, Callable[[int], None]]]] = {}
        self._seq = 0
        #: Earliest scheduled cycle (``NEVER`` when empty).  Hot loops read
        #: this directly: ``if wheel.next_cycle <= now: wheel.service(now)``.
        self.next_cycle: float = NEVER

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def schedule(self, when: float, callback: Callable[[int], None],
                 priority: int = 0) -> None:
        """Schedule ``callback(now)`` for the first cycle at/after ``when``.

        ``when`` may be fractional (transition completion times are): the
        event fires on ``ceil(when)``, the first integer cycle at which a
        per-cycle poll of ``now >= when`` would have seen it.
        """
        if not math.isfinite(when):
            raise ConfigError(f"event time must be finite, got {when!r}")
        cycle = math.ceil(when)
        entry = (priority, self._seq, callback)
        self._seq += 1
        bucket = self._buckets.get(cycle)
        if bucket is None:
            self._buckets[cycle] = [entry]
        else:
            bucket.append(entry)
        if cycle < self.next_cycle:
            self.next_cycle = cycle

    def service(self, now: int) -> int:
        """Run every event due at or before cycle ``now``; return the count.

        Events scheduled *during* servicing at a cycle <= ``now`` are
        serviced in the same call (after the bucket that scheduled them).
        """
        fired = 0
        while self.next_cycle <= now:
            bucket = self._buckets.pop(int(self.next_cycle))
            self.next_cycle = min(self._buckets) if self._buckets else NEVER
            bucket.sort()
            for _, _, callback in bucket:
                callback(now)
                fired += 1
        return fired
