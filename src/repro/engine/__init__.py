"""The pluggable simulation engine.

Substrate-agnostic machinery the network, power-control and experiment
layers plug into:

* :class:`~repro.engine.active.ActiveSet` — registries of components that
  currently hold work, so a cycle costs O(active) instead of O(network);
* :class:`~repro.engine.wheel.EventWheel` — deterministic scheduled
  wake-ups replacing per-cycle ``now % period`` polling;
* :class:`~repro.engine.hooks.HookRegistry` — typed observer hooks
  (``phase_start``/``phase_end``, ``window``, ``transition``,
  ``delivery``) for profilers, watchdogs and metrics samplers;
* :class:`~repro.engine.profiler.PhaseProfiler` — per-phase wall-time
  attribution built on the phase hooks.

Nothing in this package imports the network or core layers; it sits below
both.
"""

from repro.engine.active import ActiveSet
from repro.engine.hooks import EVENTS, HookRegistry
from repro.engine.profiler import PhaseProfiler
from repro.engine.wheel import (
    NEVER,
    PRI_EPOCH,
    PRI_FAULT,
    PRI_SAMPLE,
    PRI_TRANSITION,
    PRI_WATCHDOG,
    PRI_WINDOW,
    EventWheel,
)

__all__ = [
    "ActiveSet",
    "EventWheel",
    "HookRegistry",
    "PhaseProfiler",
    "EVENTS",
    "NEVER",
    "PRI_TRANSITION",
    "PRI_WINDOW",
    "PRI_EPOCH",
    "PRI_SAMPLE",
    "PRI_WATCHDOG",
    "PRI_FAULT",
]
