"""Active-component registries.

The simulator's cost model is energy-proportional, like the networks it
simulates: components register themselves while they hold work (flits in
flight on a link, buffered flits in a router, queued flits at a node) and
are skipped entirely otherwise, so a light-load cycle costs O(active)
instead of O(network).  This generalises the active-link set the delivery
loop always used to routers and node boards.

Determinism: membership is unordered (O(1) add/discard from hot paths),
but iteration always goes through :meth:`ActiveSet.snapshot`, which sorts
by the component's stable key — so two runs that activate the same
components in any order still step them identically.

Internally members are stored in a dict keyed by their integer key: the
snapshot then sorts plain ints (a single specialised ``sorted`` call) and
gathers members by lookup, instead of calling a Python-level key function
per member per cycle — at load, the snapshot is taken every cycle for
every registry, and the callback overhead dominated the sort itself.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from typing import Generic, TypeVar

T = TypeVar("T")


class ActiveSet(Generic[T]):
    """A set of components with pending work, iterated in key order."""

    __slots__ = ("_members", "_key", "_cache")

    def __init__(self, key: Callable[[T], int]):
        self._members: dict[int, T] = {}
        self._key = key
        #: Memoised sorted snapshot; ``None`` while membership is dirty.
        #: At load the membership is near-stable cycle to cycle, so the
        #: per-cycle snapshot is usually a cache hit instead of a sort.
        self._cache: list[T] | None = []

    def add(self, member: T) -> None:
        """Register a component (idempotent)."""
        self._members[self._key(member)] = member
        self._cache = None

    def discard(self, member: T) -> None:
        """Deregister a component (idempotent)."""
        if self._members.pop(self._key(member), None) is not None:
            self._cache = None

    def __contains__(self, member: T) -> bool:
        return self._key(member) in self._members

    def __len__(self) -> int:
        return len(self._members)

    def __bool__(self) -> bool:
        return bool(self._members)

    def __iter__(self) -> Iterator[T]:
        return iter(self.snapshot())

    def snapshot(self) -> list[T]:
        """The current members sorted by key.

        Safe to iterate while members register/deregister (mutation
        invalidates the memo, not the returned list).  Callers must treat
        the result as read-only — it may be served again on a later call.
        """
        cache = self._cache
        if cache is not None:
            return cache
        members = self._members
        if len(members) < 2:
            cache = list(members.values())
        else:
            # Runs only on a cache miss (membership changed since the last
            # snapshot); steady-state windows reuse the memoised list.
            cache = [members[k] for k in sorted(members)]  # repro: noqa[HP004] cache-miss path only
        self._cache = cache
        return cache

    def clear(self) -> None:
        self._members.clear()
        self._cache = []
