"""Active-component registries.

The simulator's cost model is energy-proportional, like the networks it
simulates: components register themselves while they hold work (flits in
flight on a link, buffered flits in a router, queued flits at a node) and
are skipped entirely otherwise, so a light-load cycle costs O(active)
instead of O(network).  This generalises the active-link set the delivery
loop always used to routers and node boards.

Determinism: membership is an unordered set (O(1) add/discard from hot
paths), but iteration always goes through :meth:`ActiveSet.snapshot`,
which sorts by the component's stable key — so two runs that activate the
same components in any order still step them identically.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from typing import Generic, TypeVar

T = TypeVar("T")


class ActiveSet(Generic[T]):
    """A set of components with pending work, iterated in key order."""

    __slots__ = ("_members", "_key")

    def __init__(self, key: Callable[[T], int]):
        self._members: set[T] = set()
        self._key = key

    def add(self, member: T) -> None:
        """Register a component (idempotent)."""
        self._members.add(member)

    def discard(self, member: T) -> None:
        """Deregister a component (idempotent)."""
        self._members.discard(member)

    def __contains__(self, member: T) -> bool:
        return member in self._members

    def __len__(self) -> int:
        return len(self._members)

    def __bool__(self) -> bool:
        return bool(self._members)

    def __iter__(self) -> Iterator[T]:
        return iter(self.snapshot())

    def snapshot(self) -> list[T]:
        """The current members sorted by key.

        A fresh list, safe to iterate while members register/deregister.
        """
        members = self._members
        if len(members) < 2:
            return list(members)
        return sorted(members, key=self._key)

    def clear(self) -> None:
        self._members.clear()
