"""Arrival-time delivery schedule for fault-free links.

The deliver phase's job is "hand over every flit whose link arrival time
has passed".  The :class:`~repro.engine.active.ActiveSet` formulation scans
every link with *any* flit in flight, every cycle — but at load most active
links' next arrival is one or two cycles in the future (multi-cycle service
times at reduced bit rates plus propagation), so most of the scan is wasted.

A link's arrival times are fully known the moment a flit is pushed, and
they are monotonic per link.  :class:`DeliverySchedule` exploits that: it
keeps a calendar of per-cycle wake-up buckets, where a link is filed under
``due_cycle = ceil(arrival)`` — exactly the first integer cycle at which
the old scan's ``arrival <= now`` test would fire.  The deliver phase pops
the current cycle's bucket instead of scanning; a link with remaining
flits is re-armed for its next arrival.  A plain dict-of-lists beats a
heap here because the simulator visits every integer cycle in order, and
arrivals are always armed for *future* cycles (service time is >= the
bit-period, so ``ceil(arrival) > now`` at push time): each bucket is
built, popped once, and never revisited.  Buckets are sorted by link id
before delivery, so same-cycle deliveries come out in ascending link
order — the same order the sorted active-set scan (and the legacy
step-everything loop) produces, keeping runs bit-identical
(property-tested).

Only fault-free runs use the schedule.  Fault injection may *reschedule*
in-flight arrivals (retransmission backoff), which would invalidate armed
wake-ups; those runs keep the scan path, where per-cycle re-checks are the
point.

Duck-type compatibility: ``add``/``discard``/``__len__``/``__bool__``/
``__contains__`` match the ``ActiveSet`` registry protocol that
:class:`~repro.network.links.Link` and the simulator's drain check speak.
"""

from __future__ import annotations

from math import ceil
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.network.links import Link


class DeliverySchedule:
    """A per-cycle calendar of wake-up buckets over in-flight links."""

    __slots__ = ("_buckets", "_members", "_armed", "_cursor")

    def __init__(self) -> None:
        #: due_cycle -> [(link_id, link), ...] wake-ups, unsorted until
        #: popped; each bucket is built, popped once, never revisited.
        self._buckets: dict[int, list[tuple[int, "Link"]]] = {}
        #: link_id -> link for every link with flits in flight (the drain
        #: check's membership view, mirroring the ActiveSet contract).
        self._members: dict[int, "Link"] = {}
        #: link_id -> due cycle of the link's single *live* filed entry.
        #: A bucket entry is authoritative only while this matches its
        #: bucket's due cycle; anything else is a stale leftover (from a
        #: drain-elsewhere + re-add, or a re-arm that moved the wake-up)
        #: and is dropped unconsumed when its bucket pops.  Without this,
        #: a ``discard`` + re-``add`` at the same due cycle leaves two
        #: entries that *both* validate, delivering the link twice.
        self._armed: dict[int, int] = {}
        #: Next cycle whose bucket has not been popped yet.  The engine
        #: loop advances one cycle at a time, so :meth:`pop_due` normally
        #: pops exactly one bucket; the cursor makes a hypothetical cycle
        #: skip drain older buckets instead of stranding them.
        self._cursor = 0

    # -- registry protocol (Link.push calls add on empty -> nonempty) ----------

    def add(self, link: "Link") -> None:
        """Arm a wake-up for a link that just went nonempty."""
        link_id = link.link_id
        self._members[link_id] = link
        due = ceil(link._in_flight[0][0])
        if self._armed.get(link_id) == due:
            # A live entry for exactly this cycle is already filed (the
            # link drained through some other path and re-armed before
            # its bucket popped); filing again would deliver it twice.
            return
        self._armed[link_id] = due
        bucket = self._buckets.get(due)
        if bucket is None:
            self._buckets[due] = [(link_id, link)]
        else:
            bucket.append((link_id, link))

    def discard(self, link: "Link") -> None:
        """Deregister a drained link (stale bucket entries prune lazily).

        The armed due-cycle is deliberately *kept*: the physical bucket
        entry is still filed, and forgetting it would let a re-``add``
        at the same cycle file a duplicate that also validates.
        """
        self._members.pop(link.link_id, None)

    def __contains__(self, link: "Link") -> bool:
        return link.link_id in self._members

    def __len__(self) -> int:
        return len(self._members)

    def __bool__(self) -> bool:
        return bool(self._members)

    # -- deliver-phase driver --------------------------------------------------

    def pop_due(self, now: int) -> list["Link"]:
        """Links with at least one arrival due at ``now``, id-ascending.

        Re-arms nothing: the caller delivers each link's due arrivals and
        must call :meth:`rearm` (flits remain) or :meth:`retire` (drained)
        afterwards.  Entries whose link has no arrival actually due —
        possible only if an armed link drained through some path other
        than the deliver phase — are re-armed or dropped here.
        """
        cycle = int(now)
        cursor = self._cursor
        if cycle < cursor:
            return _NO_LINKS
        self._cursor = cycle + 1
        buckets = self._buckets
        if not buckets:
            return _NO_LINKS
        armed = self._armed
        armed_get = armed.get
        if cycle == cursor:  # the common case: exactly one bucket to pop
            raw = buckets.pop(cycle, None)
            if raw is None:
                return _NO_LINKS
            bucket = []
            filed = bucket.append
            for entry in raw:
                if armed_get(entry[0]) == cycle:
                    filed(entry)
        else:
            # Catch-up after a cycle skip: liveness is per-due, so filter
            # each bucket against its own due cycle before merging.
            bucket = []
            filed = bucket.append
            for due in range(cursor, cycle + 1):
                entries = buckets.pop(due, None)
                if entries is None:
                    continue
                for entry in entries:
                    if armed_get(entry[0]) == due:
                        filed(entry)
        if not bucket:
            return _NO_LINKS
        bucket.sort()
        due_links: list["Link"] = []
        members = self._members
        prev_id = -1
        for link_id, link in bucket:
            if link_id == prev_id:
                # Duplicate live entries at one due can only be identical
                # tuples (one armed cycle per link); consume just the
                # first.
                continue
            prev_id = link_id
            del armed[link_id]
            if link_id not in members:
                continue
            in_flight = link._in_flight
            if not in_flight:
                del members[link_id]
                continue
            if in_flight[0][0] > now:
                self.rearm(link)
                continue
            due_links.append(link)
        return due_links

    def rearm(self, link: "Link") -> None:
        """Schedule a link's next wake-up after a partial drain."""
        link_id = link.link_id
        due = ceil(link._in_flight[0][0])
        if self._armed.get(link_id) == due:
            return
        self._armed[link_id] = due
        bucket = self._buckets.get(due)
        if bucket is None:
            self._buckets[due] = [(link_id, link)]
        else:
            bucket.append((link_id, link))

    def retire(self, link: "Link") -> None:
        """Deregister a link the deliver phase fully drained."""
        del self._members[link.link_id]


#: Shared empty result for cycles with nothing due (the common case).
_NO_LINKS: list["Link"] = []
